#include "obs/export/sampler.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "obs/diag/crash_dump.h"
#include "obs/json_util.h"
#include "obs/log.h"
#include "obs/resource.h"

namespace dd::obs {

namespace {

bool SameSchema(const SampleView& a, const SampleView& b) {
  if (a.counters.size() != b.counters.size() ||
      a.gauges.size() != b.gauges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    if (a.counters[i].first != b.counters[i].first) return false;
  }
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    if (a.gauges[i].first != b.gauges[i].first) return false;
  }
  return true;
}

}  // namespace

SampleView FlattenSnapshot(const MetricsSnapshot& snapshot) {
  SampleView view;
  view.counters.reserve(snapshot.counters.size() +
                        snapshot.histograms.size() * 8);
  view.gauges.reserve(snapshot.gauges.size() + snapshot.histograms.size());
  for (const auto& c : snapshot.counters) {
    view.counters.emplace_back(c.name, c.value);
  }
  for (const auto& g : snapshot.gauges) {
    view.gauges.emplace_back(g.name, g.value);
  }
  for (const auto& h : snapshot.histograms) {
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::string suffix =
          b < h.bounds.size() ? StrFormat("#le_%g", h.bounds[b])
                              : std::string("#le_inf");
      view.counters.emplace_back(h.name + suffix, h.buckets[b]);
    }
    view.counters.emplace_back(h.name + "#count", h.count);
    view.gauges.emplace_back(h.name + "#sum", h.sum);
  }
  // '#' keeps derived series from colliding with plain metric names;
  // a final sort keeps the schema canonical regardless of kind order.
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(view.counters.begin(), view.counters.end(), by_name);
  std::sort(view.gauges.begin(), view.gauges.end(), by_name);
  return view;
}

std::string SampleFrameToJsonl(const SampleFrame& frame,
                               const std::string& run_id) {
  std::string out = frame.full ? "{\"type\":\"full\"" : "{\"type\":\"delta\"";
  out += ",\"run_id\":\"";
  out += JsonEscape(run_id);
  out += "\"";
  out += StrFormat(",\"seq\":%llu,\"t_ms\":%.3f",
                   static_cast<unsigned long long>(frame.seq), frame.t_ms);
  if (frame.full) {
    out += ",\"counters\":{";
    for (std::size_t i = 0; i < frame.view.counters.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += JsonEscape(frame.view.counters[i].first);
      out += "\":";
      out += StrFormat("%llu", static_cast<unsigned long long>(
                                   frame.view.counters[i].second));
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < frame.view.gauges.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += JsonEscape(frame.view.gauges[i].first);
      out += "\":";
      out += StrFormat("%.6g", frame.view.gauges[i].second);
    }
    out += "}";
  } else {
    out += ",\"c\":[";
    for (std::size_t i = 0; i < frame.counter_deltas.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("[%u,%lld]", frame.counter_deltas[i].first,
                       static_cast<long long>(frame.counter_deltas[i].second));
    }
    out += "],\"g\":[";
    for (std::size_t i = 0; i < frame.gauge_values.size(); ++i) {
      if (i > 0) out += ",";
      out += StrFormat("[%u,%.6g]", frame.gauge_values[i].first,
                       frame.gauge_values[i].second);
    }
    out += "]";
  }
  out += "}";
  return out;
}

Result<SampleView> DecodeFrames(const std::vector<SampleFrame>& frames) {
  SampleView view;
  bool have_full = false;
  for (const SampleFrame& frame : frames) {
    if (frame.full) {
      view = frame.view;
      have_full = true;
      continue;
    }
    if (!have_full) {
      return Status::InvalidArgument(
          "delta frame without a preceding full frame");
    }
    for (const auto& [idx, delta] : frame.counter_deltas) {
      if (idx >= view.counters.size()) {
        return Status::InvalidArgument("counter index out of schema");
      }
      view.counters[idx].second = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(view.counters[idx].second) + delta);
    }
    for (const auto& [idx, value] : frame.gauge_values) {
      if (idx >= view.gauges.size()) {
        return Status::InvalidArgument("gauge index out of schema");
      }
      view.gauges[idx].second = value;
    }
  }
  return view;
}

Result<std::unique_ptr<MetricsSampler>> MetricsSampler::Start(
    SamplerOptions options) {
  if (options.period_ms < 1) {
    return Status::InvalidArgument("sampler period must be >= 1 ms");
  }
  if (options.full_every < 1) options.full_every = 1;
  if (options.ring_capacity < 2) options.ring_capacity = 2;
  auto sampler =
      std::unique_ptr<MetricsSampler>(new MetricsSampler(std::move(options)));
  if (!sampler->options_.series_path.empty()) {
    sampler->series_ = std::fopen(sampler->options_.series_path.c_str(), "a");
    if (sampler->series_ == nullptr) {
      return Status::IoError("cannot open " + sampler->options_.series_path +
                             " for appending");
    }
  }
  sampler->SampleOnce();  // Frame 0 is always a full reference frame.
  sampler->thread_ = std::thread([s = sampler.get()] { s->Loop(); });
  DD_LOG(INFO) << "metrics sampler started, period "
               << sampler->options_.period_ms << " ms";
  return sampler;
}

MetricsSampler::MetricsSampler(SamplerOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Stop() {
  if (stopped_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Flush the end state as a FULL frame: the series tail stays
  // decodable on its own even if earlier frames are truncated away,
  // and no samples newer than the last periodic tick are lost.
  SampleOnce(/*force_full=*/true);
  if (series_ != nullptr) {
    std::fclose(series_);
    series_ = nullptr;
  }
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_requested_) {
    const bool stopping =
        wake_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                       [this] { return stop_requested_; });
    if (stopping) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void MetricsSampler::SampleOnce(bool force_full) {
  // Refresh the process RSS gauges first so every frame carries a
  // reading taken at sample time, not at the last structure rebuild.
  UpdateRssGauges();
  SampleView now = FlattenSnapshot(MetricsRegistry::Global().Snapshot());
  const double t_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();

  std::lock_guard<std::mutex> lock(mu_);
  SampleFrame frame;
  frame.seq = seq_++;
  frame.t_ms = t_ms;
  const bool need_full = force_full || ring_.empty() ||
                         !SameSchema(now, last_full_) ||
                         since_full_ + 1 >= options_.full_every;
  if (need_full) {
    frame.full = true;
    frame.view = now;
    last_full_ = now;
    since_full_ = 0;
  } else {
    for (std::size_t i = 0; i < now.counters.size(); ++i) {
      if (now.counters[i].second != last_view_.counters[i].second) {
        frame.counter_deltas.emplace_back(
            static_cast<std::uint32_t>(i),
            static_cast<std::int64_t>(now.counters[i].second) -
                static_cast<std::int64_t>(last_view_.counters[i].second));
      }
    }
    for (std::size_t i = 0; i < now.gauges.size(); ++i) {
      if (now.gauges[i].second != last_view_.gauges[i].second) {
        frame.gauge_values.emplace_back(static_cast<std::uint32_t>(i),
                                        now.gauges[i].second);
      }
    }
    ++since_full_;
  }
  last_view_ = std::move(now);
  if (series_ != nullptr || diag::DiagnosticsEnabled()) {
    const std::string line = SampleFrameToJsonl(frame, options_.run_id);
    if (series_ != nullptr) {
      std::fputs(line.c_str(), series_);
      std::fputc('\n', series_);
      std::fflush(series_);
    }
    // Crash dumps carry the last few frames (`--- ftdc` section) even
    // when no series file is configured.
    diag::NoteFtdcFrame(line);
  }
  ring_.push_back(std::move(frame));
  TrimRingLocked();
}

void MetricsSampler::TrimRingLocked() {
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  // Never leave orphaned deltas at the front: decoding needs their
  // reference frame.
  while (!ring_.empty() && !ring_.front().full) ring_.pop_front();
}

std::uint64_t MetricsSampler::frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::vector<SampleFrame> MetricsSampler::Ring() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SampleFrame>(ring_.begin(), ring_.end());
}

}  // namespace dd::obs
