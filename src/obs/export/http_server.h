// Minimal embedded HTTP server for live metrics: a blocking accept
// loop on one dedicated thread, answering four routes —
//   GET /metrics      Prometheus text exposition of the global registry
//   GET /healthz      JSON liveness probe: build provenance (version,
//                     git hash + dirty bit), uptime, live tuple counts
//   GET /debug/dump   live diagnostic dump (all-thread stacks)
//   GET /debug/prof   on-demand CPU profile (?seconds=N&hz=H): runs
//                     the sampling profiler (obs/prof) for N seconds
//                     and responds with folded stacks; 409 while a
//                     capture is already running
// Everything else is 404. One request per connection (the response
// carries Connection: close), no keep-alive, no TLS, no third-party
// dependencies; this is a diagnostics port for `ddtool serve` /
// `ddtool watch --metrics_port`, not a general web server. The accept
// loop polls with a short timeout so Stop() returns promptly; slow or
// stuck clients are cut off by a per-connection socket timeout.

#ifndef DD_OBS_EXPORT_HTTP_SERVER_H_
#define DD_OBS_EXPORT_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/result.h"

namespace dd::obs {

class MetricsHttpServer {
 public:
  // Binds 0.0.0.0:`port` (0 picks an ephemeral port — read the choice
  // back with port()) and starts the serving thread. Fails with
  // IoError when the bind/listen fails (port taken, no permission).
  static Result<std::unique_ptr<MetricsHttpServer>> Start(int port);

  ~MetricsHttpServer();  // Stops and joins.

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Signals the serving thread, joins it, and closes the listen
  // socket. Idempotent.
  void Stop();

  int port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  MetricsHttpServer(int listen_fd, int port);

  void Loop();
  void HandleConnection(int fd);

  int listen_fd_;
  int port_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace dd::obs

#endif  // DD_OBS_EXPORT_HTTP_SERVER_H_
