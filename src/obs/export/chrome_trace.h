// Chrome trace-event JSON exporter: renders the aggregating span tree
// as a {"traceEvents":[...]} document loadable by Perfetto and
// chrome://tracing. The tracer aggregates repeated scopes into one
// node (count + total time) rather than recording individual events,
// so the export synthesizes a timeline: every node becomes one
// complete ("ph":"X") event whose dur is the node's total wall time,
// children laid out back to back inside their parent's interval.
// Each root span gets its own tid track — worker-thread spans from
// common/parallel.h surface as roots, so parallel phases land on
// separate tracks. The aggregated call count and self time ride along
// in the event's args.

#ifndef DD_OBS_EXPORT_CHROME_TRACE_H_
#define DD_OBS_EXPORT_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace dd::obs {

// Renders the snapshot as a complete Chrome trace JSON document.
std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace);

// Writes TraceSnapshotToChromeTrace(trace) into `path` (overwrites).
Status WriteChromeTrace(const TraceSnapshot& trace, const std::string& path);

}  // namespace dd::obs

#endif  // DD_OBS_EXPORT_CHROME_TRACE_H_
