// Chrome trace-event JSON exporter: renders the aggregating span tree
// as a {"traceEvents":[...]} document loadable by Perfetto and
// chrome://tracing. The tracer aggregates repeated scopes into one
// node (count + total time) rather than recording individual events,
// so the export synthesizes a timeline: every node becomes one
// complete ("ph":"X") event whose dur is the node's total wall time,
// children laid out back to back inside their parent's interval.
// Each root span gets its own tid track — worker-thread spans from
// common/parallel.h surface as roots, so parallel phases land on
// separate tracks. The aggregated call count and self time ride along
// in the event's args.
//
// When a pool-stats snapshot (obs/pool_stats.h) is supplied, pooled
// phases additionally get REAL per-worker tracks: one tid per pool
// thread slot, one event per executed chunk at its measured steady-
// clock timestamps. These replace the synthesized one-track-per-root
// view as the source of truth for pooled work — the span tracks keep
// the aggregate totals, the worker tracks show who actually ran what,
// when, and how the chunks interleaved.

#ifndef DD_OBS_EXPORT_CHROME_TRACE_H_
#define DD_OBS_EXPORT_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/pool_stats.h"
#include "obs/trace.h"

namespace dd::obs {

// Renders the snapshot as a complete Chrome trace JSON document.
std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace);

// As above, plus one real track per pool worker slot built from the
// chunk timeline (no-op when `pool` is empty).
std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace,
                                       const PoolStatsSnapshot& pool);

// Writes TraceSnapshotToChromeTrace(trace) into `path` (overwrites).
Status WriteChromeTrace(const TraceSnapshot& trace, const std::string& path);

// Pool-aware overload of WriteChromeTrace.
Status WriteChromeTrace(const TraceSnapshot& trace,
                        const PoolStatsSnapshot& pool,
                        const std::string& path);

}  // namespace dd::obs

#endif  // DD_OBS_EXPORT_CHROME_TRACE_H_
