// FTDC-inspired periodic metrics sampler for long-running processes
// (MongoDB's full-time diagnostic data capture: sample everything on a
// timer, store reference documents plus compact deltas). A background
// thread snapshots the global registry every period, flattens it into
// two ordered series lists (counters, incl. histogram buckets/counts;
// gauges, incl. histogram sums), and encodes the sample as either
//
//   full frame   — complete name->value lists; emitted first, every
//                  `full_every` samples, and whenever the metric set
//                  changes (a new metric registered mid-run);
//   delta frame  — sparse (index, value) pairs against the schema of
//                  the most recent full frame, counters as signed
//                  deltas, gauges as absolute values; unchanged
//                  series are omitted, so an idle process costs a few
//                  bytes per sample.
//
// Frames accumulate in a bounded in-memory ring (oldest dropped; the
// ring always retains the full frame its deltas depend on) and are
// optionally appended as JSONL to a series file, one frame per line,
// stamped with the run_id so lines join against ddtool's change feed.
// DecodeFrames() reverses the encoding exactly — the sampler test
// asserts decoded == live snapshot.

#ifndef DD_OBS_EXPORT_SAMPLER_H_
#define DD_OBS_EXPORT_SAMPLER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace dd::obs {

// Flattened, order-stable view of one metrics snapshot. Histograms
// contribute one counter series per bucket ("name#le_<bound>", overflow
// "name#le_inf"), a "name#count" counter, and a "name#sum" gauge.
struct SampleView {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

SampleView FlattenSnapshot(const MetricsSnapshot& snapshot);

// One encoded sample.
struct SampleFrame {
  std::uint64_t seq = 0;
  double t_ms = 0.0;  // Since sampler start (steady clock).
  bool full = false;
  // Full frames: the complete view.
  SampleView view;
  // Delta frames: sparse changes against the last full frame's schema.
  std::vector<std::pair<std::uint32_t, std::int64_t>> counter_deltas;
  std::vector<std::pair<std::uint32_t, double>> gauge_values;
};

// One-line JSON encoding of a frame (no trailing newline):
//   {"type":"full","run_id":"...","seq":0,"t_ms":0.0,
//    "counters":{"a":1,...},"gauges":{"g":0.5,...}}
//   {"type":"delta","run_id":"...","seq":1,"t_ms":100.2,
//    "c":[[0,5],...],"g":[[2,0.25],...]}
std::string SampleFrameToJsonl(const SampleFrame& frame,
                               const std::string& run_id);

// Replays `frames` (which must start at a full frame) into the view
// after the last frame. Fails on a leading delta frame or an index
// outside the governing full frame's schema.
Result<SampleView> DecodeFrames(const std::vector<SampleFrame>& frames);

struct SamplerOptions {
  int period_ms = 1000;
  std::size_t ring_capacity = 512;  // Frames retained in memory.
  std::size_t full_every = 64;      // Fresh reference frame cadence.
  std::string series_path;          // Empty: in-memory ring only.
  std::string run_id;               // Stamped on every JSONL line.
};

class MetricsSampler {
 public:
  // Validates options, opens the series file (append) when one is
  // given, takes the initial full sample, and starts the sampling
  // thread.
  static Result<std::unique_ptr<MetricsSampler>> Start(SamplerOptions options);

  ~MetricsSampler();  // Stops and joins.

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Wakes the thread, joins it, takes one final FULL sample (so short
  // runs always capture their end state and readers of a truncated
  // series tail never lose samples newer than the last full tick), and
  // closes the series file. Idempotent.
  void Stop();

  // Takes one sample immediately on the calling thread. Used by the
  // background thread and by tests that want deterministic frames.
  // `force_full` emits a self-contained full frame regardless of the
  // full_every cadence — the clean-shutdown flush path.
  void SampleOnce(bool force_full = false);

  std::uint64_t frames() const;
  // Copy of the in-memory ring, oldest first; always decodable (starts
  // at a full frame).
  std::vector<SampleFrame> Ring() const;

 private:
  explicit MetricsSampler(SamplerOptions options);

  void Loop();
  // Drops ring frames past capacity, never splitting a delta run from
  // its full frame: eviction only advances to the next full frame.
  void TrimRingLocked();

  SamplerOptions options_;
  std::FILE* series_ = nullptr;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::deque<SampleFrame> ring_;
  SampleView last_full_;    // Schema + values of the last full frame.
  SampleView last_view_;    // Values as of the last frame of any kind.
  std::uint64_t seq_ = 0;
  std::uint64_t since_full_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

}  // namespace dd::obs

#endif  // DD_OBS_EXPORT_SAMPLER_H_
