#include "obs/export/prometheus.h"

#include "common/build_info.h"
#include "common/string_util.h"

namespace dd::obs {

namespace {

bool LegalStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool LegalBody(char c) { return LegalStart(c) || (c >= '0' && c <= '9'); }

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  // Only digits are legal in the body but not in first position; they
  // keep their value behind a '_' prefix instead of being replaced.
  if (name.empty() || (name[0] >= '0' && name[0] <= '9')) out += '_';
  for (char c : name) {
    out += LegalBody(c) ? c : '_';
  }
  return out;
}

std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = SanitizeMetricName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = SanitizeMetricName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name;
    out += StrFormat(" %g\n", g.value);
  }
  for (const auto& info : snapshot.infos) {
    // build_info-style constant gauges: the label carries the fact.
    const std::string name = SanitizeMetricName(info.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + "{" + SanitizeMetricName(info.label) + "=\"";
    for (char c : info.value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += "\"} 1\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = SanitizeMetricName(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      if (b < h.bounds.size()) {
        out += StrFormat("%s_bucket{le=\"%g\"} %llu\n", name.c_str(),
                         h.bounds[b], static_cast<unsigned long long>(cumulative));
      } else {
        out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                         static_cast<unsigned long long>(cumulative));
      }
    }
    out += StrFormat("%s_sum %g\n", name.c_str(), h.sum);
    out += StrFormat("%s_count %llu\n", name.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

namespace {

// Label values allow most characters; escape the three the exposition
// format reserves.
std::string EscapeLabelValue(const char* value) {
  std::string out;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p == '\\' || *p == '"') out += '\\';
    if (*p == '\n') {
      out += "\\n";
      continue;
    }
    out += *p;
  }
  return out;
}

}  // namespace

std::string BuildInfoPrometheusLine() {
  const BuildInfo& info = GetBuildInfo();
  std::string out = "# TYPE build_info gauge\n";
  out += "build_info{version=\"" + EscapeLabelValue(info.version) +
         "\",revision=\"" + EscapeLabelValue(info.git_hash) +
         "\",build_type=\"" + EscapeLabelValue(info.build_type) +
         "\",compiler=\"" + EscapeLabelValue(info.compiler) + "\"} 1\n";
  return out;
}

}  // namespace dd::obs
