#include "obs/export/chrome_trace.h"

#include <cstdio>

#include "common/string_util.h"
#include "obs/json_util.h"

namespace dd::obs {

namespace {

constexpr int kPid = 1;

void AppendEvent(const SpanStats& span, int tid, double ts_us, bool* first,
                 std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
      "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"count\":%llu,"
      "\"self_ms\":%.6f}}",
      JsonEscape(span.name).c_str(), kPid, tid, ts_us, span.total_seconds * 1e6,
      static_cast<unsigned long long>(span.count),
      span.self_seconds * 1e3);
  // Children occupy consecutive sub-intervals starting at the parent's
  // ts; their summed duration never exceeds the parent's (self time
  // fills the tail), so the events nest.
  double cursor = ts_us;
  for (const SpanStats& child : span.children) {
    AppendEvent(child, tid, cursor, first, out);
    cursor += child.total_seconds * 1e6;
  }
}

void AppendMetadata(const char* name, int tid, const std::string& value,
                    bool* first, std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"name\":\"%s\"}}",
      name, kPid, tid, JsonEscape(value).c_str());
}

}  // namespace

std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendMetadata("process_name", 0, "ddthreshold", &first, &out);
  // One synthetic track per root: main-thread phases are distinct
  // roots and worker-thread spans (no enclosing scope) are roots too.
  for (std::size_t r = 0; r < trace.roots.size(); ++r) {
    const int tid = static_cast<int>(r) + 1;
    AppendMetadata("thread_name", tid, trace.roots[r].name, &first, &out);
    AppendEvent(trace.roots[r], tid, /*ts_us=*/0.0, &first, &out);
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const TraceSnapshot& trace, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = TraceSnapshotToChromeTrace(trace);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline = std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || written != json.size() || !newline) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace dd::obs
