#include "obs/export/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "obs/json_util.h"

namespace dd::obs {

namespace {

constexpr int kPid = 1;

// Worker-slot tracks live far above the per-root synthetic tracks so
// the two tid ranges can never collide.
constexpr int kWorkerTidBase = 1000;

void AppendEvent(const SpanStats& span, int tid, double ts_us, bool* first,
                 std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
      "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"count\":%llu,"
      "\"self_ms\":%.6f}}",
      JsonEscape(span.name).c_str(), kPid, tid, ts_us, span.total_seconds * 1e6,
      static_cast<unsigned long long>(span.count),
      span.self_seconds * 1e3);
  // Children occupy consecutive sub-intervals starting at the parent's
  // ts; their summed duration never exceeds the parent's (self time
  // fills the tail), so the events nest.
  double cursor = ts_us;
  for (const SpanStats& child : span.children) {
    AppendEvent(child, tid, cursor, first, out);
    cursor += child.total_seconds * 1e6;
  }
}

void AppendMetadata(const char* name, int tid, const std::string& value,
                    bool* first, std::string* out) {
  if (!*first) *out += ",";
  *first = false;
  *out += StrFormat(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"name\":\"%s\"}}",
      name, kPid, tid, JsonEscape(value).c_str());
}

}  // namespace

std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendMetadata("process_name", 0, "ddthreshold", &first, &out);
  // One synthetic track per root: main-thread phases are distinct
  // roots and worker-thread spans (no enclosing scope) are roots too.
  for (std::size_t r = 0; r < trace.roots.size(); ++r) {
    const int tid = static_cast<int>(r) + 1;
    AppendMetadata("thread_name", tid, trace.roots[r].name, &first, &out);
    AppendEvent(trace.roots[r], tid, /*ts_us=*/0.0, &first, &out);
  }
  out += "]}";
  return out;
}

std::string TraceSnapshotToChromeTrace(const TraceSnapshot& trace,
                                       const PoolStatsSnapshot& pool) {
  if (pool.empty() || pool.timeline.empty()) {
    return TraceSnapshotToChromeTrace(trace);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  AppendMetadata("process_name", 0, "ddthreshold", &first, &out);
  for (std::size_t r = 0; r < trace.roots.size(); ++r) {
    const int tid = static_cast<int>(r) + 1;
    AppendMetadata("thread_name", tid, trace.roots[r].name, &first, &out);
    AppendEvent(trace.roots[r], tid, /*ts_us=*/0.0, &first, &out);
  }
  // Real per-worker tracks: chunk events at measured timestamps,
  // rebased so the earliest chunk starts at t=0. The slot that acted
  // as a ParallelFor caller is labeled as such — caller participation
  // is visible as gaps between its chunks (it was claiming / waiting).
  std::uint64_t t0 = pool.timeline.front().start_ns;
  for (const PoolChunkRecord& record : pool.timeline) {
    t0 = std::min(t0, record.start_ns);
  }
  std::map<int, bool> slot_was_caller;
  for (const PoolChunkRecord& record : pool.timeline) {
    slot_was_caller[record.slot] =
        slot_was_caller[record.slot] || record.caller;
  }
  for (const auto& [slot, was_caller] : slot_was_caller) {
    const std::string label =
        was_caller ? StrFormat("pool slot %d (caller)", slot)
                   : StrFormat("pool slot %d (worker)", slot);
    AppendMetadata("thread_name", kWorkerTidBase + slot, label, &first, &out);
  }
  for (const PoolChunkRecord& record : pool.timeline) {
    if (!first) out += ",";
    first = false;
    const char* name = record.phase.empty() ? "parallel_for" : record.phase.c_str();
    out += StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"invocation\":%llu,"
        "\"chunk\":%zu,\"begin\":%zu,\"end\":%zu,\"caller\":%s}}",
        JsonEscape(name).c_str(), kPid, kWorkerTidBase + record.slot,
        static_cast<double>(record.start_ns - t0) * 1e-3,
        static_cast<double>(record.end_ns - record.start_ns) * 1e-3,
        static_cast<unsigned long long>(record.invocation), record.chunk,
        record.begin, record.end, record.caller ? "true" : "false");
  }
  out += "]}";
  return out;
}

namespace {

Status WriteJsonFile(const std::string& json, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline = std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || written != json.size() || !newline) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteChromeTrace(const TraceSnapshot& trace, const std::string& path) {
  return WriteJsonFile(TraceSnapshotToChromeTrace(trace), path);
}

Status WriteChromeTrace(const TraceSnapshot& trace,
                        const PoolStatsSnapshot& pool,
                        const std::string& path) {
  return WriteJsonFile(TraceSnapshotToChromeTrace(trace, pool), path);
}

}  // namespace dd::obs
