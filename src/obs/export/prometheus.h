// Prometheus text-exposition writer over MetricsSnapshot. In-process
// metric names stay dotted ("provider.rows_scanned"); only the
// exposition boundary rewrites them into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*), so dashboards see
// "provider_rows_scanned" while call sites keep the readable form.
// The output is exposition format version 0.0.4: one "# TYPE" comment
// per family, histograms expanded into cumulative _bucket{le="..."}
// series plus _sum and _count.

#ifndef DD_OBS_EXPORT_PROMETHEUS_H_
#define DD_OBS_EXPORT_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace dd::obs {

// Rewrites a dotted metric name into a legal Prometheus metric name:
// '.' and every other character outside [a-zA-Z0-9_:] become '_', and
// a leading digit is prefixed with '_'. Empty input sanitizes to "_".
std::string SanitizeMetricName(const std::string& name);

// Renders the whole snapshot in Prometheus text exposition format
// (counters, gauges, then histograms, each sorted by name as the
// snapshot already is). Bucket counts are emitted cumulatively, with
// the implicit overflow bucket as le="+Inf".
std::string MetricsSnapshotToPrometheus(const MetricsSnapshot& snapshot);

// Constant `build_info` gauge in the conventional value-1-with-labels
// encoding (version / revision / build type / compiler as labels). The
// HTTP server prepends this to every /metrics response; it is kept out
// of MetricsSnapshotToPrometheus so snapshot rendering stays a pure
// function of the registry.
std::string BuildInfoPrometheusLine();

}  // namespace dd::obs

#endif  // DD_OBS_EXPORT_PROMETHEUS_H_
