#include "obs/export/http_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/build_info.h"
#include "obs/diag/crash_dump.h"
#include "obs/export/prometheus.h"
#include "obs/json_util.h"
#include "obs/prof/folded.h"
#include "obs/prof/profiler.h"
#include "obs/resource.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dd::obs {

namespace {

// Writes the whole buffer, retrying on short writes / EINTR. Best
// effort: a client that hangs up mid-response is its own problem.
void WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string HttpResponse(const char* status, const std::string& body,
                         const char* content_type) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// "name=value" query-string lookup; returns fallback when the
// parameter is absent or not a number.
long QueryParam(const std::string& query, const std::string& name,
                long fallback) {
  std::size_t begin = 0;
  while (begin < query.size()) {
    std::size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(begin, end - begin);
    begin = end + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || pair.substr(0, eq) != name) continue;
    char* parse_end = nullptr;
    const long value = std::strtol(pair.c_str() + eq + 1, &parse_end, 10);
    if (parse_end != pair.c_str() + eq + 1 && *parse_end == '\0') return value;
  }
  return fallback;
}

double GaugeValue(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return 0.0;
}

// The /healthz body: build provenance plus liveness numbers, so a
// probe (or a human with curl) sees what is running and how much data
// it is serving without scraping the full /metrics exposition.
std::string HealthzJson() {
  UpdateRssGauges();  // refresh process.uptime_seconds
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const BuildInfo& info = GetBuildInfo();
  std::string hash = info.git_hash;
  const std::string dirty_suffix = "+dirty";
  const bool dirty = hash.size() > dirty_suffix.size() &&
                     hash.compare(hash.size() - dirty_suffix.size(),
                                  dirty_suffix.size(), dirty_suffix) == 0;
  if (dirty) hash.resize(hash.size() - dirty_suffix.size());
  char buf[64];
  std::string out = "{\"status\":\"ok\",\"version\":\"";
  out += JsonEscape(info.version);
  out += "\",\"git_hash\":\"";
  out += JsonEscape(hash);
  out += "\",\"git_dirty\":";
  out += dirty ? "true" : "false";
  out += ",\"build_type\":\"";
  out += JsonEscape(info.build_type);
  out += "\"";
  std::snprintf(buf, sizeof(buf), ",\"uptime_seconds\":%.3f",
                GaugeValue(snapshot, "process.uptime_seconds"));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"live_tuples\":%.0f",
                GaugeValue(snapshot, "incr.live_tuples"));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"matching_tuples\":%.0f",
                GaugeValue(snapshot, "incr.matching_tuples"));
  out += buf;
  out += "}\n";
  return out;
}

// GET /debug/prof?seconds=N&hz=H — runs a capture for N seconds and
// responds with the folded stacks. The capture happens before the
// response is written, so the 2 s send timeout never truncates it; the
// port serves one connection at a time, so the capture blocks other
// scrapes for its duration (clamped to 60 s).
std::string DebugProfResponse(const std::string& query,
                              const std::atomic<bool>& stop) {
  const long seconds = std::clamp(QueryParam(query, "seconds", 5), 1L, 60L);
  const long hz = std::clamp(QueryParam(query, "hz", 99), 1L, 1000L);
  prof::ProfilerOptions options;
  options.hz = static_cast<int>(hz);
  const Status started = prof::Profiler::Global().Start(options);
  if (!started.ok()) {
    // Typically FailedPrecondition: a --profile run or a concurrent
    // scrape owns the (process-wide) profiler.
    return HttpResponse("409 Conflict", started.ToString() + "\n",
                        "text/plain");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline &&
         !stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const prof::Profile profile = prof::Profiler::Global().Stop();
  return HttpResponse("200 OK",
                      prof::FoldedToString(prof::FoldProfile(profile)),
                      "text/plain");
}

}  // namespace

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("metrics port must be in [0, 65535]");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind(port " + std::to_string(port) + "): " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen(): " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname(): " + err);
  }
  auto server = std::unique_ptr<MetricsHttpServer>(
      new MetricsHttpServer(fd, static_cast<int>(ntohs(addr.sin_port))));
  return server;
}

MetricsHttpServer::MetricsHttpServer(int listen_fd, int port)
    : listen_fd_(listen_fd), port_(port) {
  thread_ = std::thread([this] { Loop(); });
  DD_LOG(INFO) << "metrics server listening on :" << port_;
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void MetricsHttpServer::Loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check stop.
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // A stuck client must not wedge the diagnostics port.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head; the two routes have no
  // body, so everything past "\r\n\r\n" is ignored.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // Not even a request line.
  const std::string line = request.substr(0, line_end);

  std::string response;
  if (line.rfind("GET ", 0) != 0) {
    response = HttpResponse("405 Method Not Allowed", "method not allowed\n",
                            "text/plain");
  } else {
    const std::size_t path_end = line.find(' ', 4);
    std::string path = line.substr(4, path_end == std::string::npos
                                          ? std::string::npos
                                          : path_end - 4);
    std::string query;
    const std::size_t question = path.find('?');
    if (question != std::string::npos) {
      query = path.substr(question + 1);
      path.resize(question);
    }
    if (path == "/metrics") {
      // Scrape-time RSS refresh: mem.rss_bytes / mem.rss_peak_bytes are
      // as fresh as the scrape, wherever the run is between rebuilds.
      UpdateRssGauges();
      response = HttpResponse(
          "200 OK",
          BuildInfoPrometheusLine() +
              MetricsSnapshotToPrometheus(MetricsRegistry::Global().Snapshot()),
          "text/plain; version=0.0.4; charset=utf-8");
    } else if (path == "/healthz") {
      response = HttpResponse("200 OK", HealthzJson(), "application/json");
    } else if (path == "/debug/dump") {
      // Live diagnostic dump: same format as a crash dump, captured
      // from healthy context with all-thread stacks.
      response = HttpResponse("200 OK", diag::CaptureLiveDump("live"),
                              "text/plain");
    } else if (path == "/debug/prof") {
      response = DebugProfResponse(query, stop_);
    } else {
      response = HttpResponse("404 Not Found", "not found\n", "text/plain");
    }
  }
  WriteAll(fd, response);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dd::obs
