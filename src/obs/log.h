// Leveled structured logging for the library and tools. Complements the
// DD_CHECK macros of common/logging.h (which stay reserved for fatal
// programmer-error invariants): DD_LOG is for non-fatal, data-dependent
// diagnostics that used to be raw fprintf or silence.
//
//   DD_LOG(INFO) << "built matching relation with " << m << " tuples";
//   DD_LOG(WARN) << "sampling capped at " << cap << " pairs";
//   DD_VLOG(1)   << "lhs=" << LevelsToString(lhs);   // compiled out
//
// Severities: VERBOSE < INFO < WARN < ERROR. The runtime threshold
// defaults to WARN (libraries stay quiet) and is read once from the
// DD_LOG_LEVEL environment variable ("verbose", "info", "warn",
// "error", "off", case-insensitive, or an integer 0-4); SetLogLevel()
// overrides it programmatically. Messages below the threshold cost one
// relaxed atomic load and never evaluate their stream operands.
//
// DD_VLOG(n) statements compile to nothing unless the translation unit
// is built with -DDD_ENABLE_VLOG; when enabled they log at VERBOSE
// severity if n <= the runtime verbosity (DD_LOG_VERBOSITY env var,
// default 0).
//
// Output goes to stderr as "LEVEL file:line] message"; tests and
// embedders may redirect it with SetLogSink().

#ifndef DD_OBS_LOG_H_
#define DD_OBS_LOG_H_

#include <sstream>
#include <string>

namespace dd::obs {

enum class LogLevel : int {
  kVerbose = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* LogLevelName(LogLevel level);

// Parses a DD_LOG_LEVEL value; returns false on unrecognized input.
bool ParseLogLevel(const std::string& text, LogLevel* level);

// Current runtime threshold (lazily initialized from the environment).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
// Re-reads DD_LOG_LEVEL / DD_LOG_VERBOSITY (tests; env changed at run
// time). Unset or unparsable variables restore the defaults.
void ReloadLogLevelFromEnv();

// Runtime verbosity for DD_VLOG (only meaningful under DD_ENABLE_VLOG).
int GetLogVerbosity();
void SetLogVerbosity(int verbosity);

inline bool LogEnabled(LogLevel level) { return level >= GetLogLevel(); }

// Receives every emitted record. `file` is the bare source path.
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& message);

// nullptr restores the default stderr sink.
void SetLogSink(LogSink sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();  // Emits to the sink.

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the stream expression in the short-circuit macro below.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

}  // namespace dd::obs

// Maps the DD_LOG(INFO) spelling onto the enum.
#define DD_LOG_LEVEL_VERBOSE ::dd::obs::LogLevel::kVerbose
#define DD_LOG_LEVEL_INFO ::dd::obs::LogLevel::kInfo
#define DD_LOG_LEVEL_WARN ::dd::obs::LogLevel::kWarn
#define DD_LOG_LEVEL_ERROR ::dd::obs::LogLevel::kError

#define DD_LOG(severity)                                               \
  !::dd::obs::LogEnabled(DD_LOG_LEVEL_##severity)                      \
      ? (void)0                                                        \
      : ::dd::obs::internal::Voidify() &                               \
            ::dd::obs::internal::LogMessage(DD_LOG_LEVEL_##severity,   \
                                            __FILE__, __LINE__)        \
                .stream()

#ifdef DD_ENABLE_VLOG
#define DD_VLOG(verbosity)                                                 \
  !(::dd::obs::LogEnabled(::dd::obs::LogLevel::kVerbose) &&                \
    (verbosity) <= ::dd::obs::GetLogVerbosity())                           \
      ? (void)0                                                            \
      : ::dd::obs::internal::Voidify() &                                   \
            ::dd::obs::internal::LogMessage(::dd::obs::LogLevel::kVerbose, \
                                            __FILE__, __LINE__)            \
                .stream()
#else
// Compiled out: operands are never evaluated (dead branch), no code is
// generated, but the expression still type-checks.
#define DD_VLOG(verbosity)                \
  true ? (void)0                          \
       : ::dd::obs::internal::Voidify() & \
             ::dd::obs::internal::LogMessage(::dd::obs::LogLevel::kVerbose, \
                                             __FILE__, __LINE__)            \
                 .stream()
#endif  // DD_ENABLE_VLOG

#endif  // DD_OBS_LOG_H_
