#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dd::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DD_CHECK(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DD_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBoundsMs() {
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

double HistogramPercentile(const MetricsSnapshot::HistogramValue& hist,
                           double q) {
  // An empty histogram has no percentile — NaN, not a fabricated 0,
  // so callers must decide explicitly how to render "no data".
  if (hist.count == 0 || hist.buckets.empty() || hist.bounds.empty()) {
    return std::nan("");
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Single non-empty bucket: every observation shares that bucket, so
  // every percentile is exactly its upper bound (the overflow bucket
  // clamps to the last finite bound). Interpolating here would invent
  // a spread the data does not have.
  std::size_t non_empty = 0;
  std::size_t only = 0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    if (hist.buckets[b] != 0) {
      ++non_empty;
      only = b;
    }
  }
  if (non_empty == 1) {
    return only < hist.bounds.size() ? hist.bounds[only] : hist.bounds.back();
  }
  const double rank = q * static_cast<double>(hist.count);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    const double in_bucket = static_cast<double>(hist.buckets[b]);
    if (in_bucket == 0.0) continue;
    if (rank <= cumulative + in_bucket) {
      if (b >= hist.bounds.size()) return hist.bounds.back();  // Overflow.
      const double lower = b == 0 ? 0.0 : hist.bounds[b - 1];
      const double upper = hist.bounds[b];
      const double fraction = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // Unreachable for a consistent snapshot (the last non-empty bucket
  // always satisfies rank <= count); kept as a safe default.
  return hist.bounds.back();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(name); entry != nullptr) {
    DD_CHECK(entry->kind == Kind::kCounter);
    return *entry->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kCounter;
  entry->counter = std::make_unique<Counter>();
  Counter& result = *entry->counter;
  entries_.push_back(std::move(entry));
  return result;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(name); entry != nullptr) {
    DD_CHECK(entry->kind == Kind::kGauge);
    return *entry->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kGauge;
  entry->gauge = std::make_unique<Gauge>();
  Gauge& result = *entry->gauge;
  entries_.push_back(std::move(entry));
  return result;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* entry = Find(name); entry != nullptr) {
    DD_CHECK(entry->kind == Kind::kHistogram);
    return *entry->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kHistogram;
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram& result = *entry->histogram;
  entries_.push_back(std::move(entry));
  return result;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.infos = infos_;
    for (const auto& entry : entries_) {
      switch (entry->kind) {
        case Kind::kCounter:
          snapshot.counters.push_back({entry->name, entry->counter->value()});
          break;
        case Kind::kGauge:
          snapshot.gauges.push_back({entry->name, entry->gauge->value()});
          break;
        case Kind::kHistogram: {
          MetricsSnapshot::HistogramValue h;
          h.name = entry->name;
          h.bounds = entry->histogram->bounds();
          h.buckets.reserve(h.bounds.size() + 1);
          for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
            h.buckets.push_back(entry->histogram->bucket_count(i));
          }
          h.count = entry->histogram->count();
          h.sum = entry->histogram->sum();
          snapshot.histograms.push_back(std::move(h));
          break;
        }
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  std::sort(snapshot.infos.begin(), snapshot.infos.end(), by_name);
  return snapshot;
}

void MetricsRegistry::SetInfo(const std::string& name,
                              const std::string& label,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& info : infos_) {
    if (info.name == name) {
      info.label = label;
      info.value = value;
      return;
    }
  }
  infos_.push_back({name, label, value});
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->Reset();
        break;
      case Kind::kGauge:
        entry->gauge->Reset();
        break;
      case Kind::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

}  // namespace dd::obs
