// JSON string escaping shared by the obs exporters (run reports,
// Chrome traces, sampler frames). Same rules as core/result_io's
// JsonEscape; kept here so obs stays below core in the dependency
// order.

#ifndef DD_OBS_JSON_UTIL_H_
#define DD_OBS_JSON_UTIL_H_

#include <string>

#include "common/string_util.h"

namespace dd::obs {

inline std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace dd::obs

#endif  // DD_OBS_JSON_UTIL_H_
