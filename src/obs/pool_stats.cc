#include "obs/pool_stats.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace dd::obs {

namespace {

// Per-thread ring capacity. Chunk events on the hot paths are bounded
// by chunks-per-invocation (≤ threads), so even long determinations
// stay well under this; overflow is tolerated and counted.
constexpr std::size_t kRingCapacity = 1 << 14;

// One seqlock-protected ring entry. The owning thread is the only
// writer; Snapshot() readers validate `seq` (2*index + 2 when entry
// `index` is published) before and after reading the payload, so a
// concurrent overwrite is detected and the entry skipped. All payload
// fields are relaxed atomics purely so cross-thread reads are
// race-free; ordering comes from `seq`.
struct EventSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> phase{""};
  std::atomic<std::uint64_t> invocation{0};
  // Chunk events: a = chunk index, b = begin, c = end.
  // Invocation events: a = chunks, b = count, c = threads.
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<std::uint64_t> c{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> end_ns{0};
  std::atomic<std::uint32_t> flags{0};  // bit0 caller, bit1 invocation
};

constexpr std::uint32_t kFlagCaller = 1u;
constexpr std::uint32_t kFlagInvocation = 2u;

struct ThreadBuffer {
  explicit ThreadBuffer(int slot_index)
      : slot(slot_index), ring(kRingCapacity) {}

  const int slot;
  // Monotonic count of events ever appended; entry i lives at
  // ring[i % kRingCapacity] until overwritten.
  std::atomic<std::uint64_t> head{0};
  // Reset() raises this to `head`; Snapshot reads [base, head) only.
  std::atomic<std::uint64_t> base{0};
  std::vector<EventSlot> ring;

  void Append(const char* phase, std::uint64_t invocation, std::uint64_t a,
              std::uint64_t b, std::uint64_t c, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint32_t flags) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    EventSlot& slot_ref = ring[h % kRingCapacity];
    slot_ref.seq.store(2 * h + 1, std::memory_order_release);
    slot_ref.phase.store(phase, std::memory_order_relaxed);
    slot_ref.invocation.store(invocation, std::memory_order_relaxed);
    slot_ref.a.store(a, std::memory_order_relaxed);
    slot_ref.b.store(b, std::memory_order_relaxed);
    slot_ref.c.store(c, std::memory_order_relaxed);
    slot_ref.start_ns.store(start_ns, std::memory_order_relaxed);
    slot_ref.end_ns.store(end_ns, std::memory_order_relaxed);
    slot_ref.flags.store(flags, std::memory_order_relaxed);
    slot_ref.seq.store(2 * h + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }
};

// Registration list: appended on a thread's first recorded event, kept
// alive for the process so Snapshot() can still read rings of exited
// workers. The mutex guards registration and the list copy only — the
// event hot path never takes it.
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<std::shared_ptr<ThreadBuffer>>& Buffers() {
  static auto* buffers = new std::vector<std::shared_ptr<ThreadBuffer>>();
  return *buffers;
}

std::atomic<int> g_next_slot{0};

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>(
        g_next_slot.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Buffers().push_back(created);
    return created;
  }();
  return *buffer;
}

std::vector<std::shared_ptr<ThreadBuffer>> BufferListCopy() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Buffers();
}

// Raw event as read back out of a ring.
struct RawEvent {
  int slot;
  const char* phase;
  std::uint64_t invocation;
  std::uint64_t a, b, c;
  std::uint64_t start_ns, end_ns;
  std::uint32_t flags;
};

}  // namespace

double PoolPhaseStats::SpeedupBound() const {
  std::uint64_t max_busy = 0;
  for (const PoolWorkerStats& w : workers) max_busy = std::max(max_busy, w.busy_ns);
  if (max_busy == 0) return 0.0;
  return static_cast<double>(busy_ns) / static_cast<double>(max_busy);
}

double PoolPhaseStats::ImbalancePercent() const {
  if (workers.empty()) return 0.0;
  std::uint64_t max_busy = 0;
  for (const PoolWorkerStats& w : workers) max_busy = std::max(max_busy, w.busy_ns);
  if (max_busy == 0) return 0.0;
  const double mean = static_cast<double>(busy_ns) /
                      static_cast<double>(workers.size());
  return 100.0 * (static_cast<double>(max_busy) - mean) /
         static_cast<double>(max_busy);
}

double PoolPhaseStats::CallerShare() const {
  if (busy_ns == 0) return 0.0;
  return static_cast<double>(caller_busy_ns) / static_cast<double>(busy_ns);
}

PoolStatsCollector& PoolStatsCollector::Global() {
  static PoolStatsCollector* collector = new PoolStatsCollector();
  return *collector;
}

void PoolStatsCollector::Enable() { SetPoolObserver(this); }

void PoolStatsCollector::Disable() {
  if (GetPoolObserver() == this) SetPoolObserver(nullptr);
}

bool PoolStatsCollector::enabled() const { return GetPoolObserver() == this; }

void PoolStatsCollector::Reset() {
  for (const auto& buffer : BufferListCopy()) {
    buffer->base.store(buffer->head.load(std::memory_order_acquire),
                       std::memory_order_release);
  }
}

void PoolStatsCollector::OnChunk(const PoolChunkEvent& event) {
  LocalBuffer().Append(event.phase, event.invocation, event.chunk, event.begin,
                       event.end, event.start_ns, event.end_ns,
                       event.caller ? kFlagCaller : 0);
  static Counter& chunks = MetricsRegistry::Global().GetCounter("pool.chunks");
  static Counter& items = MetricsRegistry::Global().GetCounter("pool.items");
  static Counter& busy = MetricsRegistry::Global().GetCounter("pool.busy_ns");
  chunks.Increment();
  items.Add(event.end - event.begin);
  busy.Add(event.end_ns - event.start_ns);
}

void PoolStatsCollector::OnInvocation(const PoolInvocationEvent& event) {
  LocalBuffer().Append(event.phase, event.invocation, event.chunks,
                       event.count, event.threads, event.start_ns,
                       event.end_ns, kFlagInvocation);
  static Counter& invocations =
      MetricsRegistry::Global().GetCounter("pool.invocations");
  static Counter& wall = MetricsRegistry::Global().GetCounter("pool.wall_ns");
  invocations.Increment();
  wall.Add(event.end_ns - event.start_ns);
}

PoolStatsSnapshot PoolStatsCollector::Snapshot() const {
  PoolStatsSnapshot snapshot;
  std::vector<RawEvent> chunks;
  std::vector<RawEvent> invocations;
  for (const auto& buffer : BufferListCopy()) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t base = buffer->base.load(std::memory_order_acquire);
    std::uint64_t first = base;
    if (head > first + kRingCapacity) {
      snapshot.dropped_events += head - kRingCapacity - first;
      first = head - kRingCapacity;
    }
    for (std::uint64_t i = first; i < head; ++i) {
      const EventSlot& slot_ref = buffer->ring[i % kRingCapacity];
      const std::uint64_t want = 2 * i + 2;
      if (slot_ref.seq.load(std::memory_order_acquire) != want) {
        ++snapshot.dropped_events;
        continue;
      }
      RawEvent raw;
      raw.slot = buffer->slot;
      raw.phase = slot_ref.phase.load(std::memory_order_relaxed);
      raw.invocation = slot_ref.invocation.load(std::memory_order_relaxed);
      raw.a = slot_ref.a.load(std::memory_order_relaxed);
      raw.b = slot_ref.b.load(std::memory_order_relaxed);
      raw.c = slot_ref.c.load(std::memory_order_relaxed);
      raw.start_ns = slot_ref.start_ns.load(std::memory_order_relaxed);
      raw.end_ns = slot_ref.end_ns.load(std::memory_order_relaxed);
      raw.flags = slot_ref.flags.load(std::memory_order_relaxed);
      // Re-validate: an overwrite racing the reads above bumps seq.
      if (slot_ref.seq.load(std::memory_order_acquire) != want) {
        ++snapshot.dropped_events;
        continue;
      }
      if ((raw.flags & kFlagInvocation) != 0) {
        invocations.push_back(raw);
      } else {
        chunks.push_back(raw);
      }
    }
  }

  // Aggregate per phase / per slot; join chunks to invocations for the
  // wait computation (wait = invocation wall − this slot's busy time
  // inside that invocation, for every invocation the slot touched).
  struct PhaseAgg {
    PoolPhaseStats stats;
    std::unordered_map<int, PoolWorkerStats> workers;
  };
  std::unordered_map<std::string, PhaseAgg> phases;
  // invocation id → per-slot busy nanoseconds.
  std::unordered_map<std::uint64_t, std::unordered_map<int, std::uint64_t>>
      busy_by_invocation;

  for (const RawEvent& raw : chunks) {
    PhaseAgg& agg = phases[raw.phase];
    const std::uint64_t dur =
        raw.end_ns > raw.start_ns ? raw.end_ns - raw.start_ns : 0;
    agg.stats.chunks += 1;
    agg.stats.items += raw.c - raw.b;
    agg.stats.busy_ns += dur;
    if ((raw.flags & kFlagCaller) != 0) agg.stats.caller_busy_ns += dur;
    PoolWorkerStats& worker = agg.workers[raw.slot];
    worker.slot = raw.slot;
    worker.caller = worker.caller || (raw.flags & kFlagCaller) != 0;
    worker.chunks += 1;
    worker.items += raw.c - raw.b;
    worker.busy_ns += dur;
    busy_by_invocation[raw.invocation][raw.slot] += dur;

    PoolChunkRecord record;
    record.phase = raw.phase;
    record.invocation = raw.invocation;
    record.slot = raw.slot;
    record.caller = (raw.flags & kFlagCaller) != 0;
    record.chunk = static_cast<std::size_t>(raw.a);
    record.begin = static_cast<std::size_t>(raw.b);
    record.end = static_cast<std::size_t>(raw.c);
    record.start_ns = raw.start_ns;
    record.end_ns = raw.end_ns;
    snapshot.timeline.push_back(std::move(record));
  }

  for (const RawEvent& raw : invocations) {
    PhaseAgg& agg = phases[raw.phase];
    const std::uint64_t wall =
        raw.end_ns > raw.start_ns ? raw.end_ns - raw.start_ns : 0;
    agg.stats.invocations += 1;
    agg.stats.wall_ns += wall;
    const auto found = busy_by_invocation.find(raw.invocation);
    if (found == busy_by_invocation.end()) continue;
    for (const auto& [slot, busy] : found->second) {
      PoolWorkerStats& worker = agg.workers[slot];
      worker.slot = slot;
      worker.wait_ns += wall > busy ? wall - busy : 0;
    }
  }

  for (auto& [phase, agg] : phases) {
    agg.stats.phase = phase;
    agg.stats.workers.reserve(agg.workers.size());
    for (auto& [slot, worker] : agg.workers) {
      agg.stats.workers.push_back(worker);
    }
    std::sort(agg.stats.workers.begin(), agg.stats.workers.end(),
              [](const PoolWorkerStats& x, const PoolWorkerStats& y) {
                return x.slot < y.slot;
              });
    snapshot.phases.push_back(std::move(agg.stats));
  }
  std::sort(snapshot.phases.begin(), snapshot.phases.end(),
            [](const PoolPhaseStats& x, const PoolPhaseStats& y) {
              return x.phase < y.phase;
            });
  std::sort(snapshot.timeline.begin(), snapshot.timeline.end(),
            [](const PoolChunkRecord& x, const PoolChunkRecord& y) {
              if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
              if (x.invocation != y.invocation) return x.invocation < y.invocation;
              return x.chunk < y.chunk;
            });
  return snapshot;
}

}  // namespace dd::obs
