#include "obs/trace.h"

#include <cstring>

#include "obs/diag/flight_recorder.h"

namespace dd::obs {

thread_local Tracer::Node* Tracer::tl_current_ = nullptr;
thread_local std::uint64_t Tracer::tl_generation_ = 0;

namespace {
// Innermost span name for the sampling profiler. Separate from
// tl_current_ so it is published even with the tracer disabled, and a
// plain pointer (not a Node*) so a signal handler can read it without
// chasing heap structures.
thread_local const char* tl_span_name = nullptr;
}  // namespace

const char* CurrentSpanName() { return tl_span_name; }

double TraceSnapshot::TotalSeconds() const {
  double total = 0.0;
  for (const SpanStats& root : roots) total += root.total_seconds;
  return total;
}

namespace {

const SpanStats* FindIn(const std::vector<SpanStats>& spans,
                        const std::string& name) {
  for (const SpanStats& span : spans) {
    if (span.name == name) return &span;
    if (const SpanStats* found = FindIn(span.children, name)) return found;
  }
  return nullptr;
}

}  // namespace

const SpanStats* TraceSnapshot::Find(const std::string& name) const {
  return FindIn(roots, name);
}

Tracer::Tracer() : root_(std::make_unique<Node>()) {
  root_->name = "";
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Node* Tracer::ChildOf(Node* parent, const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& child : parent->children) {
    // Pointer equality first: same call site reuses the same literal.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      return child.get();
    }
  }
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  Node* result = node.get();
  parent->children.push_back(std::move(node));
  return result;
}

SpanStats Tracer::SnapshotNode(const Node& node) {
  SpanStats stats;
  stats.name = node.name;
  stats.count = node.count.load(std::memory_order_relaxed);
  stats.total_seconds =
      static_cast<double>(node.total_ns.load(std::memory_order_relaxed)) * 1e-9;
  double child_total = 0.0;
  stats.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    stats.children.push_back(SnapshotNode(*child));
    child_total += stats.children.back().total_seconds;
  }
  stats.self_seconds = stats.total_seconds - child_total;
  if (stats.self_seconds < 0.0) stats.self_seconds = 0.0;
  return stats;
}

TraceSnapshot Tracer::Snapshot() const {
  TraceSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.roots.reserve(root_->children.size());
  for (const auto& child : root_->children) {
    snapshot.roots.push_back(SnapshotNode(*child));
  }
  return snapshot;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  root_->children.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  // Invalidate this thread's scope pointer immediately; other threads
  // notice the generation bump on their next span.
  tl_current_ = nullptr;
  tl_generation_ = generation_.load(std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name) {
  prev_published_ = tl_span_name;
  tl_span_name = name;
  // Spans mirror into the diag flight recorder independently of the
  // tracer toggle: crash dumps want the last phases even when the
  // aggregating tracer is off.
  if (diag::FlightRecorderEnabled()) {
    diag::FlightRecord(diag::EventType::kSpanBegin, name);
    name_ = name;
    flight_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  const std::uint64_t generation =
      tracer.generation_.load(std::memory_order_relaxed);
  if (Tracer::tl_generation_ != generation) {
    Tracer::tl_current_ = nullptr;
    Tracer::tl_generation_ = generation;
  }
  Tracer::Node* parent =
      Tracer::tl_current_ != nullptr ? Tracer::tl_current_ : tracer.root_.get();
  node_ = tracer.ChildOf(parent, name);
  parent_ = Tracer::tl_current_;
  Tracer::tl_current_ = node_;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  tl_span_name = prev_published_;
  if (flight_) {
    const auto flight_elapsed = std::chrono::steady_clock::now() - start_;
    diag::FlightRecord(
        diag::EventType::kSpanEnd, name_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                flight_elapsed)
                .count()));
  }
  if (node_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->count.fetch_add(1, std::memory_order_relaxed);
  node_->total_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  Tracer& tracer = Tracer::Global();
  if (Tracer::tl_generation_ ==
      tracer.generation_.load(std::memory_order_relaxed)) {
    Tracer::tl_current_ = parent_;
  }
}

}  // namespace dd::obs
