// In-process sampling CPU profiler (DESIGN.md §16). Per-thread POSIX
// CPU-time timers (timer_create(CLOCK_THREAD_CPUTIME_ID) with
// SIGEV_THREAD_ID delivery) fire SIGPROF on each thread at --profile_hz
// of *its own* CPU time; the async-signal-safe handler captures a raw
// backtrace into the thread's lock-free ring, tagged with the innermost
// trace span (obs::CurrentSpanName) and worker-pool phase
// (dd::CurrentPoolPhase). A housekeeper thread arms timers for threads
// that appear mid-capture, drains the rings, and aggregates identical
// stacks, so memory stays bounded no matter how long the capture runs.
//
// Same discipline as the flight recorder (src/obs/diag): rings are
// preallocated fixed-size POD slots, never freed; the handler touches
// only its own ring, thread-locals, and backtrace() (warmed at Start);
// the disabled gate is one relaxed atomic load. A full ring drops the
// sample and counts it — sampling never blocks the sampled thread.
//
// Aggregated output is symbolized offline (obs/diag/symbolize) into
// folded-stack lines (obs/prof/folded.h) and a JSON summary. Surfaced
// by `ddtool <cmd> --profile`, `GET /debug/prof`, and the run report's
// "profile" section; sample/drop/truncation totals flush into the
// prof.* metrics.

#ifndef DD_OBS_PROF_PROFILER_H_
#define DD_OBS_PROF_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dd::obs::prof {

// Deep enough for the determination pipeline (search -> provider ->
// matching -> metric kernels) with headroom; deeper stacks are cut at
// the root end and counted in Profile::truncated.
inline constexpr std::size_t kMaxProfFrames = 48;

struct ProfilerOptions {
  // Samples per second of per-thread CPU time. 97/99 (primes) avoid
  // lockstep with periodic work.
  int hz = 99;
  // Per-thread ring slots (rounded up to a power of two, min 16).
  // 2048 slots buffer ~20 s of one thread's samples at 99 Hz between
  // housekeeper drains.
  std::size_t ring_capacity = 2048;
  // Housekeeper period: how often rings are drained and newly spawned
  // threads get their timer armed.
  int drain_period_ms = 50;
};

// One aggregated stack: identical (frames, span, phase) samples
// collapse into a count. Frames are raw leaf-first return addresses;
// symbolization happens in folded.h consumers.
struct ProfileEntry {
  std::vector<std::uintptr_t> frames;  // [0] = innermost (interrupted PC)
  std::string span;                    // innermost trace span ("" = none)
  std::string phase;                   // pool phase label ("" = none)
  std::uint64_t count = 0;
};

struct Profile {
  int hz = 0;
  std::uint64_t duration_ns = 0;  // wall time the capture ran
  std::uint64_t samples = 0;      // aggregated into entries
  std::uint64_t dropped = 0;      // ring full or no ring armed yet
  std::uint64_t truncated = 0;    // stacks deeper than kMaxProfFrames
  std::vector<ProfileEntry> entries;

  bool empty() const { return entries.empty(); }
};

namespace internal {
extern std::atomic<bool> g_prof_active;
}  // namespace internal

// The ~1 ns gate: true while a capture is running.
inline bool ProfilerActive() {
  return internal::g_prof_active.load(std::memory_order_relaxed);
}

class Profiler {
 public:
  static Profiler& Global();

  // Arms per-thread timers and starts the housekeeper. Fails with
  // InvalidArgument on a bad hz, FailedPrecondition when a capture is
  // already running (one at a time — the signal handler is shared).
  Status Start(const ProfilerOptions& options = ProfilerOptions());

  // Disarms every timer, drains the rings one last time, and returns
  // the aggregated profile. Flushes prof.samples / prof.dropped /
  // prof.truncated counters. Returns an empty Profile when no capture
  // was running.
  Profile Stop();

  bool active() const { return ProfilerActive(); }

  // JSON summary of the profile most recently returned by Stop(), or
  // "" before the first capture. When a capture is currently running,
  // returns a summary of the samples aggregated so far instead — this
  // is what the run report's "profile" section embeds, so a report
  // written before Stop() still carries the live data.
  std::string SummaryJson();

 private:
  Profiler() = default;
};

}  // namespace dd::obs::prof

#endif  // DD_OBS_PROF_PROFILER_H_
