#include "obs/prof/profiler.h"

#include <dirent.h>
#include <signal.h>
#include <time.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/diag/sigsafe.h"
#include "obs/diag/stack_capture.h"
#include "obs/metrics.h"
#include "obs/prof/folded.h"
#include "obs/trace.h"

// Older glibc spells the SIGEV_THREAD_ID target field through the
// union member only; newer ones provide the POSIX-ish alias.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace dd::obs::prof {

namespace internal {
std::atomic<bool> g_prof_active{false};
}  // namespace internal

namespace {

constexpr std::size_t kMaxProfThreads = 256;

// One queued sample. Fixed-size POD: the handler writes it in place,
// the housekeeper copies it out — no pointers are followed in signal
// context. span/phase are static-storage literals published by
// TraceSpan / ParallelFor, safe to dereference later from any thread.
struct SampleSlot {
  const char* span = nullptr;
  const char* phase = nullptr;
  std::uint32_t frame_count = 0;
  std::uint32_t truncated = 0;
  void* frames[kMaxProfFrames];
};

// Per-thread SPSC ring: the producer is the thread's own SIGPROF
// handler, the consumer is the housekeeper. Allocated on first arm,
// registered forever (flight-recorder discipline) so a late signal on
// a dying capture can never touch freed memory.
struct SampleRing {
  std::atomic<std::uint64_t> head{0};     // written by the handler
  std::atomic<std::uint64_t> tail{0};     // advanced by the housekeeper
  std::atomic<std::uint64_t> dropped{0};  // ring-full samples
  std::uint32_t capacity = 0;             // power of two
  std::uint32_t mask = 0;
  int tid = 0;
  SampleSlot* slots = nullptr;  // heap, never freed
};

std::atomic<SampleRing*> g_rings[kMaxProfThreads];
std::atomic<std::size_t> g_ring_count{0};
// SIGPROF delivered to a thread whose ring was not registered yet (a
// thread racing its first housekeeper scan).
std::atomic<std::uint64_t> g_unarmed_drops{0};

thread_local SampleRing* t_ring = nullptr;

}  // namespace

// The SIGPROF handler. extern "C" with a project-unique unmangled name
// (and outside the anonymous namespace) so -rdynamic exports it: the
// folded renderer recognizes it by name when trimming the handler's
// own frames off every sample, which an anonymous-namespace local
// symbol (invisible to dladdr) would defeat.
extern "C" void DdProfSigprofHandler(int /*sig*/) {
  const int saved_errno = errno;
  if (internal::g_prof_active.load(std::memory_order_relaxed)) {
    SampleRing* ring = t_ring;
    if (ring == nullptr) {
      // First sample on this thread: find the ring the housekeeper
      // registered for our tid. Bounded scan over preallocated
      // atomics — async-signal-safe.
      const int tid = diag::SigsafeTid();
      const std::size_t count = g_ring_count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < count; ++i) {
        SampleRing* r = g_rings[i].load(std::memory_order_acquire);
        if (r != nullptr && r->tid == tid) {
          ring = r;
          break;
        }
      }
      t_ring = ring;
    }
    if (ring == nullptr) {
      g_unarmed_drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
      if (head - ring->tail.load(std::memory_order_acquire) >=
          ring->capacity) {
        ring->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        SampleSlot& slot = ring->slots[head & ring->mask];
        const std::size_t n =
            diag::CaptureOwnStack(slot.frames, kMaxProfFrames);
        slot.frame_count = static_cast<std::uint32_t>(n);
        slot.truncated = n >= kMaxProfFrames ? 1 : 0;
        slot.span = CurrentSpanName();
        slot.phase = dd::CurrentPoolPhase();
        ring->head.store(head + 1, std::memory_order_release);
      }
    }
  }
  errno = saved_errno;
}

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

// Kernel CPU-clock encoding (linux posix-timers): id = (~tid << 3) |
// bits, where bits 0-1 select the clock (2 = CPUCLOCK_SCHED, the clock
// pthread_getcpuclockid returns) and bit 2 marks a per-thread clock.
// This is how a coordinator thread names *another* thread's
// CLOCK_THREAD_CPUTIME_ID without a pthread_t for it.
clockid_t ThreadCpuClock(int tid) {
  return static_cast<clockid_t>(
      ~(static_cast<unsigned int>(tid) << 3) & ~7u) |
         static_cast<clockid_t>(6);
}

// Aggregation key: span + phase pointers and the raw frame words,
// byte-packed. Pointer identity is enough for span/phase — they are
// static-storage literals reused per call site.
std::string SlotKey(const SampleSlot& slot) {
  std::string key;
  key.resize(2 * sizeof(const char*) +
             slot.frame_count * sizeof(void*));
  char* out = key.data();
  std::memcpy(out, &slot.span, sizeof(slot.span));
  out += sizeof(slot.span);
  std::memcpy(out, &slot.phase, sizeof(slot.phase));
  out += sizeof(slot.phase);
  std::memcpy(out, slot.frames, slot.frame_count * sizeof(void*));
  return key;
}

// Everything the capture accumulates, guarded by g_mu (the handler
// touches only the ring atomics above).
struct CaptureState {
  ProfilerOptions options;
  bool running = false;
  std::chrono::steady_clock::time_point started;
  std::thread housekeeper;
  std::vector<std::pair<int, timer_t>> timers;  // tid -> armed timer
  std::map<std::string, std::uint64_t> aggregated;
  std::uint64_t samples = 0;
  std::uint64_t truncated = 0;
  std::string last_summary;
};

std::mutex g_mu;
CaptureState& State() {
  static CaptureState* state = new CaptureState();
  return *state;
}

// Housekeeper wakeup (Stop() cuts the drain sleep short).
std::mutex g_wake_mu;
std::condition_variable g_wake_cv;
std::atomic<bool> g_running{false};

SampleRing* FindRing(int tid) {
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    SampleRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr && ring->tid == tid) return ring;
  }
  return nullptr;
}

SampleRing* EnsureRing(int tid, std::size_t capacity) {
  if (SampleRing* ring = FindRing(tid)) return ring;
  const std::size_t index =
      g_ring_count.load(std::memory_order_relaxed);
  if (index >= kMaxProfThreads) return nullptr;
  auto* ring = new SampleRing();
  ring->capacity = static_cast<std::uint32_t>(capacity);
  ring->mask = ring->capacity - 1;
  ring->tid = tid;
  ring->slots = new SampleSlot[ring->capacity];
  g_rings[index].store(ring, std::memory_order_release);
  g_ring_count.store(index + 1, std::memory_order_release);
  return ring;
}

// Arms a per-thread CPU-time timer for every thread in /proc/self/task
// that does not have one yet (threads spawned mid-capture get theirs
// on the next scan, <= drain_period_ms late). Requires g_mu.
void ArmNewThreadsLocked(CaptureState& state) {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return;
  const std::size_t capacity = RoundUpPow2(state.options.ring_capacity);
  while (struct dirent* ent = ::readdir(dir)) {
    if (ent->d_name[0] < '0' || ent->d_name[0] > '9') continue;
    const int tid = std::atoi(ent->d_name);
    bool armed = false;
    for (const auto& [armed_tid, timer] : state.timers) {
      if (armed_tid == tid) {
        armed = true;
        break;
      }
    }
    if (armed) continue;
    if (EnsureRing(tid, capacity) == nullptr) continue;  // table full
    sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = tid;
    timer_t timer;
    if (::timer_create(ThreadCpuClock(tid), &sev, &timer) != 0) {
      continue;  // thread exited between readdir and now
    }
    const long period_ns = 1000000000L / state.options.hz;
    itimerspec spec{};
    spec.it_interval.tv_sec = period_ns / 1000000000L;
    spec.it_interval.tv_nsec = period_ns % 1000000000L;
    spec.it_value = spec.it_interval;
    if (::timer_settime(timer, 0, &spec, nullptr) != 0) {
      ::timer_delete(timer);
      continue;
    }
    state.timers.emplace_back(tid, timer);
  }
  ::closedir(dir);
}

// Folds every queued sample into the aggregation map. Requires g_mu.
void DrainRingsLocked(CaptureState& state) {
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    SampleRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const SampleSlot& slot = ring->slots[tail & ring->mask];
      state.aggregated[SlotKey(slot)] += 1;
      state.samples += 1;
      state.truncated += slot.truncated;
    }
    ring->tail.store(head, std::memory_order_release);
  }
}

// The aggregated map as a Profile (no teardown). Requires g_mu.
Profile BuildProfileLocked(const CaptureState& state) {
  Profile profile;
  profile.hz = state.options.hz;
  profile.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state.started)
          .count());
  profile.samples = state.samples;
  profile.truncated = state.truncated;
  profile.dropped = g_unarmed_drops.load(std::memory_order_relaxed);
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    SampleRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) {
      profile.dropped += ring->dropped.load(std::memory_order_relaxed);
    }
  }
  profile.entries.reserve(state.aggregated.size());
  for (const auto& [key, hits] : state.aggregated) {
    ProfileEntry entry;
    const char* span = nullptr;
    const char* phase = nullptr;
    const char* in = key.data();
    std::memcpy(&span, in, sizeof(span));
    in += sizeof(span);
    std::memcpy(&phase, in, sizeof(phase));
    in += sizeof(phase);
    const std::size_t frames =
        (key.size() - 2 * sizeof(const char*)) / sizeof(void*);
    entry.frames.resize(frames);
    for (std::size_t f = 0; f < frames; ++f) {
      void* pc = nullptr;
      std::memcpy(&pc, in + f * sizeof(void*), sizeof(pc));
      entry.frames[f] = reinterpret_cast<std::uintptr_t>(pc);
    }
    if (span != nullptr) entry.span = span;
    if (phase != nullptr) entry.phase = phase;
    entry.count = hits;
    profile.entries.push_back(std::move(entry));
  }
  return profile;
}

void HousekeeperMain(int drain_period_ms) {
  while (g_running.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(g_mu);
      CaptureState& state = State();
      if (state.running) {
        ArmNewThreadsLocked(state);
        DrainRingsLocked(state);
      }
    }
    std::unique_lock<std::mutex> wake(g_wake_mu);
    g_wake_cv.wait_for(wake, std::chrono::milliseconds(drain_period_ms),
                       [] { return !g_running.load(std::memory_order_acquire); });
  }
}

void InstallSigprofHandler() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &DdProfSigprofHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.hz < 1 || options.hz > 10000) {
    return Status::InvalidArgument("profiler hz must be in [1, 10000]");
  }
  if (options.ring_capacity < 1) {
    return Status::InvalidArgument("profiler ring_capacity must be >= 1");
  }
  if (options.drain_period_ms < 1) {
    return Status::InvalidArgument("profiler drain_period_ms must be >= 1");
  }
  std::lock_guard<std::mutex> lock(g_mu);
  CaptureState& state = State();
  if (state.running) {
    return Status::FailedPrecondition(
        "a profiler capture is already running");
  }
  // Warm libgcc's unwinder before the first in-handler backtrace()
  // (its lazy dlopen is not signal-safe) and install our handler.
  diag::InitStackCapture();
  InstallSigprofHandler();

  // Stale queued samples from the previous capture (rings are never
  // freed) are discarded, and per-ring drop counts reset.
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    SampleRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ring->tail.store(ring->head.load(std::memory_order_acquire),
                     std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  g_unarmed_drops.store(0, std::memory_order_relaxed);

  state.options = options;
  state.aggregated.clear();
  state.samples = 0;
  state.truncated = 0;
  state.started = std::chrono::steady_clock::now();
  state.running = true;
  g_running.store(true, std::memory_order_release);

  // Arm the calling thread's timer (and every other live thread's)
  // before opening the gate, so a --profile run samples from its very
  // first instruction.
  ArmNewThreadsLocked(state);
  internal::g_prof_active.store(true, std::memory_order_release);
  state.housekeeper =
      std::thread([period = options.drain_period_ms] {
        HousekeeperMain(period);
      });
  return Status::Ok();
}

Profile Profiler::Stop() {
  std::thread housekeeper;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    CaptureState& state = State();
    if (!state.running) return Profile();
    // Gate off first: timers may still fire until deleted, and a
    // pending SIGPROF can deliver after timer_delete; the handler
    // sees the closed gate and returns.
    internal::g_prof_active.store(false, std::memory_order_release);
    g_running.store(false, std::memory_order_release);
    housekeeper = std::move(state.housekeeper);
  }
  g_wake_cv.notify_all();
  if (housekeeper.joinable()) housekeeper.join();

  std::lock_guard<std::mutex> lock(g_mu);
  CaptureState& state = State();
  for (const auto& [tid, timer] : state.timers) {
    ::timer_delete(timer);
  }
  state.timers.clear();
  DrainRingsLocked(state);
  Profile profile = BuildProfileLocked(state);
  state.running = false;

  static Counter& samples_counter =
      MetricsRegistry::Global().GetCounter("prof.samples");
  static Counter& dropped_counter =
      MetricsRegistry::Global().GetCounter("prof.dropped");
  static Counter& truncated_counter =
      MetricsRegistry::Global().GetCounter("prof.truncated");
  samples_counter.Add(profile.samples);
  dropped_counter.Add(profile.dropped);
  truncated_counter.Add(profile.truncated);

  state.last_summary = ProfileSummaryJson(profile);
  return profile;
}

std::string Profiler::SummaryJson() {
  std::lock_guard<std::mutex> lock(g_mu);
  CaptureState& state = State();
  if (state.running) {
    DrainRingsLocked(state);
    return ProfileSummaryJson(BuildProfileLocked(state));
  }
  return state.last_summary;
}

}  // namespace dd::obs::prof
