#include "obs/prof/folded.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "obs/diag/symbolize.h"

namespace dd::obs::prof {

namespace {

// Frames the profiler's own signal machinery contributes to every
// sample; trimmed during folding so the leaf is the interrupted PC.
bool IsHandlerFrame(const std::string& symbol) {
  return symbol.find("CaptureOwnStack") != std::string::npos ||
         symbol.find("DdProfSigprofHandler") != std::string::npos;
}

// Folded lines use ';' as the frame separator and the last ' ' before
// the count; symbols keep their spaces (template arguments), so only
// ';' and line breaks must go.
std::string SanitizeSymbol(std::string symbol) {
  for (char& ch : symbol) {
    if (ch == ';') ch = ':';
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return symbol;
}

std::string HexFrame(std::uintptr_t pc) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (const char ch : text) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

void AppendJsonString(std::string* out, const std::string& text) {
  *out += '"';
  AppendJsonEscaped(out, text);
  *out += '"';
}

std::vector<std::string> SplitFrames(const std::string& key) {
  std::vector<std::string> frames;
  std::size_t begin = 0;
  while (begin <= key.size()) {
    const std::size_t semi = key.find(';', begin);
    if (semi == std::string::npos) {
      frames.push_back(key.substr(begin));
      break;
    }
    frames.push_back(key.substr(begin, semi - begin));
    begin = semi + 1;
  }
  return frames;
}

bool IsAttributionFrame(const std::string& frame) {
  return frame.rfind("span:", 0) == 0 || frame.rfind("phase:", 0) == 0;
}

// name -> (self, total) accumulation shared by the table, diff, and
// JSON renderers.
struct FunctionTally {
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

std::vector<HotFunction> SortTally(
    std::unordered_map<std::string, FunctionTally> tally) {
  std::vector<HotFunction> functions;
  functions.reserve(tally.size());
  for (auto& [name, counts] : tally) {
    functions.push_back(HotFunction{name, counts.self, counts.total});
  }
  std::sort(functions.begin(), functions.end(),
            [](const HotFunction& a, const HotFunction& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  return functions;
}

// Per-attribution (span:/phase: root frame) sample counts of a folded
// profile, keyed by the frame's label.
std::map<std::string, std::uint64_t> AttributionCounts(
    const FoldedProfile& folded, const char* prefix) {
  std::map<std::string, std::uint64_t> counts;
  const std::size_t prefix_len = std::char_traits<char>::length(prefix);
  for (const auto& [key, hits] : folded.stacks) {
    for (const std::string& frame : SplitFrames(key)) {
      if (!IsAttributionFrame(frame)) break;
      if (frame.rfind(prefix, 0) == 0) {
        counts[frame.substr(prefix_len)] += hits;
        break;
      }
    }
  }
  return counts;
}

void AppendCountsObject(std::string* out,
                        const std::map<std::string, std::uint64_t>& counts) {
  *out += '{';
  bool first = true;
  for (const auto& [name, hits] : counts) {
    if (!first) *out += ',';
    first = false;
    AppendJsonString(out, name);
    *out += ':';
    *out += std::to_string(hits);
  }
  *out += '}';
}

void AppendFunctionsArray(std::string* out,
                          const std::vector<HotFunction>& functions,
                          std::size_t top_n) {
  *out += '[';
  const std::size_t shown = std::min(top_n, functions.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) *out += ',';
    *out += "{\"name\":";
    AppendJsonString(out, functions[i].name);
    *out += ",\"self\":";
    *out += std::to_string(functions[i].self);
    *out += ",\"total\":";
    *out += std::to_string(functions[i].total);
    *out += '}';
  }
  *out += ']';
}

double Percent(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

std::uint64_t FoldedProfile::TotalSamples() const {
  std::uint64_t total = 0;
  for (const auto& [key, hits] : stacks) total += hits;
  return total;
}

FoldedProfile FoldProfile(const Profile& profile) {
  FoldedProfile folded;
  // dladdr cannot name local symbols (anonymous-namespace functions,
  // lambdas); those fall back to "<module>+0x<offset>", which — unlike
  // a raw address — is stable across runs and ASLR, so profiles stay
  // diffable.
  const std::vector<diag::DiagModule> own_modules = diag::SelfModules();
  std::map<std::string, std::uint64_t> bias_cache;
  const auto fallback_frame = [&own_modules,
                               &bias_cache](std::uintptr_t pc) -> std::string {
    const diag::DiagModule* mod = diag::FindModule(own_modules, pc);
    if (mod == nullptr || mod->path.empty()) return HexFrame(pc);
    auto [it, inserted] = bias_cache.try_emplace(mod->path);
    if (inserted) it->second = diag::ModuleBias(own_modules, mod->path);
    const std::size_t slash = mod->path.rfind('/');
    std::string out =
        slash == std::string::npos ? mod->path : mod->path.substr(slash + 1);
    out += '+';
    out += HexFrame(pc - it->second);
    return out;
  };
  // Symbolization is the expensive part; identical PCs across stacks
  // resolve once.
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  const auto symbolize = [&symbol_cache, &fallback_frame](
                             std::uintptr_t pc,
                             bool leaf) -> const std::string& {
    // Frames above the leaf are return addresses: the interesting
    // instruction (the call) is the one before, so resolve at pc-1.
    const std::uintptr_t addr = leaf ? pc : pc - 1;
    auto [it, inserted] = symbol_cache.try_emplace(addr);
    if (inserted) {
      std::string symbol =
          diag::SymbolForAddress(reinterpret_cast<const void*>(addr));
      it->second = symbol.empty() ? fallback_frame(pc)
                                  : SanitizeSymbol(std::move(symbol));
    }
    return it->second;
  };

  for (const ProfileEntry& entry : profile.entries) {
    // Trim the handler's own frames off the leaf end: CaptureOwnStack
    // and SigprofHandler by name, then the one kernel sigreturn
    // trampoline frame between the handler and the interrupted PC.
    // Unresolvable symbols leave the trim at 0 — cosmetic only.
    std::size_t skip = 0;
    while (skip < entry.frames.size() &&
           IsHandlerFrame(symbolize(entry.frames[skip], skip == 0))) {
      ++skip;
    }
    if (skip > 0 && skip < entry.frames.size()) ++skip;

    std::string key = "span:";
    key += entry.span.empty() ? "-" : entry.span;
    key += ";phase:";
    key += entry.phase.empty() ? "-" : entry.phase;
    for (std::size_t i = entry.frames.size(); i > skip; --i) {
      key += ';';
      key += symbolize(entry.frames[i - 1], /*leaf=*/i - 1 == skip && skip == 0);
    }
    folded.stacks[key] += entry.count;
  }
  return folded;
}

std::string FoldedToString(const FoldedProfile& folded) {
  std::string out;
  for (const auto& [key, hits] : folded.stacks) {
    out += key;
    out += ' ';
    out += std::to_string(hits);
    out += '\n';
  }
  return out;
}

Status ParseFolded(const std::string& text, FoldedProfile* out) {
  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    std::string line = text.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    begin = end + 1;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 == line.size()) {
      return Status::InvalidArgument("folded line " + std::to_string(line_no) +
                                     ": expected '<stack> <count>'");
    }
    char* parse_end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + space + 1, &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0') {
      return Status::InvalidArgument("folded line " + std::to_string(line_no) +
                                     ": bad sample count '" +
                                     line.substr(space + 1) + "'");
    }
    out->stacks[line.substr(0, space)] += count;
  }
  return Status::Ok();
}

FoldedProfile MergeFolded(const std::vector<FoldedProfile>& inputs) {
  FoldedProfile merged;
  for (const FoldedProfile& input : inputs) {
    for (const auto& [key, hits] : input.stacks) {
      merged.stacks[key] += hits;
    }
  }
  return merged;
}

std::vector<HotFunction> HotFunctions(const FoldedProfile& folded) {
  std::unordered_map<std::string, FunctionTally> tally;
  std::vector<const std::string*> seen;  // per-stack dedupe scratch
  for (const auto& [key, hits] : folded.stacks) {
    const std::vector<std::string> frames = SplitFrames(key);
    seen.clear();
    const std::string* leaf = nullptr;
    for (const std::string& frame : frames) {
      if (frame.empty() || IsAttributionFrame(frame)) continue;
      leaf = &frame;  // frames are root-first; the last one wins
      bool counted = false;
      for (const std::string* prior : seen) {
        if (*prior == frame) {
          counted = true;
          break;
        }
      }
      if (!counted) {
        seen.push_back(&frame);
        tally[frame].total += hits;
      }
    }
    if (leaf != nullptr) tally[*leaf].self += hits;
  }
  return SortTally(std::move(tally));
}

std::string TopTableToText(const FoldedProfile& folded, std::size_t top_n) {
  const std::vector<HotFunction> functions = HotFunctions(folded);
  const std::uint64_t total = folded.TotalSamples();
  std::string out = std::to_string(total) + " samples, " +
                    std::to_string(folded.stacks.size()) +
                    " unique stacks\n";
  char line[512];
  std::snprintf(line, sizeof(line), "%10s %7s %10s %7s  %s\n", "SELF", "SELF%",
                "TOTAL", "TOTAL%", "FUNCTION");
  out += line;
  const std::size_t shown = std::min(top_n, functions.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const HotFunction& fn = functions[i];
    std::snprintf(line, sizeof(line), "%10llu %6.2f%% %10llu %6.2f%%  ",
                  static_cast<unsigned long long>(fn.self),
                  Percent(fn.self, total),
                  static_cast<unsigned long long>(fn.total),
                  Percent(fn.total, total));
    out += line;
    out += fn.name;
    out += '\n';
  }
  return out;
}

std::string DiffToText(const FoldedProfile& before, const FoldedProfile& after,
                       std::size_t top_n) {
  std::unordered_map<std::string, FunctionTally> tally;
  for (const HotFunction& fn : HotFunctions(before)) {
    tally[fn.name].self = fn.self;
  }
  for (const HotFunction& fn : HotFunctions(after)) {
    tally[fn.name].total = fn.self;  // total column reused as "after"
  }
  struct Row {
    std::string name;
    std::uint64_t before = 0;
    std::uint64_t after = 0;
  };
  std::vector<Row> rows;
  rows.reserve(tally.size());
  for (auto& [name, counts] : tally) {
    rows.push_back(Row{name, counts.self, counts.total});
  }
  const auto delta = [](const Row& row) {
    return row.after >= row.before ? row.after - row.before
                                   : row.before - row.after;
  };
  std::sort(rows.begin(), rows.end(), [&delta](const Row& a, const Row& b) {
    if (delta(a) != delta(b)) return delta(a) > delta(b);
    return a.name < b.name;
  });
  const std::uint64_t total_before = before.TotalSamples();
  const std::uint64_t total_after = after.TotalSamples();
  std::string out = "before: " + std::to_string(total_before) +
                    " samples, after: " + std::to_string(total_after) +
                    " samples (self counts)\n";
  char line[512];
  std::snprintf(line, sizeof(line), "%10s %10s %10s  %s\n", "BEFORE", "AFTER",
                "DELTA", "FUNCTION");
  out += line;
  const std::size_t shown = std::min(top_n, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const Row& row = rows[i];
    const long long signed_delta = static_cast<long long>(row.after) -
                                   static_cast<long long>(row.before);
    std::snprintf(line, sizeof(line), "%10llu %10llu %+10lld  ",
                  static_cast<unsigned long long>(row.before),
                  static_cast<unsigned long long>(row.after), signed_delta);
    out += line;
    out += row.name;
    out += '\n';
  }
  return out;
}

std::string FoldedSummaryJson(const FoldedProfile& folded, std::size_t top_n) {
  std::string out = "{\"samples\":";
  out += std::to_string(folded.TotalSamples());
  out += ",\"stacks\":";
  out += std::to_string(folded.stacks.size());
  out += ",\"spans\":";
  AppendCountsObject(&out, AttributionCounts(folded, "span:"));
  out += ",\"phases\":";
  AppendCountsObject(&out, AttributionCounts(folded, "phase:"));
  out += ",\"functions\":";
  AppendFunctionsArray(&out, HotFunctions(folded), top_n);
  out += '}';
  return out;
}

std::string ProfileSummaryJson(const Profile& profile) {
  std::map<std::string, std::uint64_t> spans;
  std::map<std::string, std::uint64_t> phases;
  for (const ProfileEntry& entry : profile.entries) {
    spans[entry.span.empty() ? "-" : entry.span] += entry.count;
    phases[entry.phase.empty() ? "-" : entry.phase] += entry.count;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(profile.duration_ns) * 1e-9);
  std::string out = "{\"hz\":";
  out += std::to_string(profile.hz);
  out += ",\"duration_seconds\":";
  out += buf;
  out += ",\"samples\":";
  out += std::to_string(profile.samples);
  out += ",\"dropped\":";
  out += std::to_string(profile.dropped);
  out += ",\"truncated\":";
  out += std::to_string(profile.truncated);
  out += ",\"spans\":";
  AppendCountsObject(&out, spans);
  out += ",\"phases\":";
  AppendCountsObject(&out, phases);
  out += ",\"functions\":";
  AppendFunctionsArray(&out, HotFunctions(FoldProfile(profile)), 10);
  out += '}';
  return out;
}

}  // namespace dd::obs::prof
