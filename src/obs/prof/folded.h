// Folded-stack rendering and analysis for sampling profiles
// (DESIGN.md §16). The on-disk format is Brendan Gregg's collapsed
// form, one aggregated stack per line, root-first, count after the
// last space:
//
//   span:matching_build;phase:matching_build.pairs;main;Determine;... 42
//
// Two synthetic root frames carry the sample's attribution: the
// innermost trace span and the worker-pool phase active when SIGPROF
// fired ("-" when none), so grep / flamegraph.pl slice per span or
// phase with no extra tooling. Frames are demangled symbols (';'
// sanitized to ':'; spaces kept — parse with a last-space split) or
// "0x<hex>" when unresolvable.

#ifndef DD_OBS_PROF_FOLDED_H_
#define DD_OBS_PROF_FOLDED_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/prof/profiler.h"

namespace dd::obs::prof {

// A set of folded stacks: line key -> sample count. std::map so
// rendering is deterministic.
struct FoldedProfile {
  std::map<std::string, std::uint64_t> stacks;

  std::uint64_t TotalSamples() const;
  bool empty() const { return stacks.empty(); }
};

// Symbolizes a raw in-process profile (dladdr against our own
// mappings; frames above the leaf are return addresses and resolve at
// pc-1) and folds it root-first with span:/phase: roots. The SIGPROF
// handler's own frames (CaptureOwnStack, SigprofHandler, the kernel
// sigreturn trampoline) are trimmed so the leaf is the interrupted PC.
FoldedProfile FoldProfile(const Profile& profile);

// One "stack count" line per aggregated stack, sorted by stack key.
std::string FoldedToString(const FoldedProfile& folded);

// Inverse of FoldedToString; merges duplicate keys, skips blank lines.
// Fails on a line with no parsable trailing count.
Status ParseFolded(const std::string& text, FoldedProfile* out);

// Sums sample counts across inputs, stack by stack (ddtool prof
// --merge).
FoldedProfile MergeFolded(const std::vector<FoldedProfile>& inputs);

// Per-function sample totals. `self` counts samples whose leaf is the
// function; `total` counts samples with the function anywhere on the
// stack (deduplicated per stack, so recursion does not double-count).
// Synthetic span:/phase: frames are excluded. Sorted by self
// descending, then total, then name.
struct HotFunction {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};
std::vector<HotFunction> HotFunctions(const FoldedProfile& folded);

// Human-readable top-N hot-function table (ddtool prof <file>).
std::string TopTableToText(const FoldedProfile& folded, std::size_t top_n);

// Per-function self-sample deltas between two profiles, sorted by
// |delta| descending (ddtool prof --diff A B).
std::string DiffToText(const FoldedProfile& before, const FoldedProfile& after,
                       std::size_t top_n);

// Machine-readable summary of a folded profile (ddtool prof --json):
// total samples, per-span and per-phase counts, top-N functions.
std::string FoldedSummaryJson(const FoldedProfile& folded, std::size_t top_n);

// JSON summary of a raw profile: capture parameters (hz, duration,
// sample/drop/truncation counts), per-span and per-phase sample
// counts, and the top hot functions. Embedded in the ddtool run
// report's "profile" section and served as part of /debug/prof.
std::string ProfileSummaryJson(const Profile& profile);

}  // namespace dd::obs::prof

#endif  // DD_OBS_PROF_FOLDED_H_
