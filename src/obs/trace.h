// Hierarchical scoped tracing with phase aggregation. A TraceSpan is an
// RAII scope named by a string literal; spans nested dynamically form a
// tree, and repeated spans with the same name under the same parent
// aggregate into one node (call count + total wall time), so per-LHS /
// per-candidate scopes stay O(1) memory no matter how many times they
// run. Node identity is (parent, name) with names compared by content,
// so the names must outlive the tracer (string literals in practice).
//
//   {
//     dd::obs::TraceSpan span("lhs_search");   // child of current scope
//     ...
//   }                                          // time charged on exit
//
// The current scope is thread-local; a span opened on a thread with no
// enclosing span becomes a root. Snapshot() renders the aggregated tree
// with self-vs-child time; Reset() clears it (only call between runs,
// with no spans open).

#ifndef DD_OBS_TRACE_H_
#define DD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dd::obs {

// Aggregated view of one span node, produced by Tracer::Snapshot().
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;       // Times the scope was entered.
  double total_seconds = 0.0;    // Wall time including children.
  double self_seconds = 0.0;     // total minus direct children's total.
  std::vector<SpanStats> children;
};

// Snapshot of a whole span forest (one root per top-level phase).
struct TraceSnapshot {
  std::vector<SpanStats> roots;

  // Sum of root total_seconds — the traced share of the run.
  double TotalSeconds() const;
  // Depth-first lookup by name ("a/b" paths are not supported; the
  // first match in pre-order wins). Returns nullptr when absent.
  const SpanStats* Find(const std::string& name) const;
};

class Tracer {
 public:
  static Tracer& Global();

  // Tracing toggles: when disabled, TraceSpan construction is a cheap
  // no-op (one relaxed load). Enabled by default.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  TraceSnapshot Snapshot() const;

  // Drops all recorded spans. Must not race with open TraceSpans.
  void Reset();

 private:
  friend class TraceSpan;

  struct Node {
    const char* name = nullptr;
    Node* parent = nullptr;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::vector<std::unique_ptr<Node>> children;  // guarded by Tracer::mu_
  };

  Tracer();
  Node* ChildOf(Node* parent, const char* name);
  static SpanStats SnapshotNode(const Node& node);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  // Guards children vectors of every node.
  std::unique_ptr<Node> root_;  // Sentinel; its children are the roots.
  // Generation counter: bumped by Reset() so that thread-local current
  // pointers from a previous tree are not followed into freed nodes.
  std::atomic<std::uint64_t> generation_{0};

  // Current innermost scope of this thread, valid for tl_generation_.
  static thread_local Node* tl_current_;
  static thread_local std::uint64_t tl_generation_;
};

// RAII scope. `name` must be a string with static storage duration.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer::Node* node_ = nullptr;  // nullptr when tracing is disabled.
  Tracer::Node* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  // Flight-recorder mirror (diag): set when the span recorded a begin
  // event, so the end event pairs up even if the recorder toggles
  // mid-span or the tracer itself is disabled.
  const char* name_ = nullptr;
  bool flight_ = false;
  // Saved CurrentSpanName() of the enclosing scope, restored on exit.
  const char* prev_published_ = nullptr;
};

// Innermost active TraceSpan name on this thread (a static-storage
// literal), or nullptr outside any span. Published unconditionally by
// TraceSpan — independent of the tracer and flight-recorder toggles —
// with plain thread-local stores, so it costs ~nothing and is
// async-signal-safe to read from a handler running on the same thread.
// The sampling profiler (src/obs/prof) tags samples with it.
const char* CurrentSpanName();

}  // namespace dd::obs

#endif  // DD_OBS_TRACE_H_
