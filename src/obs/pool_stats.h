// Worker-pool execution statistics: the obs-side collector behind the
// dd::PoolObserver hook (common/parallel.h). Every executed chunk and
// every completed ParallelFor invocation is appended to a lock-free
// per-thread ring (seqlock entries over relaxed atomics — safe to
// snapshot from another thread, TSan-clean, and wait-free for the
// writer). Snapshot() joins chunks back to their invocations and
// produces, per phase label:
//   * per-worker chunk counts, item counts, busy and wait nanoseconds
//     (wait = invocation wall minus that worker's busy time, summed
//     over the invocations the worker participated in),
//   * derived parallel-efficiency figures — the speedup bound
//     Σbusy / max-worker-busy, the imbalance (max − mean)/max, and the
//     caller-participation share,
//   * a chronological chunk timeline for the Chrome trace exporter.
//
// Enabling the collector also feeds live `pool.*` counters in the
// metrics registry (pool.chunks, pool.items, pool.busy_ns,
// pool.invocations, pool.wall_ns) so the Prometheus endpoint and the
// FTDC sampler see pool activity without snapshotting rings.
//
// Recording never perturbs the chunk partition: determination output
// stays byte-identical with the collector on or off (DESIGN.md §12).
// With the collector disabled, ParallelFor pays one relaxed atomic
// load per invocation — the same ~1 ns bar as the EXPLAIN recorder.

#ifndef DD_OBS_POOL_STATS_H_
#define DD_OBS_POOL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"

namespace dd::obs {

// One worker thread's totals within a phase. `slot` is a process-wide
// dense thread index (assigned on first recorded event, stable for the
// thread's lifetime); `caller` is true when the slot executed at least
// one chunk as the invoking thread rather than as a pool worker.
struct PoolWorkerStats {
  int slot = 0;
  bool caller = false;
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t wait_ns = 0;
};

struct PoolPhaseStats {
  std::string phase;  // "" for unlabeled ParallelFor calls
  std::uint64_t invocations = 0;
  std::uint64_t wall_ns = 0;   // summed invocation wall times
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  std::uint64_t busy_ns = 0;
  std::uint64_t caller_busy_ns = 0;
  std::vector<PoolWorkerStats> workers;  // sorted by slot

  // Upper bound on the speedup this phase can see from its measured
  // work distribution: Σ busy / max per-worker busy. 0 when no work.
  double SpeedupBound() const;
  // Load imbalance across participating workers: (max − mean) / max,
  // in percent. 0 = perfectly balanced.
  double ImbalancePercent() const;
  // Fraction of busy nanoseconds executed by the invoking thread.
  double CallerShare() const;
};

// One chunk execution for the timeline view (Chrome trace tracks).
struct PoolChunkRecord {
  std::string phase;
  std::uint64_t invocation = 0;
  int slot = 0;
  bool caller = false;
  std::size_t chunk = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

struct PoolStatsSnapshot {
  std::vector<PoolPhaseStats> phases;    // sorted by phase name
  std::vector<PoolChunkRecord> timeline;  // sorted by start_ns
  // Events lost to ring wrap-around (aggregates above cover only the
  // retained window when this is non-zero).
  std::uint64_t dropped_events = 0;

  bool empty() const { return phases.empty(); }
};

class PoolStatsCollector : public PoolObserver {
 public:
  static PoolStatsCollector& Global();

  // Installs the collector as the process pool observer / removes it.
  // Idempotent. Enable() does not clear previously recorded events;
  // call Reset() for a fresh window.
  void Enable();
  void Disable();
  bool enabled() const;

  // Logically clears every per-thread ring (events already recorded
  // stop being visible to Snapshot). Safe while enabled.
  void Reset();

  // Joins the per-thread rings into per-phase aggregates + timeline.
  PoolStatsSnapshot Snapshot() const;

  // dd::PoolObserver — called from pool workers / calling threads.
  void OnChunk(const PoolChunkEvent& event) override;
  void OnInvocation(const PoolInvocationEvent& event) override;

 private:
  PoolStatsCollector() = default;
};

}  // namespace dd::obs

#endif  // DD_OBS_POOL_STATS_H_
