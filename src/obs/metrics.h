// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms. Handles are created (or found) once per call site
// and then updated lock-free with relaxed atomics, so instrumentation is
// safe from the worker threads spawned by common/parallel.h and cheap
// enough for the counting hot paths. Reads go through Snapshot(), which
// copies a consistent-enough view for reporting (individual values are
// atomically read; cross-metric skew is acceptable for run reports).
//
// Typical call-site idiom (the static keeps registry lookups off the hot
// path):
//
//   static dd::obs::Counter& rows =
//       dd::obs::MetricsRegistry::Global().GetCounter("provider.rows_scanned");
//   rows.Add(m);

#ifndef DD_OBS_METRICS_H_
#define DD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dd::obs {

class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations with
// value <= bounds[i] (first matching bucket); one implicit overflow
// bucket counts the rest. Observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_count(bounds().size()) is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  // Strictly increasing upper bounds.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default bounds for millisecond-scale latency histograms.
std::vector<double> DefaultLatencyBoundsMs();

// Plain-struct copy of the registry state for exporters.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  // Constant value-1-with-labels gauges (the build_info convention):
  // a string fact exposed through the numeric exposition, e.g.
  // simd.dispatch{mode="avx2"} 1.
  struct InfoValue {
    std::string name;
    std::string label;
    std::string value;
  };
  std::vector<CounterValue> counters;    // sorted by name
  std::vector<GaugeValue> gauges;        // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name
  std::vector<InfoValue> infos;          // sorted by name
};

// Percentile estimate from the fixed buckets, q in [0, 1]: the target
// rank is interpolated linearly inside the bucket it falls in (bucket
// i spans (bounds[i-1], bounds[i]], the first bucket starts at 0), so
// the estimate is exact when the rank lands on a bucket bound.
// Observations in the overflow bucket are clamped to the last bound —
// there is no upper edge to interpolate toward. Two cases are exact by
// construction: an empty histogram has no percentile and returns NaN
// (callers render "no data" explicitly), and a histogram whose
// observations all fell into one bucket returns that bucket's upper
// bound without interpolating.
double HistogramPercentile(const MetricsSnapshot::HistogramValue& hist,
                           double q);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates the named metric. References stay valid for the
  // registry's lifetime (metrics are never deleted, only Reset()).
  // Creating the same name as two different kinds is a programmer error
  // and aborts via DD_CHECK.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is used on first creation only; later calls return the
  // existing histogram regardless of bounds.
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  // Sets (or replaces) a constant info metric — a build_info-style
  // value-1-with-labels gauge carrying a string fact (e.g.
  // simd.dispatch{mode="avx2"}). Exported by the Prometheus exposition
  // and the JSON run report; survives ResetAll (it describes the
  // process, not a run).
  void SetInfo(const std::string& name, const std::string& label,
               const std::string& value);

  // Zeroes every registered metric (names and handles survive; info
  // metrics are process facts and are kept).
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<MetricsSnapshot::InfoValue> infos_;
};

}  // namespace dd::obs

#endif  // DD_OBS_METRICS_H_
