// Async-signal-safe building blocks for the crash-dump path. Everything
// declared here is callable from a fatal-signal handler: no allocation,
// no locks, no stdio, no C++ exceptions — only raw syscalls
// (write/open/read/close/clock_gettime) and stack buffers. The normal
// (non-handler) diagnostics paths reuse the same primitives through
// DumpSink so the crash dump and the live dump share one format.

#ifndef DD_OBS_DIAG_SIGSAFE_H_
#define DD_OBS_DIAG_SIGSAFE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dd::obs::diag {

// Byte sink for dump composition. Implementations must not allocate
// when used from a signal handler (FdSink qualifies; StringSink is for
// the live-dump path only).
class DumpSink {
 public:
  virtual ~DumpSink() = default;
  virtual void Append(const char* data, std::size_t len) = 0;
};

// Writes straight to a file descriptor, retrying on EINTR and short
// writes. Async-signal-safe.
class FdSink : public DumpSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  void Append(const char* data, std::size_t len) override;

 private:
  int fd_;
};

// Accumulates into a std::string (live dumps, tests). NOT for handlers.
class StringSink : public DumpSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  void Append(const char* data, std::size_t len) override {
    out_->append(data, len);
  }

 private:
  std::string* out_;
};

// Formatting helpers: all write through the sink with stack buffers
// only, so they are as signal-safe as the sink they are given.
void SinkStr(DumpSink& sink, const char* s);
void SinkChar(DumpSink& sink, char c);
void SinkDec(DumpSink& sink, std::uint64_t value);
void SinkSignedDec(DumpSink& sink, std::int64_t value);
void SinkHex(DumpSink& sink, std::uint64_t value);  // "0x" prefixed

// Streams the contents of `path` (a /proc file in practice) into the
// sink with a stack buffer. Returns false when the file cannot be
// opened. Async-signal-safe.
bool SinkFile(DumpSink& sink, const char* path);

// Formats an unsigned decimal into `buf` (capacity >= 21); returns the
// number of characters written, no terminator appended beyond them.
std::size_t FormatDec(char* buf, std::uint64_t value);

// Current CLOCK_MONOTONIC time in nanoseconds via clock_gettime (which
// is async-signal-safe, unlike std::chrono on some libstdc++ paths).
std::uint64_t SigsafeNowNs();

// Resident set size in kilobytes, read from /proc/self/statm with raw
// syscalls. Returns 0 when unavailable. Async-signal-safe.
std::uint64_t SigsafeRssKb();

// The kernel thread id of the calling thread (gettid syscall).
int SigsafeTid();

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_SIGSAFE_H_
