// Offline parser / symbolizer / pretty-printer for `.dddump` files —
// the implementation behind `ddtool diag`. Dumps are written with raw
// backtrace addresses (symbolizing in a crash handler is unsafe), so
// the reader rebases each PC against the module map embedded in the
// dump and, when the module is also loaded in the reader's own address
// space (the normal case: same ddtool binary), resolves symbol names
// through dladdr.

#ifndef DD_OBS_DIAG_DUMP_READER_H_
#define DD_OBS_DIAG_DUMP_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/diag/symbolize.h"  // DiagModule + the shared symbolizer

namespace dd::obs::diag {

struct DiagFrame {
  std::uint64_t pc = 0;
  // Offline enrichment (empty/zero until Symbolize runs or when the
  // module map has no match):
  std::string module;
  std::uint64_t module_offset = 0;  // pc - module load bias (addr2line input)
  std::string symbol;
};

struct DiagBacktrace {
  int tid = 0;
  bool responded = true;
  std::vector<DiagFrame> frames;
};

struct DiagHeartbeatLine {
  std::string name;
  std::int64_t armed = 0;
  std::uint64_t beats = 0;
  std::uint64_t age_ns = 0;
  bool in_stall = false;
};

struct DiagFlightEvent {
  int tid = 0;
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;
  std::string type;
  std::string name;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

struct DiagDump {
  int version = 0;
  std::string reason;
  int signal = 0;
  std::string signal_name;
  std::uint64_t fault_addr = 0;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  std::uint64_t uptime_ns = 0;
  std::uint64_t rss_kb = 0;
  std::vector<DiagBacktrace> backtraces;
  std::vector<DiagHeartbeatLine> heartbeats;
  std::vector<DiagFlightEvent> flight_events;
  std::vector<DiagModule> modules;
  std::string metrics_text;                // prometheus exposition
  std::vector<std::string> ftdc_lines;     // sampler JSONL frames
  bool complete = false;                   // saw the `--- end` marker

  std::size_t TotalFrames() const;
};

// Parses dump text. Returns false (with *error set) only on structural
// failures — missing magic or unparseable header; a truncated dump
// parses with complete=false so a crash cut short mid-write still
// yields everything written before the cut.
bool ParseDiagDump(const std::string& text, DiagDump* out,
                   std::string* error);

// Fills module / module_offset for every frame from the dump's module
// map, and symbol names via dladdr when the module is loaded in this
// process too. Best effort; frames it cannot place keep empty fields.
void SymbolizeDump(DiagDump* dump);

// Human-oriented rendering (what `ddtool diag` prints).
std::string DiagDumpToText(const DiagDump& dump);

// Machine-oriented rendering (`ddtool diag --json`).
std::string DiagDumpToJson(const DiagDump& dump);

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_DUMP_READER_H_
