#include "obs/diag/symbolize.h"

#include <cxxabi.h>
#include <dlfcn.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dd::obs::diag {

namespace {

std::uint64_t ParseHex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::string Demangle(const char* mangled) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string out;
  if (status == 0 && demangled != nullptr) {
    out = demangled;
  } else {
    out = mangled;
  }
  std::free(demangled);
  return out;
}

}  // namespace

bool ParseMapsLine(const std::string& line, DiagModule* mod) {
  const auto toks = SplitWs(line);
  if (toks.size() < 5) return false;
  const std::size_t dash = toks[0].find('-');
  if (dash == std::string::npos) return false;
  mod->start = ParseHex(toks[0].substr(0, dash));
  mod->end = ParseHex(toks[0].substr(dash + 1));
  mod->exec = toks[1].size() >= 3 && toks[1][2] == 'x';
  mod->file_offset = ParseHex(toks[2]);
  mod->path = toks.size() >= 6 ? toks[5] : "";
  return true;
}

std::vector<DiagModule> ParseMapsText(const std::string& text) {
  std::vector<DiagModule> modules;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    DiagModule mod;
    if (ParseMapsLine(text.substr(pos, nl - pos), &mod)) {
      modules.push_back(mod);
    }
    pos = nl + 1;
  }
  return modules;
}

std::vector<DiagModule> SelfModules() {
  std::vector<DiagModule> modules;
  std::ifstream maps("/proc/self/maps");
  std::string line;
  while (std::getline(maps, line)) {
    DiagModule mod;
    if (ParseMapsLine(line, &mod)) modules.push_back(mod);
  }
  return modules;
}

const DiagModule* FindModule(const std::vector<DiagModule>& modules,
                             std::uint64_t pc) {
  for (const DiagModule& mod : modules) {
    if (pc >= mod.start && pc < mod.end) return &mod;
  }
  return nullptr;
}

std::uint64_t ModuleBias(const std::vector<DiagModule>& modules,
                         const std::string& path) {
  std::uint64_t bias = UINT64_MAX;
  for (const DiagModule& mod : modules) {
    if (mod.path != path) continue;
    const std::uint64_t b = mod.start - mod.file_offset;
    if (b < bias) bias = b;
  }
  return bias == UINT64_MAX ? 0 : bias;
}

SymbolizedPc SymbolizePc(std::uint64_t pc,
                         const std::vector<DiagModule>& capture_modules,
                         const std::vector<DiagModule>& own_modules) {
  SymbolizedPc out;
  const DiagModule* mod = FindModule(capture_modules, pc);
  if (mod == nullptr) return out;
  out.module = mod->path;
  const std::uint64_t capture_bias = ModuleBias(capture_modules, mod->path);
  out.module_offset = pc - capture_bias;
  if (mod->path.empty()) return out;
  // Same module loaded here too (normal case: reading a dump from this
  // very binary, or an own-process profile)? Rebase and ask dladdr for
  // a name.
  bool loaded_here = false;
  for (const DiagModule& m : own_modules) {
    if (m.path == mod->path) {
      loaded_here = true;
      break;
    }
  }
  if (!loaded_here) return out;
  const std::uint64_t own_bias = ModuleBias(own_modules, mod->path);
  Dl_info info;
  const auto addr = reinterpret_cast<void*>(out.module_offset + own_bias);
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    out.symbol = Demangle(info.dli_sname);
  }
  return out;
}

std::string SymbolForAddress(const void* addr) {
  Dl_info info;
  if (dladdr(addr, &info) == 0 || info.dli_sname == nullptr) return "";
  return Demangle(info.dli_sname);
}

}  // namespace dd::obs::diag
