#include "obs/diag/watchdog.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/diag/crash_dump.h"
#include "obs/diag/flight_recorder.h"
#include "obs/diag/sigsafe.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dd::obs::diag {

void Heartbeat::Beat() {
  last_beat_ns.store(SigsafeNowNs(), std::memory_order_relaxed);
  beats.fetch_add(1, std::memory_order_relaxed);
  in_stall.store(false, std::memory_order_relaxed);
}

void Heartbeat::Arm() {
  Beat();
  armed.fetch_add(1, std::memory_order_release);
}

void Heartbeat::Disarm() {
  armed.fetch_sub(1, std::memory_order_release);
  in_stall.store(false, std::memory_order_relaxed);
}

namespace {

constexpr std::size_t kMaxHeartbeats = 64;

// Registry mirrors the flight-recorder ring registry: slots published
// with a release store so dump writers iterate without locks.
Heartbeat* g_beat_slots[kMaxHeartbeats] = {nullptr};
std::atomic<std::size_t> g_beat_count{0};
std::mutex g_register_mutex;

// Set from the SIGUSR2 handler; serviced (and cleared) by the watchdog.
std::atomic<bool> g_dump_requested{false};

struct WatchdogState {
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop_requested = false;
  std::atomic<bool> running{false};
  std::atomic<std::uint64_t> stalls{0};
  int interval_ms = 250;
  int stall_timeout_ms = 30000;
};

WatchdogState& State() {
  static WatchdogState* state = new WatchdogState();
  return *state;
}

void CheckHeartbeats(WatchdogState& state) {
  const std::uint64_t now = SigsafeNowNs();
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(state.stall_timeout_ms) * 1000000ULL;
  const std::size_t n = g_beat_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    Heartbeat* hb = g_beat_slots[i];
    if (hb->armed.load(std::memory_order_acquire) <= 0) continue;
    if (hb->in_stall.load(std::memory_order_relaxed)) continue;
    const std::uint64_t last = hb->last_beat_ns.load(std::memory_order_relaxed);
    if (last == 0 || now <= last || now - last < timeout_ns) continue;
    // One dump per silent episode: mark first so a slow dump does not
    // retrigger on the next tick.
    hb->in_stall.store(true, std::memory_order_relaxed);
    state.stalls.fetch_add(1, std::memory_order_relaxed);
    static dd::obs::Counter& stall_counter =
        MetricsRegistry::Global().GetCounter("diag.stalls_detected");
    stall_counter.Add(1);
    FlightRecord(EventType::kStall, hb->name, now - last, 0);
    DD_LOG(WARN) << "watchdog: heartbeat '" << hb->name << "' silent for "
                  << (now - last) / 1000000 << " ms, writing stall dump";
    WriteStallDump(hb->name, now - last);
  }
}

void WatchdogLoop() {
  WatchdogState& state = State();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state.mutex);
      state.cv.wait_for(lock, std::chrono::milliseconds(state.interval_ms),
                        [&] { return state.stop_requested; });
      if (state.stop_requested) break;
    }
    // Keep the crash dump's metrics/FTDC sections at most one tick
    // stale; this is the only place the preamble re-renders steadily.
    RefreshPreamble();
    if (g_dump_requested.exchange(false, std::memory_order_acq_rel)) {
      const std::string path = WriteLiveDumpFile("ondemand", "on_demand");
      DD_LOG(INFO) << "diag: on-demand dump "
                    << (path.empty() ? "failed" : path);
    }
    CheckHeartbeats(state);
  }
  state.running.store(false, std::memory_order_release);
}

}  // namespace

Heartbeat* RegisterHeartbeat(const char* name) {
  std::lock_guard<std::mutex> lock(g_register_mutex);
  const std::size_t n = g_beat_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strncmp(g_beat_slots[i]->name, name,
                     sizeof(g_beat_slots[i]->name)) == 0) {
      return g_beat_slots[i];
    }
  }
  auto* hb = new Heartbeat();
  std::strncpy(hb->name, name, sizeof(hb->name) - 1);
  hb->name[sizeof(hb->name) - 1] = '\0';
  if (n < kMaxHeartbeats) {
    g_beat_slots[n] = hb;
    g_beat_count.store(n + 1, std::memory_order_release);
  }
  // Registry overflow: the heartbeat works but is invisible to the
  // watchdog/dumps; with 64 slots and a handful of fixed names this
  // does not happen in practice.
  return hb;
}

std::size_t RawHeartbeats(const Heartbeat** out, std::size_t max) {
  const std::size_t n = g_beat_count.load(std::memory_order_acquire);
  const std::size_t count = n < max ? n : max;
  for (std::size_t i = 0; i < count; ++i) out[i] = g_beat_slots[i];
  return count;
}

void RequestOnDemandDump() {
  g_dump_requested.store(true, std::memory_order_release);
}

void Watchdog::Start(int interval_ms, int stall_timeout_ms) {
  WatchdogState& state = State();
  if (state.running.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.stop_requested = false;
    state.interval_ms = interval_ms > 0 ? interval_ms : 250;
    state.stall_timeout_ms = stall_timeout_ms > 0 ? stall_timeout_ms : 30000;
  }
  state.stalls.store(0, std::memory_order_relaxed);
  state.running.store(true, std::memory_order_release);
  state.thread = std::thread(&WatchdogLoop);
}

void Watchdog::Stop() {
  WatchdogState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.thread.joinable()) return;
    state.stop_requested = true;
  }
  state.cv.notify_all();
  state.thread.join();
  state.running.store(false, std::memory_order_release);
}

bool Watchdog::Running() {
  return State().running.load(std::memory_order_acquire);
}

std::uint64_t Watchdog::StallsDetected() {
  return State().stalls.load(std::memory_order_relaxed);
}

}  // namespace dd::obs::diag
