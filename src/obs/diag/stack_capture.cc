#include "obs/diag/stack_capture.h"

#include <dirent.h>
#include <execinfo.h>
#include <semaphore.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/diag/sigsafe.h"

namespace dd::obs::diag {

namespace {

// Dedicated real-time signal so we never collide with application use
// of SIGUSR1/SIGUSR2 (SIGUSR2 is the on-demand dump trigger).
int CaptureSignal() { return SIGRTMIN; }

// One capture slot: the handler fills `stack` then publishes with a
// release store on `done`; the coordinator reads `done` with acquire
// before touching `stack`, so the copy is race-free even when a round
// times out mid-write.
struct Slot {
  std::atomic<bool> done{false};
  ThreadStack stack;
};

// Shared state between the coordinator and the per-thread handlers of
// one capture round. All fields are preallocated; the handler only
// touches atomics, its claimed slot, and sem_post.
struct CaptureRound {
  std::atomic<std::size_t> next_slot{0};
  Slot slots[kMaxCapturedThreads];
  sem_t done_sem;
  std::atomic<bool> active{false};
};

CaptureRound g_round;
std::mutex g_capture_mutex;  // one capture round at a time
std::atomic<bool> g_initialized{false};

void CaptureSignalHandler(int /*sig*/) {
  const int saved_errno = errno;
  if (g_round.active.load(std::memory_order_acquire)) {
    const std::size_t slot_idx =
        g_round.next_slot.fetch_add(1, std::memory_order_acq_rel);
    if (slot_idx < kMaxCapturedThreads) {
      Slot& slot = g_round.slots[slot_idx];
      slot.stack.tid = SigsafeTid();
      slot.stack.frame_count = static_cast<std::uint32_t>(
          CaptureOwnStack(slot.stack.frames, kMaxStackFrames));
      slot.stack.complete = true;
      slot.done.store(true, std::memory_order_release);
      sem_post(&g_round.done_sem);
    }
  }
  errno = saved_errno;
}

}  // namespace

std::size_t CaptureOwnStack(void** frames, std::size_t max) {
  const int n = ::backtrace(frames, static_cast<int>(max));
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

void InitStackCapture() {
  bool expected = false;
  if (!g_initialized.compare_exchange_strong(expected, true)) return;

  // Force libgcc's unwinder to load now; the first backtrace() call
  // dlopens it, which must not happen inside a signal handler.
  void* warmup[4];
  ::backtrace(warmup, 4);

  sem_init(&g_round.done_sem, 0, 0);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CaptureSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(CaptureSignal(), &sa, nullptr);
}

std::size_t CaptureAllThreadStacks(ThreadStack* out, int deadline_ms) {
  if (!g_initialized.load(std::memory_order_acquire)) InitStackCapture();
  std::lock_guard<std::mutex> lock(g_capture_mutex);

  // Drain any stale posts from a previous timed-out round.
  while (sem_trywait(&g_round.done_sem) == 0) {
  }
  g_round.next_slot.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxCapturedThreads; ++i) {
    g_round.slots[i].done.store(false, std::memory_order_relaxed);
    g_round.slots[i].stack = ThreadStack{};
  }
  g_round.active.store(true, std::memory_order_release);

  // Enumerate threads and signal each. New threads spawned mid-capture
  // are simply missed — acceptable for a diagnostic snapshot.
  int tids[kMaxCapturedThreads];
  std::size_t tid_count = 0;
  const pid_t pid = ::getpid();
  DIR* dir = ::opendir("/proc/self/task");
  if (dir != nullptr) {
    while (struct dirent* ent = ::readdir(dir)) {
      if (ent->d_name[0] < '0' || ent->d_name[0] > '9') continue;
      if (tid_count >= kMaxCapturedThreads) break;
      const int tid = std::atoi(ent->d_name);
      tids[tid_count++] = tid;
      ::syscall(SYS_tgkill, pid, tid, CaptureSignal());
    }
    ::closedir(dir);
  } else {
    // Fallback: at least the calling thread.
    const int tid = SigsafeTid();
    tids[tid_count++] = tid;
    ::syscall(SYS_tgkill, pid, tid, CaptureSignal());
  }

  // Wait for every signaled thread, bounded by the deadline.
  timespec deadline{};
  clock_gettime(CLOCK_REALTIME, &deadline);
  deadline.tv_sec += deadline_ms / 1000;
  deadline.tv_nsec += static_cast<long>(deadline_ms % 1000) * 1000000L;
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1000000000L;
  }
  std::size_t responded = 0;
  while (responded < tid_count) {
    const int rc = sem_timedwait(&g_round.done_sem, &deadline);
    if (rc == 0) {
      ++responded;
      continue;
    }
    if (errno == EINTR) continue;
    break;  // ETIMEDOUT: report what we have
  }
  g_round.active.store(false, std::memory_order_release);

  // Copy published slots out, then append complete=false entries for
  // threads that never ran the handler.
  std::size_t out_count = 0;
  const std::size_t filled = g_round.next_slot.load(std::memory_order_acquire);
  const std::size_t usable =
      filled < kMaxCapturedThreads ? filled : kMaxCapturedThreads;
  for (std::size_t i = 0; i < usable && out_count < kMaxCapturedThreads; ++i) {
    if (!g_round.slots[i].done.load(std::memory_order_acquire)) continue;
    out[out_count++] = g_round.slots[i].stack;
  }
  for (std::size_t t = 0; t < tid_count; ++t) {
    bool found = false;
    for (std::size_t i = 0; i < out_count; ++i) {
      if (out[i].tid == tids[t]) {
        found = true;
        break;
      }
    }
    if (!found && out_count < kMaxCapturedThreads) {
      ThreadStack missing;
      missing.tid = tids[t];
      missing.complete = false;
      out[out_count++] = missing;
    }
  }
  return out_count;
}

}  // namespace dd::obs::diag
