// Always-on flight recorder: a bounded per-thread ring of recent
// structured events, cheap enough to leave recording on the hot paths
// of a production daemon (DESIGN.md §15). The record path is lock-free
// and wait-free — one relaxed enabled check, one clock read, a 56-byte
// slot write, one release store — and the disabled path is a single
// relaxed atomic load, so instrumented call sites cost ~nothing until
// diagnostics are enabled.
//
// Readers never block writers. The in-process Snapshot() copies every
// ring for live dumps and tests; the crash handler walks the same rings
// through RawRings(), which touches only preallocated memory and
// atomics (async-signal-safe). Event names are captured by value (15
// chars + NUL) rather than by pointer so a corrupted heap cannot turn
// the crash dump into a second crash.
//
// Rings are allocated lazily on each thread's first record and are
// intentionally never freed: a thread that exited hours ago still has
// its last events in the black box.

#ifndef DD_OBS_DIAG_FLIGHT_RECORDER_H_
#define DD_OBS_DIAG_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dd::obs::diag {

enum class EventType : std::uint16_t {
  kNone = 0,
  kSpanBegin = 1,    // trace span entered (name = span name)
  kSpanEnd = 2,      // trace span left (arg0 = elapsed ns)
  kBatch = 3,        // incr batch applied (arg0 = batch seq, arg1 = inserts)
  kDetermined = 4,   // determination finished (arg0 = patterns, arg1 = f64 bits)
  kApproxRound = 5,  // approx refinement round (arg0 = round, arg1 = pairs)
  kHeartbeat = 6,    // watchdog heartbeat transitions
  kServe = 7,        // serve/watch loop progress (arg0 = rows/seq)
  kStall = 8,        // watchdog detected / cleared a stall
  kCustom = 9,
};

const char* EventTypeName(EventType type);
// Inverse of EventTypeName; kNone for unknown names.
EventType EventTypeFromName(const std::string& name);

// One recorded event. Fixed-size POD so rings can be read from a signal
// handler without chasing pointers.
struct FlightEvent {
  std::uint64_t t_ns = 0;   // CLOCK_MONOTONIC at record time
  std::uint64_t seq = 0;    // per-thread sequence number
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  char name[16] = {0};      // truncated copy, always NUL-terminated
  EventType type = EventType::kNone;
  std::uint16_t pad = 0;
  std::uint32_t pad2 = 0;
};
static_assert(sizeof(FlightEvent) == 56, "keep the record path compact");

namespace internal {

// Per-thread ring. head counts events ever recorded by the thread; the
// valid window is [head - min(head, capacity), head). The slot for
// sequence s is events[s & mask].
struct ThreadRing {
  std::atomic<std::uint64_t> head{0};
  std::uint32_t capacity = 0;  // power of two
  std::uint32_t mask = 0;
  int tid = 0;
  FlightEvent* events = nullptr;  // heap, never freed
};

extern std::atomic<bool> g_flight_enabled;

void RecordSlow(EventType type, const char* name, std::uint64_t arg0,
                std::uint64_t arg1);

}  // namespace internal

// The ~1 ns disabled gate every instrumented call site pays.
inline bool FlightRecorderEnabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

// Records one event into the calling thread's ring. `name` is copied
// (first 15 chars); nullptr records an empty name. No-op when disabled.
inline void FlightRecord(EventType type, const char* name,
                         std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) {
  if (!FlightRecorderEnabled()) return;
  internal::RecordSlow(type, name, arg0, arg1);
}

class FlightRecorder {
 public:
  // Turns recording on. `ring_capacity` (rounded up to a power of two,
  // min 16) applies to rings allocated after the call; existing rings
  // keep their size. Idempotent.
  static void Enable(std::size_t ring_capacity = 1024);
  static void Disable();

  // Drops every ring's events (capacity and registration survive).
  // Only meaningful with no concurrent writers racing assertions —
  // tests and run boundaries.
  static void ResetForTest();

  // Events recorded process-wide since the last ResetForTest (includes
  // events already overwritten in their ring).
  static std::uint64_t TotalRecorded();

  struct ThreadEvents {
    int tid = 0;
    std::uint64_t recorded = 0;          // head: events ever recorded
    std::vector<FlightEvent> events;     // oldest first, newest last
  };
  // Copies every ring. Events being written concurrently may be torn;
  // the newest slot per ring is dropped when a writer is mid-record.
  static std::vector<ThreadEvents> Snapshot();

  // Async-signal-safe view of the raw rings for the crash handler:
  // fills `out` with up to `max` ring pointers, returns the count.
  static std::size_t RawRings(const internal::ThreadRing** out,
                              std::size_t max);
};

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_FLIGHT_RECORDER_H_
