#include "obs/diag/crash_dump.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <mutex>
#include <string>

#include "common/parallel.h"
#include "obs/diag/flight_recorder.h"
#include "obs/diag/sigsafe.h"
#include "obs/diag/stack_capture.h"
#include "obs/diag/watchdog.h"
#include "obs/export/prometheus.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace dd::obs::diag {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    default:
      return "SIG?";
  }
}

std::atomic<bool> g_enabled{false};
std::atomic<int> g_crash_fd{-1};
char g_crash_path[512] = {0};
char g_dir[448] = {0};
std::uint64_t g_start_ns = 0;
std::atomic<std::uint64_t> g_dump_counter{0};
// First crashing thread wins; a second fault (other thread, or a crash
// inside the handler itself) goes straight to the default disposition.
std::atomic<bool> g_crashing{false};

struct sigaction g_old_actions[sizeof(kFatalSignals) /
                               sizeof(kFatalSignals[0])];
alignas(16) char g_alt_stack[64 * 1024];

// ---- pre-rendered preamble (metrics + ftdc), double-buffered --------
// The fatal handler cannot render metrics (allocation), so normal-
// context code renders into the inactive buffer and flips the index
// with a release store; the handler reads index with acquire and the
// matching buffer is fully written.
constexpr std::size_t kPreambleCapacity = 256 * 1024;
char g_preamble[2][kPreambleCapacity];
std::size_t g_preamble_len[2] = {0, 0};
std::atomic<int> g_preamble_active{-1};  // -1: never rendered
std::mutex g_preamble_mutex;             // serializes renderers only

std::mutex g_ftdc_mutex;
std::deque<std::string>& FtdcFrames() {
  static std::deque<std::string>* frames = new std::deque<std::string>();
  return *frames;
}
constexpr std::size_t kMaxFtdcFrames = 16;

void SinkEventLine(DumpSink& sink, const FlightEvent& ev) {
  SinkDec(sink, ev.seq);
  SinkChar(sink, ' ');
  SinkDec(sink, ev.t_ns);
  SinkChar(sink, ' ');
  SinkStr(sink, EventTypeName(ev.type));
  SinkChar(sink, ' ');
  // name is NUL-terminated by the recorder; '-' keeps the column count
  // stable for empty names.
  SinkStr(sink, ev.name[0] != '\0' ? ev.name : "-");
  SinkChar(sink, ' ');
  SinkDec(sink, ev.arg0);
  SinkChar(sink, ' ');
  SinkDec(sink, ev.arg1);
  SinkChar(sink, '\n');
}

void SinkHeader(DumpSink& sink, const char* reason) {
  SinkStr(sink, "DDDIAG 1\n");
  SinkStr(sink, "reason: ");
  SinkStr(sink, reason);
  SinkChar(sink, '\n');
}

void SinkProcessLines(DumpSink& sink) {
  SinkStr(sink, "pid: ");
  SinkDec(sink, static_cast<std::uint64_t>(::getpid()));
  SinkChar(sink, '\n');
  SinkStr(sink, "tid: ");
  SinkDec(sink, static_cast<std::uint64_t>(SigsafeTid()));
  SinkChar(sink, '\n');
  SinkStr(sink, "uptime_ns: ");
  const std::uint64_t now = SigsafeNowNs();
  SinkDec(sink, now > g_start_ns ? now - g_start_ns : 0);
  SinkChar(sink, '\n');
  SinkStr(sink, "rss_kb: ");
  SinkDec(sink, SigsafeRssKb());
  SinkChar(sink, '\n');
}

void SinkBacktrace(DumpSink& sink, int tid, void* const* frames,
                   std::size_t count) {
  SinkStr(sink, "--- backtrace tid ");
  SinkDec(sink, static_cast<std::uint64_t>(tid));
  SinkChar(sink, '\n');
  for (std::size_t i = 0; i < count; ++i) {
    SinkHex(sink, reinterpret_cast<std::uint64_t>(frames[i]));
    SinkChar(sink, '\n');
  }
}

void SinkHeartbeats(DumpSink& sink) {
  SinkStr(sink, "--- heartbeats\n");
  const Heartbeat* beats[64];
  const std::size_t n = RawHeartbeats(beats, 64);
  const std::uint64_t now = SigsafeNowNs();
  for (std::size_t i = 0; i < n; ++i) {
    const Heartbeat* hb = beats[i];
    const std::uint64_t last = hb->last_beat_ns.load(std::memory_order_relaxed);
    SinkStr(sink, hb->name);
    SinkStr(sink, " armed=");
    SinkSignedDec(sink, hb->armed.load(std::memory_order_relaxed));
    SinkStr(sink, " beats=");
    SinkDec(sink, hb->beats.load(std::memory_order_relaxed));
    SinkStr(sink, " age_ns=");
    SinkDec(sink, (last != 0 && now > last) ? now - last : 0);
    SinkStr(sink, " in_stall=");
    SinkChar(sink, hb->in_stall.load(std::memory_order_relaxed) ? '1' : '0');
    SinkChar(sink, '\n');
  }
}

// Raw, lock-free ring walk — the handler path. Normal-context dumps go
// through FlightRecorder::Snapshot() for torn-slot filtering, but both
// emit identical line grammar.
void SinkFlightRingsRaw(DumpSink& sink) {
  const internal::ThreadRing* rings[512];
  const std::size_t n = FlightRecorder::RawRings(rings, 512);
  for (std::size_t i = 0; i < n; ++i) {
    const internal::ThreadRing* ring = rings[i];
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    SinkStr(sink, "--- flightrec tid ");
    SinkDec(sink, static_cast<std::uint64_t>(ring->tid));
    SinkChar(sink, '\n');
    const std::uint64_t start =
        head > ring->capacity ? head - ring->capacity : 0;
    for (std::uint64_t s = start; s < head; ++s) {
      SinkEventLine(sink, ring->events[s & ring->mask]);
    }
  }
}

void SinkModules(DumpSink& sink) {
  SinkStr(sink, "--- modules\n");
  SinkFile(sink, "/proc/self/maps");
}

void SinkPreamble(DumpSink& sink) {
  const int active = g_preamble_active.load(std::memory_order_acquire);
  if (active < 0) {
    SinkStr(sink, "--- metrics\n--- ftdc\n");
    return;
  }
  sink.Append(g_preamble[active], g_preamble_len[active]);
}

// The complete async-signal-safe dump body shared by the fatal handler
// and the test hook.
void WriteCrashDumpToFd(int fd, int sig, void* fault_addr) {
  FdSink sink(fd);
  SinkHeader(sink, "crash");
  SinkStr(sink, "signal: ");
  SinkDec(sink, static_cast<std::uint64_t>(sig));
  SinkChar(sink, ' ');
  SinkStr(sink, SignalName(sig));
  SinkChar(sink, '\n');
  SinkStr(sink, "fault_addr: ");
  SinkHex(sink, reinterpret_cast<std::uint64_t>(fault_addr));
  SinkChar(sink, '\n');
  SinkProcessLines(sink);

  void* frames[kMaxStackFrames];
  const std::size_t count = CaptureOwnStack(frames, kMaxStackFrames);
  SinkBacktrace(sink, SigsafeTid(), frames, count);

  SinkHeartbeats(sink);
  SinkFlightRingsRaw(sink);
  SinkModules(sink);
  SinkPreamble(sink);
  SinkStr(sink, "--- end\n");
  ::fsync(fd);
}

void FatalSignalHandler(int sig, siginfo_t* info, void* /*ucontext*/) {
  // Restore defaults first so any fault inside this handler terminates
  // instead of recursing.
  for (std::size_t i = 0;
       i < sizeof(kFatalSignals) / sizeof(kFatalSignals[0]); ++i) {
    signal(kFatalSignals[i], SIG_DFL);
  }
  bool expected = false;
  if (g_crashing.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    const int fd = g_crash_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
      WriteCrashDumpToFd(fd, sig, info != nullptr ? info->si_addr : nullptr);
    }
  }
  ::raise(sig);
}

void OnDemandSignalHandler(int /*sig*/) { RequestOnDemandDump(); }

// Worker-pool bridge (dd::SetPoolHeartbeatFn): every top-level chunk
// arms the shared "pool.chunk" heartbeat for its duration, so a chunk
// that wedges past the stall timeout trips the watchdog.
Heartbeat* g_pool_heartbeat = nullptr;

void PoolHeartbeatShim(bool begin) {
  Heartbeat* hb = g_pool_heartbeat;
  if (hb == nullptr) return;
  if (begin) {
    hb->Arm();
  } else {
    hb->Disarm();
  }
}

void RenderPreambleLocked() {
  // Render into the inactive buffer, then flip.
  const int active = g_preamble_active.load(std::memory_order_relaxed);
  const int next = active == 0 ? 1 : 0;

  std::string text;
  text.reserve(16 * 1024);
  text += "--- metrics\n";
  text += MetricsSnapshotToPrometheus(MetricsRegistry::Global().Snapshot());
  text += "--- ftdc\n";
  {
    std::lock_guard<std::mutex> lock(g_ftdc_mutex);
    for (const std::string& line : FtdcFrames()) {
      text += line;
      if (text.empty() || text.back() != '\n') text += '\n';
    }
  }
  const std::size_t len =
      text.size() < kPreambleCapacity ? text.size() : kPreambleCapacity;
  std::memcpy(g_preamble[next], text.data(), len);
  g_preamble_len[next] = len;
  g_preamble_active.store(next, std::memory_order_release);
}

std::string DumpFileName(const char* kind) {
  const std::uint64_t n =
      g_dump_counter.fetch_add(1, std::memory_order_relaxed);
  std::string name = kind;
  name += '.';
  name += std::to_string(::getpid());
  name += '.';
  name += std::to_string(n);
  name += ".dddump";
  return name;
}

}  // namespace

bool EnableDiagnostics(const DiagOptions& options) {
  bool expected = false;
  if (!g_enabled.compare_exchange_strong(expected, true)) return true;

  g_start_ns = SigsafeNowNs();
  FlightRecorder::Enable(options.flight_ring_capacity);
  InitStackCapture();
  g_pool_heartbeat = RegisterHeartbeat("pool.chunk");
  dd::SetPoolHeartbeatFn(&PoolHeartbeatShim);

  if (!options.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.dir, ec);
    if (ec) {
      DD_LOG(ERROR) << "diag: cannot create dump dir '" << options.dir
                     << "': " << ec.message();
      g_enabled.store(false);
      return false;
    }
    std::strncpy(g_dir, options.dir.c_str(), sizeof(g_dir) - 1);

    std::string path = options.dir;
    if (!path.empty() && path.back() != '/') path += '/';
    path += "crash." + std::to_string(::getpid()) + ".dddump";
    const int fd =
        ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      DD_LOG(ERROR) << "diag: cannot pre-open crash dump '" << path
                     << "': " << std::strerror(errno);
      g_enabled.store(false);
      return false;
    }
    std::strncpy(g_crash_path, path.c_str(), sizeof(g_crash_path) - 1);
    g_crash_fd.store(fd, std::memory_order_release);
  }

  RefreshPreamble();

  if (options.install_signal_handlers) {
    stack_t alt;
    std::memset(&alt, 0, sizeof(alt));
    alt.ss_sp = g_alt_stack;
    alt.ss_size = sizeof(g_alt_stack);
    sigaltstack(&alt, nullptr);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &FatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
    for (std::size_t i = 0;
         i < sizeof(kFatalSignals) / sizeof(kFatalSignals[0]); ++i) {
      sigaction(kFatalSignals[i], &sa, &g_old_actions[i]);
    }

    struct sigaction usr2;
    std::memset(&usr2, 0, sizeof(usr2));
    usr2.sa_handler = &OnDemandSignalHandler;
    sigemptyset(&usr2.sa_mask);
    usr2.sa_flags = SA_RESTART;
    sigaction(SIGUSR2, &usr2, nullptr);
  }

  if (options.start_watchdog) {
    Watchdog::Start(options.watchdog_interval_ms, options.stall_timeout_ms);
  }

  // Clean exits tear down the watchdog and unlink the (still empty)
  // pre-opened crash file, so a directory of dumps only ever holds
  // runs that actually crashed or stalled.
  static const bool atexit_registered = [] {
    std::atexit(&DisableDiagnostics);
    return true;
  }();
  (void)atexit_registered;

  DD_LOG(INFO) << "diag: enabled (dir="
                << (options.dir.empty() ? "<none>" : options.dir)
                << ", stall_timeout_ms=" << options.stall_timeout_ms << ")";
  return true;
}

void DisableDiagnostics() {
  if (!g_enabled.exchange(false)) return;
  dd::SetPoolHeartbeatFn(nullptr);
  Watchdog::Stop();
  FlightRecorder::Disable();
  for (std::size_t i = 0;
       i < sizeof(kFatalSignals) / sizeof(kFatalSignals[0]); ++i) {
    signal(kFatalSignals[i], SIG_DFL);
  }
  signal(SIGUSR2, SIG_DFL);
  const int fd = g_crash_fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    struct stat st;
    const bool empty = ::fstat(fd, &st) == 0 && st.st_size == 0;
    ::close(fd);
    // A clean shutdown leaves no zero-byte crash stub behind.
    if (empty && g_crash_path[0] != '\0') ::unlink(g_crash_path);
  }
  g_crash_path[0] = '\0';
  g_dir[0] = '\0';
}

bool DiagnosticsEnabled() { return g_enabled.load(std::memory_order_acquire); }

std::string DiagDir() { return std::string(g_dir); }

void RefreshPreamble() {
  std::lock_guard<std::mutex> lock(g_preamble_mutex);
  RenderPreambleLocked();
}

void NoteFtdcFrame(const std::string& jsonl_line) {
  std::lock_guard<std::mutex> lock(g_ftdc_mutex);
  std::deque<std::string>& frames = FtdcFrames();
  frames.push_back(jsonl_line);
  while (frames.size() > kMaxFtdcFrames) frames.pop_front();
}

std::string CaptureLiveDump(const char* reason) {
  std::string out;
  out.reserve(32 * 1024);
  StringSink sink(&out);
  SinkHeader(sink, reason);
  SinkProcessLines(sink);

  static ThreadStack stacks[kMaxCapturedThreads];
  static std::mutex stacks_mutex;
  {
    std::lock_guard<std::mutex> lock(stacks_mutex);
    const std::size_t n = CaptureAllThreadStacks(stacks, /*deadline_ms=*/500);
    for (std::size_t i = 0; i < n; ++i) {
      SinkBacktrace(sink, stacks[i].tid, stacks[i].frames,
                    stacks[i].frame_count);
      if (!stacks[i].complete) SinkStr(sink, "(thread did not respond)\n");
    }
  }

  SinkHeartbeats(sink);
  for (const auto& thread : FlightRecorder::Snapshot()) {
    SinkStr(sink, "--- flightrec tid ");
    SinkDec(sink, static_cast<std::uint64_t>(thread.tid));
    SinkChar(sink, '\n');
    for (const FlightEvent& ev : thread.events) SinkEventLine(sink, ev);
  }
  SinkModules(sink);

  // Live dumps can afford a fresh render instead of the preamble.
  RefreshPreamble();
  SinkPreamble(sink);
  SinkStr(sink, "--- end\n");
  return out;
}

std::string WriteLiveDumpFile(const char* kind, const char* reason) {
  if (g_dir[0] == '\0') return "";
  std::string path = g_dir;
  if (path.back() != '/') path += '/';
  path += DumpFileName(kind);
  const std::string dump = CaptureLiveDump(reason);
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return "";
  FdSink sink(fd);
  sink.Append(dump.data(), dump.size());
  ::close(fd);
  return path;
}

void WriteStallDump(const char* heartbeat_name, std::uint64_t silent_ns) {
  std::string reason = "stall";
  const std::string path = WriteLiveDumpFile("stall", reason.c_str());
  if (!path.empty()) {
    DD_LOG(WARN) << "diag: stall dump for heartbeat '" << heartbeat_name
                  << "' (silent " << silent_ns / 1000000 << " ms): " << path;
  }
}

namespace internal {

void WriteCrashDumpForTest(int sig) {
  const int fd = g_crash_fd.load(std::memory_order_acquire);
  if (fd < 0) return;
  WriteCrashDumpToFd(fd, sig, nullptr);
}

}  // namespace internal

}  // namespace dd::obs::diag
