// Stall detection. Long-running loops (worker-pool chunks, the serve
// stdin loop, watch-mode polling) register a named Heartbeat and beat
// it as they make progress; a background watchdog thread checks every
// armed heartbeat each tick and, when one goes silent past the stall
// timeout, captures all-thread stacks and writes a stall dump next to
// where a crash dump would go (DESIGN.md §15).
//
// Heartbeats are preallocated, registered once per name, and never
// freed, so the fatal-signal handler can walk them lock-free just like
// the flight-recorder rings. Beating is two relaxed atomic stores —
// cheap enough for per-batch / per-chunk granularity.

#ifndef DD_OBS_DIAG_WATCHDOG_H_
#define DD_OBS_DIAG_WATCHDOG_H_

#include <atomic>
#include <cstdint>

namespace dd::obs::diag {

struct Heartbeat {
  char name[32] = {0};
  // > 0 while some scope expects progress; nestable so re-entrant use
  // (pool chunk inside a served batch) keeps the outer arm alive.
  std::atomic<int> armed{0};
  std::atomic<std::uint64_t> last_beat_ns{0};
  std::atomic<std::uint64_t> beats{0};
  // Set when a stall dump for the current silent episode has been
  // written; cleared on the next beat so each episode dumps once.
  std::atomic<bool> in_stall{false};

  void Beat();
  void Arm();     // beat + armed++
  void Disarm();  // armed--
};

// Finds or creates the heartbeat with `name` (truncated to 31 chars).
// Never returns nullptr; the object lives for the process lifetime.
Heartbeat* RegisterHeartbeat(const char* name);

// RAII arm/disarm around a monitored region.
class ScopedHeartbeat {
 public:
  explicit ScopedHeartbeat(Heartbeat* hb) : hb_(hb) { hb_->Arm(); }
  ~ScopedHeartbeat() { hb_->Disarm(); }
  ScopedHeartbeat(const ScopedHeartbeat&) = delete;
  ScopedHeartbeat& operator=(const ScopedHeartbeat&) = delete;
  void Beat() { hb_->Beat(); }

 private:
  Heartbeat* hb_;
};

// Async-signal-safe view of all registered heartbeats for dump writers:
// fills `out` with up to `max` pointers, returns the count.
std::size_t RawHeartbeats(const Heartbeat** out, std::size_t max);

// Sets the on-demand dump flag; the next watchdog tick writes a dump.
// Async-signal-safe (this is what the SIGUSR2 handler calls).
void RequestOnDemandDump();

// The background monitor. Started by EnableDiagnostics when
// DiagOptions.start_watchdog is set.
class Watchdog {
 public:
  static void Start(int interval_ms, int stall_timeout_ms);
  static void Stop();
  static bool Running();

  // Test hook: number of stall dumps written since Start.
  static std::uint64_t StallsDetected();
};

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_WATCHDOG_H_
