// Crash / stall / on-demand dump orchestration — the entry point of the
// diag subsystem (DESIGN.md §15).
//
// EnableDiagnostics() pre-opens a dump fd under DiagOptions.dir,
// installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
// SIGILL) on an alternate stack, installs SIGUSR2 as the on-demand dump
// trigger, enables the flight recorder, and optionally starts the
// watchdog. The handlers write a line-oriented text dump using only
// async-signal-safe primitives, then restore the default disposition
// and re-raise, so the process still dies with the original signal.
//
// Dump format (shared by crash / stall / live dumps, parsed by
// `ddtool diag` via dump_reader):
//
//   DDDIAG 1
//   reason: crash|stall|on_demand|live
//   signal: 11 SIGSEGV          (crash dumps only)
//   fault_addr: 0x...           (crash dumps only)
//   pid: ... / tid: ... / uptime_ns: ... / rss_kb: ...
//   --- backtrace tid <N>
//   0x7f.. 0x7f.. ...           (one hex PC per line)
//   --- heartbeats
//   <name> armed=<n> beats=<n> age_ns=<n> in_stall=<0|1>
//   --- flightrec tid <N>
//   <seq> <t_ns> <type-name> <name> <arg0> <arg1>
//   --- modules
//   <verbatim /proc/self/maps>
//   --- metrics
//   <prometheus-rendered snapshot, pre-rendered outside the handler>
//   --- ftdc
//   <recent sampler JSONL frames, pre-rendered outside the handler>
//   --- end
//
// The metrics / FTDC sections come from a double-buffered "preamble"
// refreshed by the watchdog tick (or explicitly), because rendering
// them allocates and therefore cannot happen inside the handler.

#ifndef DD_OBS_DIAG_CRASH_DUMP_H_
#define DD_OBS_DIAG_CRASH_DUMP_H_

#include <cstdint>
#include <string>

namespace dd::obs::diag {

struct DiagOptions {
  // Directory for crash/stall/on-demand dump files. Must exist or be
  // creatable; empty disables file output (live dumps still work).
  std::string dir;
  // A heartbeat armed but silent for longer than this is a stall.
  int stall_timeout_ms = 30000;
  int watchdog_interval_ms = 250;
  std::size_t flight_ring_capacity = 1024;
  bool install_signal_handlers = true;
  bool start_watchdog = true;
};

// Idempotent (second call is a no-op). Returns false when `dir` could
// not be created or the dump fd could not be opened.
bool EnableDiagnostics(const DiagOptions& options);

// Stops the watchdog, disables the flight recorder, restores default
// signal dispositions, and removes the (empty) pre-opened crash file.
void DisableDiagnostics();

bool DiagnosticsEnabled();

// Directory dumps are written to; empty when disabled or unset.
std::string DiagDir();

// Re-renders the metrics + FTDC preamble buffers (normal context only;
// allocates). The watchdog calls this every tick so a crash dump's
// metrics are at most one tick stale.
void RefreshPreamble();

// Feeds one FTDC JSONL line into the bounded recent-frames buffer that
// ends up in the dump's `--- ftdc` section. Called by MetricsSampler.
void NoteFtdcFrame(const std::string& jsonl_line);

// Composes a full dump (all-thread stacks, fresh metrics render) from
// normal context and returns it as text — the `/debug/dump` payload.
std::string CaptureLiveDump(const char* reason);

// CaptureLiveDump + write to `<dir>/<kind>.<pid>.<n>.dddump`. Returns
// the path, or empty on failure / no dir.
std::string WriteLiveDumpFile(const char* kind, const char* reason);

// Watchdog callback: writes a stall dump naming the silent heartbeat.
void WriteStallDump(const char* heartbeat_name, std::uint64_t silent_ns);

namespace internal {
// Test hook: runs the same writer the fatal handler uses (sig/addr
// faked) against the pre-opened fd. Not async-signal-safe to *call*
// concurrently with a real crash, but exercises the AS-safe code path.
void WriteCrashDumpForTest(int sig);
}  // namespace internal

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_CRASH_DUMP_H_
