#include "obs/diag/dump_reader.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/diag/symbolize.h"

namespace dd::obs::diag {

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::uint64_t ParseU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::uint64_t ParseHex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatHex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::size_t DiagDump::TotalFrames() const {
  std::size_t n = 0;
  for (const DiagBacktrace& bt : backtraces) n += bt.frames.size();
  return n;
}

bool ParseDiagDump(const std::string& text, DiagDump* out,
                   std::string* error) {
  *out = DiagDump();
  const auto lines = SplitLines(text);
  if (lines.empty() || !StartsWith(lines[0], "DDDIAG ")) {
    if (error != nullptr) *error = "missing DDDIAG magic";
    return false;
  }
  out->version = std::atoi(lines[0].c_str() + 7);
  if (out->version != 1) {
    if (error != nullptr) {
      *error = "unsupported dump version " + std::to_string(out->version);
    }
    return false;
  }

  enum class Section {
    kHeader,
    kBacktrace,
    kHeartbeats,
    kFlightrec,
    kModules,
    kMetrics,
    kFtdc,
    kDone,
  };
  Section section = Section::kHeader;
  int current_tid = 0;

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "--- ")) {
      const std::string rest = line.substr(4);
      if (StartsWith(rest, "backtrace tid ")) {
        section = Section::kBacktrace;
        DiagBacktrace bt;
        bt.tid = std::atoi(rest.c_str() + 14);
        out->backtraces.push_back(bt);
      } else if (rest == "heartbeats") {
        section = Section::kHeartbeats;
      } else if (StartsWith(rest, "flightrec tid ")) {
        section = Section::kFlightrec;
        current_tid = std::atoi(rest.c_str() + 14);
      } else if (rest == "modules") {
        section = Section::kModules;
      } else if (rest == "metrics") {
        section = Section::kMetrics;
      } else if (rest == "ftdc") {
        section = Section::kFtdc;
      } else if (rest == "end") {
        out->complete = true;
        section = Section::kDone;
      }
      continue;
    }

    switch (section) {
      case Section::kHeader: {
        const std::size_t colon = line.find(": ");
        if (colon == std::string::npos) break;
        const std::string key = line.substr(0, colon);
        const std::string value = line.substr(colon + 2);
        if (key == "reason") {
          out->reason = value;
        } else if (key == "signal") {
          const auto toks = SplitWs(value);
          if (!toks.empty()) out->signal = std::atoi(toks[0].c_str());
          if (toks.size() > 1) out->signal_name = toks[1];
        } else if (key == "fault_addr") {
          out->fault_addr = ParseHex(value);
        } else if (key == "pid") {
          out->pid = ParseU64(value);
        } else if (key == "tid") {
          out->tid = ParseU64(value);
        } else if (key == "uptime_ns") {
          out->uptime_ns = ParseU64(value);
        } else if (key == "rss_kb") {
          out->rss_kb = ParseU64(value);
        }
        break;
      }
      case Section::kBacktrace: {
        if (out->backtraces.empty()) break;
        if (line == "(thread did not respond)") {
          out->backtraces.back().responded = false;
          break;
        }
        if (StartsWith(line, "0x")) {
          DiagFrame frame;
          frame.pc = ParseHex(line);
          out->backtraces.back().frames.push_back(frame);
        }
        break;
      }
      case Section::kHeartbeats: {
        const auto toks = SplitWs(line);
        if (toks.size() < 5) break;
        DiagHeartbeatLine hb;
        hb.name = toks[0];
        for (std::size_t t = 1; t < toks.size(); ++t) {
          if (StartsWith(toks[t], "armed=")) {
            hb.armed = std::atoll(toks[t].c_str() + 6);
          } else if (StartsWith(toks[t], "beats=")) {
            hb.beats = ParseU64(toks[t].substr(6));
          } else if (StartsWith(toks[t], "age_ns=")) {
            hb.age_ns = ParseU64(toks[t].substr(7));
          } else if (StartsWith(toks[t], "in_stall=")) {
            hb.in_stall = toks[t].substr(9) == "1";
          }
        }
        out->heartbeats.push_back(hb);
        break;
      }
      case Section::kFlightrec: {
        const auto toks = SplitWs(line);
        if (toks.size() != 6) break;
        DiagFlightEvent ev;
        ev.tid = current_tid;
        ev.seq = ParseU64(toks[0]);
        ev.t_ns = ParseU64(toks[1]);
        ev.type = toks[2];
        ev.name = toks[3] == "-" ? "" : toks[3];
        ev.arg0 = ParseU64(toks[4]);
        ev.arg1 = ParseU64(toks[5]);
        out->flight_events.push_back(ev);
        break;
      }
      case Section::kModules: {
        DiagModule mod;
        if (ParseMapsLine(line, &mod)) out->modules.push_back(mod);
        break;
      }
      case Section::kMetrics:
        out->metrics_text += line;
        out->metrics_text += '\n';
        break;
      case Section::kFtdc:
        if (!line.empty()) out->ftdc_lines.push_back(line);
        break;
      case Section::kDone:
        break;
    }
  }
  return true;
}

void SymbolizeDump(DiagDump* dump) {
  const std::vector<DiagModule> own = SelfModules();
  for (DiagBacktrace& bt : dump->backtraces) {
    for (DiagFrame& frame : bt.frames) {
      SymbolizedPc sym = SymbolizePc(frame.pc, dump->modules, own);
      frame.module = std::move(sym.module);
      frame.module_offset = sym.module_offset;
      frame.symbol = std::move(sym.symbol);
    }
  }
}

std::string DiagDumpToText(const DiagDump& dump) {
  std::string out;
  out += "dump: reason=" + dump.reason;
  if (dump.signal != 0) {
    out += " signal=" + std::to_string(dump.signal) + " (" +
           dump.signal_name + ") fault_addr=" + FormatHex(dump.fault_addr);
  }
  out += "\n";
  out += "process: pid=" + std::to_string(dump.pid) +
         " tid=" + std::to_string(dump.tid) +
         " uptime_s=" + std::to_string(dump.uptime_ns / 1000000000ULL) +
         " rss_kb=" + std::to_string(dump.rss_kb) + "\n";
  out += dump.complete ? "status: complete\n"
                       : "status: TRUNCATED (no --- end marker)\n";

  for (const DiagBacktrace& bt : dump.backtraces) {
    out += "\nthread " + std::to_string(bt.tid);
    if (!bt.responded) out += " (did not respond)";
    out += ":\n";
    int idx = 0;
    for (const DiagFrame& frame : bt.frames) {
      out += "  #" + std::to_string(idx++) + " " + FormatHex(frame.pc);
      if (!frame.module.empty()) {
        out += " " + frame.module + "+" + FormatHex(frame.module_offset);
      }
      if (!frame.symbol.empty()) out += " " + frame.symbol;
      out += "\n";
    }
  }

  if (!dump.heartbeats.empty()) {
    out += "\nheartbeats:\n";
    for (const DiagHeartbeatLine& hb : dump.heartbeats) {
      out += "  " + hb.name + " armed=" + std::to_string(hb.armed) +
             " beats=" + std::to_string(hb.beats) +
             " age_ms=" + std::to_string(hb.age_ns / 1000000ULL) +
             (hb.in_stall ? " IN_STALL" : "") + "\n";
    }
  }

  if (!dump.flight_events.empty()) {
    out += "\nflight recorder (" + std::to_string(dump.flight_events.size()) +
           " events):\n";
    for (const DiagFlightEvent& ev : dump.flight_events) {
      out += "  tid=" + std::to_string(ev.tid) +
             " seq=" + std::to_string(ev.seq) +
             " t_ns=" + std::to_string(ev.t_ns) + " " + ev.type;
      if (!ev.name.empty()) out += " " + ev.name;
      out += " arg0=" + std::to_string(ev.arg0) +
             " arg1=" + std::to_string(ev.arg1) + "\n";
    }
  }

  if (!dump.metrics_text.empty()) {
    out += "\nmetrics:\n";
    std::size_t pos = 0;
    while (pos < dump.metrics_text.size()) {
      std::size_t nl = dump.metrics_text.find('\n', pos);
      if (nl == std::string::npos) nl = dump.metrics_text.size();
      out += "  " + dump.metrics_text.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }

  if (!dump.ftdc_lines.empty()) {
    out += "\nftdc frames (" + std::to_string(dump.ftdc_lines.size()) +
           "):\n";
    for (const std::string& line : dump.ftdc_lines) {
      out += "  " + line + "\n";
    }
  }

  out += "\nmodules: " + std::to_string(dump.modules.size()) +
         " mappings\n";
  return out;
}

std::string DiagDumpToJson(const DiagDump& dump) {
  std::string out = "{";
  out += "\"version\":" + std::to_string(dump.version);
  out += ",\"reason\":\"";
  AppendJsonEscaped(out, dump.reason);
  out += "\",\"signal\":" + std::to_string(dump.signal);
  out += ",\"signal_name\":\"";
  AppendJsonEscaped(out, dump.signal_name);
  out += "\",\"fault_addr\":\"" + FormatHex(dump.fault_addr) + "\"";
  out += ",\"pid\":" + std::to_string(dump.pid);
  out += ",\"tid\":" + std::to_string(dump.tid);
  out += ",\"uptime_ns\":" + std::to_string(dump.uptime_ns);
  out += ",\"rss_kb\":" + std::to_string(dump.rss_kb);
  out += ",\"complete\":" + std::string(dump.complete ? "true" : "false");

  out += ",\"backtraces\":[";
  for (std::size_t b = 0; b < dump.backtraces.size(); ++b) {
    const DiagBacktrace& bt = dump.backtraces[b];
    if (b != 0) out += ",";
    out += "{\"tid\":" + std::to_string(bt.tid) +
           ",\"responded\":" + (bt.responded ? "true" : "false") +
           ",\"frames\":[";
    for (std::size_t f = 0; f < bt.frames.size(); ++f) {
      const DiagFrame& frame = bt.frames[f];
      if (f != 0) out += ",";
      out += "{\"pc\":\"" + FormatHex(frame.pc) + "\"";
      if (!frame.module.empty()) {
        out += ",\"module\":\"";
        AppendJsonEscaped(out, frame.module);
        out += "\",\"module_offset\":\"" + FormatHex(frame.module_offset) +
               "\"";
      }
      if (!frame.symbol.empty()) {
        out += ",\"symbol\":\"";
        AppendJsonEscaped(out, frame.symbol);
        out += "\"";
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  out += ",\"heartbeats\":[";
  for (std::size_t i = 0; i < dump.heartbeats.size(); ++i) {
    const DiagHeartbeatLine& hb = dump.heartbeats[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"";
    AppendJsonEscaped(out, hb.name);
    out += "\",\"armed\":" + std::to_string(hb.armed) +
           ",\"beats\":" + std::to_string(hb.beats) +
           ",\"age_ns\":" + std::to_string(hb.age_ns) +
           ",\"in_stall\":" + (hb.in_stall ? "true" : "false") + "}";
  }
  out += "]";

  out += ",\"flight_events\":[";
  for (std::size_t i = 0; i < dump.flight_events.size(); ++i) {
    const DiagFlightEvent& ev = dump.flight_events[i];
    if (i != 0) out += ",";
    out += "{\"tid\":" + std::to_string(ev.tid) +
           ",\"seq\":" + std::to_string(ev.seq) +
           ",\"t_ns\":" + std::to_string(ev.t_ns) + ",\"type\":\"";
    AppendJsonEscaped(out, ev.type);
    out += "\",\"name\":\"";
    AppendJsonEscaped(out, ev.name);
    out += "\",\"arg0\":" + std::to_string(ev.arg0) +
           ",\"arg1\":" + std::to_string(ev.arg1) + "}";
  }
  out += "]";

  out += ",\"module_count\":" + std::to_string(dump.modules.size());
  out += ",\"ftdc_frame_count\":" + std::to_string(dump.ftdc_lines.size());
  out += "}";
  return out;
}

}  // namespace dd::obs::diag
