#include "obs/diag/sigsafe.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>

namespace dd::obs::diag {

namespace {

// Resolved at load time so the signal handler never calls sysconf()
// (not on the async-signal-safe list).
const long g_page_size = ::sysconf(_SC_PAGESIZE);

}  // namespace

void FdSink::Append(const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd_, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Best effort: a full disk must not wedge the handler.
    }
    off += static_cast<std::size_t>(n);
  }
}

void SinkStr(DumpSink& sink, const char* s) {
  std::size_t len = 0;
  while (s[len] != '\0') ++len;
  sink.Append(s, len);
}

void SinkChar(DumpSink& sink, char c) { sink.Append(&c, 1); }

std::size_t FormatDec(char* buf, std::uint64_t value) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void SinkDec(DumpSink& sink, std::uint64_t value) {
  char buf[21];
  sink.Append(buf, FormatDec(buf, value));
}

void SinkSignedDec(DumpSink& sink, std::int64_t value) {
  if (value < 0) {
    SinkChar(sink, '-');
    // Negate via unsigned arithmetic so INT64_MIN stays defined.
    SinkDec(sink, ~static_cast<std::uint64_t>(value) + 1);
  } else {
    SinkDec(sink, static_cast<std::uint64_t>(value));
  }
}

void SinkHex(DumpSink& sink, std::uint64_t value) {
  char buf[18];
  buf[0] = '0';
  buf[1] = 'x';
  std::size_t n = 2;
  int shift = 60;
  // Skip leading zero nibbles but always emit at least one digit.
  while (shift > 0 && ((value >> shift) & 0xf) == 0) shift -= 4;
  for (; shift >= 0; shift -= 4) {
    const unsigned nibble = (value >> shift) & 0xf;
    buf[n++] = static_cast<char>(nibble < 10 ? '0' + nibble
                                             : 'a' + (nibble - 10));
  }
  sink.Append(buf, n);
}

bool SinkFile(DumpSink& sink, const char* path) {
  int fd;
  do {
    fd = ::open(path, O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    sink.Append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

std::uint64_t SigsafeNowNs() {
  timespec ts{};
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t SigsafeRssKb() {
  int fd;
  do {
    fd = ::open("/proc/self/statm", O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return 0;
  char buf[128];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf) - 1);
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  // statm: "<size> <resident> ..." in pages.
  std::size_t i = 0;
  while (i < static_cast<std::size_t>(n) && buf[i] != ' ') ++i;
  while (i < static_cast<std::size_t>(n) && buf[i] == ' ') ++i;
  std::uint64_t pages = 0;
  while (i < static_cast<std::size_t>(n) && buf[i] >= '0' && buf[i] <= '9') {
    pages = pages * 10 + static_cast<std::uint64_t>(buf[i] - '0');
    ++i;
  }
  return pages *
         static_cast<std::uint64_t>(g_page_size > 0 ? g_page_size : 4096) /
         1024;
}

int SigsafeTid() {
  return static_cast<int>(::syscall(SYS_gettid));
}

}  // namespace dd::obs::diag
