// Shared PC symbolization for diagnostics and profiling. Both consumers
// capture raw backtrace() addresses (symbolizing in a signal handler is
// unsafe) and resolve them offline against /proc/<pid>/maps module
// maps: the crash-dump reader (`ddtool diag`) rebases PCs from the
// crashed process's map into this process before asking dladdr, and the
// sampling profiler (src/obs/prof) symbolizes its own addresses
// directly. Factoring the logic here keeps the two paths byte-identical
// — a frame that symbolizes one way in a crash dump symbolizes the
// same way in a flamegraph.

#ifndef DD_OBS_DIAG_SYMBOLIZE_H_
#define DD_OBS_DIAG_SYMBOLIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dd::obs::diag {

// One /proc/<pid>/maps mapping. `exec` mirrors the x permission bit;
// `path` is empty for anonymous regions.
struct DiagModule {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t file_offset = 0;
  bool exec = false;
  std::string path;
};

// Parses one maps line:
//   "7f3a12000000-7f3a12200000 r-xp 00020000 08:01 123 /usr/lib/x.so"
// Returns false on truncated / malformed lines (fewer than five
// fields, missing the start-end dash). Anonymous mappings (no path
// field) parse with an empty path.
bool ParseMapsLine(const std::string& line, DiagModule* mod);

// Every parseable line of a maps-format text, in order. Malformed
// lines are skipped, matching the tolerant dump-reader behavior.
std::vector<DiagModule> ParseMapsText(const std::string& text);

// This process's own /proc/self/maps.
std::vector<DiagModule> SelfModules();

// The mapping containing `pc`, or nullptr.
const DiagModule* FindModule(const std::vector<DiagModule>& modules,
                             std::uint64_t pc);

// Load bias of the module mapped at `path`: the start of its lowest
// mapping minus that mapping's file offset. 0 when the path is absent.
std::uint64_t ModuleBias(const std::vector<DiagModule>& modules,
                         const std::string& path);

// Offline enrichment of one PC.
struct SymbolizedPc {
  std::string module;               // mapping path ("" when unplaced)
  std::uint64_t module_offset = 0;  // pc - module load bias (addr2line input)
  std::string symbol;               // demangled; "" when unresolved
};

// Places `pc` (captured in the address space described by
// `capture_modules`) in its module, rebases it to a module-relative
// offset, and — when the same module is loaded in this process too
// (`own_modules`) — resolves a demangled symbol name through dladdr.
// Best effort: fields the lookup cannot fill stay empty/zero.
SymbolizedPc SymbolizePc(std::uint64_t pc,
                         const std::vector<DiagModule>& capture_modules,
                         const std::vector<DiagModule>& own_modules);

// Demangled symbol name for an address in this process ("" when dladdr
// has no dynamic symbol covering it). The fast path for own-process
// profiles, where no rebasing is needed.
std::string SymbolForAddress(const void* addr);

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_SYMBOLIZE_H_
