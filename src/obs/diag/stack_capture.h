// All-thread stack capture for stall dumps and live dumps. A capture
// signal (SIGRTMIN, reserved for diagnostics) is sent to every thread
// listed in /proc/self/task; each thread's handler writes raw
// backtrace() addresses into a preassigned slot and posts a semaphore
// (sem_post is async-signal-safe). The coordinator waits with a
// deadline so a thread wedged in uninterruptible sleep cannot wedge the
// dump too — missing threads are reported as incomplete rather than
// blocking forever.
//
// Addresses are raw; symbolization happens offline in `ddtool diag`
// (dump_reader) against the module map embedded in the same dump.

#ifndef DD_OBS_DIAG_STACK_CAPTURE_H_
#define DD_OBS_DIAG_STACK_CAPTURE_H_

#include <cstddef>
#include <cstdint>

namespace dd::obs::diag {

inline constexpr std::size_t kMaxStackFrames = 64;
inline constexpr std::size_t kMaxCapturedThreads = 256;

struct ThreadStack {
  int tid = 0;
  bool complete = false;  // handler ran and filled the frames
  std::uint32_t frame_count = 0;
  void* frames[kMaxStackFrames] = {nullptr};
};

// Installs the capture-signal handler and warms up backtrace() (libgcc
// lazily loads its unwinder on first use, which is not signal-safe, so
// we force that load now). Idempotent; called from EnableDiagnostics.
void InitStackCapture();

// Captures the stacks of every thread in the process (including the
// caller) into `out[0..kMaxCapturedThreads)`. Returns the number of
// entries written. Threads that did not respond within `deadline_ms`
// appear with complete=false. Safe from normal (non-handler) context
// only — the fatal-signal path records just its own stack instead.
std::size_t CaptureAllThreadStacks(ThreadStack* out, int deadline_ms);

// Fills `frames` with up to `max` raw return addresses of the calling
// thread via backtrace(). Async-signal-safe once InitStackCapture has
// run. Returns the frame count.
std::size_t CaptureOwnStack(void** frames, std::size_t max);

}  // namespace dd::obs::diag

#endif  // DD_OBS_DIAG_STACK_CAPTURE_H_
