#include "obs/diag/flight_recorder.h"

#include <cstring>
#include <mutex>

#include "obs/diag/sigsafe.h"

namespace dd::obs::diag {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "none";
    case EventType::kSpanBegin:
      return "span_begin";
    case EventType::kSpanEnd:
      return "span_end";
    case EventType::kBatch:
      return "batch";
    case EventType::kDetermined:
      return "determined";
    case EventType::kApproxRound:
      return "approx_round";
    case EventType::kHeartbeat:
      return "heartbeat";
    case EventType::kServe:
      return "serve";
    case EventType::kStall:
      return "stall";
    case EventType::kCustom:
      return "custom";
  }
  return "unknown";
}

EventType EventTypeFromName(const std::string& name) {
  for (std::uint16_t i = 0;
       i <= static_cast<std::uint16_t>(EventType::kCustom); ++i) {
    const auto type = static_cast<EventType>(i);
    if (name == EventTypeName(type)) return type;
  }
  return EventType::kNone;
}

namespace internal {

std::atomic<bool> g_flight_enabled{false};

namespace {

constexpr std::size_t kMaxRings = 512;

// Registry of every ring ever created. Slots are claimed with a single
// fetch_add and published with a release store so the crash handler can
// iterate [0, g_ring_count) without locks.
ThreadRing* g_ring_slots[kMaxRings] = {nullptr};
std::atomic<std::size_t> g_ring_count{0};

std::atomic<std::size_t> g_ring_capacity{1024};

// Serializes ring creation only (first record per thread) — never on
// the steady-state record path.
std::mutex g_create_mutex;

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

ThreadRing* CreateRing() {
  const std::size_t cap =
      RoundUpPow2(g_ring_capacity.load(std::memory_order_relaxed));
  auto* ring = new ThreadRing();
  ring->capacity = static_cast<std::uint32_t>(cap);
  ring->mask = static_cast<std::uint32_t>(cap - 1);
  ring->tid = SigsafeTid();
  ring->events = new FlightEvent[cap]();

  std::lock_guard<std::mutex> lock(g_create_mutex);
  const std::size_t idx = g_ring_count.load(std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    // Registry full: the ring still records for its own thread but will
    // not appear in dumps. 512 threads is far beyond the pool sizes the
    // system runs with, so this is a safety valve, not a real path.
    return ring;
  }
  g_ring_slots[idx] = ring;
  g_ring_count.store(idx + 1, std::memory_order_release);
  return ring;
}

ThreadRing* ThisThreadRing() {
  static thread_local ThreadRing* t_ring = nullptr;
  if (t_ring == nullptr) t_ring = CreateRing();
  return t_ring;
}

}  // namespace

void RecordSlow(EventType type, const char* name, std::uint64_t arg0,
                std::uint64_t arg1) {
  ThreadRing* ring = ThisThreadRing();
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring->events[seq & ring->mask];
  slot.t_ns = SigsafeNowNs();
  slot.seq = seq;
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.type = type;
  if (name != nullptr) {
    std::size_t i = 0;
    for (; i < sizeof(slot.name) - 1 && name[i] != '\0'; ++i) {
      slot.name[i] = name[i];
    }
    slot.name[i] = '\0';
  } else {
    slot.name[0] = '\0';
  }
  // Publish: a reader that observes head > seq sees the full slot.
  ring->head.store(seq + 1, std::memory_order_release);
}

}  // namespace internal

void FlightRecorder::Enable(std::size_t ring_capacity) {
  if (ring_capacity < 16) ring_capacity = 16;
  internal::g_ring_capacity.store(ring_capacity, std::memory_order_relaxed);
  internal::g_flight_enabled.store(true, std::memory_order_release);
}

void FlightRecorder::Disable() {
  internal::g_flight_enabled.store(false, std::memory_order_release);
}

void FlightRecorder::ResetForTest() {
  std::lock_guard<std::mutex> lock(internal::g_create_mutex);
  const std::size_t n = internal::g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    internal::ThreadRing* ring = internal::g_ring_slots[i];
    std::memset(static_cast<void*>(ring->events), 0,
                sizeof(FlightEvent) * ring->capacity);
    ring->head.store(0, std::memory_order_release);
  }
}

std::uint64_t FlightRecorder::TotalRecorded() {
  std::uint64_t total = 0;
  const std::size_t n = internal::g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    total += internal::g_ring_slots[i]->head.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<FlightRecorder::ThreadEvents> FlightRecorder::Snapshot() {
  std::vector<ThreadEvents> out;
  const std::size_t n = internal::g_ring_count.load(std::memory_order_acquire);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const internal::ThreadRing* ring = internal::g_ring_slots[i];
    ThreadEvents te;
    te.tid = ring->tid;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    te.recorded = head;
    if (head == 0) {
      out.push_back(std::move(te));
      continue;
    }
    // The slot at `head` may be mid-write by its owner; everything in
    // [start, head) was published with release stores before we read
    // head with acquire, so those slots are stable (the owner only
    // rewrites a slot after advancing head past it by `capacity`, and
    // we re-check head afterwards to drop any such overwrites).
    std::uint64_t start = head > ring->capacity ? head - ring->capacity : 0;
    std::vector<FlightEvent> events;
    events.reserve(static_cast<std::size_t>(head - start));
    for (std::uint64_t s = start; s < head; ++s) {
      events.push_back(ring->events[s & ring->mask]);
    }
    // Slots overwritten while we copied belong to sequences >= head2 -
    // capacity; drop copies whose recorded seq no longer matches.
    const std::uint64_t head2 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t valid_from =
        head2 > ring->capacity ? head2 - ring->capacity : 0;
    for (std::uint64_t s = start; s < head; ++s) {
      FlightEvent& ev = events[static_cast<std::size_t>(s - start)];
      if (s >= valid_from && ev.seq == s) te.events.push_back(ev);
    }
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t FlightRecorder::RawRings(const internal::ThreadRing** out,
                                     std::size_t max) {
  const std::size_t n = internal::g_ring_count.load(std::memory_order_acquire);
  const std::size_t count = n < max ? n : max;
  for (std::size_t i = 0; i < count; ++i) out[i] = internal::g_ring_slots[i];
  return count;
}

}  // namespace dd::obs::diag
