#include "obs/report.h"

#include <cstdio>

#include "common/string_util.h"
#include "obs/json_util.h"
#include "obs/prof/profiler.h"

namespace dd::obs {

namespace {

void AppendSpanJson(const SpanStats& span, std::string* out) {
  *out += "{\"name\":\"";
  *out += JsonEscape(span.name);
  *out += "\"";
  *out += StrFormat(",\"count\":%llu",
                    static_cast<unsigned long long>(span.count));
  *out += StrFormat(",\"total_ms\":%.6f", span.total_seconds * 1e3);
  *out += StrFormat(",\"self_ms\":%.6f", span.self_seconds * 1e3);
  *out += ",\"children\":[";
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) *out += ",";
    AppendSpanJson(span.children[i], out);
  }
  *out += "]}";
}

void AppendSpanText(const SpanStats& span, double parent_total, int depth,
                    std::string* out) {
  const double share = parent_total > 0.0
                           ? 100.0 * span.total_seconds / parent_total
                           : 100.0;
  *out += StrFormat("%*s%-*s %10.3fms %9.3fms %8llu %6.1f%%\n", 2 * depth, "",
                    32 - 2 * depth, span.name.c_str(),
                    span.total_seconds * 1e3, span.self_seconds * 1e3,
                    static_cast<unsigned long long>(span.count), share);
  for (const SpanStats& child : span.children) {
    AppendSpanText(child, span.total_seconds, depth + 1, out);
  }
}

}  // namespace

RunReport CaptureRunReport(const std::string& name) {
  RunReport report;
  report.name = name;
  report.trace = Tracer::Global().Snapshot();
  report.metrics = MetricsRegistry::Global().Snapshot();
  report.pool = PoolStatsCollector::Global().Snapshot();
  report.profile_json = prof::Profiler::Global().SummaryJson();
  return report;
}

std::string SpanStatsToJson(const SpanStats& span) {
  std::string out;
  AppendSpanJson(span, &out);
  return out;
}

std::string TraceSnapshotToJson(const TraceSnapshot& trace) {
  std::string out = "[";
  for (std::size_t i = 0; i < trace.roots.size(); ++i) {
    if (i > 0) out += ",";
    AppendSpanJson(trace.roots[i], &out);
  }
  out += "]";
  return out;
}

std::string MetricsSnapshotToJson(const MetricsSnapshot& metrics) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(metrics.counters[i].name);
    out += "\":";
    out += StrFormat(
        "%llu", static_cast<unsigned long long>(metrics.counters[i].value));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(metrics.gauges[i].name);
    out += "\":";
    out += StrFormat("%.6f", metrics.gauges[i].value);
  }
  out += "},\"infos\":{";
  for (std::size_t i = 0; i < metrics.infos.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(metrics.infos[i].name);
    out += "\":\"";
    out += JsonEscape(metrics.infos[i].value);
    out += "\"";
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    const auto& h = metrics.histograms[i];
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(h.name);
    out += "\":{\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ",";
      if (b < h.bounds.size()) {
        out += StrFormat("{\"le\":%g,\"count\":%llu}", h.bounds[b],
                         static_cast<unsigned long long>(h.buckets[b]));
      } else {
        out += StrFormat("{\"le\":\"inf\",\"count\":%llu}",
                         static_cast<unsigned long long>(h.buckets[b]));
      }
    }
    out += StrFormat("],\"count\":%llu,\"sum\":%.6f",
                     static_cast<unsigned long long>(h.count), h.sum);
    // Percentiles of an empty histogram are NaN — not valid JSON — so
    // the keys are omitted until there is data.
    if (h.count > 0) {
      out += StrFormat(",\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f",
                       HistogramPercentile(h, 0.50),
                       HistogramPercentile(h, 0.95),
                       HistogramPercentile(h, 0.99));
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string PoolSnapshotToJson(const PoolStatsSnapshot& pool) {
  std::string out = "{\"phases\":[";
  for (std::size_t i = 0; i < pool.phases.size(); ++i) {
    const PoolPhaseStats& phase = pool.phases[i];
    if (i > 0) out += ",";
    out += "{\"phase\":\"";
    out += JsonEscape(phase.phase);
    out += "\"";
    out += StrFormat(",\"invocations\":%llu",
                     static_cast<unsigned long long>(phase.invocations));
    out += StrFormat(",\"chunks\":%llu",
                     static_cast<unsigned long long>(phase.chunks));
    out += StrFormat(",\"items\":%llu",
                     static_cast<unsigned long long>(phase.items));
    out += StrFormat(",\"wall_ms\":%.6f",
                     static_cast<double>(phase.wall_ns) * 1e-6);
    out += StrFormat(",\"busy_ms\":%.6f",
                     static_cast<double>(phase.busy_ns) * 1e-6);
    out += StrFormat(",\"speedup_bound\":%.3f", phase.SpeedupBound());
    out += StrFormat(",\"imbalance_pct\":%.1f", phase.ImbalancePercent());
    out += StrFormat(",\"caller_share\":%.3f", phase.CallerShare());
    out += ",\"workers\":[";
    for (std::size_t w = 0; w < phase.workers.size(); ++w) {
      const PoolWorkerStats& worker = phase.workers[w];
      if (w > 0) out += ",";
      out += StrFormat(
          "{\"slot\":%d,\"caller\":%s,\"chunks\":%llu,\"items\":%llu,"
          "\"busy_ms\":%.6f,\"wait_ms\":%.6f}",
          worker.slot, worker.caller ? "true" : "false",
          static_cast<unsigned long long>(worker.chunks),
          static_cast<unsigned long long>(worker.items),
          static_cast<double>(worker.busy_ns) * 1e-6,
          static_cast<double>(worker.wait_ns) * 1e-6);
    }
    out += "]}";
  }
  out += StrFormat("],\"dropped_events\":%llu}",
                   static_cast<unsigned long long>(pool.dropped_events));
  return out;
}

std::string RunReportToJson(const RunReport& report) {
  std::string out = "{\"name\":\"";
  out += JsonEscape(report.name);
  out += "\",\"spans\":";
  out += TraceSnapshotToJson(report.trace);
  out += ",\"metrics\":";
  out += MetricsSnapshotToJson(report.metrics);
  if (!report.pool.empty()) {
    out += ",\"parallel\":";
    out += PoolSnapshotToJson(report.pool);
  }
  if (!report.profile_json.empty()) {
    // Already JSON (ProfileSummaryJson) — embedded verbatim.
    out += ",\"profile\":";
    out += report.profile_json;
  }
  out += "}";
  return out;
}

std::string RunReportToText(const RunReport& report) {
  std::string out;
  if (!report.name.empty()) out += "run: " + report.name + "\n";
  out += StrFormat("%-32s %12s %11s %8s %7s\n", "span", "total", "self",
                   "count", "share");
  const double grand_total = report.trace.TotalSeconds();
  for (const SpanStats& root : report.trace.roots) {
    AppendSpanText(root, grand_total, 0, &out);
  }
  bool header = false;
  for (const auto& c : report.metrics.counters) {
    if (c.value == 0) continue;
    if (!header) {
      out += "counters:\n";
      header = true;
    }
    out += StrFormat("  %-40s %llu\n", c.name.c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  header = false;
  for (const auto& info : report.metrics.infos) {
    if (!header) {
      out += "info:\n";
      header = true;
    }
    out += StrFormat("  %-40s %s=%s\n", info.name.c_str(), info.label.c_str(),
                     info.value.c_str());
  }
  header = false;
  for (const auto& g : report.metrics.gauges) {
    if (g.value == 0.0) continue;
    if (!header) {
      out += "gauges:\n";
      header = true;
    }
    out += StrFormat("  %-40s %.6f\n", g.name.c_str(), g.value);
  }
  header = false;
  for (const auto& h : report.metrics.histograms) {
    if (h.count == 0) continue;
    if (!header) {
      out += "histograms:\n";
      header = true;
    }
    out += StrFormat(
        "  %-40s count=%llu sum=%.3f mean=%.4f p50=%.4f p95=%.4f p99=%.4f\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
        h.sum / static_cast<double>(h.count), HistogramPercentile(h, 0.50),
        HistogramPercentile(h, 0.95), HistogramPercentile(h, 0.99));
  }
  if (!report.pool.empty()) {
    out += StrFormat("parallel: %-22s %9s %9s %8s %10s %7s\n", "phase",
                     "wall", "busy", "speedup", "imbalance", "caller");
    for (const PoolPhaseStats& phase : report.pool.phases) {
      out += StrFormat(
          "  %-30s %7.1fms %7.1fms %7.2fx %9.1f%% %6.1f%%\n",
          phase.phase.empty() ? "(unlabeled)" : phase.phase.c_str(),
          static_cast<double>(phase.wall_ns) * 1e-6,
          static_cast<double>(phase.busy_ns) * 1e-6, phase.SpeedupBound(),
          phase.ImbalancePercent(), 100.0 * phase.CallerShare());
    }
    if (report.pool.dropped_events > 0) {
      out += StrFormat(
          "  (%llu events dropped to ring wrap; totals undercount)\n",
          static_cast<unsigned long long>(report.pool.dropped_events));
    }
  }
  return out;
}

Status WriteRunReportJson(const RunReport& report, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = RunReportToJson(report);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool flushed = std::fputc('\n', file) != EOF;
  if (std::fclose(file) != 0 || written != json.size() || !flushed) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace dd::obs
