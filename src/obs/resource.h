// Process memory accounting: RSS sampling plus the `mem.*` byte-size
// gauges that the core data structures (matching relation, value-pair
// cache, grid providers, tuple store) publish through their
// MemoryUsageBytes() hooks.
//
// Gauge naming: every structure gauge is `mem.<structure>_bytes`
// (mem.matching_bytes, mem.value_cache_bytes, mem.grid_bytes,
// mem.delta_grid_bytes, mem.tuple_store_bytes); the process-level pair
// is mem.rss_bytes / mem.rss_peak_bytes. UpdateRssGauges() is called
// by the FTDC sampler on every tick and by the /metrics handler before
// rendering, so scrapes always carry a fresh RSS reading.

#ifndef DD_OBS_RESOURCE_H_
#define DD_OBS_RESOURCE_H_

#include <cstdint>
#include <string>

namespace dd::obs {

// Current resident-set size in bytes (Linux: VmRSS from
// /proc/self/status; falls back to 0 when unreadable).
std::uint64_t CurrentRssBytes();

// Peak resident-set size in bytes (Linux: VmHWM from /proc/self/status,
// falling back to getrusage ru_maxrss).
std::uint64_t PeakRssBytes();

// Sets mem.rss_bytes and mem.rss_peak_bytes in the global registry.
void UpdateRssGauges();

// Sets the gauge `mem.<structure>_bytes` to `bytes`. `structure` must
// be a registry-safe name fragment (e.g. "matching", "value_cache").
void SetMemoryGauge(const std::string& structure, std::uint64_t bytes);

}  // namespace dd::obs

#endif  // DD_OBS_RESOURCE_H_
