#include "obs/resource.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace dd::obs {

namespace {

// Reads a "<key>:   <n> kB" line from /proc/self/status; returns 0
// when the file or key is unavailable (non-Linux fallback handled by
// the callers).
std::uint64_t ProcStatusKb(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') continue;
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) {
      kb = static_cast<std::uint64_t>(value);
    }
    break;
  }
  std::fclose(file);
  return kb;
}

}  // namespace

std::uint64_t CurrentRssBytes() { return ProcStatusKb("VmRSS") * 1024; }

std::uint64_t PeakRssBytes() {
  const std::uint64_t hwm = ProcStatusKb("VmHWM") * 1024;
  if (hwm != 0) return hwm;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

void UpdateRssGauges() {
  static Gauge& rss = MetricsRegistry::Global().GetGauge("mem.rss_bytes");
  static Gauge& peak = MetricsRegistry::Global().GetGauge("mem.rss_peak_bytes");
  rss.Set(static_cast<double>(CurrentRssBytes()));
  peak.Set(static_cast<double>(PeakRssBytes()));

  // Process-lifetime gauges ride along with every RSS refresh (scrapes
  // and sampler ticks both call this). The anchor is the first call in
  // this process, which is close enough to exec for dashboards; exact
  // kernel start time would need /proc parsing for no practical gain.
  static const auto start_wall = std::chrono::system_clock::now();
  static const auto start_steady = std::chrono::steady_clock::now();
  static Gauge& uptime =
      MetricsRegistry::Global().GetGauge("process.uptime_seconds");
  static Gauge& start_time =
      MetricsRegistry::Global().GetGauge("process.start_time_seconds");
  uptime.Set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_steady)
                 .count());
  start_time.Set(std::chrono::duration<double>(
                     start_wall.time_since_epoch())
                     .count());
}

void SetMemoryGauge(const std::string& structure, std::uint64_t bytes) {
  MetricsRegistry::Global()
      .GetGauge("mem." + structure + "_bytes")
      .Set(static_cast<double>(bytes));
}

}  // namespace dd::obs
