#include "obs/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dd::obs {

namespace {

constexpr LogLevel kDefaultLevel = LogLevel::kWarn;
constexpr int kUninitialized = -1;

std::atomic<int> g_level{kUninitialized};
std::atomic<int> g_verbosity{0};
std::atomic<LogSink> g_sink{nullptr};

void DefaultSink(LogLevel level, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "%s %s:%d] %s\n", LogLevelName(level), file, line,
               message.c_str());
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Reads DD_LOG_LEVEL / DD_LOG_VERBOSITY into the globals.
int LevelFromEnv() {
  const char* env = std::getenv("DD_LOG_LEVEL");
  LogLevel level = kDefaultLevel;
  if (env != nullptr && *env != '\0') {
    ParseLogLevel(env, &level);  // Unparsable input keeps the default.
  }
  const char* venv = std::getenv("DD_LOG_VERBOSITY");
  if (venv != nullptr && *venv != '\0') {
    g_verbosity.store(std::atoi(venv), std::memory_order_relaxed);
  }
  return static_cast<int>(level);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kVerbose:
      return "V";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  // Tolerate surrounding whitespace: "DD_LOG_LEVEL=info " from a shell
  // export or an .env file should not silently fall back to the
  // default.
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  const std::string lower = ToLower(text.substr(begin, end - begin));
  if (lower == "verbose" || lower == "debug" || lower == "0") {
    *level = LogLevel::kVerbose;
  } else if (lower == "info" || lower == "1") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *level = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *level = LogLevel::kError;
  } else if (lower == "off" || lower == "none" || lower == "4") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

LogLevel GetLogLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUninitialized) {
    level = LevelFromEnv();
    // First-wins is fine: concurrent initializers compute the same value
    // unless a SetLogLevel raced in, which then takes precedence.
    int expected = kUninitialized;
    g_level.compare_exchange_strong(expected, level,
                                    std::memory_order_relaxed);
    level = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ReloadLogLevelFromEnv() {
  g_verbosity.store(0, std::memory_order_relaxed);
  g_level.store(LevelFromEnv(), std::memory_order_relaxed);
}

int GetLogVerbosity() { return g_verbosity.load(std::memory_order_relaxed); }

void SetLogVerbosity(int verbosity) {
  g_verbosity.store(verbosity, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
}

namespace internal {

LogMessage::~LogMessage() {
  // Strip the directory: "src/core/da.cc" -> "da.cc" keeps records
  // short and stable across build trees.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  LogSink sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) sink = &DefaultSink;
  sink(level_, base, line_, stream_.str());
}

}  // namespace internal

}  // namespace dd::obs
