#include "obs/explain/recorder.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace dd::obs {

namespace {

// Skyline fronts are capped so dominance checks stay O(small); once the
// cap is hit new front points are still force-kept (a safe superset)
// but no longer considered as dominators.
constexpr std::size_t kMaxFrontSize = 512;

std::vector<double> EvalLatencyBoundsUs() {
  return {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
}

}  // namespace

const char* ExplainOutcomeName(ExplainOutcome outcome) {
  switch (outcome) {
    case ExplainOutcome::kEvaluated:
      return "evaluated";
    case ExplainOutcome::kPrunedS0:
      return "pruned_s0";
    case ExplainOutcome::kPrunedS1:
      return "pruned_s1";
    case ExplainOutcome::kPrunedZeroConf:
      return "pruned_zero_conf";
  }
  return "unknown";
}

const char* ExplainBoundName(ExplainBound bound) {
  switch (bound) {
    case ExplainBound::kInitial:
      return "initial";
    case ExplainBound::kAdvanced:
      return "advanced";
    case ExplainBound::kTopL:
      return "top_l";
  }
  return "unknown";
}

// Per-thread event storage. Only the owning thread writes; the mutex
// guards just the ring (the 1-in-sample_every slow path plus forced
// keeps), so the per-event fast path is a handful of relaxed atomics.
// Snapshot() reads counters relaxed and the ring under the mutex.
// Buffers are registered once and reused across runs via the epoch
// check.
struct ExplainRecorder::ThreadBuffer {
  std::mutex mu;  // guards ring + write_pos only
  std::atomic<std::uint64_t> epoch{~std::uint64_t{0}};
  std::vector<ExplainEvent> ring;
  std::size_t write_pos = 0;
  // Events until the next sampled one (0 = the next event is kept);
  // a countdown instead of tick % sample_every keeps the per-event
  // path free of integer division.
  std::atomic<std::uint64_t> until_sample{0};
  std::atomic<std::uint64_t> sampled_out{0};
  std::atomic<std::uint64_t> dropped{0};
  // Owner-thread-only state (never read by Snapshot): D(ϕ[X]) of the
  // last BeginLhs and the running Pareto front over (support,
  // confidence, quality) of force-kept evaluated events.
  double current_d = 0.0;
  std::vector<std::array<double, 3>> front;

  void ResetFor(std::uint64_t new_epoch, std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ring.clear();
      ring.reserve(std::min(capacity, std::size_t{1} << 12));
      write_pos = 0;
    }
    until_sample.store(0, std::memory_order_relaxed);
    sampled_out.store(0, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
    current_d = 0.0;
    front.clear();
    // Last: publishes the reset to Snapshot()'s epoch filter.
    epoch.store(new_epoch, std::memory_order_release);
  }
};

ExplainRecorder& ExplainRecorder::Global() {
  static ExplainRecorder* recorder = new ExplainRecorder();
  return *recorder;
}

ExplainRecorder* ExplainRecorder::Active() {
  ExplainRecorder& recorder = Global();
  return recorder.enabled() ? &recorder : nullptr;
}

void ExplainRecorder::Enable(const ExplainConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  if (config_.sample_every == 0) config_.sample_every = 1;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  sample_every_.store(config_.sample_every, std::memory_order_relaxed);
  ring_capacity_.store(config_.ring_capacity, std::memory_order_relaxed);
  track_skyline_.store(config_.track_skyline, std::memory_order_relaxed);
  run_label_.clear();
  estimated_.store(false, std::memory_order_relaxed);
  rhs_dims_ = 0;
  dmax_ = 0;
  lhs_.clear();
  lhs_seen_.store(0, std::memory_order_relaxed);
  lhs_bounded_out_.store(0, std::memory_order_relaxed);
  candidates_.store(0, std::memory_order_relaxed);
  evaluated_.store(0, std::memory_order_relaxed);
  pruned_s0_.store(0, std::memory_order_relaxed);
  pruned_s1_.store(0, std::memory_order_relaxed);
  pruned_zero_conf_.store(0, std::memory_order_relaxed);
  offered_.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
  // A new epoch lazily invalidates every thread's buffer; the release
  // store on enabled_ publishes the config to recording threads.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void ExplainRecorder::Disable() {
  if (!enabled_.exchange(false, std::memory_order_acq_rel)) return;
  // Registry counters are flushed once per recording rather than
  // incremented per event — the recorder's own totals are the source of
  // truth and the registry only needs run-granularity deltas.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("explain.lhs_seen")
      .Add(lhs_seen_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.lhs_bounded_out")
      .Add(lhs_bounded_out_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.candidates")
      .Add(candidates_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.evaluated")
      .Add(evaluated_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.offered")
      .Add(offered_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.pruned_s0")
      .Add(pruned_s0_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.pruned_s1")
      .Add(pruned_s1_.load(std::memory_order_relaxed));
  registry.GetCounter("explain.pruned_zero_conf")
      .Add(pruned_zero_conf_.load(std::memory_order_relaxed));

  std::uint64_t recorded = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t dropped = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  for (const auto& buffer : buffers) {
    if (buffer->epoch.load(std::memory_order_acquire) != epoch) continue;
    sampled_out += buffer->sampled_out.load(std::memory_order_relaxed);
    dropped += buffer->dropped.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffer->mu);
    recorded += buffer->ring.size();
  }
  registry.GetCounter("explain.events_recorded").Add(recorded);
  registry.GetCounter("explain.events_sampled_out").Add(sampled_out);
  registry.GetCounter("explain.events_dropped").Add(dropped);
}

void ExplainRecorder::SetRunLabel(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  run_label_ = label;
}

void ExplainRecorder::SetEstimated(bool estimated) {
  estimated_.store(estimated, std::memory_order_relaxed);
}

void ExplainRecorder::SetRhsGeometry(std::size_t dims, int dmax) {
  std::lock_guard<std::mutex> lock(mu_);
  rhs_dims_ = dims;
  dmax_ = dmax;
}

void ExplainRecorder::AddCandidates(std::uint64_t n) {
  candidates_.fetch_add(n, std::memory_order_relaxed);
}

std::uint32_t ExplainRecorder::BeginLhs(const ExplainLevels& levels,
                                        std::uint64_t lhs_count,
                                        std::uint64_t total,
                                        double initial_bound, bool advanced) {
  lhs_seen_.fetch_add(1, std::memory_order_relaxed);

  ThreadBuffer& tb = EnsureFresh(LocalBuffer());
  tb.current_d =
      total > 0 ? static_cast<double>(lhs_count) / static_cast<double>(total)
                : 0.0;

  std::lock_guard<std::mutex> lock(mu_);
  ExplainLhsInfo info;
  info.seq = static_cast<std::uint32_t>(lhs_.size());
  info.levels = levels;
  info.lhs_count = lhs_count;
  info.total = total;
  info.initial_bound = initial_bound;
  info.advanced = advanced;
  lhs_.push_back(std::move(info));
  return lhs_.back().seq;
}

bool ExplainRecorder::WillSampleNextEvent() {
  ThreadBuffer& tb = EnsureFresh(LocalBuffer());
  return tb.until_sample.load(std::memory_order_relaxed) == 0;
}

void ExplainRecorder::RecordEvaluated(std::uint32_t lhs_seq,
                                      std::uint32_t rhs_index,
                                      std::uint32_t rank,
                                      std::uint64_t xy_count,
                                      double confidence, double quality,
                                      double cq, double bound,
                                      ExplainBound bound_kind, bool offered,
                                      double eval_ns) {
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  if (offered) offered_.fetch_add(1, std::memory_order_relaxed);
  if (eval_ns > 0.0) {
    static Histogram& latency = MetricsRegistry::Global().GetHistogram(
        "explain.eval_latency_us", EvalLatencyBoundsUs());
    latency.Observe(eval_ns / 1e3);
  }

  ExplainEvent event;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.lhs_seq = lhs_seq;
  event.rhs_index = rhs_index;
  event.rank = rank;
  event.outcome = ExplainOutcome::kEvaluated;
  event.bound_kind = bound_kind;
  event.offered = offered;
  event.xy_count = xy_count;
  event.confidence = confidence;
  event.quality = quality;
  event.cq = cq;
  event.bound = bound;
  event.eval_ns = eval_ns;
  Push(event, /*skyline_support=*/0.0);
}

void ExplainRecorder::RecordPruned(std::uint32_t lhs_seq,
                                   std::uint32_t rhs_index,
                                   std::uint32_t rank, ExplainOutcome outcome,
                                   double bound, ExplainBound bound_kind) {
  switch (outcome) {
    case ExplainOutcome::kPrunedS0:
      pruned_s0_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ExplainOutcome::kPrunedS1:
      pruned_s1_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ExplainOutcome::kPrunedZeroConf:
      pruned_zero_conf_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ExplainOutcome::kEvaluated:
      return;  // Programmer error; ignore rather than corrupt totals.
  }

  ExplainEvent event;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.lhs_seq = lhs_seq;
  event.rhs_index = rhs_index;
  event.rank = rank;
  event.outcome = outcome;
  event.bound_kind = bound_kind;
  event.bound = bound;
  Push(event, /*skyline_support=*/-1.0);
}

void ExplainRecorder::NoteLhsBoundedOut() {
  lhs_bounded_out_.fetch_add(1, std::memory_order_relaxed);
}

ExplainRecorder::ThreadBuffer& ExplainRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(buffer);
  }
  return *buffer;
}

ExplainRecorder::ThreadBuffer& ExplainRecorder::EnsureFresh(ThreadBuffer& tb) {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (tb.epoch.load(std::memory_order_relaxed) != epoch) {
    tb.ResetFor(epoch, ring_capacity_.load(std::memory_order_relaxed));
  }
  return tb;
}

void ExplainRecorder::Push(ExplainEvent event, double skyline_support) {
  ThreadBuffer& tb = EnsureFresh(LocalBuffer());

  bool forced = event.offered;
  if (event.outcome == ExplainOutcome::kEvaluated && skyline_support >= 0.0 &&
      track_skyline_.load(std::memory_order_relaxed)) {
    const std::array<double, 3> point = {tb.current_d * event.confidence,
                                         event.confidence, event.quality};
    bool dominated = false;
    for (std::size_t i = 0; i < tb.front.size(); ++i) {
      const auto& f = tb.front[i];
      if (f[0] >= point[0] && f[1] >= point[1] && f[2] >= point[2] &&
          (f[0] > point[0] || f[1] > point[1] || f[2] > point[2])) {
        dominated = true;
        // Move-to-front: strong dominators kill most subsequent events,
        // so surfacing this one keeps the scan O(1) in the common case
        // (front membership is order-independent, so this is safe).
        if (i > 0) std::swap(tb.front[i], tb.front[i - 1]);
        break;
      }
    }
    if (!dominated) {
      forced = true;
      if (tb.front.size() < kMaxFrontSize) {
        tb.front.erase(
            std::remove_if(tb.front.begin(), tb.front.end(),
                           [&](const std::array<double, 3>& f) {
                             return point[0] >= f[0] && point[1] >= f[1] &&
                                    point[2] >= f[2];
                           }),
            tb.front.end());
        tb.front.push_back(point);
      }
    }
  }

  const std::uint64_t until =
      tb.until_sample.load(std::memory_order_relaxed);
  const bool sampled = until == 0;
  tb.until_sample.store(
      sampled ? sample_every_.load(std::memory_order_relaxed) - 1 : until - 1,
      std::memory_order_relaxed);
  if (!forced && !sampled) {
    tb.sampled_out.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.forced = forced;
  const std::size_t capacity = ring_capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(tb.mu);
  if (tb.ring.size() < capacity) {
    tb.ring.push_back(event);
  } else {
    tb.ring[tb.write_pos] = event;
    tb.write_pos = (tb.write_pos + 1) % capacity;
    tb.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

ExplainSnapshot ExplainRecorder::Snapshot() const {
  ExplainSnapshot snapshot;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.config = config_;
    snapshot.run_label = run_label_;
    snapshot.estimated = estimated_.load(std::memory_order_relaxed);
    snapshot.rhs_dims = rhs_dims_;
    snapshot.dmax = dmax_;
    snapshot.lhs = lhs_;
    buffers = buffers_;
  }
  snapshot.waterfall.lhs_seen = lhs_seen_.load(std::memory_order_relaxed);
  snapshot.waterfall.lhs_bounded_out =
      lhs_bounded_out_.load(std::memory_order_relaxed);
  snapshot.waterfall.candidates = candidates_.load(std::memory_order_relaxed);
  snapshot.waterfall.evaluated = evaluated_.load(std::memory_order_relaxed);
  snapshot.waterfall.pruned_s0 = pruned_s0_.load(std::memory_order_relaxed);
  snapshot.waterfall.pruned_s1 = pruned_s1_.load(std::memory_order_relaxed);
  snapshot.waterfall.pruned_zero_conf =
      pruned_zero_conf_.load(std::memory_order_relaxed);
  snapshot.waterfall.offered = offered_.load(std::memory_order_relaxed);

  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  for (const auto& buffer : buffers) {
    if (buffer->epoch.load(std::memory_order_acquire) != epoch) {
      continue;  // Stale (previous run).
    }
    snapshot.sampled_out += buffer->sampled_out.load(std::memory_order_relaxed);
    snapshot.dropped += buffer->dropped.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffer->mu);
    snapshot.events.insert(snapshot.events.end(), buffer->ring.begin(),
                           buffer->ring.end());
  }
  snapshot.recorded = snapshot.events.size();
  std::sort(snapshot.events.begin(), snapshot.events.end(),
            [](const ExplainEvent& a, const ExplainEvent& b) {
              return a.seq < b.seq;
            });
  return snapshot;
}

}  // namespace dd::obs
