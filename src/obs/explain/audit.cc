#include "obs/explain/audit.h"

#include <cinttypes>

#include "common/string_util.h"
#include "obs/json_util.h"

namespace dd {

namespace {

std::string LevelsToJson(const obs::ExplainLevels& levels) {
  std::string out = "[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", levels[i]);
  }
  out += "]";
  return out;
}

std::string LevelsToText(const Levels& levels) {
  std::string out = "<";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", levels[i]);
  }
  out += ">";
  return out;
}

// Full-precision double: round-trips exactly, so the audit's winner
// decomposition can be compared to the run report byte-for-byte.
std::string Full(double v) { return StrFormat("%.17g", v); }

std::string PatternToJson(const DeterminedPattern& p) {
  // Pairs of append (not "literal" + temporary) sidestep a GCC 12
  // -Wrestrict false positive (PR105329).
  std::string out = "{";
  out += "\"lhs\": ";
  out += LevelsToJson(p.pattern.lhs);
  out += ", \"rhs\": ";
  out += LevelsToJson(p.pattern.rhs);
  out += StrFormat(", \"lhs_count\": %" PRIu64, p.measures.lhs_count);
  out += StrFormat(", \"xy_count\": %" PRIu64, p.measures.xy_count);
  out += ", \"d\": ";
  out += Full(p.measures.d);
  out += ", \"confidence\": ";
  out += Full(p.measures.confidence);
  out += ", \"quality\": ";
  out += Full(p.measures.quality);
  out += ", \"support\": ";
  out += Full(p.measures.support);
  out += ", \"utility\": ";
  out += Full(p.utility);
  out += "}";
  return out;
}

std::string AttrListToJson(const std::vector<std::string>& attrs) {
  std::string out = "[";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    // Sequential appends sidestep a GCC 12 -Wrestrict false positive
    // (PR105329) on "literal" + std::string.
    out += '"';
    out += obs::JsonEscape(attrs[i]);
    out += '"';
  }
  out += "]";
  return out;
}

}  // namespace

obs::ExplainLevels DecodeRhsLevels(std::uint32_t rhs_index, std::size_t dims,
                                   int dmax) {
  obs::ExplainLevels levels(dims, 0);
  const std::uint32_t base = static_cast<std::uint32_t>(dmax) + 1;
  std::uint32_t v = rhs_index;
  for (std::size_t d = 0; d < dims; ++d) {
    levels[d] = static_cast<int>(v % base);
    v /= base;
  }
  return levels;
}

std::string ExplainAuditToJson(const obs::ExplainSnapshot& snapshot,
                               const DetermineResult& result,
                               const RuleSpec& rule,
                               const UtilityOptions& utility) {
  const obs::ExplainWaterfall& w = snapshot.waterfall;
  std::string out = "{\n";
  out += "  \"name\": \"determination_explain\",\n";
  out += "  \"run\": \"";
  out += obs::JsonEscape(snapshot.run_label);
  out += "\",\n";
  out += StrFormat("  \"estimated\": %s,\n",
                   snapshot.estimated ? "true" : "false");
  out += "  \"rule\": {\"lhs\": ";
  out += AttrListToJson(rule.lhs);
  out += ", \"rhs\": ";
  out += AttrListToJson(rule.rhs);
  out += "},\n";
  out += StrFormat(
      "  \"config\": {\"sample_every\": %zu, \"ring_capacity\": %zu, "
      "\"track_skyline\": %s},\n",
      snapshot.config.sample_every, snapshot.config.ring_capacity,
      snapshot.config.track_skyline ? "true" : "false");
  out += StrFormat("  \"lattice\": {\"rhs_dims\": %zu, \"dmax\": %d},\n",
                   snapshot.rhs_dims, snapshot.dmax);
  out += StrFormat(
      "  \"waterfall\": {\"lhs_seen\": %" PRIu64 ", \"lhs_bounded_out\": %"
      PRIu64 ", \"candidates\": %" PRIu64 ", \"evaluated\": %" PRIu64
      ", \"pruned_s0\": %" PRIu64 ", \"pruned_s1\": %" PRIu64
      ", \"pruned_zero_conf\": %" PRIu64 ", \"offered\": %" PRIu64
      ", \"answers\": %zu, \"accounted\": %s},\n",
      w.lhs_seen, w.lhs_bounded_out, w.candidates, w.evaluated, w.pruned_s0,
      w.pruned_s1, w.pruned_zero_conf, w.offered, result.patterns.size(),
      w.Accounted() ? "true" : "false");
  out += StrFormat(
      "  \"recorder\": {\"recorded\": %" PRIu64 ", \"sampled_out\": %" PRIu64
      ", \"dropped\": %" PRIu64 "},\n",
      snapshot.recorded, snapshot.sampled_out, snapshot.dropped);
  out += "  \"prior_mean_cq\": ";
  out += Full(result.prior_mean_cq);
  out += ",\n";
  out += StrFormat("  \"prior_strength\": %s,\n",
                   Full(utility.prior_strength).c_str());

  if (!result.patterns.empty()) {
    out += "  \"winner\": ";
    out += PatternToJson(result.patterns[0]);
    out += ",\n";
  } else {
    out += "  \"winner\": null,\n";
  }
  if (result.patterns.size() > 1) {
    out += "  \"runner_up\": ";
    out += PatternToJson(result.patterns[1]);
    out += ",\n";
    const DeterminedPattern& a = result.patterns[0];
    const DeterminedPattern& b = result.patterns[1];
    out += StrFormat(
        "  \"why\": \"winner leads runner-up by %s utility "
        "(dD=%s, dC=%s, dQ=%s)\",\n",
        Full(a.utility - b.utility).c_str(),
        Full(a.measures.d - b.measures.d).c_str(),
        Full(a.measures.confidence - b.measures.confidence).c_str(),
        Full(a.measures.quality - b.measures.quality).c_str());
  } else {
    out += "  \"runner_up\": null,\n";
    out += result.patterns.empty()
               ? "  \"why\": \"no candidate exceeded the bound\",\n"
               : "  \"why\": \"single answer; no runner-up to compare\",\n";
  }

  out += "  \"lhs\": [\n";
  for (std::size_t i = 0; i < snapshot.lhs.size(); ++i) {
    const obs::ExplainLhsInfo& info = snapshot.lhs[i];
    out += StrFormat(
        "    {\"seq\": %u, \"levels\": %s, \"count\": %" PRIu64
        ", \"total\": %" PRIu64 ", \"initial_bound\": %s, \"advanced\": %s}%s\n",
        info.seq, LevelsToJson(info.levels).c_str(), info.lhs_count,
        info.total, Full(info.initial_bound).c_str(),
        info.advanced ? "true" : "false",
        i + 1 < snapshot.lhs.size() ? "," : "");
  }
  out += "  ],\n";

  out += "  \"events\": [\n";
  for (std::size_t i = 0; i < snapshot.events.size(); ++i) {
    const obs::ExplainEvent& e = snapshot.events[i];
    const obs::ExplainLevels rhs_levels =
        DecodeRhsLevels(e.rhs_index, snapshot.rhs_dims, snapshot.dmax);
    out += StrFormat(
        "    {\"seq\": %" PRIu64 ", \"lhs_seq\": %u, \"rhs\": %s, "
        "\"rank\": %u, \"outcome\": \"%s\", \"bound_kind\": \"%s\", "
        "\"offered\": %s, \"forced\": %s",
        e.seq, e.lhs_seq, LevelsToJson(rhs_levels).c_str(), e.rank,
        obs::ExplainOutcomeName(e.outcome), obs::ExplainBoundName(e.bound_kind),
        e.offered ? "true" : "false", e.forced ? "true" : "false");
    if (e.outcome == obs::ExplainOutcome::kEvaluated) {
      out += StrFormat(
          ", \"xy_count\": %" PRIu64
          ", \"confidence\": %s, \"quality\": %s, \"cq\": %s",
          e.xy_count, Full(e.confidence).c_str(), Full(e.quality).c_str(),
          Full(e.cq).c_str());
      if (e.eval_ns > 0.0) {
        out += StrFormat(", \"eval_ns\": %s", Full(e.eval_ns).c_str());
      }
    }
    out += StrFormat(", \"bound\": %s}%s\n", Full(e.bound).c_str(),
                     i + 1 < snapshot.events.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string PruningWaterfallToText(const obs::ExplainSnapshot& snapshot,
                                   const DetermineResult& result) {
  const obs::ExplainWaterfall& w = snapshot.waterfall;
  std::string out;
  out += "Pruning waterfall";
  if (!snapshot.run_label.empty()) {
    out += " (";
    out += snapshot.run_label;
    out += ")";
  }
  if (snapshot.estimated) out += " [estimated counts]";
  out += "\n";
  out += StrFormat("  %-30s %12s %12s\n", "stage", "count", "remaining");
  std::uint64_t remaining = w.candidates;
  out += StrFormat("  %-30s %12" PRIu64 " %12" PRIu64 "\n", "candidates",
                   w.candidates, remaining);
  remaining -= w.pruned_s0;
  out += StrFormat("  %-30s %12" PRIu64 " %12" PRIu64 "\n",
                   "- pruned by S0 (Prop. 1)", w.pruned_s0, remaining);
  remaining -= w.pruned_s1;
  out += StrFormat("  %-30s %12" PRIu64 " %12" PRIu64 "\n",
                   "- pruned by S1 (Prop. 2)", w.pruned_s1, remaining);
  remaining -= w.pruned_zero_conf;
  out += StrFormat("  %-30s %12" PRIu64 " %12" PRIu64 "\n",
                   "- pruned (zero confidence)", w.pruned_zero_conf, remaining);
  out += StrFormat("  %-30s %12" PRIu64 "\n", "= evaluated", w.evaluated);
  out += StrFormat("  %-30s %12" PRIu64 "\n", "entered top-l heap", w.offered);
  out += StrFormat("  %-30s %12zu\n", "answers returned",
                   result.patterns.size());
  out += StrFormat("  LHS searched: %" PRIu64 " (bounded out: %" PRIu64 ")\n",
                   w.lhs_seen, w.lhs_bounded_out);
  if (!w.Accounted()) {
    out += StrFormat("  WARNING: accounting mismatch: evaluated + pruned = %"
                     PRIu64 " != candidates = %" PRIu64 "\n",
                     w.evaluated + w.Pruned(), w.candidates);
  }
  return out;
}

std::string WhyChosenToText(const DetermineResult& result) {
  std::string out;
  if (result.patterns.empty()) {
    return "Why this ϕ: no pattern was determined (every candidate was "
           "bounded out).\n";
  }
  const DeterminedPattern& a = result.patterns[0];
  out += "Why this ϕ:\n";
  out += StrFormat("  winner     lhs=%s rhs=%s\n",
                   LevelsToText(a.pattern.lhs).c_str(),
                   LevelsToText(a.pattern.rhs).c_str());
  if (result.patterns.size() < 2) {
    out += StrFormat(
        "  utility %.6f; single answer, no runner-up to compare.\n",
        a.utility);
    return out;
  }
  const DeterminedPattern& b = result.patterns[1];
  out += StrFormat("  runner-up  lhs=%s rhs=%s\n",
                   LevelsToText(b.pattern.lhs).c_str(),
                   LevelsToText(b.pattern.rhs).c_str());
  out += StrFormat("  %-10s %12s %12s %12s\n", "measure", "winner",
                   "runner-up", "delta");
  const auto row = [&](const char* name, double x, double y) {
    out += StrFormat("  %-10s %12.6f %12.6f %+12.6f\n", name, x, y, x - y);
  };
  row("D", a.measures.d, b.measures.d);
  row("C", a.measures.confidence, b.measures.confidence);
  row("Q", a.measures.quality, b.measures.quality);
  row("S", a.measures.support, b.measures.support);
  row("utility", a.utility, b.utility);
  return out;
}

namespace {

// Shared row iteration for both landscape formats: calls `emit` once
// per retained evaluated event with its coordinates and utility.
template <typename Emit>
void ForEachLandscapeRow(const obs::ExplainSnapshot& snapshot,
                         const UtilityOptions& utility, double prior_mean_cq,
                         Emit&& emit) {
  UtilityOptions u = utility;
  u.prior_mean_cq = prior_mean_cq;
  for (const obs::ExplainEvent& e : snapshot.events) {
    if (e.outcome != obs::ExplainOutcome::kEvaluated) continue;
    if (e.lhs_seq >= snapshot.lhs.size()) continue;
    const obs::ExplainLhsInfo& info = snapshot.lhs[e.lhs_seq];
    const obs::ExplainLevels rhs =
        DecodeRhsLevels(e.rhs_index, snapshot.rhs_dims, snapshot.dmax);
    const double d =
        info.total > 0 ? static_cast<double>(info.lhs_count) /
                             static_cast<double>(info.total)
                       : 0.0;
    const double uu = ExpectedUtility(info.total, info.lhs_count,
                                      e.confidence, e.quality, u);
    emit(info.levels, rhs, d, e, uu);
  }
}

}  // namespace

std::string LandscapeToCsv(const obs::ExplainSnapshot& snapshot,
                           const RuleSpec& rule,
                           const UtilityOptions& utility,
                           double prior_mean_cq) {
  std::string out;
  for (const std::string& attr : rule.lhs) out += "lhs_" + attr + ",";
  for (const std::string& attr : rule.rhs) out += "rhs_" + attr + ",";
  out += "d,confidence,quality,cq,utility\n";
  ForEachLandscapeRow(
      snapshot, utility, prior_mean_cq,
      [&](const obs::ExplainLevels& lhs, const obs::ExplainLevels& rhs,
          double d, const obs::ExplainEvent& e, double uu) {
        for (std::size_t i = 0; i < rule.lhs.size(); ++i) {
          out += StrFormat("%d,", i < lhs.size() ? lhs[i] : -1);
        }
        for (std::size_t i = 0; i < rule.rhs.size(); ++i) {
          out += StrFormat("%d,", i < rhs.size() ? rhs[i] : -1);
        }
        out += StrFormat("%.10g,%.10g,%.10g,%.10g,%.10g\n", d, e.confidence,
                         e.quality, e.cq, uu);
      });
  return out;
}

std::string LandscapeToJsonl(const obs::ExplainSnapshot& snapshot,
                             const RuleSpec& rule,
                             const UtilityOptions& utility,
                             double prior_mean_cq) {
  (void)rule;
  std::string out;
  ForEachLandscapeRow(
      snapshot, utility, prior_mean_cq,
      [&](const obs::ExplainLevels& lhs, const obs::ExplainLevels& rhs,
          double d, const obs::ExplainEvent& e, double uu) {
        out += StrFormat(
            "{\"lhs\": %s, \"rhs\": %s, \"d\": %.10g, \"confidence\": %.10g, "
            "\"quality\": %.10g, \"cq\": %.10g, \"utility\": %.10g}\n",
            LevelsToJson(lhs).c_str(), LevelsToJson(rhs).c_str(), d,
            e.confidence, e.quality, e.cq, uu);
      });
  return out;
}

}  // namespace dd
