// Determination EXPLAIN recorder (DESIGN.md §11): when enabled, the
// determination algorithms (core/pa.cc, core/da.cc,
// core/special_cases.cc) emit one decision event per lattice candidate
// — which candidate, its processing-order rank, whether it was
// evaluated or bounded out, which bound fired, the measured C/Q
// decomposition and the running best bound at the moment of the
// decision — so that "why was ϕ chosen over ϕ′?" and "which bound
// killed this candidate?" are answerable from a recorded run instead of
// a debugger session.
//
// Cost contract:
//  * Disabled (the default): ExplainRecorder::Active() returns nullptr
//    — one relaxed load and a branch per call site, no events
//    allocated, no per-thread state created.
//  * Enabled: exact waterfall totals are always maintained (a few
//    relaxed atomic increments per candidate), while full per-event
//    records go through a sampling gate (keep every `sample_every`-th
//    event) into per-thread ring buffers, so concurrent determinations
//    never contend on event storage. Events that explain the outcome
//    are always kept regardless of the sampling rate: candidates that
//    entered the top-l heap (they advanced the pruning bound — the
//    winner is among them) and candidates on the running Pareto
//    skyline of (support, confidence, quality).
//
// This header deliberately depends on nothing from core/ (obs sits
// below core in the dependency order); candidates are identified by
// their lattice cell index plus the (dims, dmax) geometry captured in
// the snapshot, and threshold levels are plain std::vector<int>.

#ifndef DD_OBS_EXPLAIN_RECORDER_H_
#define DD_OBS_EXPLAIN_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dd::obs {

// Threshold levels, structurally identical to core's dd::Levels.
using ExplainLevels = std::vector<int>;

// What happened to a lattice candidate. Every cell of every searched
// lattice gets exactly one outcome, so the outcome counts partition the
// lattice: evaluated + pruned_s0 + pruned_s1 + pruned_zero_conf ==
// candidates (the waterfall identity asserted by tests).
enum class ExplainOutcome : std::uint8_t {
  kEvaluated = 0,      // confidence was computed (Algorithm 1/2 body)
  kPrunedS0 = 1,       // killed by the S0 prune (Proposition 1)
  kPrunedS1 = 2,       // killed by the S1 prune (Proposition 2)
  kPrunedZeroConf = 3, // killed by the zero-confidence dominated box
};

// Which bound governed the decision at the moment it was made.
enum class ExplainBound : std::uint8_t {
  kInitial = 0,   // the caller's initial bound (0 under DA)
  kAdvanced = 1,  // DAP's Theorem-3 advanced bound seeded the search
  kTopL = 2,      // the running top-l cutoff (l-th best C·Q so far)
};

const char* ExplainOutcomeName(ExplainOutcome outcome);
const char* ExplainBoundName(ExplainBound bound);

struct ExplainConfig {
  // Keep every K-th event in the ring (1 = full fidelity). Outcome-
  // explaining events (offered / skyline) are kept regardless.
  std::size_t sample_every = 1;
  // Per-thread ring capacity; when full the oldest event is overwritten
  // and counted as dropped. Waterfall totals stay exact regardless.
  std::size_t ring_capacity = std::size_t{1} << 16;
  // Always keep candidates on the running Pareto front of
  // (support, confidence, quality) — the skyline the paper's
  // introduction promises the answers come from.
  bool track_skyline = true;
};

// One recorded decision. Plain data, fixed size: ϕ[Y] is identified by
// its lattice cell index (decode with the snapshot's rhs_dims / dmax),
// ϕ[X] by lhs_seq into ExplainSnapshot::lhs.
struct ExplainEvent {
  std::uint64_t seq = 0;        // global decision order across threads
  std::uint32_t lhs_seq = 0;    // index into ExplainSnapshot::lhs
  std::uint32_t rhs_index = 0;  // lattice cell index of ϕ[Y]
  // Processing-order rank: for evaluated candidates, the number of
  // evaluations before this one under the current LHS; for pruned
  // candidates, the rank of the evaluation whose prune killed them.
  std::uint32_t rank = 0;
  ExplainOutcome outcome = ExplainOutcome::kEvaluated;
  ExplainBound bound_kind = ExplainBound::kInitial;
  bool offered = false;  // entered the top-l heap (bound-advancing)
  bool forced = false;   // kept regardless of sampling (offered/skyline)
  std::uint64_t xy_count = 0;   // evaluated only
  double confidence = 0.0;      // evaluated only
  double quality = 0.0;
  double cq = 0.0;              // C(ϕ)·Q(ϕ), the Theorem-2 objective
  double bound = 0.0;           // running best bound at the decision
  double eval_ns = 0.0;         // eval latency (sampled subset; 0 = untimed)
};

// One entry per SetLhs the search performed; recorded unconditionally
// (|C_X| entries, far fewer than events).
struct ExplainLhsInfo {
  std::uint32_t seq = 0;
  ExplainLevels levels;
  std::uint64_t lhs_count = 0;
  std::uint64_t total = 0;
  double initial_bound = 0.0;
  bool advanced = false;  // initial_bound came from Theorem 3 (DAP)
};

// Exact per-run totals, independent of sampling and ring capacity.
struct ExplainWaterfall {
  std::uint64_t lhs_seen = 0;
  std::uint64_t lhs_bounded_out = 0;  // LHS whose RHS search returned empty
  std::uint64_t candidates = 0;       // Σ lattice sizes over all searches
  std::uint64_t evaluated = 0;
  std::uint64_t pruned_s0 = 0;
  std::uint64_t pruned_s1 = 0;
  std::uint64_t pruned_zero_conf = 0;
  std::uint64_t offered = 0;          // evaluated events entering the heap

  std::uint64_t Pruned() const {
    return pruned_s0 + pruned_s1 + pruned_zero_conf;
  }
  // The waterfall identity: every candidate accounted for exactly once.
  bool Accounted() const { return evaluated + Pruned() == candidates; }
};

struct ExplainSnapshot {
  ExplainConfig config;
  std::string run_label;
  // True when the recorded run counted against ESTIMATED measures (the
  // approx provider's weighted sample counts, approx/refine.h) rather
  // than exact ones — surfaced in the audit document so a decision
  // trail is never mistaken for exact-count evidence.
  bool estimated = false;
  std::size_t rhs_dims = 0;  // geometry for decoding ExplainEvent::rhs_index
  int dmax = 0;
  ExplainWaterfall waterfall;
  std::uint64_t recorded = 0;     // events kept in rings
  std::uint64_t sampled_out = 0;  // events skipped by the sampling gate
  std::uint64_t dropped = 0;      // ring overwrites (oldest evicted)
  std::vector<ExplainLhsInfo> lhs;     // indexed by ExplainEvent::lhs_seq
  std::vector<ExplainEvent> events;    // merged across threads, by seq
};

class ExplainRecorder {
 public:
  static ExplainRecorder& Global();

  // The hot-path check: nullptr unless recording is enabled. Call sites
  // hold the pointer for the duration of one search.
  static ExplainRecorder* Active();

  // Starts a fresh recording (clears any previous run's state).
  void Enable(const ExplainConfig& config);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  // Free-form run description shown in the audit document (set by the
  // determination facades: algorithm combination, provider, order, l).
  void SetRunLabel(const std::string& label);

  // Marks the recording as driven by estimated (sampled) counts; see
  // ExplainSnapshot::estimated. Reset to false by Enable.
  void SetEstimated(bool estimated);

  // Geometry used to decode ExplainEvent::rhs_index; one per run.
  void SetRhsGeometry(std::size_t dims, int dmax);

  // Adds `n` cells to the candidate total (one call per searched
  // lattice, before its events).
  void AddCandidates(std::uint64_t n);

  // Registers the ϕ[X] whose RHS search is about to run; returns the
  // lhs_seq to stamp on its events. Also fixes the current thread's
  // D(ϕ[X]) used for skyline tracking.
  std::uint32_t BeginLhs(const ExplainLevels& levels, std::uint64_t lhs_count,
                         std::uint64_t total, double initial_bound,
                         bool advanced);

  // True when the next event on this thread passes the sampling gate —
  // callers use it to decide whether to time the evaluation (so latency
  // measurement and event retention cover the same candidates).
  bool WillSampleNextEvent();

  void RecordEvaluated(std::uint32_t lhs_seq, std::uint32_t rhs_index,
                       std::uint32_t rank, std::uint64_t xy_count,
                       double confidence, double quality, double cq,
                       double bound, ExplainBound bound_kind, bool offered,
                       double eval_ns);

  void RecordPruned(std::uint32_t lhs_seq, std::uint32_t rhs_index,
                    std::uint32_t rank, ExplainOutcome outcome, double bound,
                    ExplainBound bound_kind);

  // Marks the current LHS as bounded out (its RHS search returned no
  // candidate above the bound — DAP Algorithm 4, line 6).
  void NoteLhsBoundedOut();

  // Merged view of the current recording. Safe to call while enabled;
  // the audit consumers call it after the run completes.
  ExplainSnapshot Snapshot() const;

 private:
  struct ThreadBuffer;

  ExplainRecorder() = default;

  ThreadBuffer& LocalBuffer();
  // Lazily resets the buffer when a new recording started (epoch
  // changed); called on every hot-path entry, no lock on the fast path.
  ThreadBuffer& EnsureFresh(ThreadBuffer& tb);
  // Pushes through the sampling gate; `skyline_support` < 0 disables
  // skyline consideration (pruned events).
  void Push(ExplainEvent event, double skyline_support);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> next_seq_{0};

  std::atomic<bool> estimated_{false};

  // Config mirrors readable without the mutex (hot path).
  std::atomic<std::size_t> sample_every_{1};
  std::atomic<std::size_t> ring_capacity_{std::size_t{1} << 16};
  std::atomic<bool> track_skyline_{true};

  // Exact waterfall totals (relaxed increments).
  std::atomic<std::uint64_t> lhs_seen_{0};
  std::atomic<std::uint64_t> lhs_bounded_out_{0};
  std::atomic<std::uint64_t> candidates_{0};
  std::atomic<std::uint64_t> evaluated_{0};
  std::atomic<std::uint64_t> pruned_s0_{0};
  std::atomic<std::uint64_t> pruned_s1_{0};
  std::atomic<std::uint64_t> pruned_zero_conf_{0};
  std::atomic<std::uint64_t> offered_{0};

  mutable std::mutex mu_;  // guards the fields below
  ExplainConfig config_;
  std::string run_label_;
  std::size_t rhs_dims_ = 0;
  int dmax_ = 0;
  std::vector<ExplainLhsInfo> lhs_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

}  // namespace dd::obs

#endif  // DD_OBS_EXPLAIN_RECORDER_H_
