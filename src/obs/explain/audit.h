// Consumers of a Determination EXPLAIN recording (DESIGN.md §11):
// the JSON audit document, the human-readable pruning waterfall and
// winner-vs-runner-up diff, and the utility-landscape export mapping
// each sampled candidate's ϕ[A] coordinates to Ū(ϕ).
//
// Unlike the recorder (dd_obs, below core), these formatters combine a
// snapshot with the DetermineResult it explains, so they live in their
// own target (dd_explain) above core.

#ifndef DD_OBS_EXPLAIN_AUDIT_H_
#define DD_OBS_EXPLAIN_AUDIT_H_

#include <string>

#include "core/determiner.h"
#include "core/expected_utility.h"
#include "core/rule.h"
#include "obs/explain/recorder.h"

namespace dd {

// Decodes a recorded rhs_index back into threshold levels under the
// snapshot's (dims, dmax) geometry (mixed-radix, dimension 0 least
// significant — the CandidateLattice encoding).
obs::ExplainLevels DecodeRhsLevels(std::uint32_t rhs_index, std::size_t dims,
                                   int dmax);

// The full JSON audit document: run metadata, exact waterfall totals,
// the winner / runner-up measure decomposition at full (%.17g)
// precision, every recorded LHS, and every retained event. `utility`
// should be the options the run used; its prior_mean_cq is replaced by
// result.prior_mean_cq (the value the run actually estimated).
std::string ExplainAuditToJson(const obs::ExplainSnapshot& snapshot,
                               const DetermineResult& result,
                               const RuleSpec& rule,
                               const UtilityOptions& utility);

// The pruning waterfall: candidates → pruned by each stage → evaluated
// → offered to the top-l heap → answers. Stable ordering and column
// widths (golden-tested).
std::string PruningWaterfallToText(const obs::ExplainSnapshot& snapshot,
                                   const DetermineResult& result);

// "Why this ϕ": the winner's D/C/Q/S/Ū decomposition diffed against the
// runner-up's. Degrades gracefully when there is no runner-up (or no
// winner).
std::string WhyChosenToText(const DetermineResult& result);

// Utility-landscape export: one row per retained *evaluated* event,
// mapping the candidate's ϕ[X] / ϕ[Y] coordinates to D, C, Q, C·Q and
// Ū — suitable for plotting Fig. 3-style utility surfaces.
std::string LandscapeToCsv(const obs::ExplainSnapshot& snapshot,
                           const RuleSpec& rule,
                           const UtilityOptions& utility,
                           double prior_mean_cq);
std::string LandscapeToJsonl(const obs::ExplainSnapshot& snapshot,
                             const RuleSpec& rule,
                             const UtilityOptions& utility,
                             double prior_mean_cq);

}  // namespace dd

#endif  // DD_OBS_EXPLAIN_AUDIT_H_
