// Run reports: one JSON (or indented-text) document combining the span
// tree from the tracer with a metrics snapshot, so a whole
// determination run can be archived and diffed. Exporters are
// dependency-free (hand-rolled JSON, same convention as
// core/result_io).
//
// JSON shape:
//   {"name": "...",
//    "spans": [{"name": "...", "count": N, "total_ms": T, "self_ms": S,
//               "children": [...]}, ...],
//    "metrics": {"counters": {"a": 1, ...},
//                "gauges": {"g": 0.5, ...},
//                "histograms": {"h": {"buckets": [{"le": 1.0, "count": 2},
//                                                 {"le": "inf", "count": 0}],
//                                     "count": 2, "sum": 0.3}, ...}},
//    "parallel": {"phases": [{"phase": "...", "invocations": N,
//                             "wall_ms": W, "busy_ms": B,
//                             "speedup_bound": S, "imbalance_pct": I,
//                             "caller_share": C,
//                             "workers": [{"slot": 0, "caller": true,
//                                          "chunks": n, "items": m,
//                                          "busy_ms": b, "wait_ms": w},
//                                         ...]}, ...],
//                 "dropped_events": 0},
//    "profile": {"hz": 99, "duration_seconds": 1.2, "samples": N,
//                "dropped": 0, "truncated": 0, "spans": {...},
//                "phases": {...}, "functions": [...]}}
// The "parallel" key appears only when the pool-stats collector
// (obs/pool_stats.h) recorded at least one phase; "profile" only when
// the sampling profiler (obs/prof) has captured samples this run.

#ifndef DD_OBS_REPORT_H_
#define DD_OBS_REPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/pool_stats.h"
#include "obs/trace.h"

namespace dd::obs {

struct RunReport {
  // Free-form run label, e.g. "ddtool determine DAP+PAP".
  std::string name;
  TraceSnapshot trace;
  MetricsSnapshot metrics;
  // Worker-pool execution stats; empty when the collector was off.
  PoolStatsSnapshot pool;
  // Raw JSON summary from the sampling profiler (prof::Profiler
  // ::SummaryJson()); "" when no capture ran. Captured live when a
  // capture is still running, so --profile reports written before the
  // profiler stops carry the in-flight data.
  std::string profile_json;
};

// Captures the current global tracer + metrics registry + pool-stats
// collector state.
RunReport CaptureRunReport(const std::string& name);

std::string SpanStatsToJson(const SpanStats& span);
std::string TraceSnapshotToJson(const TraceSnapshot& trace);
std::string MetricsSnapshotToJson(const MetricsSnapshot& metrics);
// The per-phase parallel-efficiency section ("parallel" in the report).
std::string PoolSnapshotToJson(const PoolStatsSnapshot& pool);
std::string RunReportToJson(const RunReport& report);

// Human-readable indented span tree with counts, totals and self-time
// percentages, followed by non-zero metrics.
std::string RunReportToText(const RunReport& report);

// Serializes `report` as JSON into `path` (overwrites).
Status WriteRunReportJson(const RunReport& report, const std::string& path);

}  // namespace dd::obs

#endif  // DD_OBS_REPORT_H_
