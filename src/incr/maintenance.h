// Drift-triggered re-determination over a live instance: the engine
// owns the delta-maintained matching relation and count grids for one
// rule, tracks how far the published threshold pattern's statistics
// (D(ϕ*), C(ϕ*), and hence Ū(ϕ*)) have drifted since publication, and
// re-runs the paper's determination only when the drift exceeds a bound
// derived from the utility gap to the runner-up pattern — the intuition
// being that while ϕ*'s own expected utility has moved by less than
// (a configurable fraction of) its lead, the ranking is unlikely to
// have flipped. This is a heuristic, not a guarantee: a challenger can
// overtake a perfectly stable champion. drift_fraction < 0 forces
// re-determination every batch (the exact but expensive policy, used by
// the equivalence property tests); larger fractions trade staleness for
// fewer searches. Every published change is emitted on a change-feed of
// ThresholdUpdate events.
//
// Per batch of b changes against N live tuples the engine costs
// O(b·N) distance evaluations + O(d^c) grid merge + O(1) drift probe;
// a triggered re-determination costs one DA/DAP search over the
// maintained grids (every count O(1) — no rebuild of anything).

#ifndef DD_INCR_MAINTENANCE_H_
#define DD_INCR_MAINTENANCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/determiner.h"
#include "incr/delta_grid_provider.h"
#include "incr/incremental_builder.h"

namespace dd {

struct MaintenanceOptions {
  IncrementalOptions incremental;
  // Search configuration. `provider` is ignored — the engine always
  // searches its own delta-maintained grids; top_l is raised to at
  // least 2 so a runner-up (and thus the utility gap) exists.
  // `determine.threads` applies to the search as usual.
  DetermineOptions determine;
  // Re-determine when |Ū_now(ϕ*) − Ū_published(ϕ*)| exceeds
  // drift_fraction · (Ū(ϕ*) − Ū(runner-up)), both measured at
  // publication time. 0 re-determines on any drift; negative values
  // re-determine every batch.
  double drift_fraction = 0.5;
  // Cell budget of the delta grid (Create fails beyond it).
  std::size_t max_cells = std::size_t{1} << 27;
};

enum class UpdateReason { kInitial, kDrift };

const char* UpdateReasonName(UpdateReason reason);

// One entry of the change-feed: a (re-)publication of the threshold.
struct ThresholdUpdate {
  std::uint64_t batch_seq = 0;
  UpdateReason reason = UpdateReason::kInitial;
  DeterminedPattern published;
  // Lead of the published pattern over the runner-up (0 when the search
  // returned a single pattern); the next drift bound derives from it.
  double utility_gap = 0.0;
  bool changed = true;  // false when re-determination kept the pattern
};

// What one ApplyBatch did, for callers driving a feed (ddtool watch).
struct BatchOutcome {
  std::uint64_t batch_seq = 0;
  std::size_t pairs_computed = 0;
  std::size_t matching_added = 0;
  std::size_t matching_removed = 0;
  double drift = 0.0;
  double bound = 0.0;
  bool redetermined = false;
  // The update emitted by this batch, when one was.
  std::optional<ThresholdUpdate> update;
};

class MaintenanceEngine {
 public:
  // The matching relation is built over rule.AllAttributes(); fails on
  // bad rules, metrics, or an over-budget grid.
  static Result<MaintenanceEngine> Create(const Schema& schema, RuleSpec rule,
                                          MaintenanceOptions options);

  // Applies one instance batch end to end: delta-build the matching,
  // merge the delta into the grids, probe the published pattern's
  // drift, and re-determine if warranted.
  Result<BatchOutcome> ApplyBatch(
      const std::vector<std::vector<std::string>>& inserts,
      const std::vector<std::uint32_t>& deletes);

  // Currently published best pattern, or nullptr before the first
  // determination (empty instance).
  const DeterminedPattern* published() const {
    return has_published_ ? &published_ : nullptr;
  }
  const std::vector<ThresholdUpdate>& updates() const { return updates_; }
  std::uint64_t redeterminations() const { return redeterminations_; }
  std::uint64_t skipped() const { return skipped_; }

  const IncrementalMatchingBuilder& builder() const { return *builder_; }
  const RuleSpec& rule() const { return rule_; }

 private:
  MaintenanceEngine(RuleSpec rule, MaintenanceOptions options)
      : rule_(std::move(rule)), options_(std::move(options)) {}

  // Runs determination on the maintained grids and publishes the
  // winner; appends to the change-feed.
  void Redetermine(UpdateReason reason, BatchOutcome* outcome);

  RuleSpec rule_;
  MaintenanceOptions options_;
  std::unique_ptr<IncrementalMatchingBuilder> builder_;
  ResolvedRule resolved_;
  std::unique_ptr<DeltaGridProvider> provider_;

  bool has_published_ = false;
  DeterminedPattern published_;
  double published_gap_ = 0.0;
  UtilityOptions published_utility_;  // prior frozen at publication
  std::vector<ThresholdUpdate> updates_;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t redeterminations_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace dd

#endif  // DD_INCR_MAINTENANCE_H_
