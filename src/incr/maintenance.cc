#include "incr/maintenance.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "core/expected_utility.h"
#include "core/measures.h"
#include "obs/diag/flight_recorder.h"
#include "obs/diag/watchdog.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace dd {

const char* UpdateReasonName(UpdateReason reason) {
  return reason == UpdateReason::kInitial ? "initial" : "drift";
}

Result<MaintenanceEngine> MaintenanceEngine::Create(const Schema& schema,
                                                    RuleSpec rule,
                                                    MaintenanceOptions options) {
  if (options.determine.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  MaintenanceEngine engine(std::move(rule), std::move(options));
  DD_ASSIGN_OR_RETURN(
      IncrementalMatchingBuilder builder,
      IncrementalMatchingBuilder::Create(schema, engine.rule_.AllAttributes(),
                                         engine.options_.incremental));
  engine.builder_ =
      std::make_unique<IncrementalMatchingBuilder>(std::move(builder));
  DD_ASSIGN_OR_RETURN(engine.resolved_,
                      ResolveRule(engine.builder_->matching(), engine.rule_));
  DD_ASSIGN_OR_RETURN(
      engine.provider_,
      DeltaGridProvider::Create(engine.builder_->matching(), engine.resolved_,
                                engine.options_.max_cells));
  return engine;
}

Result<BatchOutcome> MaintenanceEngine::ApplyBatch(
    const std::vector<std::vector<std::string>>& inserts,
    const std::vector<std::uint32_t>& deletes) {
  obs::TraceSpan span("incr/maintain");
  // Watchdog coverage: an ApplyBatch that wedges (matching rebuild,
  // re-determination) past the stall timeout trips a stall dump.
  static obs::diag::Heartbeat* heartbeat =
      obs::diag::RegisterHeartbeat("incr.apply_batch");
  obs::diag::ScopedHeartbeat scoped_heartbeat(heartbeat);
  static obs::Counter& skipped_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "incr.redeterminations_skipped");
  // Engine-state gauges: these make every sampler frame (obs/export/
  // sampler.h) carry the batch sequence alongside the counters, so a
  // frame joins against the `ddtool watch` change feed by
  // (run_id, incr.batch_seq).
  static obs::Gauge& batch_gauge =
      obs::MetricsRegistry::Global().GetGauge("incr.batch_seq");
  static obs::Gauge& live_gauge =
      obs::MetricsRegistry::Global().GetGauge("incr.live_tuples");
  static obs::Gauge& matching_gauge =
      obs::MetricsRegistry::Global().GetGauge("incr.matching_tuples");
  static obs::Gauge& drift_gauge =
      obs::MetricsRegistry::Global().GetGauge("incr.drift");
  static obs::Gauge& bound_gauge =
      obs::MetricsRegistry::Global().GetGauge("incr.drift_bound");

  DD_ASSIGN_OR_RETURN(MatchingDelta delta,
                      builder_->ApplyBatch(inserts, deletes));
  provider_->Apply(delta);

  BatchOutcome outcome;
  outcome.batch_seq = ++batch_seq_;
  outcome.pairs_computed = delta.pairs_computed();
  outcome.matching_added = delta.num_added();
  outcome.matching_removed = delta.num_removed();
  batch_gauge.Set(static_cast<double>(outcome.batch_seq));
  obs::diag::FlightRecord(obs::diag::EventType::kBatch, "apply_batch",
                          outcome.batch_seq, inserts.size());
  live_gauge.Set(static_cast<double>(builder_->store().num_live()));
  matching_gauge.Set(static_cast<double>(builder_->matching().num_tuples()));
  // Byte-size accounting after every batch: the evolving structures are
  // exactly the ones a long-running `serve` loop can grow without bound.
  obs::SetMemoryGauge("tuple_store", builder_->store().MemoryUsageBytes());
  obs::SetMemoryGauge("matching", builder_->matching().MemoryUsageBytes());
  obs::SetMemoryGauge("delta_grid", provider_->MemoryUsageBytes());

  // An empty instance has no candidate worth publishing; a previously
  // published pattern stays on the feed until data returns.
  if (provider_->total() == 0) return outcome;

  if (!has_published_) {
    Redetermine(UpdateReason::kInitial, &outcome);
    return outcome;
  }

  // Probe the published pattern's current statistics (three O(1) grid
  // reads) and compare its utility — under the prior frozen at
  // publication, so only count drift registers — against what was
  // published.
  const Measures now = ComputeMeasures(provider_.get(), published_.pattern,
                                       builder_->dmax());
  const double utility_now =
      ExpectedUtility(now.total, now.lhs_count, now.confidence, now.quality,
                      published_utility_);
  outcome.drift = std::fabs(utility_now - published_.utility);
  const bool force = options_.drift_fraction < 0.0;
  outcome.bound = force ? 0.0 : options_.drift_fraction * published_gap_;
  drift_gauge.Set(outcome.drift);
  bound_gauge.Set(outcome.bound);
  if (force || outcome.drift > outcome.bound) {
    Redetermine(UpdateReason::kDrift, &outcome);
  } else {
    ++skipped_;
    skipped_counter.Increment();
    DD_VLOG(1) << "batch " << outcome.batch_seq << ": drift " << outcome.drift
               << " within bound " << outcome.bound
               << ", keeping published threshold";
  }
  return outcome;
}

void MaintenanceEngine::Redetermine(UpdateReason reason,
                                    BatchOutcome* outcome) {
  obs::TraceSpan span("incr/redetermine");
  static obs::Counter& redetermine_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.redeterminations");

  const DetermineOptions& det = options_.determine;
  UtilityOptions utility = det.utility;
  if (det.prior_sample_size > 0) {
    obs::TraceSpan prior_span("prior_estimation");
    utility.prior_mean_cq = EstimatePriorMeanCq(
        provider_.get(), resolved_.lhs.size(), resolved_.rhs.size(),
        builder_->dmax(), det.prior_sample_size, det.prior_seed);
  }
  provider_->ResetStats();

  // top_l >= 2 keeps a runner-up around: its utility deficit is the gap
  // the next drift bound derives from.
  const std::size_t top_l = det.top_l < 2 ? 2 : det.top_l;
  DaOptions da;
  da.advanced_bound = det.lhs_algorithm == LhsAlgorithm::kDap;
  da.pa.prune = det.rhs_algorithm == RhsAlgorithm::kPap;
  da.pa.order = det.order;
  da.pa.top_l = top_l;
  da.top_l = top_l;
  da.utility = utility;
  da.threads = det.threads;

  DaStats stats;
  std::vector<DeterminedPattern> patterns;
  {
    obs::TraceSpan search_span("search");
    patterns = DetermineBestPatterns(provider_.get(), resolved_.lhs.size(),
                                     resolved_.rhs.size(), builder_->dmax(),
                                     da, &stats);
  }
  PublishDetermineMetrics(stats, provider_->stats());
  obs::diag::FlightRecord(obs::diag::EventType::kDetermined, "redetermine",
                          patterns.size(), batch_seq_);
  redetermine_counter.Increment();
  ++redeterminations_;
  outcome->redetermined = true;
  if (patterns.empty()) return;  // Nothing beat the zero bound; keep as-is.

  const bool changed =
      !has_published_ || !(patterns[0].pattern == published_.pattern);
  published_ = patterns[0];
  published_gap_ =
      patterns.size() > 1 ? patterns[0].utility - patterns[1].utility : 0.0;
  published_utility_ = utility;
  has_published_ = true;

  ThresholdUpdate update;
  update.batch_seq = batch_seq_;
  update.reason = reason;
  update.published = published_;
  update.utility_gap = published_gap_;
  update.changed = changed;
  updates_.push_back(update);
  outcome->update = std::move(update);
  DD_LOG(INFO) << "batch " << batch_seq_ << ": re-determined ("
               << UpdateReasonName(reason) << "), published "
               << PatternToString(published_.pattern) << " utility "
               << published_.utility << " gap " << published_gap_
               << (changed ? "" : " (unchanged)");
}

}  // namespace dd
