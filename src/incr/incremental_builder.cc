#include "incr/incremental_builder.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

Result<IncrementalMatchingBuilder> IncrementalMatchingBuilder::Create(
    const Schema& schema, std::vector<std::string> attributes,
    IncrementalOptions options) {
  if (options.matching.max_pairs != 0) {
    return Status::InvalidArgument(
        "incremental maintenance needs the full pair set: max_pairs must be 0");
  }
  DD_ASSIGN_OR_RETURN(
      ResolvedMetrics resolved,
      ResolveMatchingMetrics(schema, attributes, options.matching));
  return IncrementalMatchingBuilder(schema, std::move(attributes),
                                    std::move(options), std::move(resolved));
}

Result<MatchingDelta> IncrementalMatchingBuilder::ApplyBatch(
    const std::vector<std::vector<std::string>>& inserts,
    const std::vector<std::uint32_t>& deletes) {
  obs::TraceSpan span("incr/apply_delta");
  static obs::Counter& batches_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.batches");
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.pairs_recomputed");
  static obs::Counter& removed_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.matching_rows_removed");

  // Validate the whole batch before mutating anything.
  const std::size_t arity = store_.schema().num_attributes();
  for (const auto& values : inserts) {
    if (values.size() != arity) {
      return Status::InvalidArgument(
          StrFormat("insert has %zu values, schema has %zu attributes",
                    values.size(), arity));
    }
  }
  std::vector<std::uint32_t> sorted_deletes = deletes;
  std::sort(sorted_deletes.begin(), sorted_deletes.end());
  for (std::size_t k = 0; k < sorted_deletes.size(); ++k) {
    if (k > 0 && sorted_deletes[k] == sorted_deletes[k - 1]) {
      return Status::InvalidArgument(
          StrFormat("duplicate delete of tuple %u", sorted_deletes[k]));
    }
    if (!store_.IsLive(sorted_deletes[k])) {
      return Status::InvalidArgument(
          StrFormat("delete of unknown or dead tuple %u", sorted_deletes[k]));
    }
  }

  const std::size_t attrs = attributes_.size();
  MatchingDelta delta;
  delta.num_attributes = attrs;

  // Deletes first: retire the ids, then compact every matching tuple
  // that references a dead id out of M (capturing its levels so grid
  // consumers can subtract without re-deriving anything).
  if (!sorted_deletes.empty()) {
    for (std::uint32_t id : sorted_deletes) {
      Status erased = store_.Erase(id);
      DD_CHECK(erased.ok());
    }
    const auto& pairs = matching_.pairs();
    std::vector<std::uint32_t> removed_rows;
    for (std::size_t row = 0; row < pairs.size(); ++row) {
      if (!store_.IsLive(pairs[row].first) ||
          !store_.IsLive(pairs[row].second)) {
        removed_rows.push_back(static_cast<std::uint32_t>(row));
      }
    }
    delta.removed_pairs.reserve(removed_rows.size());
    delta.removed_levels.reserve(removed_rows.size() * attrs);
    for (std::uint32_t row : removed_rows) {
      delta.removed_pairs.push_back(pairs[row]);
      for (std::size_t a = 0; a < attrs; ++a) {
        delta.removed_levels.push_back(matching_.level(row, a));
      }
    }
    matching_.RemoveRows(removed_rows);
  }

  // Inserts: new ids are larger than every existing id, so each new
  // tuple j pairs with all live i < j — the surviving old tuples plus
  // the batch's earlier inserts.
  const std::vector<std::uint32_t> old_live = store_.LiveIds();
  std::vector<std::uint32_t> new_ids;
  new_ids.reserve(inserts.size());
  for (const auto& values : inserts) {
    Result<std::uint32_t> id = store_.Insert(values);
    DD_CHECK(id.ok());  // Arity was validated above.
    new_ids.push_back(*id);
  }

  // Pair counts are 64-bit BY CONTRACT (matching/builder.h): b(b-1)/2
  // overflows 32-bit size types near b ≈ 93k.
  const std::uint64_t b = new_ids.size();
  const std::uint64_t total_new =
      static_cast<std::uint64_t>(old_live.size()) * b + b * (b - 1) / 2;
  delta.added_pairs.reserve(total_new);
  for (std::uint64_t k = 0; k < b; ++k) {
    const std::uint32_t j = new_ids[k];
    for (std::uint32_t i : old_live) delta.added_pairs.emplace_back(i, j);
    for (std::size_t e = 0; e < k; ++e) {
      delta.added_pairs.emplace_back(new_ids[e], j);
    }
  }
  DD_CHECK_EQ(delta.added_pairs.size(), total_new);

  delta.added_levels.resize(total_new * attrs);
  ParallelFor("incr.delta_levels", total_new, options_.threads,
              [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                for (std::size_t p = begin; p < end; ++p) {
                  resolved_.ComputeLevels(store_.relation(),
                                          delta.added_pairs[p].first,
                                          delta.added_pairs[p].second,
                                          &delta.added_levels[p * attrs]);
                }
              });

  matching_.Reserve(matching_.num_tuples() + total_new);
  std::vector<Level> levels(attrs);
  for (std::size_t p = 0; p < total_new; ++p) {
    const Level* row = delta.added_row(p);
    levels.assign(row, row + attrs);
    matching_.AddTuple(delta.added_pairs[p].first, delta.added_pairs[p].second,
                       levels);
  }

  batches_counter.Increment();
  pairs_counter.Add(total_new);
  removed_counter.Add(delta.num_removed());
  DD_VLOG(1) << "incr batch: +" << b << " tuples / -" << sorted_deletes.size()
             << " tuples, " << total_new << " pairs computed, "
             << delta.num_removed() << " matching rows removed, |M|="
             << matching_.num_tuples();
  return delta;
}

MatchingRelation IncrementalMatchingBuilder::Rebuild() const {
  obs::TraceSpan span("incr/rebuild");
  const std::vector<std::uint32_t> live = store_.LiveIds();
  const std::uint64_t n = live.size();
  MatchingRelation out(attributes_, options_.matching.dmax);
  out.Reserve(n * (n - 1) / 2);  // 64-bit pair count (matching/builder.h)
  std::vector<Level> levels(attributes_.size());
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      resolved_.ComputeLevels(store_.relation(), live[a], live[b],
                              levels.data());
      out.AddTuple(live[a], live[b], levels);
    }
  }
  return out;
}

}  // namespace dd
