// Append-only data-tuple store with stable ids and a live set — the
// evolving-instance counterpart of the static Relation. Ids are
// assigned sequentially on insert and never reused; deletion marks a
// tuple dead but keeps its values addressable, so matching-relation
// pairs (which reference ids) stay meaningful for delta capture and a
// from-scratch rebuild over the live set reproduces the exact id space
// the incremental path maintains.

#ifndef DD_INCR_TUPLE_STORE_H_
#define DD_INCR_TUPLE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace dd {

class TupleStore {
 public:
  explicit TupleStore(Schema schema) : relation_(std::move(schema)) {}

  const Schema& schema() const { return relation_.schema(); }

  // Total tuples ever inserted (== the next id to be assigned).
  std::uint32_t next_id() const {
    return static_cast<std::uint32_t>(relation_.num_rows());
  }
  std::size_t num_live() const { return num_live_; }

  // Appends a tuple and returns its id. Fails on arity mismatch.
  Result<std::uint32_t> Insert(std::vector<std::string> values);

  // Marks `id` dead. Fails on unknown or already-dead ids.
  Status Erase(std::uint32_t id);

  bool IsLive(std::uint32_t id) const {
    return id < live_.size() && live_[id];
  }

  // Values of tuple `id` (live or dead).
  const std::vector<std::string>& row(std::uint32_t id) const {
    return relation_.row(id);
  }

  // Ascending ids of the live tuples. O(next_id).
  std::vector<std::uint32_t> LiveIds() const;

  // The underlying storage, dead rows included; row index == id. This
  // is what metric evaluation reads (ResolvedMetrics::ComputeLevels).
  const Relation& relation() const { return relation_; }

  // Approximate heap bytes of the stored tuples (string capacities plus
  // per-row vector overhead) and the live bitmap. An O(rows × attrs)
  // walk — call after batch boundaries, not per tuple. Feeds the
  // mem.tuple_store_bytes gauge (obs/resource.h).
  std::size_t MemoryUsageBytes() const {
    std::size_t bytes = live_.capacity() / 8;
    for (std::uint32_t id = 0; id < next_id(); ++id) {
      const std::vector<std::string>& values = relation_.row(id);
      bytes += values.capacity() * sizeof(std::string);
      for (const std::string& value : values) {
        // Small strings live inline in the string object counted above.
        if (value.capacity() > sizeof(std::string)) bytes += value.capacity();
      }
    }
    return bytes;
  }

 private:
  Relation relation_;
  std::vector<bool> live_;
  std::size_t num_live_ = 0;
};

}  // namespace dd

#endif  // DD_INCR_TUPLE_STORE_H_
