// The delta applied to a MatchingRelation by one insert/delete batch:
// the matching tuples appended (every pair of a new data tuple with a
// live partner) and the matching tuples dropped (every pair touching a
// deleted data tuple), with their full level vectors. Level storage is
// flat row-major so that batches of millions of pairs cost two
// allocations, not one per pair.
//
// The delta is the contract between the IncrementalMatchingBuilder
// (which produces it while mutating the relation) and delta-aware
// consumers — DeltaGridProvider::Apply folds it into prefix-sum count
// grids in O(|delta| + d^c) without re-reading M.

#ifndef DD_INCR_DELTA_H_
#define DD_INCR_DELTA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "matching/matching_relation.h"

namespace dd {

struct MatchingDelta {
  // Attributes per matching tuple (the matching relation's arity).
  std::size_t num_attributes = 0;

  // Appended matching tuples, in the order they were added to M.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> added_pairs;
  std::vector<Level> added_levels;  // row-major, |added| x num_attributes

  // Dropped matching tuples (levels captured before removal).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> removed_pairs;
  std::vector<Level> removed_levels;  // row-major

  std::size_t num_added() const { return added_pairs.size(); }
  std::size_t num_removed() const { return removed_pairs.size(); }
  bool empty() const { return added_pairs.empty() && removed_pairs.empty(); }

  // Distance vectors computed for this batch (deletions reuse stored
  // levels, so only additions cost metric evaluations).
  std::size_t pairs_computed() const { return added_pairs.size(); }

  const Level* added_row(std::size_t k) const {
    return added_levels.data() + k * num_attributes;
  }
  const Level* removed_row(std::size_t k) const {
    return removed_levels.data() + k * num_attributes;
  }
};

}  // namespace dd

#endif  // DD_INCR_DELTA_H_
