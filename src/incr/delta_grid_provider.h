// A MeasureProvider whose prefix-sum count grids are maintainable under
// matching-relation deltas. Construction is the familiar O(M + d^c)
// histogram + prefix-sum build of core's GridMeasureProvider; after
// that, Apply(delta) folds a batch of b added/removed matching tuples
// into the grids in O(b·c + d^c) — histogram the delta, prefix-sum it,
// add it cell-wise — so PA/DA counting queries stay O(1) per count
// across the instance's whole lifetime without ever re-reading M.
//
// Counts are kept signed internally (a delta histogram is negative
// where tuples left); a consistent apply stream keeps every prefix cell
// non-negative, which is DD_CHECKed on read.

#ifndef DD_INCR_DELTA_GRID_PROVIDER_H_
#define DD_INCR_DELTA_GRID_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/measure_provider.h"
#include "core/rule.h"
#include "incr/delta.h"
#include "matching/matching_relation.h"

namespace dd {

class DeltaGridProvider : public MeasureProvider {
 public:
  // Builds the grids from the current state of `matching`. Fails when
  // the (dmax+1)^(|X|+|Y|) grid would exceed `max_cells`.
  static Result<std::unique_ptr<DeltaGridProvider>> Create(
      const MatchingRelation& matching, ResolvedRule rule,
      std::size_t max_cells = std::size_t{1} << 27);

  // Merges one batch delta into the grids. The delta must carry full
  // level vectors over the same attribute space the provider was
  // created with (rule columns index into it).
  void Apply(const MatchingDelta& delta);

  std::uint64_t total() const override { return total_; }
  void SetLhs(const Levels& lhs) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

  // Concurrency extensions (DESIGN.md §12). Clones snapshot the grids
  // (they are (dmax+1)^dims cells — small for practical rules), so an
  // Apply on the original does not affect in-flight clones.
  std::unique_ptr<MeasureProvider> CloneForThread() const override;
  bool SupportsConcurrentCountXY() const override { return true; }
  std::uint64_t CountXYConcurrent(const Levels& rhs) const override;
  std::uint64_t RowsPerCountXY() const override { return 0; }

  // Heap bytes of the maintained grids plus the per-Apply scratch
  // histograms. Feeds the mem.delta_grid_bytes gauge (obs/resource.h).
  std::size_t MemoryUsageBytes() const {
    return (joint_.capacity() + lhs_grid_.capacity() +
            scratch_joint_.capacity() + scratch_lhs_.capacity()) *
           sizeof(std::int64_t);
  }

 private:
  DeltaGridProvider() = default;

  std::size_t JointIndex(const Levels& rhs) const;

  std::uint64_t total_ = 0;
  int dmax_ = 0;
  ResolvedRule rule_;
  // Joint cumulative grid over (lhs..., rhs...) levels and the marginal
  // cumulative grid over lhs levels, signed for delta merges.
  std::vector<std::int64_t> joint_;
  std::vector<std::int64_t> lhs_grid_;
  // Per-Apply scratch histograms (kept allocated across batches).
  std::vector<std::int64_t> scratch_joint_;
  std::vector<std::int64_t> scratch_lhs_;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
};

}  // namespace dd

#endif  // DD_INCR_DELTA_GRID_PROVIDER_H_
