#include "incr/tuple_store.h"

#include "common/string_util.h"

namespace dd {

Result<std::uint32_t> TupleStore::Insert(std::vector<std::string> values) {
  const std::uint32_t id = next_id();
  DD_RETURN_IF_ERROR(relation_.AddRow(std::move(values)));
  live_.push_back(true);
  ++num_live_;
  return id;
}

Status TupleStore::Erase(std::uint32_t id) {
  if (id >= live_.size()) {
    return Status::InvalidArgument(StrFormat("unknown tuple id %u", id));
  }
  if (!live_[id]) {
    return Status::InvalidArgument(StrFormat("tuple %u already deleted", id));
  }
  live_[id] = false;
  --num_live_;
  return Status::Ok();
}

std::vector<std::uint32_t> TupleStore::LiveIds() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(num_live_);
  for (std::uint32_t id = 0; id < live_.size(); ++id) {
    if (live_[id]) ids.push_back(id);
  }
  return ids;
}

}  // namespace dd
