// Delta-based maintenance of the matching relation under inserts and
// deletes. The paper builds M once over a static instance; under live
// traffic a batch of b changes against N live tuples only affects the
// pairs touching changed tuples, so ApplyBatch computes the N·b + C(b,2)
// new distance vectors (reusing src/metric via ResolvedMetrics, spread
// over ParallelFor workers) and compacts deleted pairs out of M in one
// pass — instead of the O(N²) from-scratch rebuild.
//
// Complexity per batch of b inserts and k deletes over N live tuples
// with a matching relation of M tuples:
//   distance work   O((N + b) · b)       — the only metric evaluations
//   delete compact  O(M)  (k > 0 only)   — one branch-per-row pass
// versus O((N+b-k)²/2) distance evaluations for a rebuild.

#ifndef DD_INCR_INCREMENTAL_BUILDER_H_
#define DD_INCR_INCREMENTAL_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "incr/delta.h"
#include "incr/tuple_store.h"
#include "matching/builder.h"
#include "matching/matching_relation.h"

namespace dd {

struct IncrementalOptions {
  // dmax / metric / scale configuration. max_pairs must be 0: sampling
  // does not compose with deltas (a sampled M cannot tell which of the
  // N·b affected pairs it would have contained).
  MatchingOptions matching;
  // ParallelFor width for the per-batch distance computations
  // (0 = DefaultThreads(), i.e. --threads / DD_THREADS).
  std::size_t threads = 0;
};

class IncrementalMatchingBuilder {
 public:
  // Starts from an empty instance. Fails on unknown attributes/metrics,
  // bad dmax, or a nonzero max_pairs.
  static Result<IncrementalMatchingBuilder> Create(
      const Schema& schema, std::vector<std::string> attributes,
      IncrementalOptions options);

  // Applies one batch: deletes first (by tuple id), then inserts (rows
  // in schema order; ids are assigned ascending). Returns the delta
  // that transformed matching() — feed it to DeltaGridProvider::Apply
  // to keep counting queries O(1). The whole batch is validated before
  // any mutation, so a failed call leaves the state untouched.
  Result<MatchingDelta> ApplyBatch(
      const std::vector<std::vector<std::string>>& inserts,
      const std::vector<std::uint32_t>& deletes);

  // The delta-maintained matching relation over the live instance.
  const MatchingRelation& matching() const { return matching_; }
  const TupleStore& store() const { return store_; }
  const std::vector<std::string>& attributes() const { return attributes_; }
  int dmax() const { return options_.matching.dmax; }

  // Reference implementation: the matching relation of the current live
  // instance built from scratch in ascending pair order. The property
  // tests assert that matching() (canonicalized via SortByPairs) equals
  // this exactly; the benchmarks use it as the rebuild baseline.
  MatchingRelation Rebuild() const;

 private:
  IncrementalMatchingBuilder(Schema schema,
                             std::vector<std::string> attributes,
                             IncrementalOptions options,
                             ResolvedMetrics resolved)
      : store_(std::move(schema)),
        attributes_(std::move(attributes)),
        options_(std::move(options)),
        resolved_(std::move(resolved)),
        matching_(attributes_, options_.matching.dmax) {}

  TupleStore store_;
  std::vector<std::string> attributes_;
  IncrementalOptions options_;
  ResolvedMetrics resolved_;
  MatchingRelation matching_;
};

}  // namespace dd

#endif  // DD_INCR_INCREMENTAL_BUILDER_H_
