#include "incr/delta_grid_provider.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "core/grid_util.h"
#include "core/simd_count.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace dd {

namespace {

// Cell indices of one matching tuple's level row in the joint and lhs
// grids. `at` maps an attribute column to its level.
template <typename LevelAt>
std::pair<std::size_t, std::size_t> CellsOf(const ResolvedRule& rule,
                                            std::size_t base,
                                            const LevelAt& at) {
  std::size_t joint_idx = 0;
  for (std::size_t a = rule.rhs.size(); a-- > 0;) {
    joint_idx = joint_idx * base + static_cast<std::size_t>(at(rule.rhs[a]));
  }
  std::size_t lhs_idx = 0;
  for (std::size_t a = rule.lhs.size(); a-- > 0;) {
    joint_idx = joint_idx * base + static_cast<std::size_t>(at(rule.lhs[a]));
    lhs_idx = lhs_idx * base + static_cast<std::size_t>(at(rule.lhs[a]));
  }
  return {joint_idx, lhs_idx};
}

}  // namespace

Result<std::unique_ptr<DeltaGridProvider>> DeltaGridProvider::Create(
    const MatchingRelation& matching, ResolvedRule rule,
    std::size_t max_cells) {
  obs::TraceSpan span("grid_build");
  const std::size_t base = static_cast<std::size_t>(matching.dmax()) + 1;
  const std::size_t dims = rule.lhs.size() + rule.rhs.size();
  DD_ASSIGN_OR_RETURN(std::size_t cells,
                      grid::GridCells(base, dims, max_cells));
  std::size_t lhs_cells = 1;
  for (std::size_t d = 0; d < rule.lhs.size(); ++d) lhs_cells *= base;

  auto provider = std::unique_ptr<DeltaGridProvider>(new DeltaGridProvider());
  provider->total_ = matching.num_tuples();
  provider->dmax_ = matching.dmax();
  provider->rule_ = std::move(rule);
  provider->joint_.assign(cells, 0);
  provider->lhs_grid_.assign(lhs_cells, 0);

  // Histogram pass in vector-kernel blocks, exactly the layout CellsOf
  // produces: lhs dims low-order, so the first lhs strides double as
  // the marginal grid's strides. Scalar increments (scattered).
  const std::size_t m = matching.num_tuples();
  std::vector<simd::ColumnView> views;
  std::vector<std::uint32_t> strides;
  views.reserve(dims);
  strides.reserve(dims);
  std::uint64_t stride = 1;  // every pushed stride < cells, which fits uint32
  for (std::size_t a = 0; a < provider->rule_.lhs.size(); ++a) {
    views.push_back(simd::View(matching.column(provider->rule_.lhs[a])));
    strides.push_back(static_cast<std::uint32_t>(stride));
    stride *= base;
  }
  for (std::size_t a = 0; a < provider->rule_.rhs.size(); ++a) {
    views.push_back(simd::View(matching.column(provider->rule_.rhs[a])));
    strides.push_back(static_cast<std::uint32_t>(stride));
    stride *= base;
  }
  constexpr std::size_t kBlock = 4096;
  std::vector<std::uint32_t> joint_idx(kBlock);
  std::vector<std::uint32_t> lhs_idx(kBlock);
  for (std::size_t row = 0; row < m; row += kBlock) {
    const std::size_t count = std::min(kBlock, m - row);
    simd::GridIndices(views.data(), strides.data(), dims, row, row + count,
                      joint_idx.data());
    simd::GridIndices(views.data(), strides.data(),
                      provider->rule_.lhs.size(), row, row + count,
                      lhs_idx.data());
    for (std::size_t i = 0; i < count; ++i) {
      ++provider->joint_[joint_idx[i]];
      ++provider->lhs_grid_[lhs_idx[i]];
    }
  }
  grid::PrefixSumAllDims(&provider->joint_, dims, base);
  grid::PrefixSumAllDims(&provider->lhs_grid_, provider->rule_.lhs.size(),
                         base);
  DD_LOG(INFO) << "delta grid provider built: " << cells << " cells over "
               << m << " matching tuples";
  obs::SetMemoryGauge("delta_grid", provider->MemoryUsageBytes());
  return provider;
}

void DeltaGridProvider::Apply(const MatchingDelta& delta) {
  obs::TraceSpan span("incr/grid_apply");
  static obs::Counter& applies_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.grid_applies");
  static obs::Counter& merged_counter =
      obs::MetricsRegistry::Global().GetCounter("incr.grid_tuples_merged");
  if (delta.empty()) return;
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  const std::size_t dims = rule_.lhs.size() + rule_.rhs.size();
  scratch_joint_.assign(joint_.size(), 0);
  scratch_lhs_.assign(lhs_grid_.size(), 0);

  for (std::size_t k = 0; k < delta.num_added(); ++k) {
    const Level* row = delta.added_row(k);
    auto [joint_idx, lhs_idx] =
        CellsOf(rule_, base, [&](std::size_t a) { return row[a]; });
    ++scratch_joint_[joint_idx];
    ++scratch_lhs_[lhs_idx];
  }
  for (std::size_t k = 0; k < delta.num_removed(); ++k) {
    const Level* row = delta.removed_row(k);
    auto [joint_idx, lhs_idx] =
        CellsOf(rule_, base, [&](std::size_t a) { return row[a]; });
    --scratch_joint_[joint_idx];
    --scratch_lhs_[lhs_idx];
  }

  grid::PrefixSumAllDims(&scratch_joint_, dims, base);
  grid::PrefixSumAllDims(&scratch_lhs_, rule_.lhs.size(), base);
  for (std::size_t c = 0; c < joint_.size(); ++c) {
    joint_[c] += scratch_joint_[c];
  }
  for (std::size_t c = 0; c < lhs_grid_.size(); ++c) {
    lhs_grid_[c] += scratch_lhs_[c];
  }

  DD_CHECK_GE(total_ + delta.num_added(), delta.num_removed());
  total_ = total_ + delta.num_added() - delta.num_removed();
  // The all-dmax corner of the joint grid counts every tuple.
  DD_CHECK_EQ(static_cast<std::uint64_t>(joint_.back()), total_);
  applies_counter.Increment();
  merged_counter.Add(delta.num_added() + delta.num_removed());
}

void DeltaGridProvider::SetLhs(const Levels& lhs) {
  DD_CHECK_EQ(lhs.size(), rule_.lhs.size());
  ++stats_.lhs_evaluations;
  current_lhs_ = lhs;
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  std::size_t idx = 0;
  for (std::size_t a = rule_.lhs.size(); a-- > 0;) {
    DD_CHECK_GE(lhs[a], 0);
    DD_CHECK_LE(lhs[a], dmax_);
    idx = idx * base + static_cast<std::size_t>(lhs[a]);
  }
  const std::int64_t count = lhs_grid_[idx];
  DD_CHECK_GE(count, 0);
  lhs_count_ = static_cast<std::uint64_t>(count);
}

std::size_t DeltaGridProvider::JointIndex(const Levels& rhs) const {
  DD_CHECK_EQ(rhs.size(), rule_.rhs.size());
  DD_CHECK_EQ(current_lhs_.size(), rule_.lhs.size());
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  std::size_t idx = 0;
  for (std::size_t a = rule_.rhs.size(); a-- > 0;) {
    DD_CHECK_GE(rhs[a], 0);
    DD_CHECK_LE(rhs[a], dmax_);
    idx = idx * base + static_cast<std::size_t>(rhs[a]);
  }
  for (std::size_t a = rule_.lhs.size(); a-- > 0;) {
    idx = idx * base + static_cast<std::size_t>(current_lhs_[a]);
  }
  return idx;
}

std::uint64_t DeltaGridProvider::CountXY(const Levels& rhs) {
  ++stats_.xy_evaluations;
  const std::int64_t count = joint_[JointIndex(rhs)];
  DD_CHECK_GE(count, 0);
  return static_cast<std::uint64_t>(count);
}

std::uint64_t DeltaGridProvider::CountXYConcurrent(const Levels& rhs) const {
  const std::int64_t count = joint_[JointIndex(rhs)];
  DD_CHECK_GE(count, 0);
  return static_cast<std::uint64_t>(count);
}

std::unique_ptr<MeasureProvider> DeltaGridProvider::CloneForThread() const {
  auto clone = std::unique_ptr<DeltaGridProvider>(new DeltaGridProvider());
  clone->total_ = total_;
  clone->dmax_ = dmax_;
  clone->rule_ = rule_;
  clone->joint_ = joint_;
  clone->lhs_grid_ = lhs_grid_;
  return clone;
}

}  // namespace dd
