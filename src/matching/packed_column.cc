#include "matching/packed_column.h"

#include <cstdlib>
#include <cstring>
#include <ostream>

#include "common/logging.h"

namespace dd {

namespace {

constexpr std::size_t kAlignment = 64;

std::uint8_t* AllocateSlab(std::size_t bytes) {
  // std::aligned_alloc requires the size to be a multiple of the
  // alignment; rounding up also gives the vector kernels a full final
  // block of zeroed bytes to land loads in.
  const std::size_t rounded = (bytes + kAlignment - 1) & ~(kAlignment - 1);
  void* p = std::aligned_alloc(kAlignment, rounded);
  DD_CHECK(p != nullptr);
  std::memset(p, 0, rounded);
  return static_cast<std::uint8_t*>(p);
}

}  // namespace

PackedColumn::PackedColumn(const PackedColumn& other)
    : size_(other.size_), packed4_(other.packed4_) {
  if (other.cap_bytes_ > 0) {
    data_ = AllocateSlab(other.cap_bytes_);
    cap_bytes_ = (other.cap_bytes_ + kAlignment - 1) & ~(kAlignment - 1);
    std::memcpy(data_, other.data_, other.packed_bytes());
  }
}

PackedColumn& PackedColumn::operator=(const PackedColumn& other) {
  if (this == &other) return *this;
  PackedColumn copy(other);
  *this = std::move(copy);
  return *this;
}

PackedColumn::PackedColumn(PackedColumn&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      cap_bytes_(other.cap_bytes_),
      packed4_(other.packed4_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.cap_bytes_ = 0;
}

PackedColumn& PackedColumn::operator=(PackedColumn&& other) noexcept {
  if (this == &other) return *this;
  std::free(data_);
  data_ = other.data_;
  size_ = other.size_;
  cap_bytes_ = other.cap_bytes_;
  packed4_ = other.packed4_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.cap_bytes_ = 0;
  return *this;
}

PackedColumn::~PackedColumn() { std::free(data_); }

void PackedColumn::EnsureCapacity(std::size_t bytes) {
  if (bytes <= cap_bytes_) return;
  // Geometric growth so the append path (AddTuple) stays amortized
  // O(1); the direct-write build sizes once via Resize and never grows.
  std::size_t want = cap_bytes_ < kAlignment ? kAlignment : cap_bytes_ * 2;
  if (want < bytes) want = bytes;
  std::uint8_t* slab = AllocateSlab(want);
  if (data_ != nullptr) {
    std::memcpy(slab, data_, packed_bytes());
    std::free(data_);
  }
  data_ = slab;
  cap_bytes_ = (want + kAlignment - 1) & ~(kAlignment - 1);
}

void PackedColumn::PushBack(Level v) {
  const std::size_t row = size_;
  EnsureCapacity(packed4_ ? row / 2 + 1 : row + 1);
  ++size_;
  Set(row, v);
}

void PackedColumn::Resize(std::size_t rows) {
  if (rows >= size_) {
    EnsureCapacity(packed4_ ? (rows + 1) / 2 : rows);
    // Grown region is already zero (slabs are zero-filled and shrink
    // re-zeroes), so the new rows read as level 0.
    size_ = rows;
    return;
  }
  // Shrink: restore the zero-fill invariant over the abandoned tail,
  // including the padding nibble of a now-odd final byte.
  const std::size_t new_bytes = packed4_ ? (rows + 1) / 2 : rows;
  if (cap_bytes_ > new_bytes) {
    std::memset(data_ + new_bytes, 0, cap_bytes_ - new_bytes);
  }
  if (packed4_ && (rows & 1)) {
    data_[rows / 2] &= 0x0F;  // clear the dead high nibble
  }
  size_ = rows;
}

void PackedColumn::Reserve(std::size_t rows) {
  EnsureCapacity(packed4_ ? (rows + 1) / 2 : rows);
}

std::vector<Level> PackedColumn::Unpack() const {
  std::vector<Level> out(size_);
  for (std::size_t row = 0; row < size_; ++row) out[row] = Get(row);
  return out;
}

bool PackedColumn::operator==(const PackedColumn& other) const {
  if (size_ != other.size_) return false;
  if (packed4_ == other.packed4_) {
    // Zero-filled padding makes whole-byte comparison exact.
    return std::memcmp(data_, other.data_, packed_bytes()) == 0;
  }
  for (std::size_t row = 0; row < size_; ++row) {
    if (Get(row) != other.Get(row)) return false;
  }
  return true;
}

void PrintTo(const PackedColumn& column, std::ostream* os) {
  *os << "PackedColumn(" << (column.packed4() ? "4-bit" : "8-bit") << ", "
      << column.size() << " levels: [";
  const std::size_t show = column.size() < 16 ? column.size() : 16;
  for (std::size_t row = 0; row < show; ++row) {
    if (row > 0) *os << ", ";
    *os << static_cast<int>(column.Get(row));
  }
  if (show < column.size()) *os << ", ...";
  *os << "])";
}

}  // namespace dd
