// Value-pair distance cache for the matching build. Real entity-
// resolution data (Cora, Restaurant, Hotel) is highly repetitive per
// attribute: N rows typically carry D << N distinct values, yet the
// naive build recomputes the metric for every one of the N(N-1)/2 row
// pairs. Interning distinct values per attribute turns each row pair
// into an id pair; a precomputed triangular level table over the D
// distinct values then answers every pair with one load, so each
// distinct (value_i, value_j) distance is computed exactly once.
//
// Determinism: the table is a pure function of the column contents and
// the metric configuration — the same BoundedDistance cap and
// BucketDistance mapping the direct path uses — so cached and uncached
// builds produce bit-identical matching relations at any thread count.

#ifndef DD_MATCHING_VALUE_CACHE_H_
#define DD_MATCHING_VALUE_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "matching/matching_relation.h"
#include "metric/metric.h"

namespace dd {

// Distinct-value interning for one attribute column: row_ids[row] is
// the id of the row's value; values[id] points at a representative
// occurrence inside the relation (stable for the relation's lifetime).
struct AttributeValueIndex {
  std::vector<std::uint32_t> row_ids;
  std::vector<const std::string*> values;

  std::size_t distinct() const { return values.size(); }
};

// Interns column `attr_idx` of `relation`. Ids are assigned in first-
// occurrence order (deterministic).
AttributeValueIndex InternColumn(const Relation& relation,
                                 std::size_t attr_idx);

// Precomputed bucketed levels for every unordered pair of distinct
// values of one attribute. Strictly-upper-triangular storage; equal ids
// answer level 0 without a lookup (d(x, x) = 0 is a metric axiom).
class ValuePairLevelTable {
 public:
  // Precomputes the table with `metric`/`scale`/`dmax` (the same cap
  // and bucketing matching/builder.cc applies per pair), parallelized
  // over `threads`. Returns nullptr when the table would not pay off:
  // more cells than `pairs_to_compute` row pairs, or more than
  // `max_cells` cells (the memory bound — one byte per cell).
  static std::unique_ptr<ValuePairLevelTable> Build(
      const AttributeValueIndex& index, const DistanceMetric& metric,
      double scale, int dmax, std::uint64_t pairs_to_compute,
      std::uint64_t max_cells, std::size_t threads);

  Level LevelOf(std::uint32_t id_a, std::uint32_t id_b) const {
    if (id_a == id_b) return 0;
    const auto [lo, hi] = std::minmax(id_a, id_b);
    return table_[TriIndex(lo, hi)];
  }

  // Number of metric evaluations the precomputation performed.
  std::uint64_t distances_computed() const { return table_.size(); }

  // Heap bytes of the triangular level table (one byte per cell).
  // Feeds the mem.value_cache_bytes gauge (obs/resource.h).
  std::size_t MemoryUsageBytes() const {
    return table_.capacity() * sizeof(Level);
  }

 private:
  ValuePairLevelTable(std::uint64_t distinct) : d_(distinct) {}

  std::uint64_t TriIndex(std::uint64_t lo, std::uint64_t hi) const {
    return lo * (d_ - 1) - lo * (lo - 1) / 2 + (hi - lo - 1);
  }

  std::uint64_t d_;
  std::vector<Level> table_;
};

}  // namespace dd

#endif  // DD_MATCHING_VALUE_CACHE_H_
