// The matching relation M: one "matching tuple" per pair of data tuples,
// holding the pairwise distance on every attribute of interest, bucketed
// into the integer threshold domain {0, ..., dmax}. The paper
// pre-computes M once and evaluates every candidate threshold pattern
// against it; this implementation stores M columnar (one bit-packed,
// 64-byte-aligned level column per attribute — matching/packed_column.h)
// so that counting tuples satisfying a pattern is a tight sequential
// scan the SIMD kernels in core/simd_count.h can vectorize.

#ifndef DD_MATCHING_MATCHING_RELATION_H_
#define DD_MATCHING_MATCHING_RELATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "matching/packed_column.h"

namespace dd {

class MatchingRelation {
 public:
  MatchingRelation(std::vector<std::string> attribute_names, int dmax)
      : attribute_names_(std::move(attribute_names)),
        dmax_(dmax),
        columns_(attribute_names_.size(), PackedColumn(dmax)) {}

  std::size_t num_tuples() const { return pairs_.size(); }
  std::size_t num_attributes() const { return attribute_names_.size(); }
  int dmax() const { return dmax_; }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  // Index of attribute `name` within this matching relation, or NotFound.
  Result<std::size_t> IndexOf(std::string_view name) const;

  // Distance level of matching tuple `row` on attribute `attr`.
  Level level(std::size_t row, std::size_t attr) const {
    return columns_[attr].Get(row);
  }

  // Packed level column for attribute `attr` (scan-friendly; the SIMD
  // kernels read its raw words).
  const PackedColumn& column(std::size_t attr) const {
    return columns_[attr];
  }

  // The (i, j) data-tuple pair behind matching tuple `row` (i < j).
  const std::pair<std::uint32_t, std::uint32_t>& pair(std::size_t row) const {
    return pairs_[row];
  }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs() const {
    return pairs_;
  }

  // Appends a matching tuple. `levels` has one entry per attribute.
  void AddTuple(std::uint32_t i, std::uint32_t j,
                const std::vector<Level>& levels);

  // Direct-write construction for parallel builders: size the relation
  // once, then fill disjoint row ranges concurrently with SetTuple.
  // Writing row k with the k-th pair of the enumeration reproduces the
  // sequential AddTuple layout exactly, whatever the chunking.
  void ResizeRows(std::size_t rows);
  void SetTuple(std::size_t row, std::uint32_t i, std::uint32_t j,
                const Level* levels);

  // Level vector of matching tuple `row` across all attributes (a
  // gather over the columnar storage; delta capture, not a hot path).
  std::vector<Level> RowLevels(std::size_t row) const;

  // Removes the matching tuples at `rows` (ascending, unique indices),
  // preserving the relative order of the survivors. One O(M) compaction
  // pass over every column — the incremental-maintenance delete path.
  void RemoveRows(const std::vector<std::uint32_t>& rows);

  // Reorders matching tuples into ascending (i, j) pair order — the
  // order a from-scratch full-enumeration build produces. Counting is
  // order-independent; this exists so delta-maintained and rebuilt
  // relations can be compared for exact equality.
  void SortByPairs();

  void Reserve(std::size_t rows);

  // Heap bytes held by the columnar storage and the pair list (capacity,
  // not size — what the allocator actually charged us). Feeds the
  // mem.matching_bytes gauge (obs/resource.h).
  std::size_t MemoryUsageBytes() const {
    std::size_t bytes = 0;
    for (const auto& column : columns_) {
      bytes += column.capacity_bytes();
    }
    bytes += pairs_.capacity() * sizeof(pairs_[0]);
    return bytes;
  }

 private:
  std::vector<std::string> attribute_names_;
  int dmax_;
  std::vector<PackedColumn> columns_;  // columns_[attr].Get(row)
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
};

}  // namespace dd

#endif  // DD_MATCHING_MATCHING_RELATION_H_
