#include "matching/serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dd {

namespace {

constexpr char kMagic[4] = {'D', 'D', 'M', 'R'};
// Version 1 is the legacy checksum-less layout; version 2 (current,
// kMatchingFormatVersion) inserts a u64 FNV-1a of the body after the
// version word. See serialization.h for the full history.
constexpr std::uint32_t kLegacyVersion = 1;

// Bounds-checked little reader over the byte buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - pos_ < sizeof(T)) {
      return Status::InvalidArgument("truncated matching-relation data");
    }
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  Status ReadBytes(void* out, std::size_t n) {
    if (bytes_.size() - pos_ < n) {
      return Status::InvalidArgument("truncated matching-relation data");
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  Status ReadString(std::string* out, std::size_t n) {
    out->resize(n);
    return ReadBytes(out->data(), n);
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

template <typename T>
void Append(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Parses the version-independent body (everything after the header).
Result<MatchingRelation> ParseBody(std::string_view body);

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= static_cast<std::uint64_t>(c);
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

std::string SerializeMatchingRelation(const MatchingRelation& matching) {
  std::string body;
  Append(&body, static_cast<std::int32_t>(matching.dmax()));
  Append(&body, static_cast<std::uint32_t>(matching.num_attributes()));
  for (const auto& name : matching.attribute_names()) {
    Append(&body, static_cast<std::uint32_t>(name.size()));
    body.append(name);
  }
  Append(&body, static_cast<std::uint64_t>(matching.num_tuples()));
  for (const auto& [i, j] : matching.pairs()) {
    Append(&body, i);
    Append(&body, j);
  }
  for (std::size_t a = 0; a < matching.num_attributes(); ++a) {
    // Serialized columns stay one byte per level whatever the in-memory
    // packing, so the v2 format (and its checksums) are unchanged by
    // the bit-packed store.
    const std::vector<Level> column = matching.column(a).Unpack();
    body.append(reinterpret_cast<const char*>(column.data()), column.size());
  }

  std::string out;
  out.reserve(body.size() + 16);
  out.append(kMagic, sizeof(kMagic));
  Append(&out, kMatchingFormatVersion);
  Append(&out, Fnv1a64(body));
  out.append(body);
  return out;
}

Result<MatchingRelation> DeserializeMatchingRelation(std::string_view bytes) {
  Reader header(bytes);
  char magic[4];
  DD_RETURN_IF_ERROR(header.ReadBytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a matching-relation file");
  }
  std::uint32_t version = 0;
  DD_RETURN_IF_ERROR(header.Read(&version));
  if (version == kLegacyVersion) {
    // Legacy pre-checksum layout: the body follows immediately; no
    // integrity check possible beyond the structural validation below.
    return ParseBody(bytes.substr(sizeof(kMagic) + sizeof(version)));
  }
  if (version != kMatchingFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported matching-relation version %u", version));
  }
  std::uint64_t checksum = 0;
  DD_RETURN_IF_ERROR(header.Read(&checksum));
  const std::string_view body =
      bytes.substr(sizeof(kMagic) + sizeof(version) + sizeof(checksum));
  if (Fnv1a64(body) != checksum) {
    return Status::InvalidArgument(
        "checksum mismatch: corrupted matching-relation data");
  }
  return ParseBody(body);
}

namespace {

Result<MatchingRelation> ParseBody(std::string_view body) {
  Reader reader(body);
  std::int32_t dmax = 0;
  DD_RETURN_IF_ERROR(reader.Read(&dmax));
  if (dmax < 1 || dmax > 255) {
    return Status::InvalidArgument(StrFormat("corrupt dmax %d", dmax));
  }
  std::uint32_t num_attrs = 0;
  DD_RETURN_IF_ERROR(reader.Read(&num_attrs));
  if (num_attrs == 0 || num_attrs > 4096) {
    return Status::InvalidArgument("corrupt attribute count");
  }
  std::vector<std::string> names(num_attrs);
  for (auto& name : names) {
    std::uint32_t len = 0;
    DD_RETURN_IF_ERROR(reader.Read(&len));
    if (len > 4096) return Status::InvalidArgument("corrupt attribute name");
    DD_RETURN_IF_ERROR(reader.ReadString(&name, len));
  }
  std::uint64_t tuples = 0;
  DD_RETURN_IF_ERROR(reader.Read(&tuples));
  // Sanity bound: the remaining bytes must cover pairs + columns.
  const std::uint64_t needed =
      tuples * (2 * sizeof(std::uint32_t) + num_attrs);
  if (needed > body.size()) {
    return Status::InvalidArgument("truncated matching-relation payload");
  }

  MatchingRelation matching(names, dmax);
  matching.Reserve(tuples);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs(tuples);
  for (auto& [i, j] : pairs) {
    DD_RETURN_IF_ERROR(reader.Read(&i));
    DD_RETURN_IF_ERROR(reader.Read(&j));
  }
  std::vector<std::vector<Level>> columns(num_attrs,
                                          std::vector<Level>(tuples));
  for (auto& column : columns) {
    DD_RETURN_IF_ERROR(reader.ReadBytes(column.data(), column.size()));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after matching relation");
  }
  std::vector<Level> levels(num_attrs);
  for (std::uint64_t t = 0; t < tuples; ++t) {
    for (std::uint32_t a = 0; a < num_attrs; ++a) {
      if (static_cast<int>(columns[a][t]) > dmax) {
        return Status::InvalidArgument("level exceeds dmax");
      }
      levels[a] = columns[a][t];
    }
    matching.AddTuple(pairs[t].first, pairs[t].second, levels);
  }
  return matching;
}

}  // namespace

Status WriteMatchingFile(const MatchingRelation& matching,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string bytes = SerializeMatchingRelation(matching);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<MatchingRelation> ReadMatchingFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeMatchingRelation(buffer.str());
}

}  // namespace dd
