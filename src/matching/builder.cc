#include "matching/builder.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "matching/value_cache.h"
#include "metric/metric.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace dd {

PairLevelSource::PairLevelSource(const Relation& relation,
                                 const ResolvedMetrics& resolved,
                                 const MatchingOptions& options,
                                 std::uint64_t pairs_to_compute,
                                 std::size_t threads)
    : relation_(relation), resolved_(resolved) {
  if (!options.value_cache) return;
  attrs_.resize(resolved.num_attributes());
  for (std::size_t a = 0; a < attrs_.size(); ++a) {
    attrs_[a].index = InternColumn(relation, resolved.attr_idx[a]);
    attrs_[a].interned = true;
    attrs_[a].table = ValuePairLevelTable::Build(
        attrs_[a].index, *resolved.metrics[a], resolved.scales[a],
        resolved.dmax, pairs_to_compute, options.value_cache_max_cells,
        threads);
    if (attrs_[a].table != nullptr) {
      precomputed_distances_ += attrs_[a].table->distances_computed();
    }
  }
}

std::pair<std::uint32_t, std::uint32_t> DecodeTriangularPair(std::uint64_t k,
                                                             std::uint64_t n) {
  // Row r holds the n-1-r pairs (r, r+1..n-1), so pairs before row r
  // number r*(n-1) - r*(r-1)/2. Start from the quadratic-formula
  // estimate of the row, then correct by +-1 steps.
  double nd = static_cast<double>(n);
  double kd = static_cast<double>(k);
  double approx = nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * kd);
  std::uint64_t i = approx > 0 ? static_cast<std::uint64_t>(approx) : 0;
  if (i >= n - 1) i = n - 2;
  auto row_start = [n](std::uint64_t r) {
    return r * (n - 1) - r * (r - 1) / 2;  // offset of pair (r, r+1)
  };
  while (i + 1 < n && row_start(i + 1) <= k) ++i;
  while (i > 0 && row_start(i) > k) --i;
  std::uint64_t j = i + 1 + (k - row_start(i));
  return {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)};
}

std::uint64_t EncodeTriangularPair(std::uint64_t i, std::uint64_t j,
                                   std::uint64_t n) {
  return i * (n - 1) - i * (i - 1) / 2 + (j - i - 1);
}

Level BucketDistance(double raw, double scale, int dmax) {
  if (!(raw >= 0.0)) raw = 0.0;  // NaN or negative metrics clamp to 0.
  double scaled = raw * scale;
  if (std::isinf(scaled) || scaled >= static_cast<double>(dmax)) {
    return static_cast<Level>(dmax);
  }
  long level = std::lround(scaled);
  if (level < 0) level = 0;
  if (level > dmax) level = dmax;
  return static_cast<Level>(level);
}

Level ResolvedMetrics::ComputeLevel(const Relation& relation, std::uint32_t i,
                                    std::uint32_t j, std::size_t a) const {
  const std::string& va = relation.at(i, attr_idx[a]);
  const std::string& vb = relation.at(j, attr_idx[a]);
  // The cap at which BoundedDistance may stop early: any raw distance
  // mapping to >= dmax is equivalent, so raw cap = dmax / scale.
  const double cap = static_cast<double>(dmax) / scales[a];
  const double raw = metrics[a]->BoundedDistance(va, vb, cap);
  return BucketDistance(raw, scales[a], dmax);
}

void ResolvedMetrics::ComputeLevels(const Relation& relation, std::uint32_t i,
                                    std::uint32_t j, Level* levels) const {
  for (std::size_t a = 0; a < attr_idx.size(); ++a) {
    levels[a] = ComputeLevel(relation, i, j, a);
  }
}

Result<ResolvedMetrics> ResolveMatchingMetrics(
    const Schema& schema, const std::vector<std::string>& attributes,
    const MatchingOptions& options) {
  if (options.dmax < 1 || options.dmax > 255) {
    return Status::InvalidArgument(
        StrFormat("dmax %d outside [1, 255]", options.dmax));
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("no attributes given");
  }
  ResolvedMetrics resolved;
  resolved.dmax = options.dmax;
  DD_ASSIGN_OR_RETURN(resolved.attr_idx, schema.ResolveAll(attributes));
  resolved.metrics.reserve(attributes.size());
  for (std::size_t a = 0; a < attributes.size(); ++a) {
    const Attribute& attr = schema.attribute(resolved.attr_idx[a]);
    std::string metric_name =
        attr.type == AttributeType::kNumeric ? "numeric_abs" : "levenshtein";
    auto it = options.metric_overrides.find(attr.name);
    if (it != options.metric_overrides.end()) metric_name = it->second;
    DD_ASSIGN_OR_RETURN(auto metric,
                        MetricRegistry::Default().Create(metric_name));
    double scale = metric->is_normalized() ? static_cast<double>(options.dmax)
                                           : 1.0;
    auto sit = options.scale_overrides.find(attr.name);
    if (sit != options.scale_overrides.end()) scale = sit->second;
    if (!(scale > 0.0)) {
      return Status::InvalidArgument("scale must be positive for " + attr.name);
    }
    resolved.metrics.push_back(std::move(metric));
    resolved.scales.push_back(scale);
  }
  return resolved;
}

Result<MatchingRelation> BuildMatchingRelation(
    const Relation& relation, const std::vector<std::string>& attributes,
    const MatchingOptions& options) {
  if (options.mode != MatchingMode::kExact) {
    return Status::InvalidArgument(
        "MatchingMode::kApprox is owned by approx::SampledMatchingBuilder; "
        "BuildMatchingRelation only builds exact relations");
  }
  obs::TraceSpan span("matching_build");
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::Global().GetCounter("matching.pairs_computed");
  static obs::Counter& distance_counter =
      obs::MetricsRegistry::Global().GetCounter("matching.distances_computed");
  DD_ASSIGN_OR_RETURN(
      ResolvedMetrics resolved,
      ResolveMatchingMetrics(relation.schema(), attributes, options));

  const std::uint64_t n = relation.num_rows();
  const std::uint64_t total_pairs = n * (n - 1) / 2;
  const std::size_t threads =
      options.threads == 0 ? DefaultThreads() : options.threads;
  MatchingRelation out(attributes, options.dmax);

  const bool full =
      options.max_pairs == 0 || options.max_pairs >= total_pairs;
  const std::uint64_t pairs_to_compute =
      full ? total_pairs : options.max_pairs;
  const PairLevelSource source(relation, resolved, options, pairs_to_compute,
                               threads);
  std::atomic<std::uint64_t> metric_calls{source.precomputed_distances()};
  const std::size_t num_attrs = attributes.size();

  if (full) {
    out.ResizeRows(total_pairs);
    ParallelFor("matching_build.pairs", total_pairs, threads,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  if (begin >= end) return;
                  std::vector<Level> levels(num_attrs);
                  std::uint64_t calls = 0;
                  auto [i, j] = DecodeTriangularPair(begin, n);
                  for (std::size_t k = begin; k < end; ++k) {
                    source.Levels(i, j, levels.data(), &calls);
                    out.SetTuple(k, i, j, levels.data());
                    if (++j == n) {
                      ++i;
                      j = i + 1;
                    }
                  }
                  metric_calls.fetch_add(calls, std::memory_order_relaxed);
                });
    pairs_counter.Add(total_pairs);
    distance_counter.Add(metric_calls.load(std::memory_order_relaxed));
    DD_LOG(INFO) << "matching relation built: all " << total_pairs
                 << " pairs over " << n << " rows, " << attributes.size()
                 << " attribute(s), dmax=" << options.dmax << ", threads="
                 << threads << ", cached level tables: "
                 << source.tables_built() << "/" << attributes.size();
    obs::SetMemoryGauge("matching", out.MemoryUsageBytes());
    obs::SetMemoryGauge("value_cache", source.cache_bytes());
    return out;
  }

  // Uniform sample without replacement over the triangular enumeration.
  Rng rng(options.seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(options.max_pairs * 2);
  std::vector<std::uint64_t> ks;
  ks.reserve(options.max_pairs);
  while (ks.size() < options.max_pairs) {
    std::uint64_t k = rng.NextBounded(total_pairs);
    if (chosen.insert(k).second) ks.push_back(k);
  }
  std::sort(ks.begin(), ks.end());
  out.ResizeRows(ks.size());
  ParallelFor("matching_build.sampled", ks.size(), threads,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                std::vector<Level> levels(num_attrs);
                std::uint64_t calls = 0;
                for (std::size_t r = begin; r < end; ++r) {
                  auto [i, j] = DecodeTriangularPair(ks[r], n);
                  source.Levels(i, j, levels.data(), &calls);
                  out.SetTuple(r, i, j, levels.data());
                }
                metric_calls.fetch_add(calls, std::memory_order_relaxed);
              });
  pairs_counter.Add(ks.size());
  distance_counter.Add(metric_calls.load(std::memory_order_relaxed));
  DD_LOG(INFO) << "matching relation built: sampled " << ks.size() << " of "
               << total_pairs << " pairs over " << n << " rows, dmax="
               << options.dmax << ", threads=" << threads
               << ", cached level tables: " << source.tables_built() << "/"
               << attributes.size();
  obs::SetMemoryGauge("matching", out.MemoryUsageBytes());
  obs::SetMemoryGauge("value_cache", source.cache_bytes());
  return out;
}

}  // namespace dd
