#include "matching/builder.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "metric/metric.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

namespace {

// Decodes the k-th pair (0-based) of the row-major upper-triangular
// enumeration over n items into (i, j) with i < j.
std::pair<std::uint32_t, std::uint32_t> DecodePair(std::uint64_t k,
                                                   std::uint64_t n) {
  // Row r holds the n-1-r pairs (r, r+1..n-1), so pairs before row r
  // number r*(n-1) - r*(r-1)/2. Start from the quadratic-formula
  // estimate of the row, then correct by +-1 steps.
  double nd = static_cast<double>(n);
  double kd = static_cast<double>(k);
  double approx = nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * kd);
  std::uint64_t i = approx > 0 ? static_cast<std::uint64_t>(approx) : 0;
  if (i >= n - 1) i = n - 2;
  auto row_start = [n](std::uint64_t r) {
    return r * (n - 1) - r * (r - 1) / 2;  // offset of pair (r, r+1)
  };
  while (i + 1 < n && row_start(i + 1) <= k) ++i;
  while (i > 0 && row_start(i) > k) --i;
  std::uint64_t j = i + 1 + (k - row_start(i));
  return {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)};
}

}  // namespace

Level BucketDistance(double raw, double scale, int dmax) {
  if (!(raw >= 0.0)) raw = 0.0;  // NaN or negative metrics clamp to 0.
  double scaled = raw * scale;
  if (std::isinf(scaled) || scaled >= static_cast<double>(dmax)) {
    return static_cast<Level>(dmax);
  }
  long level = std::lround(scaled);
  if (level < 0) level = 0;
  if (level > dmax) level = dmax;
  return static_cast<Level>(level);
}

void ResolvedMetrics::ComputeLevels(const Relation& relation, std::uint32_t i,
                                    std::uint32_t j, Level* levels) const {
  for (std::size_t a = 0; a < attr_idx.size(); ++a) {
    const std::string& va = relation.at(i, attr_idx[a]);
    const std::string& vb = relation.at(j, attr_idx[a]);
    // The cap at which BoundedDistance may stop early: any raw distance
    // mapping to >= dmax is equivalent, so raw cap = dmax / scale.
    const double cap = static_cast<double>(dmax) / scales[a];
    double raw = metrics[a]->BoundedDistance(va, vb, cap);
    levels[a] = BucketDistance(raw, scales[a], dmax);
  }
}

Result<ResolvedMetrics> ResolveMatchingMetrics(
    const Schema& schema, const std::vector<std::string>& attributes,
    const MatchingOptions& options) {
  if (options.dmax < 1 || options.dmax > 255) {
    return Status::InvalidArgument(
        StrFormat("dmax %d outside [1, 255]", options.dmax));
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("no attributes given");
  }
  ResolvedMetrics resolved;
  resolved.dmax = options.dmax;
  DD_ASSIGN_OR_RETURN(resolved.attr_idx, schema.ResolveAll(attributes));
  resolved.metrics.reserve(attributes.size());
  for (std::size_t a = 0; a < attributes.size(); ++a) {
    const Attribute& attr = schema.attribute(resolved.attr_idx[a]);
    std::string metric_name =
        attr.type == AttributeType::kNumeric ? "numeric_abs" : "levenshtein";
    auto it = options.metric_overrides.find(attr.name);
    if (it != options.metric_overrides.end()) metric_name = it->second;
    DD_ASSIGN_OR_RETURN(auto metric,
                        MetricRegistry::Default().Create(metric_name));
    double scale = metric->is_normalized() ? static_cast<double>(options.dmax)
                                           : 1.0;
    auto sit = options.scale_overrides.find(attr.name);
    if (sit != options.scale_overrides.end()) scale = sit->second;
    if (!(scale > 0.0)) {
      return Status::InvalidArgument("scale must be positive for " + attr.name);
    }
    resolved.metrics.push_back(std::move(metric));
    resolved.scales.push_back(scale);
  }
  return resolved;
}

Result<MatchingRelation> BuildMatchingRelation(
    const Relation& relation, const std::vector<std::string>& attributes,
    const MatchingOptions& options) {
  obs::TraceSpan span("matching_build");
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::Global().GetCounter("matching.pairs_computed");
  static obs::Counter& distance_counter =
      obs::MetricsRegistry::Global().GetCounter("matching.distances_computed");
  DD_ASSIGN_OR_RETURN(
      ResolvedMetrics resolved,
      ResolveMatchingMetrics(relation.schema(), attributes, options));

  const std::uint64_t n = relation.num_rows();
  const std::uint64_t total_pairs = n * (n - 1) / 2;
  MatchingRelation out(attributes, options.dmax);

  std::vector<Level> levels(attributes.size());
  if (options.max_pairs == 0 || options.max_pairs >= total_pairs) {
    out.Reserve(total_pairs);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        resolved.ComputeLevels(relation, i, j, levels.data());
        out.AddTuple(i, j, levels);
      }
    }
    pairs_counter.Add(total_pairs);
    distance_counter.Add(total_pairs * attributes.size());
    DD_LOG(INFO) << "matching relation built: all " << total_pairs
                 << " pairs over " << n << " rows, " << attributes.size()
                 << " attribute(s), dmax=" << options.dmax;
    return out;
  }

  // Uniform sample without replacement over the triangular enumeration.
  Rng rng(options.seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(options.max_pairs * 2);
  std::vector<std::uint64_t> ks;
  ks.reserve(options.max_pairs);
  while (ks.size() < options.max_pairs) {
    std::uint64_t k = rng.NextBounded(total_pairs);
    if (chosen.insert(k).second) ks.push_back(k);
  }
  std::sort(ks.begin(), ks.end());
  out.Reserve(ks.size());
  for (std::uint64_t k : ks) {
    auto [i, j] = DecodePair(k, n);
    resolved.ComputeLevels(relation, i, j, levels.data());
    out.AddTuple(i, j, levels);
  }
  pairs_counter.Add(ks.size());
  distance_counter.Add(ks.size() * attributes.size());
  DD_LOG(INFO) << "matching relation built: sampled " << ks.size() << " of "
               << total_pairs << " pairs over " << n << " rows, dmax="
               << options.dmax;
  return out;
}

}  // namespace dd
