// Pair-wise matching: computes the matching relation M from a data
// relation by evaluating a distance metric per attribute on every tuple
// pair (optionally a uniform sample of pairs, to bound |M| like the
// paper's 1,000,000-matching-tuple preparation) and bucketing raw
// distances into the threshold domain {0..dmax}.

#ifndef DD_MATCHING_BUILDER_H_
#define DD_MATCHING_BUILDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "matching/matching_relation.h"
#include "matching/value_cache.h"
#include "metric/metric.h"

namespace dd {

// How pairs enter the matching relation. kExact is the builder in this
// file: every pair, or a plain uniform `max_pairs` sample. kApprox
// selects the stratified near/tail build owned by
// approx::SampledMatchingBuilder (src/approx/sampled_builder.h), which
// carries estimation weights that a single MatchingRelation cannot
// express — BuildMatchingRelation therefore rejects kApprox instead of
// silently ignoring it.
enum class MatchingMode { kExact, kApprox };

struct MatchingOptions {
  // Build mode; see MatchingMode. Facades (ddtool, discover) route
  // kApprox to the approx subsystem.
  MatchingMode mode = MatchingMode::kExact;

  // Number of distance levels is dmax + 1 (levels 0..dmax). The paper's
  // experiments use a domain like {0, 1, ..., 10}.
  int dmax = 10;

  // Upper bound on |M|. 0 means all N(N-1)/2 pairs; otherwise a uniform
  // sample without replacement of exactly min(max_pairs, total) pairs.
  std::size_t max_pairs = 0;

  // Seed for pair sampling.
  std::uint64_t seed = 1;

  // Metric per attribute name; attributes not listed default to
  // "levenshtein" for string attributes and "numeric_abs" for numerics.
  std::map<std::string, std::string> metric_overrides;

  // Raw distances are mapped to levels as
  //   level = min(round(raw * scale), dmax).
  // Default scale is 1.0 for unbounded metrics (raw edit distance counts
  // directly) and dmax for normalized metrics (so [0,1] spreads over the
  // full domain). Overrides replace the default per attribute.
  std::map<std::string, double> scale_overrides;

  // Concurrency of the pair-distance computation. 0 = DefaultThreads()
  // (the --threads flag / DD_THREADS env). The produced relation is
  // bit-identical at any thread count.
  std::size_t threads = 0;

  // Value-pair distance cache (matching/value_cache.h): intern distinct
  // attribute values and compute each distinct (value_i, value_j)
  // distance once. Never changes the produced relation; disable only to
  // measure the uncached build.
  bool value_cache = true;

  // Per-attribute cell bound for the precomputed distinct-pair level
  // table (one byte per cell). Attributes whose table would exceed it
  // fall back to the equal-value shortcut alone.
  std::uint64_t value_cache_max_cells = std::uint64_t{1} << 26;
};

// Metric machinery resolved once per (schema, attributes, options):
// schema column of every matching attribute, its distance metric, and
// its level scale. Shared by the one-shot build below and the
// incremental builder (incr/incremental_builder.h), which keeps one
// resolution alive across many delta batches.
struct ResolvedMetrics {
  std::vector<std::size_t> attr_idx;  // schema columns, one per attribute
  std::vector<std::unique_ptr<DistanceMetric>> metrics;
  std::vector<double> scales;
  int dmax = 10;

  std::size_t num_attributes() const { return attr_idx.size(); }

  // Bucketed distance levels of the data-tuple pair (i, j) of
  // `relation`; `levels` must hold num_attributes() entries. Uses each
  // metric's BoundedDistance early-exit at the level-dmax raw cap.
  void ComputeLevels(const Relation& relation, std::uint32_t i,
                     std::uint32_t j, Level* levels) const;

  // Same, for a single attribute (position `a` in attr_idx).
  Level ComputeLevel(const Relation& relation, std::uint32_t i,
                     std::uint32_t j, std::size_t a) const;
};

// Resolves metrics and scales for `attributes` against `schema`. Fails
// on unknown attributes/metrics, non-positive scales, or a dmax outside
// [1, 255].
Result<ResolvedMetrics> ResolveMatchingMetrics(
    const Schema& schema, const std::vector<std::string>& attributes,
    const MatchingOptions& options);

// Per-attribute cached level source: the precomputed distinct-pair
// table when it pays off, else interning with the equal-value shortcut,
// else the raw metric. All three produce identical levels.
struct AttrLevelSource {
  AttributeValueIndex index;                    // empty when cache disabled
  std::unique_ptr<ValuePairLevelTable> table;   // may be null
  bool interned = false;
};

// Levels of arbitrary (i, j) data-tuple pairs through the value cache —
// the per-pair kernel shared by the one-shot build below, the streaming
// exact grid build, and the sampled builder (src/approx). Holds
// references to `relation` and `resolved`; both must outlive it.
class PairLevelSource {
 public:
  // `pairs_to_compute` is the expected number of Levels() calls — the
  // payoff signal deciding whether an attribute's distinct-pair table
  // is worth precomputing (matching/value_cache.h).
  PairLevelSource(const Relation& relation, const ResolvedMetrics& resolved,
                  const MatchingOptions& options,
                  std::uint64_t pairs_to_compute, std::size_t threads);

  // Levels of pair (i, j); adds the number of metric evaluations it
  // performed to *metric_calls. Safe to call concurrently.
  void Levels(std::uint32_t i, std::uint32_t j, Level* levels,
              std::uint64_t* metric_calls) const {
    for (std::size_t a = 0; a < resolved_.num_attributes(); ++a) {
      if (a < attrs_.size() && attrs_[a].interned) {
        const AttrLevelSource& attr = attrs_[a];
        const std::uint32_t ia = attr.index.row_ids[i];
        const std::uint32_t ib = attr.index.row_ids[j];
        if (attr.table != nullptr) {
          levels[a] = attr.table->LevelOf(ia, ib);
          continue;
        }
        if (ia == ib) {  // d(x, x) = 0, a metric axiom.
          levels[a] = 0;
          continue;
        }
      }
      levels[a] = resolved_.ComputeLevel(relation_, i, j, a);
      ++*metric_calls;
    }
  }

  std::uint64_t precomputed_distances() const {
    return precomputed_distances_;
  }

  std::size_t tables_built() const {
    std::size_t n = 0;
    for (const auto& a : attrs_) n += a.table != nullptr ? 1 : 0;
    return n;
  }

  // Heap bytes across the per-attribute level tables (mem.value_cache).
  std::size_t cache_bytes() const {
    std::size_t bytes = 0;
    for (const auto& a : attrs_) {
      if (a.table != nullptr) bytes += a.table->MemoryUsageBytes();
    }
    return bytes;
  }

 private:
  const Relation& relation_;
  const ResolvedMetrics& resolved_;
  std::vector<AttrLevelSource> attrs_;
  std::uint64_t precomputed_distances_ = 0;
};

// Builds M over `attributes` (the union of the rule's X and Y). Fails on
// unknown attributes/metrics or a dmax outside [1, 255].
Result<MatchingRelation> BuildMatchingRelation(
    const Relation& relation, const std::vector<std::string>& attributes,
    const MatchingOptions& options);

// Maps one raw distance to a level (exposed for tests and the detector).
Level BucketDistance(double raw, double scale, int dmax);

// Decodes the k-th pair (0-based) of the row-major upper-triangular
// enumeration over n items into (i, j) with i < j. The builder chunks
// the triangular pair range by this global index, so any chunking
// reproduces the sequential pair order.
//
// Overflow note: pair indices are 64-bit BY CONTRACT. n(n-1)/2 exceeds
// uint32_t already at n ≈ 93k, so every call site must carry k (and any
// row-offset arithmetic) in std::uint64_t — audited in PR 7, regression-
// tested at n = 100k in tests/approx_test.cc.
std::pair<std::uint32_t, std::uint32_t> DecodeTriangularPair(std::uint64_t k,
                                                             std::uint64_t n);

// Inverse of DecodeTriangularPair: the global triangular index of pair
// (i, j), i < j < n. All arithmetic in 64 bits.
std::uint64_t EncodeTriangularPair(std::uint64_t i, std::uint64_t j,
                                   std::uint64_t n);

}  // namespace dd

#endif  // DD_MATCHING_BUILDER_H_
