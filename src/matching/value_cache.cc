#include "matching/value_cache.h"

#include <string_view>
#include <unordered_map>

#include "common/parallel.h"
#include "matching/builder.h"

namespace dd {

AttributeValueIndex InternColumn(const Relation& relation,
                                 std::size_t attr_idx) {
  AttributeValueIndex index;
  const std::size_t n = relation.num_rows();
  index.row_ids.resize(n);
  std::unordered_map<std::string_view, std::uint32_t> ids;
  ids.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::string& value = relation.at(r, attr_idx);
    const auto [it, inserted] = ids.emplace(
        std::string_view(value), static_cast<std::uint32_t>(index.values.size()));
    if (inserted) index.values.push_back(&value);
    index.row_ids[r] = it->second;
  }
  return index;
}

std::unique_ptr<ValuePairLevelTable> ValuePairLevelTable::Build(
    const AttributeValueIndex& index, const DistanceMetric& metric,
    double scale, int dmax, std::uint64_t pairs_to_compute,
    std::uint64_t max_cells, std::size_t threads) {
  const std::uint64_t d = index.distinct();
  if (d < 2) return nullptr;
  const std::uint64_t cells = d * (d - 1) / 2;
  // No payoff unless strictly fewer distinct pairs than row pairs.
  if (cells >= pairs_to_compute || cells > max_cells) return nullptr;

  std::unique_ptr<ValuePairLevelTable> table(new ValuePairLevelTable(d));
  table->table_.resize(cells);
  const double cap = static_cast<double>(dmax) / scale;
  Level* out = table->table_.data();
  const std::vector<const std::string*>& values = index.values;
  ParallelFor("value_cache.build", cells, threads,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                auto [i, j] = DecodeTriangularPair(begin, d);
                for (std::size_t k = begin; k < end; ++k) {
                  const double raw =
                      metric.BoundedDistance(*values[i], *values[j], cap);
                  out[k] = BucketDistance(raw, scale, dmax);
                  if (++j == d) {
                    ++i;
                    j = i + 1;
                  }
                }
              });
  return table;
}

}  // namespace dd
