// Binary persistence for the matching relation. Building M is the
// expensive step of the pipeline (pairwise metric evaluation); saving
// it lets repeated determinations (different rules, algorithms, or
// answer sizes) skip the rebuild.
//
// Format (little-endian, host-order — not a cross-architecture
// interchange format):
//   magic "DDMR" | u32 version | i32 dmax | u32 num_attributes
//   per attribute: u32 name length | name bytes
//   u64 num_tuples
//   pairs: num_tuples x (u32 i, u32 j)
//   columns: num_attributes x (num_tuples x u8 level)

#ifndef DD_MATCHING_SERIALIZATION_H_
#define DD_MATCHING_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "matching/matching_relation.h"

namespace dd {

// Serializes to an in-memory buffer / parses one back. Parsing is
// defensive: truncated or corrupted buffers yield InvalidArgument, not
// crashes.
std::string SerializeMatchingRelation(const MatchingRelation& matching);
Result<MatchingRelation> DeserializeMatchingRelation(std::string_view bytes);

// File convenience wrappers.
Status WriteMatchingFile(const MatchingRelation& matching,
                         const std::string& path);
Result<MatchingRelation> ReadMatchingFile(const std::string& path);

}  // namespace dd

#endif  // DD_MATCHING_SERIALIZATION_H_
