// Binary persistence for the matching relation. Building M is the
// expensive step of the pipeline (pairwise metric evaluation); saving
// it lets repeated determinations (different rules, algorithms, or
// answer sizes) skip the rebuild.
//
// Format (little-endian, host-order — not a cross-architecture
// interchange format):
//   magic "DDMR" | u32 format version | u64 FNV-1a checksum of the body
//   body:
//     i32 dmax | u32 num_attributes
//     per attribute: u32 name length | name bytes
//     u64 num_tuples
//     pairs: num_tuples x (u32 i, u32 j)
//     columns: num_attributes x (num_tuples x u8 level)
//
// Version history:
//   1 — legacy, pre-incremental-maintenance: no checksum; the body
//       follows the version word directly. Still readable.
//   2 — current (written since the delta format of src/incr): a 64-bit
//       FNV-1a checksum of the body sits between the header and the
//       body, so relations written before/after the delta era are
//       distinguishable by version and corruption is detected on load.

#ifndef DD_MATCHING_SERIALIZATION_H_
#define DD_MATCHING_SERIALIZATION_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "matching/matching_relation.h"

namespace dd {

// The format version SerializeMatchingRelation writes.
inline constexpr std::uint32_t kMatchingFormatVersion = 2;

// FNV-1a 64-bit hash over `bytes` (exposed for tests and external
// integrity checks of .ddmr files).
std::uint64_t Fnv1a64(std::string_view bytes);

// Serializes to an in-memory buffer / parses one back. Parsing is
// defensive: truncated or corrupted buffers yield InvalidArgument, not
// crashes; on version-2 buffers the checksum is verified before the
// body is interpreted.
std::string SerializeMatchingRelation(const MatchingRelation& matching);
Result<MatchingRelation> DeserializeMatchingRelation(std::string_view bytes);

// File convenience wrappers.
Status WriteMatchingFile(const MatchingRelation& matching,
                         const std::string& path);
Result<MatchingRelation> ReadMatchingFile(const std::string& path);

}  // namespace dd

#endif  // DD_MATCHING_SERIALIZATION_H_
