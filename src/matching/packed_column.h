// Bit-packed columnar storage for matching-relation level columns.
//
// Levels are tiny integers bounded by dmax (<= 255, and <= 14 for every
// paper workload), yet the seed stored them one byte each in plain
// std::vector columns. PackedColumn packs a level column to 4 bits per
// level when dmax <= 14 (two levels per byte, low nibble = even row)
// and 8 bits otherwise, in 64-byte-aligned slabs sized geometrically —
// the column acts as its own arena: ResizeRows/Reserve on the owning
// MatchingRelation sizes every slab once up front, so the hot build
// paths never reallocate. The packed words are exposed raw (data())
// for the SIMD count kernels in core/simd_count.h, whose AVX2 paths
// read 32-byte vectors straight out of the slab.
//
// Invariants the kernels and operator== rely on:
//  * every byte past the last used nibble/byte, up to capacity, is
//    zero (PushBack/Resize/shrink maintain this), so whole-byte
//    compares and vector tails never see garbage;
//  * packing never changes after construction (it is a function of
//    dmax, which is fixed per relation).

#ifndef DD_MATCHING_PACKED_COLUMN_H_
#define DD_MATCHING_PACKED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace dd {

// A bucketed distance level in [0, dmax]. dmax is capped at 255.
using Level = std::uint8_t;

class PackedColumn {
 public:
  // Largest dmax the 4-bit packing holds: levels occupy [0, 14] and
  // nibble value 15 is never a valid level, so padding nibbles (always
  // zero) can never be confused with data by a byte-wise consumer.
  static constexpr int kMaxPacked4Dmax = 14;

  PackedColumn() = default;
  explicit PackedColumn(int dmax) : packed4_(dmax <= kMaxPacked4Dmax) {}

  PackedColumn(const PackedColumn& other);
  PackedColumn& operator=(const PackedColumn& other);
  PackedColumn(PackedColumn&& other) noexcept;
  PackedColumn& operator=(PackedColumn&& other) noexcept;
  ~PackedColumn();

  bool packed4() const { return packed4_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Level Get(std::size_t row) const {
    if (packed4_) {
      const std::uint8_t byte = data_[row >> 1];
      return (row & 1) ? static_cast<Level>(byte >> 4)
                       : static_cast<Level>(byte & 0x0F);
    }
    return data_[row];
  }

  // Plain store; single-writer contexts only (append, compaction).
  void Set(std::size_t row, Level v) {
    if (packed4_) {
      std::uint8_t& byte = data_[row >> 1];
      if (row & 1) {
        byte = static_cast<std::uint8_t>((byte & 0x0F) | (v << 4));
      } else {
        byte = static_cast<std::uint8_t>((byte & 0xF0) | v);
      }
    } else {
      data_[row] = v;
    }
  }

  // Store for the parallel direct-write build (MatchingRelation::
  // SetTuple): writers own disjoint row ranges, but with 4-bit packing
  // the two rows sharing a byte can straddle a chunk boundary, so the
  // nibble is merged with a relaxed CAS. 8-bit columns store plainly.
  // The ParallelFor join publishes the writes to the caller.
  void SetShared(std::size_t row, Level v) {
    if (!packed4_) {
      __atomic_store_n(&data_[row], v, __ATOMIC_RELAXED);
      return;
    }
    std::uint8_t* byte = &data_[row >> 1];
    const int shift = (row & 1) ? 4 : 0;
    const std::uint8_t keep = static_cast<std::uint8_t>(0x0F << (4 - shift));
    std::uint8_t old = __atomic_load_n(byte, __ATOMIC_RELAXED);
    while (true) {
      const std::uint8_t merged =
          static_cast<std::uint8_t>((old & keep) | (v << shift));
      if (__atomic_compare_exchange_n(byte, &old, merged, /*weak=*/true,
                                      __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
        return;
      }
    }
  }

  void PushBack(Level v);
  // Grows (new rows zero) or shrinks (tail bytes re-zeroed) the column.
  void Resize(std::size_t rows);
  void Reserve(std::size_t rows);

  // Raw packed words for the SIMD kernels. 64-byte aligned.
  const std::uint8_t* data() const { return data_; }
  // Bytes holding live levels: ceil(size/2) packed, size unpacked.
  std::size_t packed_bytes() const {
    return packed4_ ? (size_ + 1) / 2 : size_;
  }
  std::size_t capacity_bytes() const { return cap_bytes_; }

  // One byte per level, for serialization and debugging.
  std::vector<Level> Unpack() const;

  // Semantic equality: same length and the same level at every row
  // (packing is compared too — it only differs when dmax differs).
  bool operator==(const PackedColumn& other) const;
  bool operator!=(const PackedColumn& other) const {
    return !(*this == other);
  }

 private:
  // Reallocates to hold at least `bytes`, preserving contents and the
  // zero-fill invariant.
  void EnsureCapacity(std::size_t bytes);

  std::uint8_t* data_ = nullptr;  // 64-byte-aligned slab, zero-filled tail
  std::size_t size_ = 0;          // rows
  std::size_t cap_bytes_ = 0;
  bool packed4_ = false;
};

// GTest failure-message support.
void PrintTo(const PackedColumn& column, std::ostream* os);

}  // namespace dd

#endif  // DD_MATCHING_PACKED_COLUMN_H_
