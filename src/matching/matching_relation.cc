#include "matching/matching_relation.h"

#include <algorithm>

#include "common/logging.h"

namespace dd {

Result<std::size_t> MatchingRelation::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return i;
  }
  return Status::NotFound("attribute not in matching relation: " +
                          std::string(name));
}

void MatchingRelation::AddTuple(std::uint32_t i, std::uint32_t j,
                                const std::vector<Level>& levels) {
  DD_CHECK_EQ(levels.size(), columns_.size());
  for (std::size_t a = 0; a < levels.size(); ++a) {
    DD_CHECK_LE(static_cast<int>(levels[a]), dmax_);
    columns_[a].PushBack(levels[a]);
  }
  pairs_.emplace_back(i, j);
}

void MatchingRelation::ResizeRows(std::size_t rows) {
  for (auto& col : columns_) col.Resize(rows);
  pairs_.resize(rows);
}

void MatchingRelation::SetTuple(std::size_t row, std::uint32_t i,
                                std::uint32_t j, const Level* levels) {
  for (std::size_t a = 0; a < columns_.size(); ++a) {
    // SetShared: parallel builders fill disjoint row ranges, and with
    // 4-bit packing the two rows sharing a byte may straddle a chunk
    // boundary (packed_column.h).
    columns_[a].SetShared(row, levels[a]);
  }
  pairs_[row] = {i, j};
}

void MatchingRelation::Reserve(std::size_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
  pairs_.reserve(rows);
}

std::vector<Level> MatchingRelation::RowLevels(std::size_t row) const {
  DD_CHECK_LT(row, pairs_.size());
  std::vector<Level> levels(columns_.size());
  for (std::size_t a = 0; a < columns_.size(); ++a) {
    levels[a] = columns_[a].Get(row);
  }
  return levels;
}

void MatchingRelation::RemoveRows(const std::vector<std::uint32_t>& rows) {
  if (rows.empty()) return;
  const std::size_t m = pairs_.size();
  std::size_t write = 0;
  std::size_t next = 0;  // next index into `rows` to skip
  for (std::size_t read = 0; read < m; ++read) {
    if (next < rows.size() && rows[next] == read) {
      DD_CHECK(next + 1 == rows.size() || rows[next + 1] > rows[next]);
      ++next;
      continue;
    }
    if (write != read) {
      pairs_[write] = pairs_[read];
      for (auto& col : columns_) col.Set(write, col.Get(read));
    }
    ++write;
  }
  DD_CHECK_EQ(next, rows.size());
  pairs_.resize(write);
  for (auto& col : columns_) col.Resize(write);
}

void MatchingRelation::SortByPairs() {
  const std::size_t m = pairs_.size();
  std::vector<std::uint32_t> order(m);
  for (std::size_t r = 0; r < m; ++r) order[r] = static_cast<std::uint32_t>(r);
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return pairs_[a] < pairs_[b];
            });
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted_pairs(m);
  for (std::size_t r = 0; r < m; ++r) sorted_pairs[r] = pairs_[order[r]];
  pairs_ = std::move(sorted_pairs);
  std::vector<Level> sorted_col(m);
  for (auto& col : columns_) {
    for (std::size_t r = 0; r < m; ++r) sorted_col[r] = col.Get(order[r]);
    for (std::size_t r = 0; r < m; ++r) col.Set(r, sorted_col[r]);
  }
}

}  // namespace dd
