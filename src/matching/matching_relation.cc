#include "matching/matching_relation.h"

#include "common/logging.h"

namespace dd {

Result<std::size_t> MatchingRelation::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return i;
  }
  return Status::NotFound("attribute not in matching relation: " +
                          std::string(name));
}

void MatchingRelation::AddTuple(std::uint32_t i, std::uint32_t j,
                                const std::vector<Level>& levels) {
  DD_CHECK_EQ(levels.size(), columns_.size());
  for (std::size_t a = 0; a < levels.size(); ++a) {
    DD_CHECK_LE(static_cast<int>(levels[a]), dmax_);
    columns_[a].push_back(levels[a]);
  }
  pairs_.emplace_back(i, j);
}

void MatchingRelation::Reserve(std::size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
  pairs_.reserve(rows);
}

}  // namespace dd
