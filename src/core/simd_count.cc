#include "core/simd_count.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "obs/log.h"
#include "obs/metrics.h"

namespace dd::simd {

namespace {

// The predicate all scalar kernels share. Early exit mirrors the seed's
// Satisfies(); the result is order-independent, so the vector kernels
// (no early exit) count identically.
inline bool RowSatisfies(const ColumnView* views, const std::uint8_t* bounds,
                         std::size_t num_views, std::size_t row) {
  for (std::size_t i = 0; i < num_views; ++i) {
    if (ViewLevel(views[i], row) > bounds[i]) return false;
  }
  return true;
}

std::uint64_t CountLeqScalar(const ColumnView* views,
                             const std::uint8_t* bounds, std::size_t num_views,
                             std::size_t begin, std::size_t end) {
  std::uint64_t count = 0;
  for (std::size_t row = begin; row < end; ++row) {
    if (RowSatisfies(views, bounds, num_views, row)) ++count;
  }
  return count;
}

void CollectLeqScalar(const ColumnView* views, const std::uint8_t* bounds,
                      std::size_t num_views, std::size_t begin, std::size_t end,
                      std::vector<std::uint32_t>* out) {
  for (std::size_t row = begin; row < end; ++row) {
    if (RowSatisfies(views, bounds, num_views, row)) {
      out->push_back(static_cast<std::uint32_t>(row));
    }
  }
}

void GridIndicesScalar(const ColumnView* views, const std::uint32_t* strides,
                       std::size_t num_views, std::size_t begin,
                       std::size_t end, std::uint32_t* out) {
  for (std::size_t row = begin; row < end; ++row) {
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < num_views; ++i) {
      idx += static_cast<std::uint32_t>(ViewLevel(views[i], row)) * strides[i];
    }
    out[row - begin] = idx;
  }
}

// ---- Dispatch state ----
//
// Resolution happens once under a mutex; afterwards every kernel call
// is one acquire load of the table pointer. SetSimdMode clears the
// resolved state so a later call re-resolves (and re-publishes the
// info metric) under the new mode.

std::mutex g_resolve_mu;
std::atomic<const internal::KernelTable*> g_active{nullptr};
std::atomic<const char*> g_active_name{nullptr};
std::atomic<int> g_requested{static_cast<int>(SimdMode::kAuto)};
std::atomic<bool> g_explicit{false};

const internal::KernelTable* Resolve() {
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  if (const internal::KernelTable* table =
          g_active.load(std::memory_order_acquire);
      table != nullptr) {
    return table;
  }

  SimdMode mode = static_cast<SimdMode>(g_requested.load());
  if (!g_explicit.load()) {
    if (const char* env = std::getenv("DD_SIMD");
        env != nullptr && env[0] != '\0') {
      if (ParseSimdMode(env, &mode)) {
        g_requested.store(static_cast<int>(mode));
      } else {
        DD_LOG(WARN) << "DD_SIMD=" << env
                        << " is not auto|avx2|scalar; using auto";
      }
    }
  }

  const internal::KernelTable* avx2 =
      CpuSupportsAvx2() ? internal::Avx2Kernels() : nullptr;
  const internal::KernelTable* table = &internal::kScalarKernels;
  const char* name = "scalar";
  switch (mode) {
    case SimdMode::kScalar:
      break;
    case SimdMode::kAvx2:
      if (avx2 == nullptr) {
        DD_LOG(WARN) << "--simd=avx2 requested but this CPU/build lacks "
                           "avx2+bmi2+popcnt; falling back to scalar kernels";
      } else {
        table = avx2;
        name = "avx2";
      }
      break;
    case SimdMode::kAuto:
      if (avx2 != nullptr) {
        table = avx2;
        name = "avx2";
      }
      break;
  }

  obs::MetricsRegistry::Global().SetInfo("simd.dispatch", "mode", name);
  DD_LOG(INFO) << "simd dispatch resolved: " << name
               << " (requested "
               << (mode == SimdMode::kAuto
                       ? "auto"
                       : mode == SimdMode::kAvx2 ? "avx2" : "scalar")
               << ")";
  g_active_name.store(name, std::memory_order_release);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

bool ParseSimdMode(std::string_view text, SimdMode* mode) {
  if (text == "auto") {
    *mode = SimdMode::kAuto;
  } else if (text == "avx2") {
    *mode = SimdMode::kAvx2;
  } else if (text == "scalar") {
    *mode = SimdMode::kScalar;
  } else {
    return false;
  }
  return true;
}

void SetSimdMode(SimdMode mode) {
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  g_requested.store(static_cast<int>(mode));
  g_explicit.store(true);
  g_active.store(nullptr, std::memory_order_release);
  g_active_name.store(nullptr, std::memory_order_release);
}

SimdMode RequestedSimdMode() {
  return static_cast<SimdMode>(g_requested.load());
}

const char* ActiveSimdDispatch() {
  if (const char* name = g_active_name.load(std::memory_order_acquire);
      name != nullptr) {
    return name;
  }
  Resolve();
  return g_active_name.load(std::memory_order_acquire);
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2") &&
         __builtin_cpu_supports("popcnt");
#else
  return false;
#endif
}

std::uint64_t CountLeq(const ColumnView* views, const std::uint8_t* bounds,
                       std::size_t num_views, std::size_t begin,
                       std::size_t end) {
  return internal::ActiveKernels().count_leq(views, bounds, num_views, begin,
                                             end);
}

void CollectLeq(const ColumnView* views, const std::uint8_t* bounds,
                std::size_t num_views, std::size_t begin, std::size_t end,
                std::vector<std::uint32_t>* out) {
  internal::ActiveKernels().collect_leq(views, bounds, num_views, begin, end,
                                        out);
}

void GridIndices(const ColumnView* views, const std::uint32_t* strides,
                 std::size_t num_views, std::size_t begin, std::size_t end,
                 std::uint32_t* out) {
  internal::ActiveKernels().grid_indices(views, strides, num_views, begin, end,
                                         out);
}

namespace internal {

const KernelTable kScalarKernels = {CountLeqScalar, CollectLeqScalar,
                                    GridIndicesScalar};

const KernelTable& ActiveKernels() {
  if (const KernelTable* table = g_active.load(std::memory_order_acquire);
      table != nullptr) {
    return *table;
  }
  return *Resolve();
}

void ResetDispatchForTest() {
  std::lock_guard<std::mutex> lock(g_resolve_mu);
  g_requested.store(static_cast<int>(SimdMode::kAuto));
  g_explicit.store(false);
  g_active.store(nullptr, std::memory_order_release);
  g_active_name.store(nullptr, std::memory_order_release);
}

}  // namespace internal

}  // namespace dd::simd
