#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/measure_provider.h"
#include "core/simd_count.h"
#include "obs/metrics.h"

namespace dd {

namespace {

// Latency histogram over individual O(M) counting scans. One Observe()
// per scan (two clock reads) disappears against the scan itself; the
// per-row loop below stays untouched.
obs::Histogram& ScanLatencyHistogram() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().GetHistogram(
      "provider.scan_ms", obs::DefaultLatencyBoundsMs());
  return histogram;
}

// Shared row predicate for the random-access subset path: does matching
// tuple `row` satisfy `levels` on the columns of `attrs`? The
// sequential scans go through the simd_count kernels instead.
inline bool Satisfies(const MatchingRelation& matching,
                      const std::vector<std::size_t>& attrs,
                      const Levels& levels, std::size_t row) {
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    if (static_cast<int>(matching.level(row, attrs[a])) > levels[a]) {
      return false;
    }
  }
  return true;
}

// A threshold pattern compiled to kernel arguments: one column view and
// one uint8 bound per attribute. Levels are ints; a negative bound can
// never be satisfied (levels are >= 0), so the pattern is flagged
// impossible instead of clamped, and bounds above 255 clamp down (every
// level is <= dmax <= 255, so they match everything either way).
struct CompiledPattern {
  std::vector<simd::ColumnView> views;
  std::vector<std::uint8_t> bounds;
  bool impossible = false;

  void Append(const MatchingRelation& matching,
              const std::vector<std::size_t>& attrs, const Levels& levels) {
    for (std::size_t a = 0; a < attrs.size(); ++a) {
      const int bound = levels[a];
      if (bound < 0) {
        impossible = true;
        return;
      }
      views.push_back(simd::View(matching.column(attrs[a])));
      bounds.push_back(bound > 255 ? std::uint8_t{255}
                                   : static_cast<std::uint8_t>(bound));
    }
  }
};

}  // namespace

ScanMeasureProvider::ScanMeasureProvider(const MatchingRelation& matching,
                                         ResolvedRule rule, bool full_scan,
                                         std::size_t threads)
    : matching_(matching),
      rule_(std::move(rule)),
      full_scan_(full_scan),
      threads_(threads == 0 ? 1 : threads) {}

std::uint64_t ScanMeasureProvider::total() const {
  return matching_.num_tuples();
}

void ScanMeasureProvider::SetLhs(const Levels& lhs) {
  DD_CHECK_EQ(lhs.size(), rule_.lhs.size());
  current_lhs_ = lhs;
  lhs_count_ = 0;
  lhs_rows_.clear();
  const std::size_t m = matching_.num_tuples();
  ++stats_.lhs_evaluations;
  stats_.rows_scanned += m;

  CompiledPattern pattern;
  pattern.Append(matching_, rule_.lhs, lhs);

  Stopwatch scan_timer;
  if (pattern.impossible) {
    // No row can satisfy a negative bound; the count and row list stay
    // empty without touching M.
    ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
    return;
  }
  const std::size_t chunks = EffectiveChunks(m, threads_);
  std::vector<std::uint64_t> counts(chunks, 0);
  std::vector<std::vector<std::uint32_t>> rows(full_scan_ ? 0 : chunks);
  ParallelFor("provider.scan_lhs", m, threads_,
              [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    if (full_scan_) {
      counts[chunk] = simd::CountLeq(pattern.views.data(),
                                     pattern.bounds.data(),
                                     pattern.views.size(), begin, end);
    } else {
      simd::CollectLeq(pattern.views.data(), pattern.bounds.data(),
                       pattern.views.size(), begin, end, &rows[chunk]);
      counts[chunk] = rows[chunk].size();
    }
  });
  for (std::uint64_t c : counts) lhs_count_ += c;
  ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
  if (!full_scan_) {
    // Chunks cover [0, m) in order and CollectLeq appends ascending, so
    // concatenation keeps rows sorted.
    for (auto& chunk_rows : rows) {
      lhs_rows_.insert(lhs_rows_.end(), chunk_rows.begin(), chunk_rows.end());
    }
  }
}

void ScanMeasureProvider::SetLhsWithKnownCount(const Levels& lhs,
                                               std::uint64_t known_count) {
  if (!full_scan_) {
    SetLhs(lhs);  // The satisfying-row list must be rebuilt anyway.
    return;
  }
  DD_CHECK_EQ(lhs.size(), rule_.lhs.size());
  // Still one LHS evaluation (stats contract, measure_provider.h) —
  // only the O(M) scan is saved, not the candidate.
  ++stats_.lhs_evaluations;
  current_lhs_ = lhs;
  lhs_count_ = known_count;
  lhs_rows_.clear();
}

std::uint64_t ScanMeasureProvider::CountXY(const Levels& rhs) {
  DD_CHECK_EQ(rhs.size(), rule_.rhs.size());
  DD_CHECK_EQ(current_lhs_.size(), rule_.lhs.size());
  ++stats_.xy_evaluations;

  if (full_scan_) {
    const std::size_t m = matching_.num_tuples();
    stats_.rows_scanned += m;
    Stopwatch scan_timer;
    // One fused kernel pass answers the whole ϕ[XY] conjunction.
    CompiledPattern pattern;
    pattern.Append(matching_, rule_.lhs, current_lhs_);
    if (!pattern.impossible) pattern.Append(matching_, rule_.rhs, rhs);
    if (pattern.impossible) {
      ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
      return 0;
    }
    const std::size_t chunks = EffectiveChunks(m, threads_);
    std::vector<std::uint64_t> counts(chunks, 0);
    ParallelFor("provider.scan_xy_full", m, threads_,
                [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      counts[chunk] = simd::CountLeq(pattern.views.data(),
                                     pattern.bounds.data(),
                                     pattern.views.size(), begin, end);
    });
    std::uint64_t total_count = 0;
    for (std::uint64_t c : counts) total_count += c;
    ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
    return total_count;
  }

  stats_.rows_scanned += lhs_rows_.size();
  const std::size_t n = lhs_rows_.size();
  const std::size_t chunks = EffectiveChunks(n, threads_);
  std::vector<std::uint64_t> counts(chunks, 0);
  ParallelFor("provider.scan_xy_subset", n, threads_,
              [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::uint64_t count = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (Satisfies(matching_, rule_.rhs, rhs, lhs_rows_[i])) ++count;
    }
    counts[chunk] = count;
  });
  std::uint64_t total_count = 0;
  for (std::uint64_t c : counts) total_count += c;
  return total_count;
}

std::uint64_t ScanMeasureProvider::CountXYConcurrent(const Levels& rhs) const {
  // One single-threaded pass: callers (the speculative window in
  // core/pa.cc) run many of these concurrently, so the parallelism
  // lives outside. No stats, no histogram — committed work is accounted
  // afterwards via AccountCommittedXY.
  DD_CHECK_EQ(rhs.size(), rule_.rhs.size());
  if (full_scan_) {
    CompiledPattern pattern;
    pattern.Append(matching_, rule_.lhs, current_lhs_);
    if (!pattern.impossible) pattern.Append(matching_, rule_.rhs, rhs);
    if (pattern.impossible) return 0;
    return simd::CountLeq(pattern.views.data(), pattern.bounds.data(),
                          pattern.views.size(), 0, matching_.num_tuples());
  }
  std::uint64_t count = 0;
  for (const std::uint32_t row : lhs_rows_) {
    if (Satisfies(matching_, rule_.rhs, rhs, row)) ++count;
  }
  return count;
}

std::unique_ptr<MeasureProvider> ScanMeasureProvider::CloneForThread() const {
  // Clones scan single-threaded: the caller owns the concurrency, and
  // nested ParallelFor would run inline anyway.
  return std::unique_ptr<MeasureProvider>(
      new ScanMeasureProvider(matching_, rule_, full_scan_, /*threads=*/1));
}

}  // namespace dd
