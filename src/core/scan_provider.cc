#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/measure_provider.h"
#include "obs/metrics.h"

namespace dd {

namespace {

// Latency histogram over individual O(M) counting scans. One Observe()
// per scan (two clock reads) disappears against the scan itself; the
// per-row loop below stays untouched.
obs::Histogram& ScanLatencyHistogram() {
  static obs::Histogram& histogram = obs::MetricsRegistry::Global().GetHistogram(
      "provider.scan_ms", obs::DefaultLatencyBoundsMs());
  return histogram;
}

// Shared row predicate: does matching tuple `row` satisfy `levels` on
// the columns of `attrs`?
inline bool Satisfies(const MatchingRelation& matching,
                      const std::vector<std::size_t>& attrs,
                      const Levels& levels, std::size_t row) {
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    if (static_cast<int>(matching.level(row, attrs[a])) > levels[a]) {
      return false;
    }
  }
  return true;
}

}  // namespace

ScanMeasureProvider::ScanMeasureProvider(const MatchingRelation& matching,
                                         ResolvedRule rule, bool full_scan,
                                         std::size_t threads)
    : matching_(matching),
      rule_(std::move(rule)),
      full_scan_(full_scan),
      threads_(threads == 0 ? 1 : threads) {}

std::uint64_t ScanMeasureProvider::total() const {
  return matching_.num_tuples();
}

void ScanMeasureProvider::SetLhs(const Levels& lhs) {
  DD_CHECK_EQ(lhs.size(), rule_.lhs.size());
  current_lhs_ = lhs;
  lhs_count_ = 0;
  lhs_rows_.clear();
  const std::size_t m = matching_.num_tuples();
  ++stats_.lhs_evaluations;
  stats_.rows_scanned += m;

  Stopwatch scan_timer;
  const std::size_t chunks = EffectiveChunks(m, threads_);
  std::vector<std::uint64_t> counts(chunks, 0);
  std::vector<std::vector<std::uint32_t>> rows(full_scan_ ? 0 : chunks);
  ParallelFor("provider.scan_lhs", m, threads_,
              [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::uint64_t count = 0;
    for (std::size_t row = begin; row < end; ++row) {
      if (Satisfies(matching_, rule_.lhs, lhs, row)) {
        ++count;
        if (!full_scan_) {
          rows[chunk].push_back(static_cast<std::uint32_t>(row));
        }
      }
    }
    counts[chunk] = count;
  });
  for (std::uint64_t c : counts) lhs_count_ += c;
  ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
  if (!full_scan_) {
    // Chunks cover [0, m) in order, so concatenation keeps rows sorted.
    for (auto& chunk_rows : rows) {
      lhs_rows_.insert(lhs_rows_.end(), chunk_rows.begin(), chunk_rows.end());
    }
  }
}

void ScanMeasureProvider::SetLhsWithKnownCount(const Levels& lhs,
                                               std::uint64_t known_count) {
  if (!full_scan_) {
    SetLhs(lhs);  // The satisfying-row list must be rebuilt anyway.
    return;
  }
  DD_CHECK_EQ(lhs.size(), rule_.lhs.size());
  // Still one LHS evaluation (stats contract, measure_provider.h) —
  // only the O(M) scan is saved, not the candidate.
  ++stats_.lhs_evaluations;
  current_lhs_ = lhs;
  lhs_count_ = known_count;
  lhs_rows_.clear();
}

std::uint64_t ScanMeasureProvider::CountXY(const Levels& rhs) {
  DD_CHECK_EQ(rhs.size(), rule_.rhs.size());
  DD_CHECK_EQ(current_lhs_.size(), rule_.lhs.size());
  ++stats_.xy_evaluations;

  if (full_scan_) {
    const std::size_t m = matching_.num_tuples();
    stats_.rows_scanned += m;
    Stopwatch scan_timer;
    const std::size_t chunks = EffectiveChunks(m, threads_);
    std::vector<std::uint64_t> counts(chunks, 0);
    ParallelFor("provider.scan_xy_full", m, threads_,
                [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      std::uint64_t count = 0;
      for (std::size_t row = begin; row < end; ++row) {
        if (Satisfies(matching_, rule_.lhs, current_lhs_, row) &&
            Satisfies(matching_, rule_.rhs, rhs, row)) {
          ++count;
        }
      }
      counts[chunk] = count;
    });
    std::uint64_t total_count = 0;
    for (std::uint64_t c : counts) total_count += c;
    ScanLatencyHistogram().Observe(scan_timer.ElapsedMillis());
    return total_count;
  }

  stats_.rows_scanned += lhs_rows_.size();
  const std::size_t n = lhs_rows_.size();
  const std::size_t chunks = EffectiveChunks(n, threads_);
  std::vector<std::uint64_t> counts(chunks, 0);
  ParallelFor("provider.scan_xy_subset", n, threads_,
              [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::uint64_t count = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (Satisfies(matching_, rule_.rhs, rhs, lhs_rows_[i])) ++count;
    }
    counts[chunk] = count;
  });
  std::uint64_t total_count = 0;
  for (std::uint64_t c : counts) total_count += c;
  return total_count;
}

std::uint64_t ScanMeasureProvider::CountXYConcurrent(const Levels& rhs) const {
  // One single-threaded pass: callers (the speculative window in
  // core/pa.cc) run many of these concurrently, so the parallelism
  // lives outside. No stats, no histogram — committed work is accounted
  // afterwards via AccountCommittedXY.
  DD_CHECK_EQ(rhs.size(), rule_.rhs.size());
  std::uint64_t count = 0;
  if (full_scan_) {
    const std::size_t m = matching_.num_tuples();
    for (std::size_t row = 0; row < m; ++row) {
      if (Satisfies(matching_, rule_.lhs, current_lhs_, row) &&
          Satisfies(matching_, rule_.rhs, rhs, row)) {
        ++count;
      }
    }
    return count;
  }
  for (const std::uint32_t row : lhs_rows_) {
    if (Satisfies(matching_, rule_.rhs, rhs, row)) ++count;
  }
  return count;
}

std::unique_ptr<MeasureProvider> ScanMeasureProvider::CloneForThread() const {
  // Clones scan single-threaded: the caller owns the concurrency, and
  // nested ParallelFor would run inline anyway.
  return std::unique_ptr<MeasureProvider>(
      new ScanMeasureProvider(matching_, rule_, full_scan_, /*threads=*/1));
}

}  // namespace dd
