// The paper's statistical measures for a concrete pattern ϕ (§III-B):
// LHS support D(ϕ), confidence C(ϕ), support S(ϕ) = C·D, and dependent
// quality Q(ϕ), computed from the counting queries of a MeasureProvider.

#ifndef DD_CORE_MEASURES_H_
#define DD_CORE_MEASURES_H_

#include <cstdint>

#include "core/measure_provider.h"
#include "core/pattern.h"

namespace dd {

struct Measures {
  std::uint64_t total = 0;       // M
  std::uint64_t lhs_count = 0;   // count(b ⊨ ϕ[X])
  std::uint64_t xy_count = 0;    // count(b ⊨ ϕ[XY])
  double d = 0.0;                // D(ϕ) = lhs_count / M
  double confidence = 0.0;       // C(ϕ) = xy_count / lhs_count (0 if empty)
  double support = 0.0;          // S(ϕ) = C(ϕ) · D(ϕ) = xy_count / M
  double quality = 0.0;          // Q(ϕ), formula 3
};

// Evaluates all measures of `pattern`. The provider's current LHS is
// updated (SetLhs + one CountXY).
Measures ComputeMeasures(MeasureProvider* provider, const Pattern& pattern,
                         int dmax);

// Assembles measures from pre-obtained counts (no provider calls).
Measures MeasuresFromCounts(std::uint64_t total, std::uint64_t lhs_count,
                            std::uint64_t xy_count, const Levels& rhs,
                            int dmax);

}  // namespace dd

#endif  // DD_CORE_MEASURES_H_
