// Facade tying the whole determination pipeline together: resolve a
// rule against a matching relation, pick a measure provider, estimate
// the utility prior from the data, and run the configured combination of
// {DA, DAP} × {PA, PAP} with a processing order and answer size l —
// i.e. the full parameter-free threshold determination of the paper.

#ifndef DD_CORE_DETERMINER_H_
#define DD_CORE_DETERMINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/da.h"
#include "core/rule.h"
#include "matching/matching_relation.h"

namespace dd {

enum class LhsAlgorithm { kDa, kDap };
enum class RhsAlgorithm { kPa, kPap };

const char* LhsAlgorithmName(LhsAlgorithm algorithm);
const char* RhsAlgorithmName(RhsAlgorithm algorithm);

struct DetermineOptions {
  LhsAlgorithm lhs_algorithm = LhsAlgorithm::kDap;
  RhsAlgorithm rhs_algorithm = RhsAlgorithm::kPap;
  // C_Y processing order. The paper's default recommendation: top-first
  // (best with DAP; DA+PAP slightly prefers mid-first, see Table V).
  ProcessingOrder order = ProcessingOrder::kTopFirst;
  // Number of answers (l-th largest expected utility extension).
  std::size_t top_l = 1;
  // Measure provider: "scan" (paper-faithful), "scan_subset", "grid".
  std::string provider = "scan";
  // Concurrency of the whole determination (0 = DefaultThreads(), i.e.
  // the --threads flag / DD_THREADS env): provider scans, the parallel
  // LHS sweep, and within-LHS candidate evaluation. Results are
  // bit-identical at any value; 1 forces the fully sequential paths.
  std::size_t threads = 0;
  // Prior CQ̄ estimation sample; 0 keeps utility.prior_mean_cq as given.
  std::size_t prior_sample_size = 200;
  std::uint64_t prior_seed = 99;
  UtilityOptions utility;
};

struct DetermineResult {
  // Up to top_l patterns, descending expected utility.
  std::vector<DeterminedPattern> patterns;
  // Search-phase work only: the facade resets the provider's stats after
  // prior estimation, so neither field below includes the prior probes
  // (see the stats contract in core/measure_provider.h).
  DaStats stats;
  ProviderStats provider_stats;
  double prior_mean_cq = 0.0;
  double elapsed_seconds = 0.0;
};

// Publishes a finished run's search statistics into the global
// obs::MetricsRegistry (counters "determine.*" / "provider.*" and the
// "determine.pruning_rate" gauge). Called by the determination facades;
// exposed for custom pipelines that drive DetermineBestPatterns
// directly.
void PublishDetermineMetrics(const DaStats& stats,
                             const ProviderStats& provider_stats);

// Runs the determination. Fails on unresolvable rules or providers.
Result<DetermineResult> DetermineThresholds(const MatchingRelation& matching,
                                            const RuleSpec& rule,
                                            const DetermineOptions& options);

// The provider-agnostic core of DetermineThresholds: prior estimation,
// stats reset, the DA/PA search, and metrics publication against an
// already-built provider. Shared with pipelines that own provider
// construction themselves (the approx refinement driver,
// approx/refine.h, runs it repeatedly against growing samples).
// `options.provider` is ignored; `provider_label` feeds the EXPLAIN run
// label instead.
Result<DetermineResult> DetermineWithProvider(MeasureProvider* provider,
                                              std::size_t lhs_dims,
                                              std::size_t rhs_dims, int dmax,
                                              const DetermineOptions& options,
                                              const std::string& provider_label);

}  // namespace dd

#endif  // DD_CORE_DETERMINER_H_
