#include "core/expected_utility.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/measures.h"

namespace dd {

namespace {

// Posterior mean of the Beta(k + a, n - k + b) distribution evaluated by
// max-normalized Simpson integration in log space; cross-validates the
// closed form (k + a) / (n + a + b).
double IntegratePosteriorMean(double k, double n, double a, double b,
                              const UtilityOptions& options) {
  // Exponents of the posterior density u^(k+a-1) (1-u)^(n-k+b-1),
  // clamped to >= 0 so Simpson never sees a boundary singularity (the
  // clamp only matters for prior pseudo-counts below one observation).
  const double ea = std::max(k + a - 1.0, 0.0);
  const double eb = std::max(n - k + b - 1.0, 0.0);
  auto log_weight = [&](double u) {
    if (u <= 0.0) return ea > 0.0 ? -1e300 : 0.0;
    if (u >= 1.0) return eb > 0.0 ? -1e300 : 0.0;
    return ea * std::log(u) + eb * std::log1p(-u);
  };
  const double alpha = k + a;
  const double beta = n - k + b;
  const double peak = alpha / (alpha + beta);
  const double sigma = std::sqrt(alpha * beta /
                                 ((alpha + beta) * (alpha + beta) *
                                  (alpha + beta + 1.0)));
  return PosteriorMean(log_weight, peak, sigma, options.window_sigmas,
                       options.integration_intervals);
}

}  // namespace

double ExpectedUtility(std::uint64_t total, std::uint64_t lhs_count,
                       double confidence, double quality,
                       const UtilityOptions& options) {
  const double mu = Clamp(options.prior_mean_cq, 0.0, 1.0);
  if (total == 0) return mu;
  DD_CHECK_LE(lhs_count, total);
  const double m = static_cast<double>(total);
  const double n = static_cast<double>(lhs_count);
  const double cq = Clamp(confidence, 0.0, 1.0) * Clamp(quality, 0.0, 1.0);
  const double k = cq * n;

  const double h = options.prior_strength;
  DD_CHECK_GE(h, 0.0);
  if (h <= 0.0 && lhs_count == 0) return mu;  // No data, no prior.
  const double a = h * m * mu;        // Prior pseudo-successes.
  const double b = h * m * (1.0 - mu);  // Prior pseudo-failures.

  if (options.method == UtilityMethod::kNumericIntegration) {
    return IntegratePosteriorMean(k, n, a, b, options);
  }
  // Closed form: Beta-Binomial posterior mean. In fractions of M this
  // is (D·C·Q + h·CQ̄) / (D + h).
  return (k + a) / (n + a + b);
}

double EstimatePriorMeanCq(MeasureProvider* provider, std::size_t lhs_dims,
                           std::size_t rhs_dims, int dmax,
                           std::size_t sample_size, std::uint64_t seed) {
  DD_CHECK_GT(sample_size, 0u);
  Rng rng(seed);
  double sum = 0.0;
  for (std::size_t s = 0; s < sample_size; ++s) {
    Pattern p;
    p.lhs.resize(lhs_dims);
    p.rhs.resize(rhs_dims);
    for (auto& lvl : p.lhs) {
      lvl = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(dmax) + 1));
    }
    for (auto& lvl : p.rhs) {
      lvl = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(dmax) + 1));
    }
    const Measures m = ComputeMeasures(provider, p, dmax);
    sum += m.confidence * m.quality;
  }
  return sum / static_cast<double>(sample_size);
}

}  // namespace dd
