// Expected utility Ū(ϕ) = E(U | C, D, Q) (paper §IV, formula 5).
//
// The prediction probability u of formula 4 is estimated as the
// posterior mean under a Binomial likelihood — n = count(b ⊨ ϕ[X])
// trials with k = n·C(ϕ)·Q(ϕ) quality-weighted successes — and a
// conjugate Beta prior whose mean is CQ̄ (the population mean of C·Q
// over candidate patterns, the paper's π(u) estimated from the data)
// and whose equivalent sample size is a fixed fraction h of the
// matching-relation size M. In fractions of M this gives the closed
// form
//
//     Ū(ϕ) = (D·C·Q + h·CQ̄) / (D + h).
//
// This estimator has exactly the properties the paper proves:
//   Theorem 1 — S1/S2 = ρ ≥ 1, C1/C2 ≥ ρ, Q1/Q2 ≥ 1/ρ ⇒ Ū1 ≥ Ū2
//     (numerator S1·Q1 ≥ S2·Q2 while D1 = S1/C1 ≤ D2 shrinks the
//     denominator).
//   Theorem 2 — equal D: Ū is strictly increasing in C·Q.
//   Theorem 3 — D1 ≥ D2 and C2Q2 ≤ 1 − (D1/D2)(1 − C1Q1) ⇒ Ū1 ≥ Ū2
//     (along the bound, Ū2 as a function of D2 is increasing and equals
//     Ū1 at D2 = D1), which is what validates the DAP pruning bound of
//     formula 6.
// It also reproduces the paper's Table III ranking shape: the FD
// pattern scores lowest despite its perfect dependent quality, because
// its support is too small to escape the (low) prior mean.
//
// A numeric-integration evaluation of the same Beta-Binomial posterior
// is provided for cross-validation of the closed form.

#ifndef DD_CORE_EXPECTED_UTILITY_H_
#define DD_CORE_EXPECTED_UTILITY_H_

#include <cstdint>

#include "core/measure_provider.h"

namespace dd {

enum class UtilityMethod {
  kClosedForm,          // (D·C·Q + h·CQ̄) / (D + h); the default.
  kNumericIntegration,  // Simpson on the Beta posterior (validation).
};

struct UtilityOptions {
  // Prior mean CQ̄; estimated from the data by EstimatePriorMeanCq or
  // set manually.
  double prior_mean_cq = 0.25;

  // Equivalent sample size of the prior as a fraction h of M. Larger
  // values penalize low-support patterns harder; 0 degenerates to the
  // maximum-likelihood estimate C·Q.
  double prior_strength = 0.05;

  UtilityMethod method = UtilityMethod::kClosedForm;

  // Integration controls (kNumericIntegration only).
  double window_sigmas = 12.0;
  std::size_t integration_intervals = 512;
};

// Expected utility for a pattern over a matching relation of `total`
// tuples with n = lhs_count tuples satisfying ϕ[X], confidence C and
// dependent quality Q. Inputs outside [0, 1] are clamped; total == 0
// returns the prior mean.
double ExpectedUtility(std::uint64_t total, std::uint64_t lhs_count,
                       double confidence, double quality,
                       const UtilityOptions& options);

// Estimates the prior mean CQ̄ as the average C·Q over `sample_size`
// pseudo-random candidate patterns (the paper models the prior from the
// histogram of observed CQ). Deterministic given `seed`. Costs
// 2·sample_size provider queries.
double EstimatePriorMeanCq(MeasureProvider* provider, std::size_t lhs_dims,
                           std::size_t rhs_dims, int dmax,
                           std::size_t sample_size, std::uint64_t seed);

}  // namespace dd

#endif  // DD_CORE_EXPECTED_UTILITY_H_
