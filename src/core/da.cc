#include "core/da.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/candidate_lattice.h"
#include "obs/explain/recorder.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace dd {

namespace {

// Min-heap on utility keeping the l best determined patterns.
class TopPatterns {
 public:
  explicit TopPatterns(std::size_t l) : l_(l) {}

  bool Full() const { return heap_.size() == l_; }

  // The current l-th best (only meaningful when Full()).
  const DeterminedPattern& Min() const { return heap_.front(); }

  void Offer(DeterminedPattern p) {
    if (heap_.size() < l_) {
      heap_.push_back(std::move(p));
      std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp);
      return;
    }
    if (p.utility <= heap_.front().utility) return;
    std::pop_heap(heap_.begin(), heap_.end(), MinHeapCmp);
    heap_.back() = std::move(p);
    std::push_heap(heap_.begin(), heap_.end(), MinHeapCmp);
  }

  std::vector<DeterminedPattern> Sorted() && {
    std::sort(heap_.begin(), heap_.end(),
              [](const DeterminedPattern& a, const DeterminedPattern& b) {
                return a.utility > b.utility;
              });
    return std::move(heap_);
  }

 private:
  static bool MinHeapCmp(const DeterminedPattern& a,
                         const DeterminedPattern& b) {
    return a.utility > b.utility;
  }
  std::size_t l_;
  std::vector<DeterminedPattern> heap_;
};

// One clone per ParallelFor chunk, or empty when the provider cannot
// clone (the callers then fall back to the sequential path).
std::vector<std::unique_ptr<MeasureProvider>> MakeClones(
    const MeasureProvider& provider, std::size_t count, std::size_t threads) {
  std::vector<std::unique_ptr<MeasureProvider>> clones;
  const std::size_t chunks = EffectiveChunks(count, threads);
  if (chunks <= 1) return clones;
  clones.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    auto clone = provider.CloneForThread();
    if (clone == nullptr) {
      clones.clear();
      return clones;
    }
    clones.push_back(std::move(clone));
  }
  return clones;
}

}  // namespace

std::vector<DeterminedPattern> DetermineBestPatterns(MeasureProvider* provider,
                                                     std::size_t lhs_dims,
                                                     std::size_t rhs_dims,
                                                     int dmax,
                                                     const DaOptions& options,
                                                     DaStats* stats) {
  DD_CHECK_GE(options.top_l, 1u);
  CandidateLattice lhs_lattice(lhs_dims, dmax);
  std::vector<std::uint32_t> lhs_order = CandidateLattice::MakeOrder(
      lhs_dims, dmax, ProcessingOrder::kLexicographic);
  const std::size_t threads =
      options.threads == 0 ? DefaultThreads() : options.threads;
  obs::ExplainRecorder* rec = obs::ExplainRecorder::Active();

  std::vector<std::uint64_t> lhs_counts;
  if (options.advanced_bound) {
    obs::TraceSpan span("lhs_ordering");
    // Algorithm 4 processes C_X in descending D(ϕ) order so that every
    // earlier answer has D >= the current candidate's D, the Theorem 3
    // precondition. The counts from this ordering pass are reused below
    // (the paper amortizes the ordering; recomputing D per LHS would
    // double the LHS scans and could make DAP slower than DA on rules
    // with a large C_X).
    //
    // The |C_X| counts are independent, so the pass partitions across
    // provider clones; clone stats merge back so the totals match the
    // sequential pass exactly.
    lhs_counts.resize(lhs_lattice.size());
    std::vector<std::unique_ptr<MeasureProvider>> clones;
    if (threads > 1 && !InParallelChunk()) {
      clones = MakeClones(*provider, lhs_order.size(), threads);
    }
    if (!clones.empty()) {
      ParallelFor("da.lhs_ordering", lhs_order.size(), threads,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    MeasureProvider* p = clones[chunk].get();
                    for (std::size_t pos = begin; pos < end; ++pos) {
                      const std::uint32_t idx = lhs_order[pos];
                      p->SetLhs(lhs_lattice.LevelsOf(idx));
                      lhs_counts[idx] = p->lhs_count();
                    }
                  });
      for (const auto& clone : clones) provider->AddStats(clone->stats());
    } else {
      for (std::uint32_t idx : lhs_order) {
        provider->SetLhs(lhs_lattice.LevelsOf(idx));
        lhs_counts[idx] = provider->lhs_count();
      }
    }
    std::stable_sort(lhs_order.begin(), lhs_order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return lhs_counts[a] > lhs_counts[b];
                     });
  }

  const std::uint64_t total = provider->total();
  TopPatterns top(options.top_l);
  PaOptions pa_options = options.pa;
  pa_options.top_l = options.top_l;
  pa_options.threads = threads;

  std::size_t lhs_evaluated = 0;
  PaStats pa_stats;

  // Parallel DA (DESIGN.md §12): with advanced_bound off, every per-LHS
  // search runs with initial bound 0 and a fresh per-call top-l heap —
  // the only cross-LHS state is the utility heap, which only consumes
  // (pattern, utility) offers. So the LHS sweep partitions across
  // provider clones and the offers replay in sequential LHS order:
  // results, DaStats, and provider stats are bit-identical to the
  // sequential run. EXPLAIN-recorded runs stay sequential so the audit
  // document's event order is reproducible.
  if (threads > 1 && !options.advanced_bound && rec == nullptr &&
      !InParallelChunk() && lhs_order.size() > 1) {
    std::vector<std::unique_ptr<MeasureProvider>> clones =
        MakeClones(*provider, lhs_order.size(), threads);
    if (!clones.empty()) {
      pa_options.initial_bound_advanced = false;  // bound is always 0 here
      struct LhsOutcome {
        std::uint64_t n = 0;
        std::vector<RhsCandidate> best;
        PaStats pa;
      };
      std::vector<LhsOutcome> outcomes(lhs_order.size());
      ParallelFor("da.lhs_search", lhs_order.size(), threads,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    MeasureProvider* p = clones[chunk].get();
                    for (std::size_t pos = begin; pos < end; ++pos) {
                      obs::TraceSpan lhs_span("lhs_search");
                      LhsOutcome& out = outcomes[pos];
                      p->SetLhs(lhs_lattice.LevelsOf(lhs_order[pos]));
                      out.n = p->lhs_count();
                      out.best = FindBestRhs(p, rhs_dims, dmax, /*bound=*/0.0,
                                             pa_options, &out.pa);
                    }
                  });
      // Deterministic merge in sequential LHS order.
      for (std::size_t pos = 0; pos < lhs_order.size(); ++pos) {
        LhsOutcome& out = outcomes[pos];
        ++lhs_evaluated;
        pa_stats.lattice_size += out.pa.lattice_size;
        pa_stats.evaluated += out.pa.evaluated;
        pa_stats.pruned += out.pa.pruned;
        const Levels lhs = lhs_lattice.LevelsOf(lhs_order[pos]);
        for (RhsCandidate& c : out.best) {
          DeterminedPattern p;
          p.pattern.lhs = lhs;
          p.pattern.rhs = std::move(c.rhs);
          p.measures = MeasuresFromCounts(total, out.n, c.xy_count,
                                          p.pattern.rhs, dmax);
          p.utility = ExpectedUtility(total, out.n, p.measures.confidence,
                                      p.measures.quality, options.utility);
          top.Offer(std::move(p));
        }
      }
      for (const auto& clone : clones) provider->AddStats(clone->stats());
      if (stats != nullptr) {
        stats->lhs_total += lhs_lattice.size();
        stats->lhs_evaluated += lhs_evaluated;
        stats->rhs.lattice_size += pa_stats.lattice_size;
        stats->rhs.evaluated += pa_stats.evaluated;
        stats->rhs.pruned += pa_stats.pruned;
      }
      return std::move(top).Sorted();
    }
  }

  for (std::uint32_t idx : lhs_order) {
    // Aggregated per-LHS phase: one span node, |C_X| entries.
    obs::TraceSpan lhs_span("lhs_search");
    const Levels lhs = lhs_lattice.LevelsOf(idx);
    if (options.advanced_bound) {
      provider->SetLhsWithKnownCount(lhs, lhs_counts[idx]);
    } else {
      provider->SetLhs(lhs);
    }
    const std::uint64_t n = provider->lhs_count();
    ++lhs_evaluated;

    double bound = 0.0;
    if (options.advanced_bound && top.Full() && n > 0) {
      const DeterminedPattern& ref = top.Min();
      // Descending-D processing guarantees ref.lhs_count >= n.
      const double ratio = static_cast<double>(ref.measures.lhs_count) /
                           static_cast<double>(n);
      const double ref_cq = ref.measures.confidence * ref.measures.quality;
      bound = 1.0 - ratio * (1.0 - ref_cq);
      if (bound < 0.0) bound = 0.0;  // Paper: negative bounds become 0.
    }
    DD_VLOG(1) << "lhs candidate " << idx << ": count=" << n
               << " advanced_bound=" << bound;

    pa_options.initial_bound_advanced = options.advanced_bound && bound > 0.0;
    std::vector<RhsCandidate> best =
        FindBestRhs(provider, rhs_dims, dmax, bound, pa_options, &pa_stats);
    if (rec != nullptr && best.empty()) rec->NoteLhsBoundedOut();
    for (RhsCandidate& c : best) {
      DeterminedPattern p;
      p.pattern.lhs = lhs;
      p.pattern.rhs = std::move(c.rhs);
      p.measures = MeasuresFromCounts(total, n, c.xy_count, p.pattern.rhs,
                                      dmax);
      p.utility = ExpectedUtility(total, n, p.measures.confidence,
                                  p.measures.quality, options.utility);
      top.Offer(std::move(p));
    }
  }

  // Stats contract: accumulate into *stats, never reset (see da.h).
  if (stats != nullptr) {
    stats->lhs_total += lhs_lattice.size();
    stats->lhs_evaluated += lhs_evaluated;
    stats->rhs.lattice_size += pa_stats.lattice_size;
    stats->rhs.evaluated += pa_stats.evaluated;
    stats->rhs.pruned += pa_stats.pruned;
  }
  return std::move(top).Sorted();
}

}  // namespace dd
