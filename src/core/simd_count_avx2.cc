// AVX2 implementations of the simd_count kernels. This is the ONLY TU
// compiled with -mavx2 -mbmi2 -mpopcnt (see src/core/CMakeLists.txt) so
// the compiler cannot leak AVX2 instructions into code that runs before
// the CPUID dispatch check; everything here executes only after
// CpuSupportsAvx2() returned true.
//
// Comparison idiom: unsigned bytes have no native <= compare, so
// (v <= thr) is computed as max_epu8(v, thr) == thr. Each 64-row block
// becomes one 64-bit row mask per column view — packed4 columns from a
// single 32-byte load whose even/odd nibble masks are interleaved with
// PDEP, 8-bit columns from two loads — and the per-view masks AND
// together so one popcount (or one bit-iteration for CollectLeq)
// finishes the whole conjunction for 64 rows.

#include "core/simd_count.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace dd::simd {
namespace {

inline bool AnyPacked4(const ColumnView* views, std::size_t num_views) {
  for (std::size_t i = 0; i < num_views; ++i) {
    if (views[i].packed4) return true;
  }
  return false;
}

inline bool RowSatisfies(const ColumnView* views, const std::uint8_t* bounds,
                         std::size_t num_views, std::size_t row) {
  for (std::size_t i = 0; i < num_views; ++i) {
    if (ViewLevel(views[i], row) > bounds[i]) return false;
  }
  return true;
}

// v <= thr per byte, as a 32-bit movemask.
inline std::uint32_t LeqMask32(__m256i v, __m256i thr) {
  return static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(v, thr), thr)));
}

// 64-bit satisfaction mask for rows [row, row + 64) of one view; bit b
// = row + b satisfies. `row` must be even for packed4 views.
inline std::uint64_t BlockMask64(const ColumnView& view, std::uint8_t bound,
                                 std::size_t row) {
  const __m256i thr = _mm256_set1_epi8(static_cast<char>(bound));
  if (view.packed4) {
    const __m256i packed = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(view.data + (row >> 1)));
    const __m256i nibble = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(packed, nibble);  // even rows
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(packed, 4), nibble);  // odd rows
    const std::uint64_t mlo = LeqMask32(lo, thr);
    const std::uint64_t mhi = LeqMask32(hi, thr);
    // Byte k of the load holds rows 2k (low nibble) and 2k+1 (high), so
    // the even-row mask spreads to even bits and the odd-row mask to
    // odd bits.
    return _pdep_u64(mlo, 0x5555555555555555ULL) |
           _pdep_u64(mhi, 0xAAAAAAAAAAAAAAAAULL);
  }
  const std::uint64_t m0 = LeqMask32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(view.data + row)),
      thr);
  const std::uint64_t m1 = LeqMask32(
      _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.data + row + 32)),
      thr);
  return m0 | (m1 << 32);
}

// Fused conjunction mask across all views for rows [row, row + 64).
inline std::uint64_t ConjunctionMask64(const ColumnView* views,
                                       const std::uint8_t* bounds,
                                       std::size_t num_views,
                                       std::size_t row) {
  std::uint64_t mask = ~std::uint64_t{0};
  for (std::size_t i = 0; i < num_views && mask != 0; ++i) {
    mask &= BlockMask64(views[i], bounds[i], row);
  }
  return mask;
}

std::uint64_t CountLeqAvx2(const ColumnView* views, const std::uint8_t* bounds,
                           std::size_t num_views, std::size_t begin,
                           std::size_t end) {
  if (num_views == 0) return end - begin;
  std::uint64_t count = 0;
  std::size_t row = begin;
  // Align to an even row so packed4 block loads start on a byte.
  if (AnyPacked4(views, num_views) && (row & 1) != 0 && row < end) {
    if (RowSatisfies(views, bounds, num_views, row)) ++count;
    ++row;
  }
  for (; row + 64 <= end; row += 64) {
    count += static_cast<std::uint64_t>(
        _mm_popcnt_u64(ConjunctionMask64(views, bounds, num_views, row)));
  }
  for (; row < end; ++row) {
    if (RowSatisfies(views, bounds, num_views, row)) ++count;
  }
  return count;
}

void CollectLeqAvx2(const ColumnView* views, const std::uint8_t* bounds,
                    std::size_t num_views, std::size_t begin, std::size_t end,
                    std::vector<std::uint32_t>* out) {
  std::size_t row = begin;
  if (num_views > 0 && AnyPacked4(views, num_views) && (row & 1) != 0 &&
      row < end) {
    if (RowSatisfies(views, bounds, num_views, row)) {
      out->push_back(static_cast<std::uint32_t>(row));
    }
    ++row;
  }
  for (; row + 64 <= end; row += 64) {
    std::uint64_t mask = ConjunctionMask64(views, bounds, num_views, row);
    // Ascending bit iteration keeps the row list sorted, matching the
    // scalar kernel exactly.
    while (mask != 0) {
      const int bit = __builtin_ctzll(mask);
      out->push_back(static_cast<std::uint32_t>(row) +
                     static_cast<std::uint32_t>(bit));
      mask &= mask - 1;
    }
  }
  for (; row < end; ++row) {
    if (RowSatisfies(views, bounds, num_views, row)) {
      out->push_back(static_cast<std::uint32_t>(row));
    }
  }
}

// 32 levels of one view as bytes in row order (rows [row, row + 32));
// `row` must be even for packed4 views.
inline __m256i LoadLevels32(const ColumnView& view, std::size_t row) {
  if (!view.packed4) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(view.data + row));
  }
  const __m128i packed = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(view.data + (row >> 1)));
  const __m128i nibble = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(packed, nibble);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(packed, 4), nibble);
  // Interleaving even (lo) and odd (hi) nibbles restores row order.
  return _mm256_set_m128i(_mm_unpackhi_epi8(lo, hi),
                          _mm_unpacklo_epi8(lo, hi));
}

void GridIndicesAvx2(const ColumnView* views, const std::uint32_t* strides,
                     std::size_t num_views, std::size_t begin, std::size_t end,
                     std::uint32_t* out) {
  std::size_t row = begin;
  if (num_views > 0 && AnyPacked4(views, num_views) && (row & 1) != 0 &&
      row < end) {
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < num_views; ++i) {
      idx += static_cast<std::uint32_t>(ViewLevel(views[i], row)) * strides[i];
    }
    *out++ = idx;
    ++row;
  }
  for (; row + 32 <= end; row += 32, out += 32) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (std::size_t i = 0; i < num_views; ++i) {
      const __m256i bytes = LoadLevels32(views[i], row);
      const __m256i stride = _mm256_set1_epi32(static_cast<int>(strides[i]));
      const __m128i lo16 = _mm256_castsi256_si128(bytes);      // rows 0..15
      const __m128i hi16 = _mm256_extracti128_si256(bytes, 1);  // rows 16..31
      acc0 = _mm256_add_epi32(
          acc0, _mm256_mullo_epi32(_mm256_cvtepu8_epi32(lo16), stride));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_mullo_epi32(
                    _mm256_cvtepu8_epi32(_mm_srli_si128(lo16, 8)), stride));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_mullo_epi32(_mm256_cvtepu8_epi32(hi16), stride));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_mullo_epi32(
                    _mm256_cvtepu8_epi32(_mm_srli_si128(hi16, 8)), stride));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), acc1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16), acc2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 24), acc3);
  }
  for (; row < end; ++row) {
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < num_views; ++i) {
      idx += static_cast<std::uint32_t>(ViewLevel(views[i], row)) * strides[i];
    }
    *out++ = idx;
  }
}

const internal::KernelTable kAvx2Kernels = {CountLeqAvx2, CollectLeqAvx2,
                                            GridIndicesAvx2};

}  // namespace

namespace internal {

const KernelTable* Avx2Kernels() { return &kAvx2Kernels; }

}  // namespace internal

}  // namespace dd::simd

#else  // !x86

namespace dd::simd::internal {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace dd::simd::internal

#endif
