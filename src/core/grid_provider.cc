#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/grid_util.h"
#include "core/measure_provider.h"
#include "core/simd_count.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace dd {

Result<std::unique_ptr<GridMeasureProvider>> GridMeasureProvider::Create(
    const MatchingRelation& matching, ResolvedRule rule,
    std::size_t max_cells) {
  // Build cost is the grid's entire scan budget; CountXY stays O(1) and
  // deliberately uninstrumented beyond the inherited ProviderStats.
  obs::TraceSpan span("grid_build");
  const std::size_t base = static_cast<std::size_t>(matching.dmax()) + 1;
  const std::size_t dims = rule.lhs.size() + rule.rhs.size();
  DD_ASSIGN_OR_RETURN(std::size_t cells,
                      grid::GridCells(base, dims, max_cells));

  auto provider = std::unique_ptr<GridMeasureProvider>(new GridMeasureProvider());
  provider->total_ = matching.num_tuples();
  provider->dmax_ = matching.dmax();
  provider->lhs_dims_ = rule.lhs.size();
  provider->rhs_dims_ = rule.rhs.size();
  std::vector<std::uint64_t> joint(cells, 0);

  std::size_t lhs_cells = 1;
  for (std::size_t d = 0; d < rule.lhs.size(); ++d) lhs_cells *= base;
  std::vector<std::uint64_t> lhs_grid(lhs_cells, 0);

  // Histogram pass: one increment per matching tuple in each grid. The
  // cell-index computation runs through the vector kernel in block
  // batches (lhs dims are low-order in the joint layout, so the first
  // lhs_dims strides double as the marginal grid's strides); the
  // increments themselves stay scalar — they scatter, and cells ≤ 2^27
  // means conflicts would be frequent.
  const std::size_t m = matching.num_tuples();
  std::vector<simd::ColumnView> views;
  std::vector<std::uint32_t> strides;
  views.reserve(dims);
  strides.reserve(dims);
  std::uint64_t stride = 1;  // every pushed stride < cells, which fits uint32
  for (std::size_t a = 0; a < rule.lhs.size(); ++a) {
    views.push_back(simd::View(matching.column(rule.lhs[a])));
    strides.push_back(static_cast<std::uint32_t>(stride));
    stride *= base;
  }
  for (std::size_t a = 0; a < rule.rhs.size(); ++a) {
    views.push_back(simd::View(matching.column(rule.rhs[a])));
    strides.push_back(static_cast<std::uint32_t>(stride));
    stride *= base;
  }
  constexpr std::size_t kBlock = 4096;
  std::vector<std::uint32_t> joint_idx(kBlock);
  std::vector<std::uint32_t> lhs_idx(kBlock);
  for (std::size_t row = 0; row < m; row += kBlock) {
    const std::size_t n = std::min(kBlock, m - row);
    simd::GridIndices(views.data(), strides.data(), dims, row, row + n,
                      joint_idx.data());
    simd::GridIndices(views.data(), strides.data(), rule.lhs.size(), row,
                      row + n, lhs_idx.data());
    for (std::size_t i = 0; i < n; ++i) {
      ++joint[joint_idx[i]];
      ++lhs_grid[lhs_idx[i]];
    }
  }

  grid::PrefixSumAllDims(&joint, dims, base);
  grid::PrefixSumAllDims(&lhs_grid, rule.lhs.size(), base);
  provider->joint_ =
      std::make_shared<const std::vector<std::uint64_t>>(std::move(joint));
  provider->lhs_grid_ =
      std::make_shared<const std::vector<std::uint64_t>>(std::move(lhs_grid));
  obs::MetricsRegistry::Global().GetGauge("provider.grid_cells").Set(
      static_cast<double>(cells));
  obs::SetMemoryGauge("grid", provider->MemoryUsageBytes());
  DD_LOG(INFO) << "grid provider built: " << cells << " cells over "
               << m << " matching tuples";
  return provider;
}

Result<std::unique_ptr<GridMeasureProvider>>
GridMeasureProvider::CreateFromHistograms(std::vector<std::uint64_t> joint,
                                          std::vector<std::uint64_t> lhs_grid,
                                          std::uint64_t total, int dmax,
                                          std::size_t lhs_dims,
                                          std::size_t rhs_dims) {
  if (dmax < 1 || dmax > 255) {
    return Status::InvalidArgument(
        StrFormat("dmax %d outside [1, 255]", dmax));
  }
  const std::size_t base = static_cast<std::size_t>(dmax) + 1;
  const std::size_t dims = lhs_dims + rhs_dims;
  std::size_t joint_cells = 1;
  for (std::size_t d = 0; d < dims; ++d) joint_cells *= base;
  std::size_t lhs_cells = 1;
  for (std::size_t d = 0; d < lhs_dims; ++d) lhs_cells *= base;
  if (joint.size() != joint_cells || lhs_grid.size() != lhs_cells) {
    return Status::InvalidArgument(StrFormat(
        "histogram sizes %zu/%zu do not match (dmax+1)^dims %zu/%zu",
        joint.size(), lhs_grid.size(), joint_cells, lhs_cells));
  }
  auto provider =
      std::unique_ptr<GridMeasureProvider>(new GridMeasureProvider());
  provider->total_ = total;
  provider->dmax_ = dmax;
  provider->lhs_dims_ = lhs_dims;
  provider->rhs_dims_ = rhs_dims;
  grid::PrefixSumAllDims(&joint, dims, base);
  grid::PrefixSumAllDims(&lhs_grid, lhs_dims, base);
  provider->joint_ =
      std::make_shared<const std::vector<std::uint64_t>>(std::move(joint));
  provider->lhs_grid_ =
      std::make_shared<const std::vector<std::uint64_t>>(std::move(lhs_grid));
  obs::MetricsRegistry::Global().GetGauge("provider.grid_cells").Set(
      static_cast<double>(joint_cells));
  obs::SetMemoryGauge("grid", provider->MemoryUsageBytes());
  return provider;
}

void GridMeasureProvider::SetLhs(const Levels& lhs) {
  DD_CHECK_EQ(lhs.size(), lhs_dims_);
  ++stats_.lhs_evaluations;
  current_lhs_ = lhs;
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  std::size_t idx = 0;
  for (std::size_t a = lhs_dims_; a-- > 0;) {
    DD_CHECK_GE(lhs[a], 0);
    DD_CHECK_LE(lhs[a], dmax_);
    idx = idx * base + static_cast<std::size_t>(lhs[a]);
  }
  lhs_count_ = (*lhs_grid_)[idx];
}

std::size_t GridMeasureProvider::JointIndex(const Levels& rhs) const {
  DD_CHECK_EQ(rhs.size(), rhs_dims_);
  DD_CHECK_EQ(current_lhs_.size(), lhs_dims_);
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  std::size_t idx = 0;
  for (std::size_t a = rhs_dims_; a-- > 0;) {
    DD_CHECK_GE(rhs[a], 0);
    DD_CHECK_LE(rhs[a], dmax_);
    idx = idx * base + static_cast<std::size_t>(rhs[a]);
  }
  for (std::size_t a = lhs_dims_; a-- > 0;) {
    idx = idx * base + static_cast<std::size_t>(current_lhs_[a]);
  }
  return idx;
}

std::uint64_t GridMeasureProvider::CountXY(const Levels& rhs) {
  ++stats_.xy_evaluations;
  return (*joint_)[JointIndex(rhs)];
}

std::uint64_t GridMeasureProvider::CountXYConcurrent(const Levels& rhs) const {
  return (*joint_)[JointIndex(rhs)];
}

std::unique_ptr<MeasureProvider> GridMeasureProvider::CloneForThread() const {
  auto clone = std::unique_ptr<GridMeasureProvider>(new GridMeasureProvider());
  clone->total_ = total_;
  clone->dmax_ = dmax_;
  clone->lhs_dims_ = lhs_dims_;
  clone->rhs_dims_ = rhs_dims_;
  clone->joint_ = joint_;
  clone->lhs_grid_ = lhs_grid_;
  return clone;
}

Result<std::unique_ptr<MeasureProvider>> MakeMeasureProvider(
    const MatchingRelation& matching, const ResolvedRule& rule,
    std::string_view kind, std::size_t scan_threads) {
  if (kind == "scan") {
    return std::unique_ptr<MeasureProvider>(new ScanMeasureProvider(
        matching, rule, /*full_scan=*/true, scan_threads));
  }
  if (kind == "scan_subset") {
    return std::unique_ptr<MeasureProvider>(new ScanMeasureProvider(
        matching, rule, /*full_scan=*/false, scan_threads));
  }
  if (kind == "grid") {
    DD_ASSIGN_OR_RETURN(auto grid, GridMeasureProvider::Create(matching, rule));
    return std::unique_ptr<MeasureProvider>(std::move(grid));
  }
  return Status::InvalidArgument("unknown provider kind: " + std::string(kind));
}

}  // namespace dd
