// Pareto-front utilities over (support, confidence, dependent quality).
// The paper's introduction characterizes the returned "best" patterns
// as Pareto-optimal: "not existing any other settings ... having higher
// support, confidence, and dependent quality than the returned results
// at the same time" — a consequence of Theorem 1, since any pattern
// Pareto-dominated on all three measures has a no-larger expected
// utility. These helpers make that guarantee checkable and let callers
// extract the full skyline of a candidate set.

#ifndef DD_CORE_SKYLINE_H_
#define DD_CORE_SKYLINE_H_

#include <vector>

#include "core/da.h"

namespace dd {

// True when `a` is at least as good as `b` on support, confidence, and
// dependent quality, and strictly better on at least one.
bool ParetoDominates(const Measures& a, const Measures& b);

// The non-dominated subset of `patterns` under ParetoDominates,
// preserving input order. Duplicate measure triples all survive (none
// strictly dominates the other).
std::vector<DeterminedPattern> ParetoFront(
    const std::vector<DeterminedPattern>& patterns);

// True when no element of `candidates` Pareto-dominates `pattern` —
// the paper's optimality characterization of a determination result.
bool IsParetoOptimalAmong(const DeterminedPattern& pattern,
                          const std::vector<DeterminedPattern>& candidates);

}  // namespace dd

#endif  // DD_CORE_SKYLINE_H_
