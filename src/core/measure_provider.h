// MeasureProvider: answers the two counting queries every determination
// algorithm needs against the matching relation M —
//   count(b ⊨ ϕ[X])   (paper formula 1, the LHS support numerator)
//   count(b ⊨ ϕ[XY])  (paper formula 2, the confidence numerator)
// — plus instrumentation counters used by the pruning-rate experiments.
//
// ScanMeasureProvider is the paper-faithful implementation: every count
// is an O(M) pass over the matching tuples (the cost the pruning
// techniques of §V are designed to avoid). GridMeasureProvider is an
// extension: a prefix-sum grid over the (dmax+1)^c threshold lattice
// that answers each count in O(1) after an O(M + d^c) build. Both
// providers return identical counts (asserted by property tests).

#ifndef DD_CORE_MEASURE_PROVIDER_H_
#define DD_CORE_MEASURE_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/pattern.h"
#include "core/rule.h"
#include "matching/matching_relation.h"

namespace dd {

struct ProviderStats {
  // Number of evaluated ϕ[X]: every SetLhs call AND every
  // SetLhsWithKnownCount call. A known count makes the scan free, not
  // the evaluation, so all providers count it here — the field is the
  // number of LHS candidates processed, comparable across providers and
  // independent of how cheaply each one answers.
  std::uint64_t lhs_evaluations = 0;
  // Number of CountXY calls (one per evaluated ϕ[Y] candidate).
  std::uint64_t xy_evaluations = 0;
  // Matching tuples touched by QUERY-TIME scans (SetLhs / CountXY)
  // only. The grid providers answer queries from their prefix-sum grids
  // without touching M, so this stays 0 for them BY CONTRACT even
  // though their construction makes one O(M) histogram pass — build
  // cost is reported through the "grid_build" trace span and the
  // provider.grid_cells gauge instead, keeping this field the
  // per-query scan work that the paper's pruning experiments plot.
  std::uint64_t rows_scanned = 0;
};

class MeasureProvider {
 public:
  virtual ~MeasureProvider() = default;

  // Total number of matching tuples M.
  virtual std::uint64_t total() const = 0;

  // Fixes the current ϕ[X]; subsequent lhs_count()/CountXY() refer to it.
  virtual void SetLhs(const Levels& lhs) = 0;

  // Like SetLhs when the caller already knows count(b ⊨ ϕ[X]) — e.g.
  // DAP's descending-D ordering pass computed every LHS count up front.
  // Implementations that need no per-LHS state beyond the count can
  // skip their scan, but must still count the call in
  // stats_.lhs_evaluations (see ProviderStats); the default just
  // delegates to SetLhs.
  virtual void SetLhsWithKnownCount(const Levels& lhs,
                                    std::uint64_t known_count) {
    (void)known_count;
    SetLhs(lhs);
  }

  // count(b ⊨ ϕ[X]) for the current ϕ[X].
  virtual std::uint64_t lhs_count() const = 0;

  // The current ϕ[X] levels (last SetLhs argument). Observational only —
  // the EXPLAIN recorder reads it to label events; providers that track
  // no LHS state may return an empty vector.
  virtual const Levels& current_lhs() const {
    static const Levels kEmpty;
    return kEmpty;
  }

  // count(b ⊨ ϕ[XY]) for the current ϕ[X] and the given ϕ[Y].
  virtual std::uint64_t CountXY(const Levels& rhs) = 0;

  // Stats contract (shared with DaStats/PaStats, see da.h / pa.h):
  // stats ACCUMULATE across every SetLhs/CountXY call for the provider's
  // lifetime and are never reset implicitly. Callers that want a
  // specific window call ResetStats() at its start — the determination
  // facades (determiner.cc, special_cases.cc) reset after prior
  // estimation so reported stats cover search work only.
  const ProviderStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ProviderStats{}; }

 protected:
  ProviderStats stats_;
};

// Paper-faithful O(M)-per-count provider.
class ScanMeasureProvider : public MeasureProvider {
 public:
  // `full_scan` selects between re-scanning all of M for every CountXY
  // (exactly the paper's cost model; default) and scanning only the
  // tuples already known to satisfy ϕ[X] (a natural optimization that
  // preserves results). `threads` > 1 partitions every scan across that
  // many worker threads (counts are exact either way).
  ScanMeasureProvider(const MatchingRelation& matching, ResolvedRule rule,
                      bool full_scan = true, std::size_t threads = 1);

  std::uint64_t total() const override;
  void SetLhs(const Levels& lhs) override;
  // In full-scan mode the SetLhs scan only produces lhs_count, so a
  // known count makes it free; subset mode still needs the row list.
  void SetLhsWithKnownCount(const Levels& lhs,
                            std::uint64_t known_count) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

 private:
  const MatchingRelation& matching_;
  ResolvedRule rule_;
  bool full_scan_;
  std::size_t threads_;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
  // Row indices satisfying the current ϕ[X]; used when !full_scan_.
  std::vector<std::uint32_t> lhs_rows_;
};

// O(1)-per-count provider over an inclusive prefix-sum grid.
class GridMeasureProvider : public MeasureProvider {
 public:
  // Fails when the grid (dmax+1)^(|X|+|Y|) would exceed `max_cells`.
  static Result<std::unique_ptr<GridMeasureProvider>> Create(
      const MatchingRelation& matching, ResolvedRule rule,
      std::size_t max_cells = std::size_t{1} << 27);

  std::uint64_t total() const override { return total_; }
  void SetLhs(const Levels& lhs) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

 private:
  GridMeasureProvider() = default;

  std::uint64_t total_ = 0;
  int dmax_ = 0;
  std::size_t lhs_dims_ = 0;
  std::size_t rhs_dims_ = 0;
  // Joint cumulative grid over (lhs..., rhs...) levels: cell ϕ holds
  // count(b[A] <= ϕ[A] for all A). lhs dims are low-order.
  std::vector<std::uint64_t> joint_;
  // Marginal cumulative grid over lhs levels only.
  std::vector<std::uint64_t> lhs_grid_;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
};

// Convenience: builds the provider requested by name ("scan",
// "scan_subset", "grid"). `scan_threads` applies to the scan-based
// kinds only.
Result<std::unique_ptr<MeasureProvider>> MakeMeasureProvider(
    const MatchingRelation& matching, const ResolvedRule& rule,
    std::string_view kind, std::size_t scan_threads = 1);

}  // namespace dd

#endif  // DD_CORE_MEASURE_PROVIDER_H_
