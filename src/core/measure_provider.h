// MeasureProvider: answers the two counting queries every determination
// algorithm needs against the matching relation M —
//   count(b ⊨ ϕ[X])   (paper formula 1, the LHS support numerator)
//   count(b ⊨ ϕ[XY])  (paper formula 2, the confidence numerator)
// — plus instrumentation counters used by the pruning-rate experiments.
//
// ScanMeasureProvider is the paper-faithful implementation: every count
// is an O(M) pass over the matching tuples (the cost the pruning
// techniques of §V are designed to avoid). GridMeasureProvider is an
// extension: a prefix-sum grid over the (dmax+1)^c threshold lattice
// that answers each count in O(1) after an O(M + d^c) build. Both
// providers return identical counts (asserted by property tests).

#ifndef DD_CORE_MEASURE_PROVIDER_H_
#define DD_CORE_MEASURE_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/pattern.h"
#include "core/rule.h"
#include "matching/matching_relation.h"

namespace dd {

struct ProviderStats {
  // Number of evaluated ϕ[X]: every SetLhs call AND every
  // SetLhsWithKnownCount call. A known count makes the scan free, not
  // the evaluation, so all providers count it here — the field is the
  // number of LHS candidates processed, comparable across providers and
  // independent of how cheaply each one answers.
  std::uint64_t lhs_evaluations = 0;
  // Number of CountXY calls (one per evaluated ϕ[Y] candidate).
  std::uint64_t xy_evaluations = 0;
  // Matching tuples touched by QUERY-TIME scans (SetLhs / CountXY)
  // only. The grid providers answer queries from their prefix-sum grids
  // without touching M, so this stays 0 for them BY CONTRACT even
  // though their construction makes one O(M) histogram pass — build
  // cost is reported through the "grid_build" trace span and the
  // provider.grid_cells gauge instead, keeping this field the
  // per-query scan work that the paper's pruning experiments plot.
  std::uint64_t rows_scanned = 0;
};

class MeasureProvider {
 public:
  virtual ~MeasureProvider() = default;

  // Total number of matching tuples M.
  virtual std::uint64_t total() const = 0;

  // Fixes the current ϕ[X]; subsequent lhs_count()/CountXY() refer to it.
  virtual void SetLhs(const Levels& lhs) = 0;

  // Like SetLhs when the caller already knows count(b ⊨ ϕ[X]) — e.g.
  // DAP's descending-D ordering pass computed every LHS count up front.
  // Implementations that need no per-LHS state beyond the count can
  // skip their scan, but must still count the call in
  // stats_.lhs_evaluations (see ProviderStats); the default just
  // delegates to SetLhs.
  virtual void SetLhsWithKnownCount(const Levels& lhs,
                                    std::uint64_t known_count) {
    (void)known_count;
    SetLhs(lhs);
  }

  // count(b ⊨ ϕ[X]) for the current ϕ[X].
  virtual std::uint64_t lhs_count() const = 0;

  // The current ϕ[X] levels (last SetLhs argument). Observational only —
  // the EXPLAIN recorder reads it to label events; providers that track
  // no LHS state may return an empty vector.
  virtual const Levels& current_lhs() const {
    static const Levels kEmpty;
    return kEmpty;
  }

  // count(b ⊨ ϕ[XY]) for the current ϕ[X] and the given ϕ[Y].
  virtual std::uint64_t CountXY(const Levels& rhs) = 0;

  // ---- Concurrency extensions (DESIGN.md §12) ----

  // Thread-private clone for across-LHS parallel determination: shares
  // the (immutable) counting structures with `this` but owns its LHS
  // state and stats. Valid only while the parent is alive and not
  // mutated. nullptr = cloning unsupported; callers fall back to the
  // sequential path. Clones start with zeroed stats; merge them back
  // deterministically with AddStats.
  virtual std::unique_ptr<MeasureProvider> CloneForThread() const {
    return nullptr;
  }

  // True when CountXYConcurrent() may be called from several threads at
  // once (against one fixed ϕ[X]).
  virtual bool SupportsConcurrentCountXY() const { return false; }

  // Stats-free const counting against the current ϕ[X], used by the
  // speculative window in parallel PA/PAP (core/pa.cc). Must return
  // exactly what CountXY would. Callers account the committed subset of
  // these calls via AccountCommittedXY so ProviderStats equal the
  // sequential run's. Only valid when SupportsConcurrentCountXY().
  virtual std::uint64_t CountXYConcurrent(const Levels& rhs) const {
    (void)rhs;
    return 0;
  }

  // Matching tuples one CountXY call touches right now (0 for the grid
  // providers BY CONTRACT — see ProviderStats::rows_scanned). Used both
  // to replay rows_scanned for committed speculative work and as the
  // cost signal deciding whether within-LHS parallelism pays off.
  virtual std::uint64_t RowsPerCountXY() const { return 0; }

  // Accounts `calls` committed speculative evaluations exactly as if
  // CountXY had been called `calls` times.
  void AccountCommittedXY(std::uint64_t calls) {
    stats_.xy_evaluations += calls;
    stats_.rows_scanned += calls * RowsPerCountXY();
  }

  // Merges a clone's accumulated stats (field-wise sums, so the merge
  // total is independent of merge order).
  void AddStats(const ProviderStats& other) {
    stats_.lhs_evaluations += other.lhs_evaluations;
    stats_.xy_evaluations += other.xy_evaluations;
    stats_.rows_scanned += other.rows_scanned;
  }

  // Stats contract (shared with DaStats/PaStats, see da.h / pa.h):
  // stats ACCUMULATE across every SetLhs/CountXY call for the provider's
  // lifetime and are never reset implicitly. Callers that want a
  // specific window call ResetStats() at its start — the determination
  // facades (determiner.cc, special_cases.cc) reset after prior
  // estimation so reported stats cover search work only.
  const ProviderStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ProviderStats{}; }

 protected:
  ProviderStats stats_;
};

// Paper-faithful O(M)-per-count provider.
class ScanMeasureProvider : public MeasureProvider {
 public:
  // `full_scan` selects between re-scanning all of M for every CountXY
  // (exactly the paper's cost model; default) and scanning only the
  // tuples already known to satisfy ϕ[X] (a natural optimization that
  // preserves results). `threads` > 1 partitions every scan across that
  // many worker threads (counts are exact either way).
  ScanMeasureProvider(const MatchingRelation& matching, ResolvedRule rule,
                      bool full_scan = true, std::size_t threads = 1);

  std::uint64_t total() const override;
  void SetLhs(const Levels& lhs) override;
  // In full-scan mode the SetLhs scan only produces lhs_count, so a
  // known count makes it free; subset mode still needs the row list.
  void SetLhsWithKnownCount(const Levels& lhs,
                            std::uint64_t known_count) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

  std::unique_ptr<MeasureProvider> CloneForThread() const override;
  bool SupportsConcurrentCountXY() const override { return true; }
  std::uint64_t CountXYConcurrent(const Levels& rhs) const override;
  std::uint64_t RowsPerCountXY() const override {
    return full_scan_ ? matching_.num_tuples() : lhs_rows_.size();
  }

 private:
  const MatchingRelation& matching_;
  ResolvedRule rule_;
  bool full_scan_;
  std::size_t threads_;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
  // Row indices satisfying the current ϕ[X]; used when !full_scan_.
  std::vector<std::uint32_t> lhs_rows_;
};

// O(1)-per-count provider over an inclusive prefix-sum grid.
class GridMeasureProvider : public MeasureProvider {
 public:
  // Fails when the grid (dmax+1)^(|X|+|Y|) would exceed `max_cells`.
  static Result<std::unique_ptr<GridMeasureProvider>> Create(
      const MatchingRelation& matching, ResolvedRule rule,
      std::size_t max_cells = std::size_t{1} << 27);

  // Builds the provider from externally-accumulated PLAIN histograms
  // (one count per exact level combination; lhs dims low-order in
  // `joint`, rhs high-order — the layout Create's histogram pass uses),
  // prefix-summing them in place. This is how the streaming exact build
  // (approx/exact_stream.h) gets O(d^c)-memory determination without
  // ever materializing M: it streams the triangular pair enumeration
  // straight into these histograms. `total` is the number of pairs the
  // histograms cover; sizes must be (dmax+1)^(lhs_dims+rhs_dims) and
  // (dmax+1)^lhs_dims.
  static Result<std::unique_ptr<GridMeasureProvider>> CreateFromHistograms(
      std::vector<std::uint64_t> joint, std::vector<std::uint64_t> lhs_grid,
      std::uint64_t total, int dmax, std::size_t lhs_dims,
      std::size_t rhs_dims);

  std::uint64_t total() const override { return total_; }
  void SetLhs(const Levels& lhs) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

  // The grids are shared (immutable after Create), so a clone is a few
  // scalars — across-LHS parallel determination clones freely.
  std::unique_ptr<MeasureProvider> CloneForThread() const override;
  bool SupportsConcurrentCountXY() const override { return true; }
  std::uint64_t CountXYConcurrent(const Levels& rhs) const override;

  // Heap bytes of the shared cumulative grids. Clones share the same
  // grids, so sum this once per provider family, not per clone. Feeds
  // the mem.grid_bytes gauge (obs/resource.h).
  std::size_t MemoryUsageBytes() const {
    std::size_t bytes = 0;
    if (joint_ != nullptr) bytes += joint_->capacity() * sizeof(std::uint64_t);
    if (lhs_grid_ != nullptr) {
      bytes += lhs_grid_->capacity() * sizeof(std::uint64_t);
    }
    return bytes;
  }

 private:
  GridMeasureProvider() = default;

  std::size_t JointIndex(const Levels& rhs) const;

  std::uint64_t total_ = 0;
  int dmax_ = 0;
  std::size_t lhs_dims_ = 0;
  std::size_t rhs_dims_ = 0;
  // Joint cumulative grid over (lhs..., rhs...) levels: cell ϕ holds
  // count(b[A] <= ϕ[A] for all A). lhs dims are low-order. Immutable
  // after Create and shared with clones.
  std::shared_ptr<const std::vector<std::uint64_t>> joint_;
  // Marginal cumulative grid over lhs levels only (also shared).
  std::shared_ptr<const std::vector<std::uint64_t>> lhs_grid_;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
};

// Convenience: builds the provider requested by name ("scan",
// "scan_subset", "grid"). `scan_threads` applies to the scan-based
// kinds only.
Result<std::unique_ptr<MeasureProvider>> MakeMeasureProvider(
    const MatchingRelation& matching, const ResolvedRule& rule,
    std::string_view kind, std::size_t scan_threads = 1);

}  // namespace dd

#endif  // DD_CORE_MEASURE_PROVIDER_H_
