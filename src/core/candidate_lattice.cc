#include "core/candidate_lattice.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace dd {

const char* ProcessingOrderName(ProcessingOrder order) {
  switch (order) {
    case ProcessingOrder::kMidFirst:
      return "mid-first";
    case ProcessingOrder::kTopFirst:
      return "top-first";
    case ProcessingOrder::kBottomFirst:
      return "bottom-first";
    case ProcessingOrder::kLexicographic:
      return "lexicographic";
  }
  return "unknown";
}

namespace {

std::size_t LatticeSize(std::size_t dims, int dmax) {
  std::size_t size = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    size *= static_cast<std::size_t>(dmax) + 1;
  }
  return size;
}

}  // namespace

CandidateLattice::CandidateLattice(std::size_t dims, int dmax)
    : dims_(dims), dmax_(dmax) {
  DD_CHECK_GE(dims, 1u);
  DD_CHECK_GE(dmax, 1);
  const std::size_t size = LatticeSize(dims, dmax);
  DD_CHECK_LE(size, std::size_t{1} << 28);  // Guard runaway lattices.
  alive_.assign(size, 1);
  alive_count_ = size;
}

bool CandidateLattice::Kill(std::size_t idx) {
  DD_CHECK_LT(idx, alive_.size());
  if (alive_[idx] == 0) return false;
  alive_[idx] = 0;
  --alive_count_;
  return true;
}

Levels CandidateLattice::LevelsOf(std::size_t idx) const {
  Levels levels(dims_);
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  for (std::size_t d = 0; d < dims_; ++d) {
    levels[d] = static_cast<int>(idx % base);
    idx /= base;
  }
  return levels;
}

std::size_t CandidateLattice::IndexOf(const Levels& levels) const {
  DD_CHECK_EQ(levels.size(), dims_);
  const std::size_t base = static_cast<std::size_t>(dmax_) + 1;
  std::size_t idx = 0;
  for (std::size_t d = dims_; d-- > 0;) {
    DD_CHECK_GE(levels[d], 0);
    DD_CHECK_LE(levels[d], dmax_);
    idx = idx * base + static_cast<std::size_t>(levels[d]);
  }
  return idx;
}

std::size_t CandidateLattice::Prune(const Levels& dominator,
                                    double max_quality) {
  return Prune(dominator, max_quality, nullptr);
}

std::size_t CandidateLattice::Prune(
    const Levels& dominator, double max_quality,
    const std::function<void(std::size_t)>& on_kill) {
  DD_CHECK_EQ(dominator.size(), dims_);
  // Q(ϕ) <= q  <=>  LevelSum(ϕ) >= dims * dmax * (1 - q).
  const double min_sum_d =
      static_cast<double>(dims_) * dmax_ * (1.0 - max_quality);
  // Guard against floating-point jitter at the boundary: Q is a ratio of
  // small integers, so nudge by an epsilon before taking the ceiling.
  const long min_sum = static_cast<long>(std::ceil(min_sum_d - 1e-9));

  // Walk the dominated sub-box [0, dominator] with an odometer.
  std::size_t killed = 0;
  Levels cursor(dims_, 0);
  for (;;) {
    const long sum = LevelSum(cursor);
    if (sum >= min_sum) {
      const std::size_t idx = IndexOf(cursor);
      if (Kill(idx)) {
        ++killed;
        if (on_kill) on_kill(idx);
      }
    }
    // Advance the odometer.
    std::size_t d = 0;
    while (d < dims_ && cursor[d] == dominator[d]) {
      cursor[d] = 0;
      ++d;
    }
    if (d == dims_) break;
    ++cursor[d];
  }
  return killed;
}

std::vector<std::uint32_t> CandidateLattice::MakeOrder(std::size_t dims,
                                                       int dmax,
                                                       ProcessingOrder order) {
  const std::size_t size = LatticeSize(dims, dmax);
  DD_CHECK_LE(size, std::size_t{1} << 28);
  std::vector<std::uint32_t> idx(size);
  std::iota(idx.begin(), idx.end(), 0u);
  if (order == ProcessingOrder::kLexicographic) return idx;

  // Level sum per cell, computed without materializing Levels.
  const std::size_t base = static_cast<std::size_t>(dmax) + 1;
  std::vector<std::uint32_t> sums(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::size_t v = i;
    std::uint32_t s = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      s += static_cast<std::uint32_t>(v % base);
      v /= base;
    }
    sums[i] = s;
  }
  const double mid = static_cast<double>(dims) * dmax / 2.0;
  switch (order) {
    case ProcessingOrder::kMidFirst:
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return std::fabs(sums[a] - mid) <
                                std::fabs(sums[b] - mid);
                       });
      break;
    case ProcessingOrder::kTopFirst:
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return sums[a] > sums[b];
                       });
      break;
    case ProcessingOrder::kBottomFirst:
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return sums[a] < sums[b];
                       });
      break;
    case ProcessingOrder::kLexicographic:
      break;
  }
  return idx;
}

}  // namespace dd
