#include "core/determiner.h"

#include <memory>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"
#include "obs/diag/flight_recorder.h"
#include "obs/explain/recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

const char* LhsAlgorithmName(LhsAlgorithm algorithm) {
  return algorithm == LhsAlgorithm::kDa ? "DA" : "DAP";
}

const char* RhsAlgorithmName(RhsAlgorithm algorithm) {
  return algorithm == RhsAlgorithm::kPa ? "PA" : "PAP";
}

void PublishDetermineMetrics(const DaStats& stats,
                             const ProviderStats& provider_stats) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("determine.runs").Increment();
  registry.GetCounter("determine.lhs_evaluated").Add(stats.lhs_evaluated);
  registry.GetCounter("determine.rhs_lattice").Add(stats.rhs.lattice_size);
  registry.GetCounter("determine.rhs_evaluated").Add(stats.rhs.evaluated);
  registry.GetCounter("determine.rhs_pruned").Add(stats.rhs.pruned);
  registry.GetCounter("provider.lhs_evaluations")
      .Add(provider_stats.lhs_evaluations);
  registry.GetCounter("provider.xy_evaluations")
      .Add(provider_stats.xy_evaluations);
  registry.GetCounter("provider.rows_scanned").Add(provider_stats.rows_scanned);
  registry.GetGauge("determine.pruning_rate").Set(stats.PruningRate());
}

Result<DetermineResult> DetermineWithProvider(
    MeasureProvider* provider, std::size_t lhs_dims, std::size_t rhs_dims,
    int dmax, const DetermineOptions& options,
    const std::string& provider_label) {
  if (options.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  obs::TraceSpan determine_span("determine");
  Stopwatch total_timer;
  if (obs::ExplainRecorder* rec = obs::ExplainRecorder::Active()) {
    rec->SetRunLabel(StrFormat(
        "%s+%s provider=%s order=%s top_l=%zu",
        LhsAlgorithmName(options.lhs_algorithm),
        RhsAlgorithmName(options.rhs_algorithm), provider_label.c_str(),
        ProcessingOrderName(options.order), options.top_l));
  }
  const std::size_t threads =
      options.threads == 0 ? DefaultThreads() : options.threads;

  DetermineResult result;
  UtilityOptions utility = options.utility;
  if (options.prior_sample_size > 0) {
    obs::TraceSpan span("prior_estimation");
    utility.prior_mean_cq =
        EstimatePriorMeanCq(provider, lhs_dims, rhs_dims, dmax,
                            options.prior_sample_size, options.prior_seed);
  }
  result.prior_mean_cq = utility.prior_mean_cq;
  // Stats contract (see measure_provider.h): provider stats accumulate
  // across every call, so reset here to exclude prior-estimation probes
  // — result.provider_stats must reflect search work only.
  provider->ResetStats();

  DaOptions da;
  da.advanced_bound = options.lhs_algorithm == LhsAlgorithm::kDap;
  da.pa.prune = options.rhs_algorithm == RhsAlgorithm::kPap;
  da.pa.order = options.order;
  da.pa.top_l = options.top_l;
  da.top_l = options.top_l;
  da.utility = utility;
  da.threads = threads;

  Stopwatch timer;
  {
    obs::TraceSpan span("search");
    result.patterns = DetermineBestPatterns(provider, lhs_dims, rhs_dims, dmax,
                                            da, &result.stats);
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.provider_stats = provider->stats();
  PublishDetermineMetrics(result.stats, result.provider_stats);
  obs::diag::FlightRecord(obs::diag::EventType::kDetermined, "determine",
                          result.patterns.size(), provider->total());
  DD_LOG(INFO) << LhsAlgorithmName(options.lhs_algorithm) << "+"
               << RhsAlgorithmName(options.rhs_algorithm) << " determined "
               << result.patterns.size() << " pattern(s) over |M|="
               << provider->total() << " in " << total_timer.ElapsedSeconds()
               << "s (pruning rate " << result.stats.PruningRate() << ")";
  return result;
}

Result<DetermineResult> DetermineThresholds(const MatchingRelation& matching,
                                            const RuleSpec& rule,
                                            const DetermineOptions& options) {
  if (options.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  DD_ASSIGN_OR_RETURN(ResolvedRule resolved, ResolveRule(matching, rule));
  const std::size_t threads =
      options.threads == 0 ? DefaultThreads() : options.threads;
  std::unique_ptr<MeasureProvider> provider;
  {
    obs::TraceSpan span("provider_build");
    DD_ASSIGN_OR_RETURN(provider,
                        MakeMeasureProvider(matching, resolved,
                                            options.provider, threads));
  }
  return DetermineWithProvider(provider.get(), resolved.lhs.size(),
                               resolved.rhs.size(), matching.dmax(), options,
                               options.provider);
}

}  // namespace dd
