#include "core/determiner.h"

#include <memory>

#include "common/stopwatch.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"

namespace dd {

const char* LhsAlgorithmName(LhsAlgorithm algorithm) {
  return algorithm == LhsAlgorithm::kDa ? "DA" : "DAP";
}

const char* RhsAlgorithmName(RhsAlgorithm algorithm) {
  return algorithm == RhsAlgorithm::kPa ? "PA" : "PAP";
}

Result<DetermineResult> DetermineThresholds(const MatchingRelation& matching,
                                            const RuleSpec& rule,
                                            const DetermineOptions& options) {
  if (options.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  DD_ASSIGN_OR_RETURN(ResolvedRule resolved, ResolveRule(matching, rule));
  DD_ASSIGN_OR_RETURN(std::unique_ptr<MeasureProvider> provider,
                      MakeMeasureProvider(matching, resolved, options.provider,
                                          options.provider_threads));

  DetermineResult result;
  UtilityOptions utility = options.utility;
  if (options.prior_sample_size > 0) {
    utility.prior_mean_cq = EstimatePriorMeanCq(
        provider.get(), resolved.lhs.size(), resolved.rhs.size(),
        matching.dmax(), options.prior_sample_size, options.prior_seed);
  }
  result.prior_mean_cq = utility.prior_mean_cq;
  provider->ResetStats();  // Prior estimation does not count as search work.

  DaOptions da;
  da.advanced_bound = options.lhs_algorithm == LhsAlgorithm::kDap;
  da.pa.prune = options.rhs_algorithm == RhsAlgorithm::kPap;
  da.pa.order = options.order;
  da.pa.top_l = options.top_l;
  da.top_l = options.top_l;
  da.utility = utility;

  Stopwatch timer;
  result.patterns = DetermineBestPatterns(
      provider.get(), resolved.lhs.size(), resolved.rhs.size(),
      matching.dmax(), da, &result.stats);
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.provider_stats = provider->stats();
  return result;
}

}  // namespace dd
