// SIMD counting kernels over packed level columns, with runtime dispatch.
//
// The determination hot loops reduce to three primitives over the
// PackedColumn slabs of a MatchingRelation:
//
//   CountLeq     rows r in [begin, end) with level_i(r) <= bounds[i] for
//                every column view i — one fused pass answers a whole
//                ϕ[X] or ϕ[XY] pattern (ScanMeasureProvider);
//   CollectLeq   the same predicate, but appending the satisfying row
//                indices in ascending order (scan_subset SetLhs);
//   GridIndices  per-row linearized grid cell sum_i level_i(r)*strides[i]
//                (the histogram pass of GridMeasureProvider /
//                DeltaGridProvider / the streaming exact build).
//
// Each primitive has a scalar implementation and an AVX2 one (compiled
// in simd_count_avx2.cc with -mavx2 -mbmi2 -mpopcnt on that TU only);
// both produce bit-identical results — the counts are exact integers
// and CollectLeq/GridIndices outputs are order-preserving — so dispatch
// never changes determination output, only speed. The active kernel
// table is resolved once, lazily, from (in precedence order) the
// programmatic SetSimdMode (ddtool --simd), the DD_SIMD environment
// variable, and CPUID: auto picks AVX2 when the CPU has avx2+bmi2+
// popcnt, scalar otherwise; forcing avx2 on an unsupported CPU warns
// and falls back to scalar. The resolved choice is published as the
// `simd.dispatch` info metric (obs/metrics.h), so /metrics and the JSON
// run report record which kernels actually ran.
//
// Bounds are uint8 (callers clamp the int Levels first: a negative
// bound matches nothing and is the caller's fast path; a bound > 255
// clamps to 255 and matches everything, since levels are <= dmax <=
// 255). Views must stay valid for the call; begin/end are row indices
// into columns of at least `end` rows.

#ifndef DD_CORE_SIMD_COUNT_H_
#define DD_CORE_SIMD_COUNT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "matching/packed_column.h"

namespace dd::simd {

// A borrowed, read-only view of one packed level column. The data
// pointer addresses packed words: two levels per byte when packed4
// (low nibble = even row, the PackedColumn layout), one byte per level
// otherwise.
struct ColumnView {
  const std::uint8_t* data = nullptr;
  bool packed4 = false;
};

inline ColumnView View(const PackedColumn& column) {
  return ColumnView{column.data(), column.packed4()};
}

// Reads one level through a view (the scalar kernels and vector tails
// share this; it must match PackedColumn::Get exactly).
inline Level ViewLevel(const ColumnView& view, std::size_t row) {
  if (view.packed4) {
    const std::uint8_t byte = view.data[row >> 1];
    return (row & 1) ? static_cast<Level>(byte >> 4)
                     : static_cast<Level>(byte & 0x0F);
  }
  return view.data[row];
}

// Number of rows r in [begin, end) with ViewLevel(views[i], r) <=
// bounds[i] for every i in [0, num_views). num_views == 0 counts every
// row.
std::uint64_t CountLeq(const ColumnView* views, const std::uint8_t* bounds,
                       std::size_t num_views, std::size_t begin,
                       std::size_t end);

// Appends the satisfying row indices (same predicate as CountLeq) to
// *out in ascending order.
void CollectLeq(const ColumnView* views, const std::uint8_t* bounds,
                std::size_t num_views, std::size_t begin, std::size_t end,
                std::vector<std::uint32_t>* out);

// out[r - begin] = sum_i ViewLevel(views[i], r) * strides[i] for r in
// [begin, end). Strides are uint32 — grid cell counts are capped well
// below 2^32 (measure_provider.h max_cells); callers with larger grids
// must keep their scalar path.
void GridIndices(const ColumnView* views, const std::uint32_t* strides,
                 std::size_t num_views, std::size_t begin, std::size_t end,
                 std::uint32_t* out);

// ---- Dispatch control ----

enum class SimdMode {
  kAuto,    // pick AVX2 when the CPU supports it
  kAvx2,    // require AVX2 (warns + scalar fallback if unsupported)
  kScalar,  // force the scalar kernels
};

// Parses "auto" / "avx2" / "scalar"; returns false (and leaves *mode
// untouched) on anything else.
bool ParseSimdMode(std::string_view text, SimdMode* mode);

// Programmatic override (ddtool --simd). Takes precedence over the
// DD_SIMD environment variable and resets any previously resolved
// dispatch, so the next kernel call re-resolves and re-publishes the
// simd.dispatch info metric.
void SetSimdMode(SimdMode mode);
SimdMode RequestedSimdMode();

// The resolved kernel set: "avx2" or "scalar". Resolves (and publishes
// the info metric) if no kernel has run yet.
const char* ActiveSimdDispatch();

// True when this build and CPU can run the AVX2 kernels (requires
// avx2 + bmi2 + popcnt).
bool CpuSupportsAvx2();

namespace internal {

// Function-pointer table the public entry points dispatch through.
struct KernelTable {
  std::uint64_t (*count_leq)(const ColumnView*, const std::uint8_t*,
                             std::size_t, std::size_t, std::size_t);
  void (*collect_leq)(const ColumnView*, const std::uint8_t*, std::size_t,
                      std::size_t, std::size_t, std::vector<std::uint32_t>*);
  void (*grid_indices)(const ColumnView*, const std::uint32_t*, std::size_t,
                       std::size_t, std::size_t, std::uint32_t*);
};

// The always-available scalar kernels (also the reference the
// equivalence tests compare against).
extern const KernelTable kScalarKernels;

// AVX2 kernels, or nullptr when the TU was built for a non-x86 target.
// Availability of the CPU features is checked at dispatch, not here.
const KernelTable* Avx2Kernels();

// Resolved table (lazy). Hot paths call the public wrappers instead.
const KernelTable& ActiveKernels();

// Test hook: forgets both the explicit mode and the resolved table so
// the next resolution re-reads DD_SIMD.
void ResetDispatchForTest();

}  // namespace internal

}  // namespace dd::simd

#endif  // DD_CORE_SIMD_COUNT_H_
