// Shared helpers for the cumulative-grid providers (core/grid_provider
// and incr/delta_grid_provider): cell-count validation and the in-place
// multidimensional prefix sum that turns a level histogram into the
// "count of tuples with b[A] <= ϕ[A] for all A" grid the O(1) CountXY
// reads.
//
// Grid layout: dims coordinates in [0, base), coordinate d has stride
// base^d (low-order dims first — the same order the providers build
// their joint index in).

#ifndef DD_CORE_GRID_UTIL_H_
#define DD_CORE_GRID_UTIL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dd::grid {

// base^dims, or InvalidArgument when it overflows or exceeds
// `max_cells` (the providers' memory bound).
inline Result<std::size_t> GridCells(std::size_t base, std::size_t dims,
                                     std::size_t max_cells) {
  std::size_t cells = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    if (cells > max_cells / base) {
      return Status::InvalidArgument(
          "grid would exceed the max_cells memory bound");
    }
    cells *= base;
  }
  if (cells > max_cells) {
    return Status::InvalidArgument(
        "grid would exceed the max_cells memory bound");
  }
  return cells;
}

// In-place cumulative sum along every dimension: afterwards cell ϕ
// holds the sum of the original values over all cells <= ϕ
// component-wise. One pass per dimension (the standard summed-area
// construction), O(dims * cells) adds.
template <typename T>
void PrefixSumAllDims(std::vector<T>* grid, std::size_t dims,
                      std::size_t base) {
  std::vector<T>& cells = *grid;
  std::size_t stride = 1;
  for (std::size_t d = 0; d < dims; ++d) {
    // Along dimension d, cell i accumulates its predecessor i - stride
    // whenever its d-coordinate is non-zero. Visiting i in ascending
    // order makes each run of base cells a running sum.
    const std::size_t block = stride * base;
    for (std::size_t start = 0; start < cells.size(); start += block) {
      for (std::size_t i = start + stride; i < start + block; ++i) {
        cells[i] += cells[i - stride];
      }
    }
    stride = block;
  }
}

}  // namespace dd::grid

#endif  // DD_CORE_GRID_UTIL_H_
