#include "core/result_io.h"

#include "common/string_util.h"

namespace dd {

namespace {

std::string LevelsToJsonArray(const Levels& levels) {
  std::string out = "[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", levels[i]);
  }
  out += "]";
  return out;
}

std::string NamesToJsonArray(const std::vector<std::string>& names) {
  std::string out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    // Sequential appends sidestep a GCC 12 -Wrestrict false positive
    // (PR105329) on "literal" + std::string operator chains.
    out += "\"";
    out += JsonEscape(names[i]);
    out += "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string DetermineResultToJson(const DetermineResult& result,
                                  const RuleSpec& rule) {
  std::string out = "{";
  out += "\"rule\":{\"lhs\":" + NamesToJsonArray(rule.lhs) +
         ",\"rhs\":" + NamesToJsonArray(rule.rhs) + "}";
  out += StrFormat(",\"prior_mean_cq\":%.6f", result.prior_mean_cq);
  out += StrFormat(",\"elapsed_seconds\":%.6f", result.elapsed_seconds);
  out += StrFormat(",\"pruning_rate\":%.6f", result.stats.PruningRate());
  out += ",\"patterns\":[";
  for (std::size_t i = 0; i < result.patterns.size(); ++i) {
    const DeterminedPattern& p = result.patterns[i];
    if (i > 0) out += ",";
    out += "{\"lhs\":" + LevelsToJsonArray(p.pattern.lhs);
    out += ",\"rhs\":" + LevelsToJsonArray(p.pattern.rhs);
    out += StrFormat(",\"d\":%.6f", p.measures.d);
    out += StrFormat(",\"confidence\":%.6f", p.measures.confidence);
    out += StrFormat(",\"support\":%.6f", p.measures.support);
    out += StrFormat(",\"quality\":%.6f", p.measures.quality);
    out += StrFormat(",\"utility\":%.6f", p.utility);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string DetermineResultToCsv(const DetermineResult& result) {
  std::string out = "lhs,rhs,d,confidence,support,quality,utility\n";
  for (const DeterminedPattern& p : result.patterns) {
    std::string lhs = LevelsToString(p.pattern.lhs);
    std::string rhs = LevelsToString(p.pattern.rhs);
    out += StrFormat("\"%s\",\"%s\",%.6f,%.6f,%.6f,%.6f,%.6f\n", lhs.c_str(),
                     rhs.c_str(), p.measures.d, p.measures.confidence,
                     p.measures.support, p.measures.quality, p.utility);
  }
  return out;
}

}  // namespace dd
