// Post-processing of determined pattern lists. Threshold domains are
// discrete, so several neighbouring patterns often have *identical*
// statistics on the data (e.g. <7>, <8>, <9> on X when no pair has a
// distance in (6, 9]); a top-l answer list then wastes slots on
// statistically equivalent patterns. CollapseEquivalent keeps one
// canonical representative per equivalence class — the most usable one
// for violation detection: the largest ϕ[X] (tolerates the most format
// variation in the dirty data) and the smallest ϕ[Y] (tightest
// conclusion) among patterns with identical counts.

#ifndef DD_CORE_RESULT_FILTER_H_
#define DD_CORE_RESULT_FILTER_H_

#include <vector>

#include "core/da.h"

namespace dd {

// True when a and b have identical (lhs_count, xy_count) and a's
// pattern dominates b's in the canonical-preference order:
// a.lhs >= b.lhs component-wise and a.rhs <= b.rhs component-wise.
// Requires equal arities.
bool SubsumesEquivalent(const DeterminedPattern& a,
                        const DeterminedPattern& b);

// Removes every pattern subsumed by an equivalent one; preserves the
// input's relative order of survivors. Patterns of different arity are
// never compared.
std::vector<DeterminedPattern> CollapseEquivalent(
    std::vector<DeterminedPattern> patterns);

}  // namespace dd

#endif  // DD_CORE_RESULT_FILTER_H_
