// A rule X -> Y over matching-relation attributes, by name (RuleSpec)
// and resolved to column indices (ResolvedRule).

#ifndef DD_CORE_RULE_H_
#define DD_CORE_RULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "matching/matching_relation.h"

namespace dd {

struct RuleSpec {
  std::vector<std::string> lhs;  // determinant attributes X
  std::vector<std::string> rhs;  // dependent attributes Y

  // Union X ∪ Y in declaration order, for matching-relation builds.
  std::vector<std::string> AllAttributes() const {
    std::vector<std::string> all = lhs;
    all.insert(all.end(), rhs.begin(), rhs.end());
    return all;
  }
};

struct ResolvedRule {
  std::vector<std::size_t> lhs;  // column indices in the matching relation
  std::vector<std::size_t> rhs;
};

// Resolves attribute names against the matching relation; fails on
// unknown names, empty sides, or attributes listed on both sides.
Result<ResolvedRule> ResolveRule(const MatchingRelation& matching,
                                 const RuleSpec& spec);

}  // namespace dd

#endif  // DD_CORE_RULE_H_
