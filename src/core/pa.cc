#include "core/pa.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/explain/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

namespace {

// Within-LHS parallelism only pays off when one CountXY is at least
// this many row visits — grid providers (0 rows per count) and tiny
// matchings stay sequential.
constexpr std::uint64_t kMinRowsForParallelXY = 256;

// Min-heap on cq keeping the l best candidates seen so far.
struct TopL {
  explicit TopL(std::size_t l) : l_(l) {}

  // The current pruning bound: the l-th largest C·Q once l candidates
  // are held, otherwise the caller's initial bound.
  double Bound(double initial_bound) const {
    return heap_.size() == l_ ? heap_.front().cq : initial_bound;
  }

  bool Full() const { return heap_.size() == l_; }

  void Offer(RhsCandidate candidate) {
    if (heap_.size() < l_) {
      heap_.push_back(std::move(candidate));
      std::push_heap(heap_.begin(), heap_.end(), cmp_);
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), cmp_);
    heap_.back() = std::move(candidate);
    std::push_heap(heap_.begin(), heap_.end(), cmp_);
  }

  std::vector<RhsCandidate> Sorted() && {
    std::sort(heap_.begin(), heap_.end(),
              [](const RhsCandidate& a, const RhsCandidate& b) {
                return a.cq > b.cq;
              });
    return std::move(heap_);
  }

 private:
  // std::push_heap with this comparator builds a min-heap on cq.
  static bool MinHeapCmp(const RhsCandidate& a, const RhsCandidate& b) {
    return a.cq > b.cq;
  }
  bool (*cmp_)(const RhsCandidate&, const RhsCandidate&) = MinHeapCmp;
  std::size_t l_;
  std::vector<RhsCandidate> heap_;
};

RhsCandidate MakeCandidate(std::uint64_t xy_count, std::uint64_t n, Levels rhs,
                           int dmax) {
  RhsCandidate c;
  c.xy_count = xy_count;
  c.confidence =
      n > 0 ? static_cast<double>(xy_count) / static_cast<double>(n) : 0.0;
  c.quality = DependentQuality(rhs, dmax);
  c.cq = c.confidence * c.quality;
  c.rhs = std::move(rhs);
  return c;
}

RhsCandidate Evaluate(MeasureProvider* provider, Levels rhs, int dmax) {
  const std::uint64_t xy = provider->CountXY(rhs);
  return MakeCandidate(xy, provider->lhs_count(), std::move(rhs), dmax);
}

// Which bound governs decisions right now: once the heap is full the
// running top-l cutoff took over from the caller's initial bound.
obs::ExplainBound BoundKindNow(bool heap_full, bool advanced) {
  if (heap_full) return obs::ExplainBound::kTopL;
  return advanced ? obs::ExplainBound::kAdvanced : obs::ExplainBound::kInitial;
}

}  // namespace

std::vector<RhsCandidate> FindBestRhs(MeasureProvider* provider,
                                      std::size_t rhs_dims, int dmax,
                                      double initial_bound,
                                      const PaOptions& options,
                                      PaStats* stats) {
  DD_CHECK_GE(options.top_l, 1u);
  obs::TraceSpan span("rhs_search");
  CandidateLattice lattice(rhs_dims, dmax);
  const std::vector<std::uint32_t> order =
      CandidateLattice::MakeOrder(rhs_dims, dmax, options.order);
  TopL top(options.top_l);
  const Levels all_dmax(rhs_dims, dmax);
  std::size_t evaluated = 0;

  // EXPLAIN recorder (obs/explain/recorder.h): nullptr unless a
  // recording is active, in which case every candidate decision below
  // emits exactly one event. Never changes the search.
  obs::ExplainRecorder* rec = obs::ExplainRecorder::Active();
  std::uint32_t lhs_seq = 0;
  if (rec != nullptr) {
    rec->SetRhsGeometry(rhs_dims, dmax);
    rec->AddCandidates(lattice.size());
    lhs_seq = rec->BeginLhs(provider->current_lhs(), provider->lhs_count(),
                            provider->total(), initial_bound,
                            options.initial_bound_advanced);
  }

  // Within-LHS parallelism (DESIGN.md §12): compute candidate xy-counts
  // concurrently with the stats-free CountXYConcurrent, then replay
  // offers and prunes in candidate order so the heap/lattice state —
  // and therefore results, PaStats, and provider stats — are exactly
  // the sequential run's. Disabled while EXPLAIN-recording: events
  // carry sequential-state fields (rank, running bound, latency), so
  // audit runs keep the sequential loop.
  std::size_t threads = options.threads == 0 ? DefaultThreads()
                                             : options.threads;
  const bool parallel_xy =
      threads > 1 && rec == nullptr && !InParallelChunk() &&
      order.size() > 1 && provider->SupportsConcurrentCountXY() &&
      provider->RowsPerCountXY() >= kMinRowsForParallelXY;

  if (!options.prune && parallel_xy) {
    // Algorithm 1 (PA), speculative-free: every candidate is evaluated
    // regardless, so all xy-counts can be computed up front.
    std::vector<std::uint64_t> xy(order.size());
    ParallelFor("pa.xy_counts", order.size(), threads,
                [&](std::size_t, std::size_t begin, std::size_t end) {
                  for (std::size_t p = begin; p < end; ++p) {
                    xy[p] = provider->CountXYConcurrent(
                        lattice.LevelsOf(order[p]));
                  }
                });
    provider->AccountCommittedXY(order.size());
    const std::uint64_t n = provider->lhs_count();
    for (std::size_t p = 0; p < order.size(); ++p) {
      RhsCandidate c =
          MakeCandidate(xy[p], n, lattice.LevelsOf(order[p]), dmax);
      ++evaluated;
      if (c.cq > top.Bound(initial_bound)) top.Offer(std::move(c));
    }
  } else if (options.prune && parallel_xy) {
    // Algorithm 2 (PAP), windowed speculation with sequential commit:
    // collect the next window of alive candidates (their aliveness at
    // collection time equals the sequential state, since all prior
    // windows committed), count them concurrently, then commit in
    // candidate order re-checking aliveness — a candidate killed by an
    // earlier commit inside the window is discarded as speculative
    // waste. The committed decision sequence is exactly sequential for
    // ANY window size, so the adaptive sizing below (grow while whole
    // windows survive, shrink when commits invalidate most of one) only
    // trades waste against parallel utilization, never results.
    static obs::Counter& waste_counter =
        obs::MetricsRegistry::Global().GetCounter("pa.speculative_waste");
    const std::size_t max_window = threads * 4;
    std::size_t window = threads;
    const std::uint64_t n = provider->lhs_count();
    std::vector<std::size_t> win;  // positions into `order`
    std::vector<std::uint64_t> xy;
    std::uint64_t waste = 0;
    std::size_t pos = 0;
    while (pos < order.size()) {
      win.clear();
      std::size_t scan = pos;
      while (scan < order.size() && win.size() < window) {
        if (lattice.IsAlive(order[scan])) win.push_back(scan);
        ++scan;
      }
      if (win.empty()) break;
      xy.assign(win.size(), 0);
      ParallelFor("pap.speculate", win.size(), threads,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t t = begin; t < end; ++t) {
                      xy[t] = provider->CountXYConcurrent(
                          lattice.LevelsOf(order[win[t]]));
                    }
                  });
      std::uint64_t win_waste = 0;
      for (std::size_t t = 0; t < win.size(); ++t) {
        const std::uint32_t idx = order[win[t]];
        if (!lattice.IsAlive(idx)) {
          ++win_waste;  // Killed by an earlier commit in this window.
          continue;
        }
        RhsCandidate c = MakeCandidate(xy[t], n, lattice.LevelsOf(idx), dmax);
        provider->AccountCommittedXY(1);
        ++evaluated;
        lattice.Kill(idx);
        const double vmax_before = top.Bound(initial_bound);
        if (c.cq > vmax_before) top.Offer(c);
        const double vmax = top.Bound(initial_bound);
        if (vmax > 0.0) {
          lattice.Prune(all_dmax, vmax);
          const double s1_quality =
              c.confidence > 0.0 ? vmax / c.confidence : 1.0;
          lattice.Prune(c.rhs, s1_quality);
        } else if (c.confidence == 0.0) {
          lattice.Prune(c.rhs, 1.0);
        }
      }
      pos = scan;
      waste += win_waste;
      if (win_waste == 0) {
        window = std::min(window * 2, max_window);
      } else if (win_waste * 2 >= win.size()) {
        window = std::max<std::size_t>(window / 2, 2);
      }
    }
    if (waste > 0) waste_counter.Add(waste);
  } else if (!options.prune) {
    // Algorithm 1 (PA): one pass over the entire C_Y.
    for (std::uint32_t idx : order) {
      const bool timed = rec != nullptr && rec->WillSampleNextEvent();
      std::chrono::steady_clock::time_point t0;
      if (timed) t0 = std::chrono::steady_clock::now();
      RhsCandidate c = Evaluate(provider, lattice.LevelsOf(idx), dmax);
      ++evaluated;
      const bool offered = c.cq > top.Bound(initial_bound);
      if (rec != nullptr) {
        const double eval_ns =
            timed ? std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count()
                  : 0.0;
        rec->RecordEvaluated(
            lhs_seq, idx, static_cast<std::uint32_t>(evaluated - 1),
            c.xy_count, c.confidence, c.quality, c.cq,
            top.Bound(initial_bound),
            BoundKindNow(top.Full(), options.initial_bound_advanced), offered,
            eval_ns);
      }
      if (offered) top.Offer(std::move(c));
    }
  } else {
    // Algorithm 2 (PAP).
    for (std::uint32_t idx : order) {
      if (!lattice.IsAlive(idx)) continue;  // Pruned by S0/S1 earlier.
      const bool timed = rec != nullptr && rec->WillSampleNextEvent();
      std::chrono::steady_clock::time_point t0;
      if (timed) t0 = std::chrono::steady_clock::now();
      RhsCandidate c = Evaluate(provider, lattice.LevelsOf(idx), dmax);
      ++evaluated;
      lattice.Kill(idx);  // Processed; Prune below must not double-count.
      const double vmax_before = top.Bound(initial_bound);
      const bool offered = c.cq > vmax_before;
      const std::uint32_t rank = static_cast<std::uint32_t>(evaluated - 1);
      if (rec != nullptr) {
        const double eval_ns =
            timed ? std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count()
                  : 0.0;
        rec->RecordEvaluated(
            lhs_seq, idx, rank, c.xy_count, c.confidence, c.quality, c.cq,
            vmax_before,
            BoundKindNow(top.Full(), options.initial_bound_advanced), offered,
            eval_ns);
      }
      if (offered) top.Offer(c);
      const double vmax = top.Bound(initial_bound);
      const obs::ExplainBound bound_kind =
          BoundKindNow(top.Full(), options.initial_bound_advanced);
      if (vmax > 0.0) {
        // S0 (Proposition 1): every candidate is dominated by the
        // all-dmax pattern, so prune(ϕ0, Vmax) kills all with Q <= Vmax.
        if (rec != nullptr) {
          lattice.Prune(all_dmax, vmax, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedS0, vmax,
                              bound_kind);
          });
        } else {
          lattice.Prune(all_dmax, vmax);
        }
        // S1 (Proposition 2): candidates dominated by the current ϕi
        // with Q <= Vmax / C(ϕi) cannot beat Vmax. C(ϕi) == 0 prunes the
        // whole dominated sub-box (their confidence is 0 too).
        const double s1_quality =
            c.confidence > 0.0 ? vmax / c.confidence : 1.0;
        if (rec != nullptr) {
          lattice.Prune(c.rhs, s1_quality, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedS1, vmax,
                              bound_kind);
          });
        } else {
          lattice.Prune(c.rhs, s1_quality);
        }
      } else if (c.confidence == 0.0) {
        // Everything dominated by a zero-confidence candidate has C = 0,
        // hence C·Q = 0, and can never strictly exceed a bound >= 0.
        if (rec != nullptr) {
          lattice.Prune(c.rhs, 1.0, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedZeroConf, 0.0,
                              bound_kind);
          });
        } else {
          lattice.Prune(c.rhs, 1.0);
        }
      }
    }
  }

  // Stats contract: accumulate into *stats, never reset (see pa.h). The
  // registry flush below is one relaxed add per FindBestRhs call (one
  // per evaluated LHS), far off the per-candidate hot path.
  if (stats != nullptr) {
    stats->lattice_size += lattice.size();
    stats->evaluated += evaluated;
    stats->pruned += lattice.size() - evaluated;
  }
  static obs::Histogram& evaluated_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "pa.evaluated_per_lhs", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
  evaluated_hist.Observe(static_cast<double>(evaluated));
  return std::move(top).Sorted();
}

}  // namespace dd
