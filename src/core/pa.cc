#include "core/pa.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/explain/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

namespace {

// Min-heap on cq keeping the l best candidates seen so far.
struct TopL {
  explicit TopL(std::size_t l) : l_(l) {}

  // The current pruning bound: the l-th largest C·Q once l candidates
  // are held, otherwise the caller's initial bound.
  double Bound(double initial_bound) const {
    return heap_.size() == l_ ? heap_.front().cq : initial_bound;
  }

  bool Full() const { return heap_.size() == l_; }

  void Offer(RhsCandidate candidate) {
    if (heap_.size() < l_) {
      heap_.push_back(std::move(candidate));
      std::push_heap(heap_.begin(), heap_.end(), cmp_);
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), cmp_);
    heap_.back() = std::move(candidate);
    std::push_heap(heap_.begin(), heap_.end(), cmp_);
  }

  std::vector<RhsCandidate> Sorted() && {
    std::sort(heap_.begin(), heap_.end(),
              [](const RhsCandidate& a, const RhsCandidate& b) {
                return a.cq > b.cq;
              });
    return std::move(heap_);
  }

 private:
  // std::push_heap with this comparator builds a min-heap on cq.
  static bool MinHeapCmp(const RhsCandidate& a, const RhsCandidate& b) {
    return a.cq > b.cq;
  }
  bool (*cmp_)(const RhsCandidate&, const RhsCandidate&) = MinHeapCmp;
  std::size_t l_;
  std::vector<RhsCandidate> heap_;
};

RhsCandidate Evaluate(MeasureProvider* provider, Levels rhs, int dmax) {
  RhsCandidate c;
  c.xy_count = provider->CountXY(rhs);
  const std::uint64_t n = provider->lhs_count();
  c.confidence =
      n > 0 ? static_cast<double>(c.xy_count) / static_cast<double>(n) : 0.0;
  c.quality = DependentQuality(rhs, dmax);
  c.cq = c.confidence * c.quality;
  c.rhs = std::move(rhs);
  return c;
}

// Which bound governs decisions right now: once the heap is full the
// running top-l cutoff took over from the caller's initial bound.
obs::ExplainBound BoundKindNow(bool heap_full, bool advanced) {
  if (heap_full) return obs::ExplainBound::kTopL;
  return advanced ? obs::ExplainBound::kAdvanced : obs::ExplainBound::kInitial;
}

}  // namespace

std::vector<RhsCandidate> FindBestRhs(MeasureProvider* provider,
                                      std::size_t rhs_dims, int dmax,
                                      double initial_bound,
                                      const PaOptions& options,
                                      PaStats* stats) {
  DD_CHECK_GE(options.top_l, 1u);
  obs::TraceSpan span("rhs_search");
  CandidateLattice lattice(rhs_dims, dmax);
  const std::vector<std::uint32_t> order =
      CandidateLattice::MakeOrder(rhs_dims, dmax, options.order);
  TopL top(options.top_l);
  const Levels all_dmax(rhs_dims, dmax);
  std::size_t evaluated = 0;

  // EXPLAIN recorder (obs/explain/recorder.h): nullptr unless a
  // recording is active, in which case every candidate decision below
  // emits exactly one event. Never changes the search.
  obs::ExplainRecorder* rec = obs::ExplainRecorder::Active();
  std::uint32_t lhs_seq = 0;
  if (rec != nullptr) {
    rec->SetRhsGeometry(rhs_dims, dmax);
    rec->AddCandidates(lattice.size());
    lhs_seq = rec->BeginLhs(provider->current_lhs(), provider->lhs_count(),
                            provider->total(), initial_bound,
                            options.initial_bound_advanced);
  }

  if (!options.prune) {
    // Algorithm 1 (PA): one pass over the entire C_Y.
    for (std::uint32_t idx : order) {
      const bool timed = rec != nullptr && rec->WillSampleNextEvent();
      std::chrono::steady_clock::time_point t0;
      if (timed) t0 = std::chrono::steady_clock::now();
      RhsCandidate c = Evaluate(provider, lattice.LevelsOf(idx), dmax);
      ++evaluated;
      const bool offered = c.cq > top.Bound(initial_bound);
      if (rec != nullptr) {
        const double eval_ns =
            timed ? std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count()
                  : 0.0;
        rec->RecordEvaluated(
            lhs_seq, idx, static_cast<std::uint32_t>(evaluated - 1),
            c.xy_count, c.confidence, c.quality, c.cq,
            top.Bound(initial_bound),
            BoundKindNow(top.Full(), options.initial_bound_advanced), offered,
            eval_ns);
      }
      if (offered) top.Offer(std::move(c));
    }
  } else {
    // Algorithm 2 (PAP).
    for (std::uint32_t idx : order) {
      if (!lattice.IsAlive(idx)) continue;  // Pruned by S0/S1 earlier.
      const bool timed = rec != nullptr && rec->WillSampleNextEvent();
      std::chrono::steady_clock::time_point t0;
      if (timed) t0 = std::chrono::steady_clock::now();
      RhsCandidate c = Evaluate(provider, lattice.LevelsOf(idx), dmax);
      ++evaluated;
      lattice.Kill(idx);  // Processed; Prune below must not double-count.
      const double vmax_before = top.Bound(initial_bound);
      const bool offered = c.cq > vmax_before;
      const std::uint32_t rank = static_cast<std::uint32_t>(evaluated - 1);
      if (rec != nullptr) {
        const double eval_ns =
            timed ? std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count()
                  : 0.0;
        rec->RecordEvaluated(
            lhs_seq, idx, rank, c.xy_count, c.confidence, c.quality, c.cq,
            vmax_before,
            BoundKindNow(top.Full(), options.initial_bound_advanced), offered,
            eval_ns);
      }
      if (offered) top.Offer(c);
      const double vmax = top.Bound(initial_bound);
      const obs::ExplainBound bound_kind =
          BoundKindNow(top.Full(), options.initial_bound_advanced);
      if (vmax > 0.0) {
        // S0 (Proposition 1): every candidate is dominated by the
        // all-dmax pattern, so prune(ϕ0, Vmax) kills all with Q <= Vmax.
        if (rec != nullptr) {
          lattice.Prune(all_dmax, vmax, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedS0, vmax,
                              bound_kind);
          });
        } else {
          lattice.Prune(all_dmax, vmax);
        }
        // S1 (Proposition 2): candidates dominated by the current ϕi
        // with Q <= Vmax / C(ϕi) cannot beat Vmax. C(ϕi) == 0 prunes the
        // whole dominated sub-box (their confidence is 0 too).
        const double s1_quality =
            c.confidence > 0.0 ? vmax / c.confidence : 1.0;
        if (rec != nullptr) {
          lattice.Prune(c.rhs, s1_quality, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedS1, vmax,
                              bound_kind);
          });
        } else {
          lattice.Prune(c.rhs, s1_quality);
        }
      } else if (c.confidence == 0.0) {
        // Everything dominated by a zero-confidence candidate has C = 0,
        // hence C·Q = 0, and can never strictly exceed a bound >= 0.
        if (rec != nullptr) {
          lattice.Prune(c.rhs, 1.0, [&](std::size_t killed) {
            rec->RecordPruned(lhs_seq, static_cast<std::uint32_t>(killed),
                              rank, obs::ExplainOutcome::kPrunedZeroConf, 0.0,
                              bound_kind);
          });
        } else {
          lattice.Prune(c.rhs, 1.0);
        }
      }
    }
  }

  // Stats contract: accumulate into *stats, never reset (see pa.h). The
  // registry flush below is one relaxed add per FindBestRhs call (one
  // per evaluated LHS), far off the per-candidate hot path.
  if (stats != nullptr) {
    stats->lattice_size += lattice.size();
    stats->evaluated += evaluated;
    stats->pruned += lattice.size() - evaluated;
  }
  static obs::Histogram& evaluated_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "pa.evaluated_per_lhs", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
  evaluated_hist.Observe(static_cast<double>(evaluated));
  return std::move(top).Sorted();
}

}  // namespace dd
