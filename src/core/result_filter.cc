#include "core/result_filter.h"

namespace dd {

bool SubsumesEquivalent(const DeterminedPattern& a,
                        const DeterminedPattern& b) {
  if (a.pattern.lhs.size() != b.pattern.lhs.size() ||
      a.pattern.rhs.size() != b.pattern.rhs.size()) {
    return false;
  }
  if (a.measures.lhs_count != b.measures.lhs_count ||
      a.measures.xy_count != b.measures.xy_count) {
    return false;
  }
  return Dominates(a.pattern.lhs, b.pattern.lhs) &&
         Dominates(b.pattern.rhs, a.pattern.rhs);
}

std::vector<DeterminedPattern> CollapseEquivalent(
    std::vector<DeterminedPattern> patterns) {
  std::vector<DeterminedPattern> kept;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < patterns.size() && !subsumed; ++j) {
      if (i == j) continue;
      if (!SubsumesEquivalent(patterns[j], patterns[i])) continue;
      // Mutually subsuming patterns are identical in every compared
      // respect; keep the earliest.
      if (SubsumesEquivalent(patterns[i], patterns[j]) && i < j) continue;
      subsumed = true;
    }
    if (!subsumed) kept.push_back(patterns[i]);
  }
  return kept;
}

}  // namespace dd
