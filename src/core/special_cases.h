// Special cases of DDs discussed in the paper's related work, exposed
// as first-class determination entry points:
//
//  * Metric functional dependencies (MFDs, Koudas et al. ICDE 2009):
//    equality on the determinant side X, metric thresholds on the
//    dependent side Y. Determination fixes ϕ[X] = <0,...,0> and searches
//    C_Y only — "the threshold determination techniques proposed in
//    this study can be directly applied to MFDs".
//
//  * Matching dependencies (MDs, Fan et al. PVLDB 2009; discovery in
//    Song & Chen CIKM 2009): metric thresholds on X with (near-)
//    identification on Y. Determination fixes ϕ[Y] = <0,...,0> and
//    searches C_X for the thresholds with the maximum expected utility.

#ifndef DD_CORE_SPECIAL_CASES_H_
#define DD_CORE_SPECIAL_CASES_H_

#include "common/result.h"
#include "core/determiner.h"

namespace dd {

struct SpecialCaseOptions {
  // PAP pruning and order for the searched side.
  bool prune = true;
  ProcessingOrder order = ProcessingOrder::kMidFirst;
  std::size_t top_l = 1;
  std::string provider = "scan";
  // Concurrency (0 = DefaultThreads()); see DetermineOptions::threads.
  std::size_t threads = 0;
  std::size_t prior_sample_size = 200;
  std::uint64_t prior_seed = 99;
  UtilityOptions utility;
};

// MFD determination: ϕ[X] is pinned to equality; returns the top-l
// dependent-side patterns by expected utility.
Result<DetermineResult> DetermineMfdThresholds(
    const MatchingRelation& matching, const RuleSpec& rule,
    const SpecialCaseOptions& options);

// MD determination: ϕ[Y] is pinned to equality (exact identification);
// returns the top-l determinant-side patterns by expected utility.
Result<DetermineResult> DetermineMdThresholds(
    const MatchingRelation& matching, const RuleSpec& rule,
    const SpecialCaseOptions& options);

}  // namespace dd

#endif  // DD_CORE_SPECIAL_CASES_H_
