// Serialization of determination results for pipeline integration:
// compact JSON (hand-rolled, no dependencies) and CSV rows.

#ifndef DD_CORE_RESULT_IO_H_
#define DD_CORE_RESULT_IO_H_

#include <string>

#include "core/determiner.h"
#include "core/rule.h"

namespace dd {

// Escapes a string for inclusion in a JSON document (quotes, control
// characters, backslashes).
std::string JsonEscape(const std::string& text);

// {"rule": {...}, "prior_mean_cq": ..., "elapsed_seconds": ...,
//  "pruning_rate": ..., "patterns": [{"lhs": [...], "rhs": [...],
//  "d": ..., "confidence": ..., "support": ..., "quality": ...,
//  "utility": ...}, ...]}
std::string DetermineResultToJson(const DetermineResult& result,
                                  const RuleSpec& rule);

// CSV with one row per pattern and a header:
// lhs,rhs,d,confidence,support,quality,utility
std::string DetermineResultToCsv(const DetermineResult& result);

}  // namespace dd

#endif  // DD_CORE_RESULT_IO_H_
