#include "core/special_cases.h"

#include <algorithm>
#include <memory>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/candidate_lattice.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"
#include "core/pa.h"
#include "obs/explain/recorder.h"
#include "obs/trace.h"

namespace dd {

namespace {

Result<DetermineResult> DetermineWithPinnedSide(
    const MatchingRelation& matching, const RuleSpec& rule,
    const SpecialCaseOptions& options, bool pin_lhs) {
  if (options.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  obs::TraceSpan determine_span("determine");
  obs::ExplainRecorder* rec = obs::ExplainRecorder::Active();
  if (rec != nullptr) {
    rec->SetRunLabel(pin_lhs ? "MFD determination" : "MD determination");
  }
  DD_ASSIGN_OR_RETURN(ResolvedRule resolved, ResolveRule(matching, rule));
  const std::size_t threads =
      options.threads == 0 ? DefaultThreads() : options.threads;
  std::unique_ptr<MeasureProvider> provider;
  {
    obs::TraceSpan span("provider_build");
    DD_ASSIGN_OR_RETURN(provider, MakeMeasureProvider(matching, resolved,
                                                      options.provider,
                                                      threads));
  }
  const int dmax = matching.dmax();

  DetermineResult result;
  UtilityOptions utility = options.utility;
  if (options.prior_sample_size > 0) {
    obs::TraceSpan span("prior_estimation");
    utility.prior_mean_cq = EstimatePriorMeanCq(
        provider.get(), resolved.lhs.size(), resolved.rhs.size(), dmax,
        options.prior_sample_size, options.prior_seed);
  }
  result.prior_mean_cq = utility.prior_mean_cq;
  // Stats contract (measure_provider.h): reset so the reported stats
  // cover search work only, mirroring DetermineThresholds.
  provider->ResetStats();
  Stopwatch timer;
  obs::TraceSpan search_span("search");

  PaOptions pa;
  pa.prune = options.prune;
  pa.order = options.order;
  pa.top_l = options.top_l;
  pa.threads = threads;

  if (pin_lhs) {
    // MFD: ϕ[X] = equality; one PAP/PA pass over C_Y.
    const Levels lhs(resolved.lhs.size(), 0);
    provider->SetLhs(lhs);
    const std::uint64_t n = provider->lhs_count();
    PaStats pa_stats;
    std::vector<RhsCandidate> best = FindBestRhs(
        provider.get(), resolved.rhs.size(), dmax, 0.0, pa, &pa_stats);
    for (RhsCandidate& c : best) {
      DeterminedPattern p;
      p.pattern.lhs = lhs;
      p.pattern.rhs = std::move(c.rhs);
      p.measures = MeasuresFromCounts(provider->total(), n, c.xy_count,
                                      p.pattern.rhs, dmax);
      p.utility = ExpectedUtility(provider->total(), n,
                                  p.measures.confidence, p.measures.quality,
                                  utility);
      result.patterns.push_back(std::move(p));
    }
    // Stats contract: accumulate field-wise, matching DetermineBestPatterns.
    result.stats.lhs_total += 1;
    result.stats.lhs_evaluated += 1;
    result.stats.rhs.lattice_size += pa_stats.lattice_size;
    result.stats.rhs.evaluated += pa_stats.evaluated;
    result.stats.rhs.pruned += pa_stats.pruned;
  } else {
    // MD: ϕ[Y] = equality; evaluate every ϕ[X] against the fixed RHS.
    // Q(<0,...,0>) = 1, so the expected utility ranks LHS candidates by
    // their (D, C) trade-off alone.
    const Levels rhs(resolved.rhs.size(), 0);
    if (rec != nullptr) rec->SetRhsGeometry(resolved.rhs.size(), dmax);
    CandidateLattice lhs_lattice(resolved.lhs.size(), dmax);
    for (std::size_t idx = 0; idx < lhs_lattice.size(); ++idx) {
      const Levels lhs = lhs_lattice.LevelsOf(idx);
      provider->SetLhs(lhs);
      const std::uint64_t n = provider->lhs_count();
      const std::uint64_t xy = provider->CountXY(rhs);
      DeterminedPattern p;
      p.pattern.lhs = lhs;
      p.pattern.rhs = rhs;
      p.measures = MeasuresFromCounts(provider->total(), n, xy, rhs, dmax);
      p.utility = ExpectedUtility(provider->total(), n,
                                  p.measures.confidence, p.measures.quality,
                                  utility);
      if (rec != nullptr) {
        // The MD search has one RHS candidate (the pinned equality
        // pattern) per LHS — mirror that in the waterfall so the MD
        // stats contract (rhs.lattice_size grows by |C_X|) still
        // satisfies the accounting identity.
        rec->AddCandidates(1);
        const std::uint32_t lhs_seq =
            rec->BeginLhs(lhs, n, provider->total(), 0.0, false);
        rec->RecordEvaluated(lhs_seq, /*rhs_index=*/0, /*rank=*/0, xy,
                             p.measures.confidence, p.measures.quality,
                             p.measures.confidence * p.measures.quality,
                             /*bound=*/0.0, obs::ExplainBound::kInitial,
                             /*offered=*/false, /*eval_ns=*/0.0);
      }
      result.patterns.push_back(std::move(p));
      ++result.stats.lhs_evaluated;
    }
    // Stats contract: accumulate field-wise, matching DetermineBestPatterns.
    result.stats.lhs_total += lhs_lattice.size();
    result.stats.rhs.lattice_size += lhs_lattice.size();
    result.stats.rhs.evaluated += lhs_lattice.size();
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const DeterminedPattern& a, const DeterminedPattern& b) {
                return a.utility > b.utility;
              });
    if (result.patterns.size() > options.top_l) {
      result.patterns.resize(options.top_l);
    }
    // Drop useless all-zero-utility answers for symmetry with the DD
    // determiner's "strictly exceeds the bound" convention.
    while (!result.patterns.empty() && result.patterns.back().utility <= 0.0) {
      result.patterns.pop_back();
    }
  }

  result.elapsed_seconds = timer.ElapsedSeconds();
  result.provider_stats = provider->stats();
  PublishDetermineMetrics(result.stats, result.provider_stats);
  return result;
}

}  // namespace

Result<DetermineResult> DetermineMfdThresholds(
    const MatchingRelation& matching, const RuleSpec& rule,
    const SpecialCaseOptions& options) {
  return DetermineWithPinnedSide(matching, rule, options, /*pin_lhs=*/true);
}

Result<DetermineResult> DetermineMdThresholds(
    const MatchingRelation& matching, const RuleSpec& rule,
    const SpecialCaseOptions& options) {
  return DetermineWithPinnedSide(matching, rule, options, /*pin_lhs=*/false);
}

}  // namespace dd
