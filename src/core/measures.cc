#include "core/measures.h"

namespace dd {

Measures MeasuresFromCounts(std::uint64_t total, std::uint64_t lhs_count,
                            std::uint64_t xy_count, const Levels& rhs,
                            int dmax) {
  Measures m;
  m.total = total;
  m.lhs_count = lhs_count;
  m.xy_count = xy_count;
  m.d = total > 0 ? static_cast<double>(lhs_count) / static_cast<double>(total)
                  : 0.0;
  m.confidence = lhs_count > 0 ? static_cast<double>(xy_count) /
                                     static_cast<double>(lhs_count)
                               : 0.0;
  m.support = total > 0
                  ? static_cast<double>(xy_count) / static_cast<double>(total)
                  : 0.0;
  m.quality = DependentQuality(rhs, dmax);
  return m;
}

Measures ComputeMeasures(MeasureProvider* provider, const Pattern& pattern,
                         int dmax) {
  provider->SetLhs(pattern.lhs);
  const std::uint64_t lhs_count = provider->lhs_count();
  const std::uint64_t xy_count = provider->CountXY(pattern.rhs);
  return MeasuresFromCounts(provider->total(), lhs_count, xy_count,
                            pattern.rhs, dmax);
}

}  // namespace dd
