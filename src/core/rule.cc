#include "core/rule.h"

#include <algorithm>

namespace dd {

Result<ResolvedRule> ResolveRule(const MatchingRelation& matching,
                                 const RuleSpec& spec) {
  if (spec.lhs.empty() || spec.rhs.empty()) {
    return Status::InvalidArgument("rule must have non-empty X and Y");
  }
  for (const auto& name : spec.lhs) {
    if (std::find(spec.rhs.begin(), spec.rhs.end(), name) != spec.rhs.end()) {
      return Status::InvalidArgument("attribute on both sides of rule: " +
                                     name);
    }
  }
  ResolvedRule rule;
  for (const auto& name : spec.lhs) {
    DD_ASSIGN_OR_RETURN(std::size_t idx, matching.IndexOf(name));
    rule.lhs.push_back(idx);
  }
  for (const auto& name : spec.rhs) {
    DD_ASSIGN_OR_RETURN(std::size_t idx, matching.IndexOf(name));
    rule.rhs.push_back(idx);
  }
  return rule;
}

}  // namespace dd
