// Determination for the dependent attributes Y (paper §V-A): given a
// fixed ϕ[X], find the ϕ[Y] ∈ C_Y maximizing C(ϕ)·Q(ϕ) — by Theorem 2
// equivalent to maximizing the expected utility Ū(ϕ) at fixed D(ϕ).
//
// FindBestRhs implements both the exhaustive Algorithm 1 (PA) and the
// pruning Algorithm 2 (PAP), which skips the candidate sets
//   S0 = { ϕk : Q(ϕk) <= Vmax }                      (Proposition 1)
//   S1 = { ϕk : ϕi ⪰ ϕk, Q(ϕk) <= Vmax / C(ϕi) }     (Proposition 2)
// without computing their confidence, and supports the paper's top-l
// extension (Vmax then tracks the l-th largest C·Q).

#ifndef DD_CORE_PA_H_
#define DD_CORE_PA_H_

#include <cstdint>
#include <vector>

#include "core/candidate_lattice.h"
#include "core/measure_provider.h"
#include "core/pattern.h"

namespace dd {

// One evaluated ϕ[Y] candidate with its statistics under the provider's
// current ϕ[X].
struct RhsCandidate {
  Levels rhs;
  std::uint64_t xy_count = 0;
  double confidence = 0.0;
  double quality = 0.0;
  double cq = 0.0;  // C(ϕ)·Q(ϕ), the Theorem 2 objective
};

struct PaOptions {
  // false: Algorithm 1 (PA, exhaustive). true: Algorithm 2 (PAP).
  bool prune = false;
  // Processing order of C_Y. The paper prefers mid-first when the
  // initial bound is 0 (DA) and top-first under an advanced bound (DAP).
  ProcessingOrder order = ProcessingOrder::kMidFirst;
  // Return the l best candidates (paper §V "Algorithm Extensions").
  std::size_t top_l = 1;
  // Provenance of `initial_bound` for the EXPLAIN recorder: true when
  // the caller seeded it from DAP's Theorem-3 advanced bound (da.cc).
  // Observational only — does not change the search.
  bool initial_bound_advanced = false;

  // Within-LHS concurrency (0 = DefaultThreads()). Candidate xy-counts
  // are computed concurrently but offers/prunes replay in candidate
  // order, so results, PaStats, and provider stats are bit-identical to
  // the sequential search at any thread count. Engages only when the
  // provider supports concurrent counting, each count is expensive
  // enough to pay for dispatch, and no EXPLAIN recording is active
  // (audit runs stay sequential so event order is reproducible).
  std::size_t threads = 0;
};

struct PaStats {
  std::size_t lattice_size = 0;  // |C_Y|
  std::size_t evaluated = 0;     // candidates whose C(ϕ) was computed
  std::size_t pruned = 0;        // candidates skipped (lattice_size - evaluated)
};

// Returns up to `top_l` candidates whose C·Q strictly exceeds
// `initial_bound`, sorted by descending C·Q. An empty result means every
// candidate was bounded out (DAP Algorithm 4, line 6: "if ϕi[Y]
// exists").
//
// Stats contract: `stats`, when non-null, is ACCUMULATED into (never
// reset) so one PaStats can aggregate a whole C_X sweep; callers wanting
// per-call numbers pass a freshly zero-initialized struct. Same
// convention as DetermineBestPatterns (da.h) and the provider stats
// (core/measure_provider.h).
std::vector<RhsCandidate> FindBestRhs(MeasureProvider* provider,
                                      std::size_t rhs_dims, int dmax,
                                      double initial_bound,
                                      const PaOptions& options,
                                      PaStats* stats);

}  // namespace dd

#endif  // DD_CORE_PA_H_
