#include "core/pattern.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace dd {

bool Dominates(const Levels& a, const Levels& b) {
  DD_CHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
  }
  return true;
}

long LevelSum(const Levels& levels) {
  long sum = 0;
  for (int v : levels) sum += v;
  return sum;
}

double DependentQuality(const Levels& rhs, int dmax) {
  DD_CHECK_GT(dmax, 0);
  if (rhs.empty()) return 1.0;
  const double denom = static_cast<double>(rhs.size()) * dmax;
  return 1.0 - static_cast<double>(LevelSum(rhs)) / denom;
}

std::string LevelsToString(const Levels& levels) {
  std::string out = "<";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%d", levels[i]);
  }
  out += ">";
  return out;
}

std::string PatternToString(const Pattern& pattern) {
  // Sequential appends sidestep a GCC 12 -Wrestrict false positive
  // (PR105329) on "literal" + std::string operator chains.
  std::string out = "(";
  out += LevelsToString(pattern.lhs);
  out += " -> ";
  out += LevelsToString(pattern.rhs);
  out += ")";
  return out;
}

}  // namespace dd
