#include "core/skyline.h"

namespace dd {

bool ParetoDominates(const Measures& a, const Measures& b) {
  if (a.support < b.support || a.confidence < b.confidence ||
      a.quality < b.quality) {
    return false;
  }
  return a.support > b.support || a.confidence > b.confidence ||
         a.quality > b.quality;
}

std::vector<DeterminedPattern> ParetoFront(
    const std::vector<DeterminedPattern>& patterns) {
  std::vector<DeterminedPattern> front;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < patterns.size() && !dominated; ++j) {
      if (i != j && ParetoDominates(patterns[j].measures,
                                    patterns[i].measures)) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(patterns[i]);
  }
  return front;
}

bool IsParetoOptimalAmong(const DeterminedPattern& pattern,
                          const std::vector<DeterminedPattern>& candidates) {
  for (const auto& candidate : candidates) {
    if (ParetoDominates(candidate.measures, pattern.measures)) return false;
  }
  return true;
}

}  // namespace dd
