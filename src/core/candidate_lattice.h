// The candidate space C_Y (or C_X): the full lattice of threshold-level
// combinations {0..dmax}^dims with the dominance partial order of paper
// Definition 2, an alive-bitmap for pruning, and the processing orders
// studied in the paper (mid-first, top-first) plus two extras.

#ifndef DD_CORE_CANDIDATE_LATTICE_H_
#define DD_CORE_CANDIDATE_LATTICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pattern.h"

namespace dd {

// Order in which candidates of C_Y are visited (paper §V):
//   kMidFirst    — middle level-sums first; finds a large Vmax early when
//                  the initial bound is 0 (preferred for DA+PAP).
//   kTopFirst    — largest level-sums first; top patterns dominate the
//                  most candidates, maximizing prune() reach (preferred
//                  for DAP+PAP, which starts with a bound > 0).
//   kBottomFirst — smallest level-sums first (completes the study).
//   kLexicographic — plain index order (baseline).
enum class ProcessingOrder {
  kMidFirst,
  kTopFirst,
  kBottomFirst,
  kLexicographic,
};

const char* ProcessingOrderName(ProcessingOrder order);

// Dense lattice over (dmax+1)^dims cells. Cells are addressed by index
// (mixed-radix encoding, dimension 0 least significant) or by Levels.
class CandidateLattice {
 public:
  CandidateLattice(std::size_t dims, int dmax);

  std::size_t dims() const { return dims_; }
  int dmax() const { return dmax_; }
  std::size_t size() const { return alive_.size(); }
  std::size_t alive_count() const { return alive_count_; }

  bool IsAlive(std::size_t idx) const { return alive_[idx] != 0; }

  // Kills one cell (idempotent). Returns true when it was alive.
  bool Kill(std::size_t idx);

  // Decodes a cell index into threshold levels.
  Levels LevelsOf(std::size_t idx) const;

  // Encodes threshold levels into a cell index.
  std::size_t IndexOf(const Levels& levels) const;

  // The paper's prune(ϕ, q): kills every alive cell dominated by
  // `dominator` (component-wise <=) whose dependent quality is <= q.
  // Returns the number of cells killed. Passing the all-dmax pattern as
  // `dominator` implements the S0 prune (Proposition 1); the current
  // candidate implements S1 (Proposition 2).
  std::size_t Prune(const Levels& dominator, double max_quality);

  // Same, invoking `on_kill(cell_index)` for every cell this call kills
  // (used by the EXPLAIN recorder to attribute each pruned candidate to
  // the prune that removed it). An empty callback behaves like the
  // two-argument overload.
  std::size_t Prune(const Levels& dominator, double max_quality,
                    const std::function<void(std::size_t)>& on_kill);

  // Visit order for the whole lattice under `order` (cell indices).
  static std::vector<std::uint32_t> MakeOrder(std::size_t dims, int dmax,
                                              ProcessingOrder order);

 private:
  std::size_t dims_;
  int dmax_;
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_;
};

}  // namespace dd

#endif  // DD_CORE_CANDIDATE_LATTICE_H_
