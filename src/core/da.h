// Determination for the determinant attributes X (paper §V-B): evaluate
// every ϕ[X] ∈ C_X, find its best ϕ[Y] via PA/PAP, and keep the pattern
// with the maximum expected utility Ū(ϕ).
//
// DetermineBestPatterns implements both Algorithm 3 (DA — every LHS is
// explored with an initial bound of 0) and Algorithm 4 (DAP — C_X is
// processed in descending D(ϕ) order and each PAP call is seeded with
// the advanced bound of Theorem 3 / formula 6:
//   Vmax = 1 - (D(ϕmax)/D(ϕi)) · (1 - C(ϕmax)Q(ϕmax))
// computed from the current l-th best answer ϕmax).

#ifndef DD_CORE_DA_H_
#define DD_CORE_DA_H_

#include <cstdint>
#include <vector>

#include "core/expected_utility.h"
#include "core/measures.h"
#include "core/pa.h"
#include "core/pattern.h"

namespace dd {

// A fully determined pattern with all statistics and its utility.
struct DeterminedPattern {
  Pattern pattern;
  Measures measures;
  double utility = 0.0;
};

struct DaOptions {
  // false: Algorithm 3 (DA). true: Algorithm 4 (DAP).
  bool advanced_bound = false;
  // Configuration of the per-LHS search (PA vs PAP and the C_Y order).
  PaOptions pa;
  // Return the l patterns with the largest expected utilities.
  std::size_t top_l = 1;
  UtilityOptions utility;

  // Concurrency (0 = DefaultThreads()). Under DA the per-LHS searches
  // are independent (every initial bound is 0), so C_X is partitioned
  // across provider clones and the per-LHS answers are merged into the
  // top-l heap in sequential LHS order — results and all stats are
  // bit-identical to the sequential run. Under DAP only the ordering
  // pass parallelizes; the main loop stays sequential because the
  // Theorem-3 bound feeds back through the heap (a stale bound would
  // change DaStats). EXPLAIN-recorded runs stay sequential end-to-end.
  std::size_t threads = 0;
};

struct DaStats {
  std::size_t lhs_total = 0;      // |C_X|
  std::size_t lhs_evaluated = 0;  // LHS candidates processed
  PaStats rhs;                    // aggregated over all PA/PAP calls

  // Fraction of C_X × C_Y candidates that avoided confidence
  // computation (the paper's Figure 4 pruning rate).
  double PruningRate() const {
    if (rhs.lattice_size == 0) return 0.0;
    return static_cast<double>(rhs.pruned) /
           static_cast<double>(rhs.lattice_size);
  }
};

// Runs the full determination over C_X × C_Y. `top_l` must match
// options.pa.top_l for consistent bounds (the facade enforces this).
// Results are sorted by descending utility; fewer than top_l entries are
// returned when the remaining candidates cannot strictly improve on the
// bound (e.g. all-zero confidence rules).
//
// Stats contract: `stats`, when non-null, is ACCUMULATED into (never
// reset), matching FindBestRhs — callers that want per-run numbers pass
// a freshly zero-initialized DaStats. Provider stats follow the same
// convention (see core/measure_provider.h).
std::vector<DeterminedPattern> DetermineBestPatterns(MeasureProvider* provider,
                                                     std::size_t lhs_dims,
                                                     std::size_t rhs_dims,
                                                     int dmax,
                                                     const DaOptions& options,
                                                     DaStats* stats);

}  // namespace dd

#endif  // DD_CORE_DA_H_
