// Distance threshold patterns ϕ and the dominance relation (paper
// Definition 2). A pattern assigns one integer threshold level in
// [0, dmax] to each attribute of the rule's determinant side X and
// dependent side Y.

#ifndef DD_CORE_PATTERN_H_
#define DD_CORE_PATTERN_H_

#include <string>
#include <vector>

namespace dd {

// Threshold levels for an ordered attribute list (either ϕ[X] or ϕ[Y]).
using Levels = std::vector<int>;

// True when a[i] >= b[i] for every i (a "dominates" b, written a ⪰ b in
// the paper). Requires equal sizes. Reflexive and transitive.
bool Dominates(const Levels& a, const Levels& b);

// Dependent quality Q(ϕ) = Σ_A (dmax - ϕ[A]) / (|Y| * dmax), paper
// formula 3: 1.0 at the all-zero (equality / FD) pattern, 0.0 at the
// all-dmax pattern.
double DependentQuality(const Levels& rhs, int dmax);

// Sum of levels; Q(ϕ) = 1 - LevelSum/(dims*dmax).
long LevelSum(const Levels& levels);

// A full pattern: thresholds on X and on Y.
struct Pattern {
  Levels lhs;
  Levels rhs;

  // All-zero thresholds on both sides: the classical FD special case.
  static Pattern Fd(std::size_t lhs_dims, std::size_t rhs_dims) {
    return Pattern{Levels(lhs_dims, 0), Levels(rhs_dims, 0)};
  }

  // Equality on X, free thresholds on Y: the MFD special case
  // (Koudas et al. 2009).
  static Pattern ExactLhs(std::size_t lhs_dims, Levels rhs) {
    return Pattern{Levels(lhs_dims, 0), std::move(rhs)};
  }

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

// "<8, 3>" formatting as used throughout the paper.
std::string LevelsToString(const Levels& levels);

// "(<8> -> <3>)" formatting of a full pattern.
std::string PatternToString(const Pattern& pattern);

}  // namespace dd

#endif  // DD_CORE_PATTERN_H_
