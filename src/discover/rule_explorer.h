// Rule exploration: the paper determines thresholds for user-given
// attribute pairs X -> Y; this module closes the loop with dependency
// discovery in the TANE tradition (Huhtala et al., cited as [17]) —
// enumerate candidate rules over a relation's attributes, determine the
// best threshold pattern for each with the parameter-free expected
// utility, and rank the rules. The O(1)-count grid provider makes the
// sweep cheap: one pairwise matching pass serves every candidate rule.

#ifndef DD_DISCOVER_RULE_EXPLORER_H_
#define DD_DISCOVER_RULE_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "approx/refine.h"
#include "common/math_util.h"
#include "common/result.h"
#include "core/determiner.h"
#include "data/relation.h"
#include "matching/builder.h"

namespace dd {

struct ExploreOptions {
  // Candidate rules have a single dependent attribute and up to
  // max_lhs_size determinant attributes.
  std::size_t max_lhs_size = 2;

  // Matching-relation construction (dmax, sampling, metrics).
  MatchingOptions matching;

  // Per-rule determination; the provider defaults to "grid" because the
  // sweep evaluates many rules over one matching relation.
  DetermineOptions determine;

  // Keep the best `top_rules` rules (0 = all).
  std::size_t top_rules = 10;

  // Rules whose best utility does not exceed the utility of the trivial
  // empty answer are dropped.
  double min_utility = 0.0;

  // Sampled + LSH-blocked sweep (src/approx): one shared stratified
  // sample serves every candidate rule instead of the exact matching
  // relation. Per-rule utilities become estimates with error bounds;
  // requires matching.max_pairs == 0 (the sample owns its own budget).
  bool approx = false;
  approx::ApproxOptions approx_options;

  ExploreOptions() { determine.provider = "grid"; }
};

struct DiscoveredRule {
  RuleSpec rule;
  DeterminedPattern best;
  double prior_mean_cq = 0.0;
  // Approx sweeps only: best.utility is an estimate inside `utility`.
  // Exact sweeps report estimated == false and a zero-width interval.
  bool estimated = false;
  Interval utility{0.0, 0.0};
};

// Enumerates and ranks candidate rules over all attributes of
// `relation` (or `attributes` when non-empty). Fails on unknown
// attributes or relations with fewer than two attributes.
Result<std::vector<DiscoveredRule>> DiscoverRules(
    const Relation& relation, const ExploreOptions& options,
    const std::vector<std::string>& attributes = {});

}  // namespace dd

#endif  // DD_DISCOVER_RULE_EXPLORER_H_
