#include "discover/rule_explorer.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace dd {

namespace {

// Emits all non-empty subsets of `pool` with at most `max_size`
// elements, preserving pool order within each subset.
void ForEachSubset(const std::vector<std::string>& pool, std::size_t max_size,
                   const std::function<void(std::vector<std::string>)>& fn) {
  const std::size_t n = pool.size();
  DD_CHECK_LT(n, 8 * sizeof(std::size_t));
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) > max_size) {
      continue;
    }
    std::vector<std::string> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(pool[i]);
    }
    fn(std::move(subset));
  }
}

}  // namespace

Result<std::vector<DiscoveredRule>> DiscoverRules(
    const Relation& relation, const ExploreOptions& options,
    const std::vector<std::string>& attributes) {
  std::vector<std::string> attrs = attributes;
  if (attrs.empty()) {
    for (const auto& a : relation.schema().attributes()) {
      attrs.push_back(a.name);
    }
  }
  if (attrs.size() < 2) {
    return Status::InvalidArgument(
        "rule discovery needs at least two attributes");
  }
  if (attrs.size() > 16) {
    return Status::InvalidArgument(
        "rule discovery over more than 16 attributes is not supported");
  }

  // One pairwise matching pass over all attributes serves every rule —
  // either the exact matching relation or one shared stratified sample.
  MatchingRelation matching({}, /*dmax=*/1);  // placeholder until built
  std::unique_ptr<approx::SampledMatchingBuilder> sample;
  if (options.approx) {
    DD_ASSIGN_OR_RETURN(sample, approx::SampledMatchingBuilder::Build(
                                    relation, attrs, options.matching,
                                    options.approx_options));
  } else {
    DD_ASSIGN_OR_RETURN(matching, BuildMatchingRelation(relation, attrs,
                                                        options.matching));
  }

  const auto determine_rule =
      [&](const RuleSpec& rule) -> Result<DiscoveredRule> {
    DiscoveredRule out;
    out.rule = rule;
    if (options.approx) {
      approx::ApproxDetermineOptions approx_options;
      approx_options.determine = options.determine;
      approx_options.approx = options.approx_options;
      DD_ASSIGN_OR_RETURN(
          approx::ApproxDetermineResult result,
          approx::ApproxDetermineWithSample(*sample, rule, approx_options));
      if (result.determine.patterns.empty()) return out;
      out.best = result.determine.patterns.front();
      out.prior_mean_cq = result.determine.prior_mean_cq;
      out.estimated = !result.exhaustive;
      out.utility = result.intervals.front().utility;
      return out;
    }
    DD_ASSIGN_OR_RETURN(DetermineResult result,
                        DetermineThresholds(matching, rule, options.determine));
    if (result.patterns.empty()) return out;
    out.best = result.patterns.front();
    out.prior_mean_cq = result.prior_mean_cq;
    out.utility = {out.best.utility, out.best.utility};
    return out;
  };

  std::vector<DiscoveredRule> discovered;
  Status failure = Status::Ok();
  for (const auto& target : attrs) {
    std::vector<std::string> pool;
    for (const auto& a : attrs) {
      if (a != target) pool.push_back(a);
    }
    ForEachSubset(pool, options.max_lhs_size, [&](std::vector<std::string> lhs) {
      if (!failure.ok()) return;
      RuleSpec rule{std::move(lhs), {target}};
      auto result = determine_rule(rule);
      if (!result.ok()) {
        failure = result.status();
        return;
      }
      // Determined patterns always carry LHS levels; an empty pattern
      // means no answer cleared the determination for this rule.
      if (result->best.pattern.lhs.empty()) return;
      if (result->best.utility <= options.min_utility) return;
      discovered.push_back(std::move(*result));
    });
    if (!failure.ok()) return failure;
  }

  std::sort(discovered.begin(), discovered.end(),
            [](const DiscoveredRule& a, const DiscoveredRule& b) {
              return a.best.utility > b.best.utility;
            });
  if (options.top_rules > 0 && discovered.size() > options.top_rules) {
    discovered.resize(options.top_rules);
  }
  return discovered;
}

}  // namespace dd
