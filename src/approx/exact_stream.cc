#include "approx/exact_stream.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "core/grid_util.h"
#include "core/simd_count.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd::approx {

Result<std::unique_ptr<MeasureProvider>> BuildStreamingGridProvider(
    const Relation& relation, const RuleSpec& rule,
    const MatchingOptions& matching) {
  obs::TraceSpan span("approx_exact_stream");
  if (rule.lhs.empty() || rule.rhs.empty()) {
    return Status::InvalidArgument("rule needs attributes on both sides");
  }
  for (const std::string& x : rule.lhs) {
    if (std::find(rule.rhs.begin(), rule.rhs.end(), x) != rule.rhs.end()) {
      return Status::InvalidArgument("attribute on both rule sides: " + x);
    }
  }
  const std::vector<std::string> attributes = rule.AllAttributes();
  DD_ASSIGN_OR_RETURN(
      ResolvedMetrics resolved,
      ResolveMatchingMetrics(relation.schema(), attributes, matching));

  const std::size_t base = static_cast<std::size_t>(matching.dmax) + 1;
  const std::size_t lhs_dims = rule.lhs.size();
  const std::size_t rhs_dims = rule.rhs.size();
  const std::size_t dims = lhs_dims + rhs_dims;
  DD_ASSIGN_OR_RETURN(const std::size_t joint_cells,
                      grid::GridCells(base, dims, std::size_t{1} << 27));
  std::size_t lhs_cells = 1;
  for (std::size_t d = 0; d < lhs_dims; ++d) lhs_cells *= base;

  const std::uint64_t n = relation.num_rows();
  const std::uint64_t total_pairs = n * (n - 1) / 2;
  const std::size_t threads =
      matching.threads == 0 ? DefaultThreads() : matching.threads;
  const PairLevelSource source(relation, resolved, matching, total_pairs,
                               threads);

  const std::size_t chunks = EffectiveChunks(total_pairs, threads);
  std::vector<std::vector<std::uint64_t>> joint_per_chunk(
      chunks, std::vector<std::uint64_t>(joint_cells, 0));
  std::vector<std::vector<std::uint64_t>> lhs_per_chunk(
      chunks, std::vector<std::uint64_t>(lhs_cells, 0));
  std::atomic<std::uint64_t> metric_calls{0};

  // Grid strides in the CreateFromHistograms layout: lhs dims
  // low-order, rhs high-order, so the first lhs strides double as the
  // marginal grid's strides (joint_cells <= 2^27 fits uint32).
  std::vector<std::uint32_t> strides(dims);
  {
    std::uint64_t stride = 1;
    for (std::size_t a = 0; a < dims; ++a) {
      strides[a] = static_cast<std::uint32_t>(stride);
      stride *= base;
    }
  }
  constexpr std::size_t kBatch = 1024;

  ParallelFor(
      "approx_exact_stream.pairs", total_pairs, threads,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t>& joint = joint_per_chunk[chunk];
        std::vector<std::uint64_t>& lhs_grid = lhs_per_chunk[chunk];
        std::vector<Level> levels(dims);
        // Pair levels are transposed into per-attribute batch columns
        // so the vectorized cell-index kernel (one-byte-per-level
        // views) computes a whole batch of grid cells per call.
        std::vector<std::vector<std::uint8_t>> batch_cols(
            dims, std::vector<std::uint8_t>(kBatch));
        std::vector<simd::ColumnView> views(dims);
        for (std::size_t a = 0; a < dims; ++a) {
          views[a] = simd::ColumnView{batch_cols[a].data(), /*packed4=*/false};
        }
        std::vector<std::uint32_t> joint_idx(kBatch);
        std::vector<std::uint32_t> lhs_idx(kBatch);
        std::uint64_t calls = 0;
        // Decode the chunk's first pair once, then walk the triangle
        // incrementally — no per-pair sqrt on a loop this hot.
        auto [i, j] = DecodeTriangularPair(begin, n);
        for (std::size_t k = begin; k < end; k += kBatch) {
          const std::size_t count = std::min(kBatch, end - k);
          for (std::size_t p = 0; p < count; ++p) {
            source.Levels(i, j, levels.data(), &calls);
            for (std::size_t a = 0; a < dims; ++a) {
              batch_cols[a][p] = levels[a];
            }
            if (++j == n) {
              ++i;
              j = i + 1;
            }
          }
          simd::GridIndices(views.data(), strides.data(), dims, 0, count,
                            joint_idx.data());
          simd::GridIndices(views.data(), strides.data(), lhs_dims, 0, count,
                            lhs_idx.data());
          for (std::size_t p = 0; p < count; ++p) {
            ++joint[joint_idx[p]];
            ++lhs_grid[lhs_idx[p]];
          }
        }
        metric_calls.fetch_add(calls, std::memory_order_relaxed);
      });

  std::vector<std::uint64_t> joint(joint_cells, 0);
  std::vector<std::uint64_t> lhs_grid(lhs_cells, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t idx = 0; idx < joint_cells; ++idx) {
      joint[idx] += joint_per_chunk[c][idx];
    }
    for (std::size_t idx = 0; idx < lhs_cells; ++idx) {
      lhs_grid[idx] += lhs_per_chunk[c][idx];
    }
  }

  obs::MetricsRegistry::Global()
      .GetCounter("matching.distances_computed")
      .Add(metric_calls.load(std::memory_order_relaxed));
  DD_LOG(INFO) << "streaming grid built: " << total_pairs << " pairs into "
               << joint_cells << " cells, threads=" << threads;
  DD_ASSIGN_OR_RETURN(
      auto provider,
      GridMeasureProvider::CreateFromHistograms(
          std::move(joint), std::move(lhs_grid), total_pairs, matching.dmax,
          lhs_dims, rhs_dims));
  return std::unique_ptr<MeasureProvider>(std::move(provider));
}

}  // namespace dd::approx
