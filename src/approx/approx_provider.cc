#include "approx/approx_provider.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "obs/log.h"

namespace dd::approx {

namespace {

// Inner provider over one stratum: O(1) grid when the lattice fits,
// else the subset scan (both exact — the approximation lives entirely
// in the stratum weights, never in the inner counts).
Result<std::unique_ptr<MeasureProvider>> MakeInnerProvider(
    const MatchingRelation& stratum, const ResolvedRule& resolved,
    std::size_t threads) {
  Result<std::unique_ptr<MeasureProvider>> grid =
      MakeMeasureProvider(stratum, resolved, "grid", threads);
  if (grid.ok()) return grid;
  DD_LOG(INFO) << "approx inner grid rejected (" << grid.status().message()
               << "); falling back to scan_subset";
  return MakeMeasureProvider(stratum, resolved, "scan_subset", threads);
}

}  // namespace

Result<std::unique_ptr<ApproxMeasureProvider>> ApproxMeasureProvider::Create(
    const SampledMatchingBuilder& sample, const RuleSpec& rule, double z,
    std::size_t threads) {
  // Both strata share one attribute list, so one resolution serves both.
  DD_ASSIGN_OR_RETURN(ResolvedRule resolved, ResolveRule(sample.near(), rule));

  auto provider =
      std::unique_ptr<ApproxMeasureProvider>(new ApproxMeasureProvider());
  DD_ASSIGN_OR_RETURN(provider->near_,
                      MakeInnerProvider(sample.near(), resolved, threads));
  DD_ASSIGN_OR_RETURN(provider->tail_,
                      MakeInnerProvider(sample.tail(), resolved, threads));
  provider->total_pairs_ = sample.total_pairs();
  provider->tail_population_ = sample.tail_population();
  provider->tail_sampled_ = sample.tail_sampled();
  provider->exhaustive_ = sample.exhaustive();
  provider->z_ = z;
  provider->weight_ =
      provider->tail_sampled_ == 0
          ? 0.0
          : static_cast<double>(provider->tail_population_) /
                static_cast<double>(provider->tail_sampled_);
  return provider;
}

std::uint64_t ApproxMeasureProvider::Estimate(std::uint64_t near_count,
                                              std::uint64_t tail_count) const {
  // Exhaustive and fraction-1.0 samples take the integer path: weight
  // 1.0 exactly, no rounding anywhere — this is the bit-identity
  // guarantee.
  if (exhaustive_) return near_count + tail_count;
  if (tail_sampled_ == 0) return near_count;
  double scaled = weight_ * static_cast<double>(tail_count);
  std::uint64_t inflated = static_cast<std::uint64_t>(std::llround(scaled));
  // Clamp to the stratum it estimates: keeps every count <= total()
  // (D, C <= 1) while preserving monotone rounding.
  if (inflated > tail_population_) inflated = tail_population_;
  return near_count + inflated;
}

Interval ApproxMeasureProvider::CountInterval(std::uint64_t near_count,
                                              std::uint64_t tail_count) const {
  if (exhaustive_) {
    const double exact = static_cast<double>(near_count + tail_count);
    return {exact, exact};
  }
  const Interval p =
      WilsonInterval(tail_count, tail_sampled_, z_, tail_population_);
  const double near = static_cast<double>(near_count);
  const double population = static_cast<double>(tail_population_);
  return {near + p.lo * population, near + p.hi * population};
}

std::uint64_t ApproxMeasureProvider::InnerRowsScanned() const {
  return near_->stats().rows_scanned + tail_->stats().rows_scanned;
}

void ApproxMeasureProvider::SetLhs(const Levels& lhs) {
  const std::uint64_t before = InnerRowsScanned();
  near_->SetLhs(lhs);
  tail_->SetLhs(lhs);
  near_lhs_ = near_->lhs_count();
  tail_lhs_ = tail_->lhs_count();
  lhs_count_ = Estimate(near_lhs_, tail_lhs_);
  current_lhs_ = lhs;
  ++stats_.lhs_evaluations;
  stats_.rows_scanned += InnerRowsScanned() - before;
}

std::uint64_t ApproxMeasureProvider::CountXY(const Levels& rhs) {
  const std::uint64_t before = InnerRowsScanned();
  const std::uint64_t near_xy = near_->CountXY(rhs);
  const std::uint64_t tail_xy = tail_->CountXY(rhs);
  ++stats_.xy_evaluations;
  stats_.rows_scanned += InnerRowsScanned() - before;
  return Estimate(near_xy, tail_xy);
}

std::unique_ptr<MeasureProvider> ApproxMeasureProvider::CloneForThread() const {
  std::unique_ptr<MeasureProvider> near_clone = near_->CloneForThread();
  std::unique_ptr<MeasureProvider> tail_clone = tail_->CloneForThread();
  if (near_clone == nullptr || tail_clone == nullptr) return nullptr;
  auto clone =
      std::unique_ptr<ApproxMeasureProvider>(new ApproxMeasureProvider());
  clone->near_ = std::move(near_clone);
  clone->tail_ = std::move(tail_clone);
  clone->total_pairs_ = total_pairs_;
  clone->tail_population_ = tail_population_;
  clone->tail_sampled_ = tail_sampled_;
  clone->weight_ = weight_;
  clone->z_ = z_;
  clone->exhaustive_ = exhaustive_;
  return clone;
}

bool ApproxMeasureProvider::SupportsConcurrentCountXY() const {
  return near_->SupportsConcurrentCountXY() &&
         tail_->SupportsConcurrentCountXY();
}

std::uint64_t ApproxMeasureProvider::CountXYConcurrent(
    const Levels& rhs) const {
  return Estimate(near_->CountXYConcurrent(rhs),
                  tail_->CountXYConcurrent(rhs));
}

std::uint64_t ApproxMeasureProvider::RowsPerCountXY() const {
  return near_->RowsPerCountXY() + tail_->RowsPerCountXY();
}

Interval ApproxMeasureProvider::LhsCountInterval() const {
  return CountInterval(near_lhs_, tail_lhs_);
}

Interval ApproxMeasureProvider::XyCountInterval(const Levels& rhs) const {
  return CountInterval(near_->CountXYConcurrent(rhs),
                       tail_->CountXYConcurrent(rhs));
}

std::size_t ApproxMeasureProvider::MemoryUsageBytes() const {
  std::size_t bytes = 0;
  if (const auto* g = dynamic_cast<const GridMeasureProvider*>(near_.get())) {
    bytes += g->MemoryUsageBytes();
  }
  if (const auto* g = dynamic_cast<const GridMeasureProvider*>(tail_.get())) {
    bytes += g->MemoryUsageBytes();
  }
  return bytes;
}

}  // namespace dd::approx
