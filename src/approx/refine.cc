#include "approx/refine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "common/string_util.h"
#include "core/expected_utility.h"
#include "core/result_io.h"
#include "obs/diag/flight_recorder.h"
#include "obs/explain/recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd::approx {

namespace {

PatternIntervals ComputeIntervals(ApproxMeasureProvider* provider,
                                  const DeterminedPattern& determined,
                                  const UtilityOptions& utility) {
  PatternIntervals iv;
  provider->SetLhs(determined.pattern.lhs);
  iv.lhs_count = provider->LhsCountInterval();
  iv.xy_count = provider->XyCountInterval(determined.pattern.rhs);
  const double total = static_cast<double>(provider->total());
  iv.d = total > 0.0 ? Interval{iv.lhs_count.lo / total,
                                iv.lhs_count.hi / total}
                     : Interval{0.0, 0.0};
  // Conservative dependent-ratio bounds: the smallest confidence pairs
  // the XY floor with the LHS ceiling, and vice versa.
  double c_lo = 0.0;
  double c_hi = 0.0;
  if (iv.lhs_count.hi > 0.0) {
    c_lo = Clamp(iv.xy_count.lo / iv.lhs_count.hi, 0.0, 1.0);
  }
  if (iv.lhs_count.lo > 0.0) {
    c_hi = Clamp(iv.xy_count.hi / iv.lhs_count.lo, 0.0, 1.0);
  } else {
    c_hi = iv.xy_count.hi > 0.0 ? 1.0 : c_lo;
  }
  iv.confidence = {c_lo, std::max(c_lo, c_hi)};
  iv.quality = determined.measures.quality;

  // Ū corners over {D_lo,D_hi} × {C_lo,C_hi}: exact bounds for the
  // closed form (monotone in CQ at fixed D, monotone in D at fixed CQ),
  // conservative corner-sampling for the numeric-integration method.
  const std::uint64_t lhs_corners[2] = {
      static_cast<std::uint64_t>(std::llround(iv.lhs_count.lo)),
      static_cast<std::uint64_t>(std::llround(iv.lhs_count.hi))};
  const double c_corners[2] = {iv.confidence.lo, iv.confidence.hi};
  double u_lo = 0.0;
  double u_hi = 0.0;
  bool first = true;
  for (std::uint64_t lhs : lhs_corners) {
    for (double c : c_corners) {
      const double u =
          ExpectedUtility(provider->total(), lhs, c, iv.quality, utility);
      u_lo = first ? u : std::min(u_lo, u);
      u_hi = first ? u : std::max(u_hi, u);
      first = false;
    }
  }
  iv.utility = {u_lo, u_hi};
  return iv;
}

// One search round at the sample's current size. `search_l` may exceed
// options.determine.top_l to expose the runner-up.
Result<ApproxDetermineResult> RunRound(const SampledMatchingBuilder& sample,
                                       const RuleSpec& rule,
                                       const ApproxDetermineOptions& options,
                                       std::size_t search_l) {
  const std::size_t threads = options.determine.threads == 0
                                  ? DefaultThreads()
                                  : options.determine.threads;
  DD_ASSIGN_OR_RETURN(
      std::unique_ptr<ApproxMeasureProvider> provider,
      ApproxMeasureProvider::Create(sample, rule, options.approx.z, threads));

  DetermineOptions determine = options.determine;
  determine.top_l = search_l;
  DD_ASSIGN_OR_RETURN(
      DetermineResult run,
      DetermineWithProvider(provider.get(), rule.lhs.size(), rule.rhs.size(),
                            sample.dmax(), determine, "approx"));

  ApproxDetermineResult result;
  result.determine = std::move(run);
  result.total_pairs = sample.total_pairs();
  result.near_pairs = sample.near_pairs();
  result.sampled_pairs = sample.tail_sampled();
  result.sample_fraction = sample.sample_fraction();
  result.exhaustive = sample.exhaustive();

  // Interval probes run OUTSIDE the reported search stats window on
  // purpose: they are reporting overhead, not search work.
  UtilityOptions utility = options.determine.utility;
  utility.prior_mean_cq = result.determine.prior_mean_cq;
  result.intervals.reserve(result.determine.patterns.size());
  for (const DeterminedPattern& determined : result.determine.patterns) {
    result.intervals.push_back(
        ComputeIntervals(provider.get(), determined, utility));
  }
  return result;
}

std::vector<Pattern> TopPatterns(const ApproxDetermineResult& result,
                                 std::size_t top_l) {
  std::vector<Pattern> top;
  const std::size_t n = std::min(top_l, result.determine.patterns.size());
  top.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    top.push_back(result.determine.patterns[i].pattern);
  }
  return top;
}

void Truncate(ApproxDetermineResult* result, std::size_t top_l) {
  if (result->determine.patterns.size() > top_l) {
    result->determine.patterns.resize(top_l);
    result->intervals.resize(top_l);
  }
}

void PublishApproxMetrics(const ApproxDetermineResult& result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("approx.refine_rounds").Add(result.rounds);
  registry.GetGauge("approx.sample_fraction").Set(result.sample_fraction);
  registry.GetGauge("approx.rounds").Set(static_cast<double>(result.rounds));
  if (obs::ExplainRecorder* rec = obs::ExplainRecorder::Active()) {
    rec->SetEstimated(!result.exhaustive);
  }
}

}  // namespace

Result<ApproxDetermineResult> ApproxDetermineWithSample(
    const SampledMatchingBuilder& sample, const RuleSpec& rule,
    const ApproxDetermineOptions& options) {
  if (options.determine.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  const std::size_t top_l = options.determine.top_l;
  const std::size_t search_l = sample.exhaustive() ? top_l : top_l + 1;
  DD_ASSIGN_OR_RETURN(ApproxDetermineResult result,
                      RunRound(sample, rule, options, search_l));
  result.rounds = 1;
  result.converged = sample.exhaustive();
  Truncate(&result, top_l);
  PublishApproxMetrics(result);
  return result;
}

Result<ApproxDetermineResult> ApproxDetermineThresholds(
    const Relation& relation, const RuleSpec& rule,
    const MatchingOptions& matching, const ApproxDetermineOptions& options) {
  obs::TraceSpan span("approx_determine");
  if (options.determine.top_l == 0) {
    return Status::InvalidArgument("top_l must be >= 1");
  }
  const std::size_t top_l = options.determine.top_l;
  DD_ASSIGN_OR_RETURN(
      std::unique_ptr<SampledMatchingBuilder> sample,
      SampledMatchingBuilder::Build(relation, rule.AllAttributes(), matching,
                                    options.approx));

  ApproxDetermineResult result;
  std::vector<Pattern> previous_top;
  std::size_t rounds = 0;
  while (true) {
    ++rounds;
    // Exhaustive samples run the plain top_l search: weight 1 makes the
    // round bit-identical to the exact pipeline, runner-up separation
    // is moot, and the extra answer would only perturb DAP's bound
    // bookkeeping relative to the exact run.
    const std::size_t search_l = sample->exhaustive() ? top_l : top_l + 1;
    DD_ASSIGN_OR_RETURN(result, RunRound(*sample, rule, options, search_l));
    result.rounds = rounds;
    obs::diag::FlightRecord(obs::diag::EventType::kApproxRound, "refine",
                            rounds, sample->tail_sampled());
    if (sample->exhaustive()) {
      result.converged = true;
      break;
    }

    const std::vector<Pattern> top = TopPatterns(result, top_l);
    bool stable = rounds > 1 && top == previous_top;
    if (stable && result.determine.patterns.size() > top_l) {
      const double lo_l = result.intervals[top_l - 1].utility.lo;
      const double hi_runner_up = result.intervals[top_l].utility.hi;
      stable = lo_l >= hi_runner_up - options.approx.epsilon;
    }
    if (stable) {
      result.converged = true;
      break;
    }
    if (rounds >= options.approx.max_rounds) break;
    previous_top = top;

    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(std::max<std::uint64_t>(
                      sample->tail_sampled(), 1)) *
                  options.approx.growth));
    sample->GrowTo(std::max(target, sample->tail_sampled() + 1));
  }
  Truncate(&result, top_l);
  PublishApproxMetrics(result);
  DD_LOG(INFO) << "approx determination: " << result.rounds << " round(s), "
               << "fraction " << result.sample_fraction << ", "
               << (result.converged ? "converged" : "round cap hit")
               << (result.exhaustive ? " (exhaustive = exact)" : "");
  return result;
}

std::string ApproxResultToJson(const ApproxDetermineResult& result,
                               const RuleSpec& rule) {
  std::string inner = DetermineResultToJson(result.determine, rule);
  // Splice the approx metadata into the inner document's top level and
  // attach per-pattern interval rows alongside the point estimates.
  std::string out = "{";
  out += StrFormat(
      "\"estimated\": %s, \"converged\": %s, \"rounds\": %zu, "
      "\"sample_fraction\": %.6f, \"total_pairs\": %llu, "
      "\"near_pairs\": %llu, \"sampled_pairs\": %llu, ",
      result.exhaustive ? "false" : "true",
      result.converged ? "true" : "false", result.rounds,
      result.sample_fraction,
      static_cast<unsigned long long>(result.total_pairs),
      static_cast<unsigned long long>(result.near_pairs),
      static_cast<unsigned long long>(result.sampled_pairs));
  out += "\"intervals\": [";
  for (std::size_t i = 0; i < result.intervals.size(); ++i) {
    const PatternIntervals& iv = result.intervals[i];
    if (i > 0) out += ", ";
    out += StrFormat(
        "{\"d_lo\": %.9f, \"d_hi\": %.9f, "
        "\"confidence_lo\": %.9f, \"confidence_hi\": %.9f, "
        "\"quality\": %.9f, \"utility_lo\": %.9f, \"utility_hi\": %.9f}",
        iv.d.lo, iv.d.hi, iv.confidence.lo, iv.confidence.hi, iv.quality,
        iv.utility.lo, iv.utility.hi);
  }
  out += "], \"result\": ";
  out += inner;
  out += "}";
  return out;
}

}  // namespace dd::approx
