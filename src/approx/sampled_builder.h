// Stratified sampled matching build — the tentpole of the approximate
// determination subsystem. Instead of materializing all N(N-1)/2
// matching tuples, it materializes two strata:
//
//   near — every LSH-blocked candidate near pair (lsh_index.h),
//          computed EXACTLY and weighted 1. This keeps the rare low-
//          level cells that dominate confidence/quality exact.
//   tail — a uniform without-replacement sample of the remaining pairs
//          (pair_sampler.h), weighted tail_population / tail_sampled
//          by the approx provider.
//
// Level computation for both strata goes through the same
// PairLevelSource kernel as the exact build, parallelized over the
// shared worker pool with bit-identical results at any thread count
// (the pair sets are fixed before any parallel work starts, and rows
// are written by global index). Growing the tail sample APPENDS rows —
// previously computed levels are never recomputed or moved.

#ifndef DD_APPROX_SAMPLED_BUILDER_H_
#define DD_APPROX_SAMPLED_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "approx/lsh_index.h"
#include "approx/pair_sampler.h"
#include "common/result.h"
#include "data/relation.h"
#include "matching/builder.h"
#include "matching/matching_relation.h"

namespace dd::approx {

// Knobs of the approximate determination pipeline. `matching`-level
// options (dmax, metrics, value cache, threads) ride along in the
// MatchingOptions passed next to this.
struct ApproxOptions {
  // Initial tail sample size in pairs; the refinement driver grows it
  // geometrically from here. Clamped to the tail population.
  std::uint64_t sample_target = 100000;

  // Refinement convergence slack: the top-l ranking counts as settled
  // when the l-th utility lower bound clears the runner-up's upper
  // bound minus epsilon (refine.h).
  double epsilon = 0.01;

  // Seed of the tail pair sample (independent of MatchingOptions::seed,
  // which governs the exact builder's plain max_pairs sampling).
  std::uint64_t seed = 7;

  // Geometric growth factor and round cap of the refinement driver.
  double growth = 2.0;
  std::size_t max_rounds = 6;

  // Two-sided critical value for every Wilson interval (1.96 ≈ 95%).
  double z = 1.959963984540054;

  // Near-stratum blocking; disabled means pure uniform sampling.
  LshOptions lsh;
};

class SampledMatchingBuilder {
 public:
  // Builds both strata at approx.sample_target tail pairs. `relation`
  // must outlive the returned builder. matching.mode is ignored (this
  // IS the kApprox implementation); matching.max_pairs must be 0 — the
  // tail target already bounds |M|.
  static Result<std::unique_ptr<SampledMatchingBuilder>> Build(
      const Relation& relation, const std::vector<std::string>& attributes,
      const MatchingOptions& matching, const ApproxOptions& approx);

  const MatchingRelation& near() const { return near_; }
  const MatchingRelation& tail() const { return tail_; }
  int dmax() const { return near_.dmax(); }

  std::uint64_t total_pairs() const { return total_pairs_; }
  std::uint64_t near_pairs() const { return near_.num_tuples(); }
  std::uint64_t tail_population() const {
    return total_pairs_ - near_pairs();
  }
  std::uint64_t tail_sampled() const { return tail_.num_tuples(); }

  // True when every pair is materialized (near + full tail): estimates
  // degenerate to exact counts and intervals to zero width.
  bool exhaustive() const {
    return near_pairs() + tail_sampled() == total_pairs_;
  }

  // Materialized fraction of the pair population, in [0, 1].
  double sample_fraction() const;

  const LshStats& lsh_stats() const { return lsh_stats_; }

  // Grows the tail sample to `target` pairs (clamped to the tail
  // population; no-op when already reached), appending the new rows.
  // Returns the number of rows appended.
  std::uint64_t GrowTo(std::uint64_t target);

  // Heap bytes across both strata, the sampler state, and the value
  // cache; feeds the mem.approx_bytes gauge.
  std::size_t MemoryUsageBytes() const;

 private:
  SampledMatchingBuilder(std::vector<std::string> attributes, int dmax)
      : near_(attributes, dmax), tail_(attributes, dmax) {}

  // Appends rows for sorted pair indices `ks` to `out`.
  void MaterializePairs(const std::vector<std::uint64_t>& ks,
                        MatchingRelation* out);

  const Relation* relation_ = nullptr;
  std::unique_ptr<ResolvedMetrics> resolved_;
  std::unique_ptr<PairLevelSource> source_;
  std::unique_ptr<PairSampler> sampler_;
  std::uint64_t total_pairs_ = 0;
  std::size_t threads_ = 0;
  MatchingRelation near_;
  MatchingRelation tail_;
  LshStats lsh_stats_;
};

}  // namespace dd::approx

#endif  // DD_APPROX_SAMPLED_BUILDER_H_
