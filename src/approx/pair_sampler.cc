#include "approx/pair_sampler.h"

#include <algorithm>

#include "common/logging.h"

namespace dd::approx {

PairSampler::PairSampler(std::uint64_t total_pairs, std::uint64_t seed,
                         std::vector<std::uint64_t> excluded)
    : total_pairs_(total_pairs),
      population_(total_pairs - excluded.size()),
      rng_(seed),
      excluded_(std::move(excluded)) {
  DD_CHECK_LE(excluded_.size(), total_pairs_);
}

bool PairSampler::Excluded(std::uint64_t k) const {
  return std::binary_search(excluded_.begin(), excluded_.end(), k);
}

std::vector<std::uint64_t> PairSampler::GrowTo(std::uint64_t target) {
  target = std::min(target, population_);
  std::vector<std::uint64_t> fresh;
  if (target <= sampled_) return fresh;
  fresh.reserve(target - sampled_);

  // Rejection stays cheap while some pairs remain undrawn; asking for
  // the WHOLE population makes its tail a coupon-collector blowup, so
  // that case enumerates instead.
  const bool enumerate = target == population_;
  if (!enumerate) {
    chosen_.reserve(target * 2);
    while (sampled_ < target) {
      const std::uint64_t k = rng_.NextBounded(total_pairs_);
      if (Excluded(k)) continue;
      if (!chosen_.insert(k).second) continue;
      fresh.push_back(k);
      ++sampled_;
    }
  } else {
    // The fraction-1.0 path: take every not-yet-drawn tail index, in
    // order. No RNG involvement, so a full sample is the same set
    // whatever the growth schedule that led here.
    for (std::uint64_t k = 0; k < total_pairs_ && sampled_ < target; ++k) {
      if (Excluded(k)) continue;
      if (chosen_.count(k) != 0) continue;
      fresh.push_back(k);
      ++sampled_;
    }
    chosen_.insert(fresh.begin(), fresh.end());
  }
  std::sort(fresh.begin(), fresh.end());
  return fresh;
}

std::size_t PairSampler::MemoryUsageBytes() const {
  return excluded_.capacity() * sizeof(std::uint64_t) +
         chosen_.size() * (sizeof(std::uint64_t) + sizeof(void*) * 2);
}

}  // namespace dd::approx
