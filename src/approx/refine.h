// Progressive-refinement determination over the stratified sample:
// run the full DA/PA search against the approximate provider, read off
// Wilson error bounds for every answer, and keep doubling the tail
// sample until the top-l utility ranking is stable under those bounds
// (or the sample went exhaustive, at which point the run IS the exact
// pipeline).
//
// Convergence test per round, searching with l+1 answers:
//   * the top-l pattern set matches the previous round's, and
//   * lower(Ū_l) >= upper(Ū_{l+1}) - epsilon — the runner-up cannot
//     displace the l-th answer beyond the allowed slack.
// Interval machinery: D bounds come straight from the LHS count
// interval; C conservatively combines the XY and LHS bounds
// (xy_lo/lhs_hi .. xy_hi/lhs_lo); Q is DETERMINISTIC in the RHS levels
// (formula 3 — no interval needed, reported exact); Ū bounds evaluate
// the utility at the four (D, C) corner combinations, exact for the
// closed form since Ū is monotone in CQ at fixed D and monotone in D
// along fixed CQ.

#ifndef DD_APPROX_REFINE_H_
#define DD_APPROX_REFINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "approx/approx_provider.h"
#include "approx/sampled_builder.h"
#include "common/math_util.h"
#include "common/result.h"
#include "core/determiner.h"

namespace dd::approx {

// Achieved error bounds for one determined pattern. Point estimates
// live in the paired DeterminedPattern; these are the ± around them.
struct PatternIntervals {
  Interval lhs_count;   // absolute pairs
  Interval xy_count;    // absolute pairs
  Interval d;           // lhs_count / total
  Interval confidence;
  Interval utility;
  double quality = 0.0;  // exact — deterministic in the RHS levels
};

struct ApproxDetermineResult {
  // Point-estimate determination of the final round, truncated to the
  // requested top_l (the search itself ran with l+1 to expose the
  // runner-up).
  DetermineResult determine;
  // Parallel to determine.patterns.
  std::vector<PatternIntervals> intervals;

  std::uint64_t total_pairs = 0;
  std::uint64_t near_pairs = 0;
  std::uint64_t sampled_pairs = 0;   // tail stratum
  double sample_fraction = 1.0;
  std::size_t rounds = 0;
  bool exhaustive = false;  // degenerated to the exact pipeline
  bool converged = false;   // ranking stable under the intervals
};

struct ApproxDetermineOptions {
  // The search configuration; `provider` is ignored (the approx
  // provider replaces it) and `top_l` is the reported answer size.
  DetermineOptions determine;
  ApproxOptions approx;
};

// One refinement round against a prebuilt sample at its CURRENT size —
// no growth. This is the discover path, where one shared sample serves
// many enumerated rules.
Result<ApproxDetermineResult> ApproxDetermineWithSample(
    const SampledMatchingBuilder& sample, const RuleSpec& rule,
    const ApproxDetermineOptions& options);

// The full driver: build the stratified sample over the rule's
// attributes, refine until convergence / exhaustion / max_rounds, and
// report achieved bounds. `relation` only needs to live for the call.
Result<ApproxDetermineResult> ApproxDetermineThresholds(
    const Relation& relation, const RuleSpec& rule,
    const MatchingOptions& matching, const ApproxDetermineOptions& options);

// JSON document for pipeline integration: the DetermineResultToJson
// payload wrapped with sampling metadata and per-pattern interval
// fields ("d_lo"/"d_hi", "confidence_lo"/..., "utility_lo"/...,
// "estimated": true|false).
std::string ApproxResultToJson(const ApproxDetermineResult& result,
                               const RuleSpec& rule);

}  // namespace dd::approx

#endif  // DD_APPROX_REFINE_H_
