#include "approx/lsh_index.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "matching/value_cache.h"
#include "metric/metric.h"

namespace dd::approx {

namespace {

// splitmix64 finalizer: the seeded mixing primitive behind every hash
// here. Fixed constants — blocking output is part of the deterministic
// build contract.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a over the bytes, mixed with `seed`.
std::uint64_t HashBytes(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Mix(h ^ seed);
}

void TokenFeatures(const std::string& value, std::uint64_t seed,
                   std::vector<std::uint64_t>* out) {
  std::size_t i = 0;
  const std::size_t n = value.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(value[i]))) ++i;
    std::size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(value[i]))) ++i;
    if (i > start) {
      out->push_back(
          HashBytes(std::string_view(value).substr(start, i - start), seed));
    }
  }
}

void QGramFeatures(const std::string& value, std::size_t q, std::uint64_t seed,
                   std::vector<std::uint64_t>* out) {
  if (value.size() < q) {
    out->push_back(HashBytes(value, seed));
    return;
  }
  for (std::size_t i = 0; i + q <= value.size(); ++i) {
    out->push_back(HashBytes(std::string_view(value).substr(i, q), seed));
  }
}

// Minhash signature: sig[h] = min over features of Mix(f ^ hash-slot
// seed). An empty feature set gets the all-max signature (collides only
// with other empties).
void MinhashSignature(const std::vector<std::uint64_t>& features,
                      std::size_t num_hashes, std::uint64_t seed,
                      std::vector<std::uint64_t>* sig) {
  sig->assign(num_hashes, std::numeric_limits<std::uint64_t>::max());
  for (std::uint64_t f : features) {
    for (std::size_t h = 0; h < num_hashes; ++h) {
      const std::uint64_t v = Mix(f ^ Mix(seed + h));
      if (v < (*sig)[h]) (*sig)[h] = v;
    }
  }
}

std::uint64_t EncodeVidPair(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<std::uint64_t> CollectNearPairs(const Relation& relation,
                                            const ResolvedMetrics& resolved,
                                            const LshOptions& options,
                                            LshStats* stats) {
  std::vector<std::uint64_t> out;
  LshStats local;
  const std::uint64_t n = relation.num_rows();
  if (!options.enabled || n < 2) {
    if (stats != nullptr) *stats = local;
    return out;
  }
  // Pre-dedup expansion budget: the surfaced set is capped at
  // max_candidates AFTER global dedup, so collecting a small multiple
  // bounds peak memory without biasing what survives the final cut.
  const std::uint64_t expansion_budget = options.max_candidates * 2;

  for (std::size_t a = 0; a < resolved.num_attributes(); ++a) {
    const BlockingFamily family = resolved.metrics[a]->blocking_family();
    if (family == BlockingFamily::kNone) continue;
    const AttributeValueIndex index = InternColumn(relation, resolved.attr_idx[a]);
    const std::size_t distinct = index.distinct();

    // Candidate DISTINCT-VALUE pairs for this attribute; expanded to
    // row pairs below. Encoded (lo<<32)|hi for cheap dedup.
    std::vector<std::uint64_t> vid_pairs;

    if (family == BlockingFamily::kNumeric) {
      // Sorted-neighbor join: distances respect the value order, so
      // every near pair sits within a few sorted positions.
      std::vector<std::pair<double, std::uint32_t>> parsed;
      parsed.reserve(distinct);
      for (std::size_t v = 0; v < distinct; ++v) {
        char* end = nullptr;
        const std::string& s = *index.values[v];
        const double d = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0') continue;  // unparsable: skip
        parsed.emplace_back(d, static_cast<std::uint32_t>(v));
      }
      std::sort(parsed.begin(), parsed.end());
      for (std::size_t i = 0; i < parsed.size(); ++i) {
        const std::size_t hi =
            std::min(parsed.size(), i + 1 + options.numeric_window);
        for (std::size_t w = i + 1; w < hi; ++w) {
          vid_pairs.push_back(
              EncodeVidPair(parsed[i].second, parsed[w].second));
        }
      }
    } else {
      // Minhash banding. kEdit folds a length bucket into each band key
      // (emitting into the own and next bucket so boundary-straddling
      // values still collide); bucket width is the raw distance cap —
      // pairs further apart in length than the cap saturate at dmax
      // anyway.
      const std::size_t num_hashes = options.bands * options.band_rows;
      const std::uint64_t attr_seed =
          Mix(options.hash_seed ^ (0xa11ce5ull + a));
      std::size_t length_bucket_width = 1;
      if (family == BlockingFamily::kEdit) {
        const double cap =
            static_cast<double>(resolved.dmax) / resolved.scales[a];
        length_bucket_width =
            std::max<std::size_t>(1, static_cast<std::size_t>(cap) + 1);
      }
      std::size_t q = 2;
      if (family == BlockingFamily::kQGram) {
        if (const auto* qg =
                dynamic_cast<const QGramMetric*>(resolved.metrics[a].get())) {
          q = qg->q();
        }
      }

      std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
      std::vector<std::uint64_t> features;
      std::vector<std::uint64_t> sig;
      for (std::size_t v = 0; v < distinct; ++v) {
        features.clear();
        if (family == BlockingFamily::kTokenSet) {
          TokenFeatures(*index.values[v], attr_seed, &features);
        } else {
          QGramFeatures(*index.values[v], q, attr_seed, &features);
        }
        MinhashSignature(features, num_hashes, attr_seed, &sig);
        for (std::size_t band = 0; band < options.bands; ++band) {
          std::uint64_t key = Mix(attr_seed ^ (band + 1));
          for (std::size_t r = 0; r < options.band_rows; ++r) {
            key = Mix(key ^ sig[band * options.band_rows + r]);
          }
          if (family == BlockingFamily::kEdit) {
            const std::uint64_t lb = index.values[v]->size() / length_bucket_width;
            buckets[Mix(key ^ (lb * 2 + 2))].push_back(
                static_cast<std::uint32_t>(v));
            buckets[Mix(key ^ ((lb + 1) * 2 + 3))].push_back(
                static_cast<std::uint32_t>(v));
          } else {
            buckets[key].push_back(static_cast<std::uint32_t>(v));
          }
        }
      }
      for (const auto& [key, vids] : buckets) {
        (void)key;
        if (vids.size() < 2) continue;
        if (vids.size() > options.max_bucket) {
          ++local.skipped_buckets;
          continue;
        }
        for (std::size_t i = 0; i < vids.size(); ++i) {
          for (std::size_t j = i + 1; j < vids.size(); ++j) {
            vid_pairs.push_back(EncodeVidPair(vids[i], vids[j]));
          }
        }
      }
    }

    // Repeated values are distance 0 on this attribute — the nearest
    // pairs there are. Surface every duplicated value id as a self
    // pair.
    std::vector<std::vector<std::uint32_t>> rows_by_vid(distinct);
    for (std::uint32_t row = 0; row < n; ++row) {
      rows_by_vid[index.row_ids[row]].push_back(row);
    }
    for (std::uint32_t v = 0; v < distinct; ++v) {
      if (rows_by_vid[v].size() >= 2) vid_pairs.push_back(EncodeVidPair(v, v));
    }

    // Sort BEFORE the capped expansion so the surfaced set is a pure
    // function of the bucket contents, not of hash-map iteration order.
    std::sort(vid_pairs.begin(), vid_pairs.end());
    vid_pairs.erase(std::unique(vid_pairs.begin(), vid_pairs.end()),
                    vid_pairs.end());

    for (std::uint64_t enc : vid_pairs) {
      const std::uint32_t va = static_cast<std::uint32_t>(enc >> 32);
      const std::uint32_t vb = static_cast<std::uint32_t>(enc);
      const std::vector<std::uint32_t>& ra = rows_by_vid[va];
      const std::vector<std::uint32_t>& rb = rows_by_vid[vb];
      if (va == vb) {
        for (std::size_t x = 0; x < ra.size(); ++x) {
          for (std::size_t y = x + 1; y < ra.size(); ++y) {
            if (out.size() < expansion_budget) {
              out.push_back(EncodeTriangularPair(ra[x], ra[y], n));
            } else {
              ++local.dropped;
            }
          }
        }
      } else {
        for (std::uint32_t ia : ra) {
          for (std::uint32_t ib : rb) {
            if (out.size() < expansion_budget) {
              const auto [lo, hi] = std::minmax(ia, ib);
              out.push_back(EncodeTriangularPair(lo, hi, n));
            } else {
              ++local.dropped;
            }
          }
        }
      }
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  local.candidate_pairs = out.size();
  if (out.size() > options.max_candidates) {
    local.dropped += out.size() - options.max_candidates;
    out.resize(options.max_candidates);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace dd::approx
