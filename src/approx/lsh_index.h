// Near-pair candidate generation for the stratified approximate build:
// enumerates row pairs likely to sit in the low-level (small-distance)
// cells of the matching relation, so those influential-but-rare pairs
// are counted exactly while the uniform tail sample covers the rest.
//
// Correctness note (why this can be aggressive): stratified estimation
// is valid for ANY near stratum — the tail sampler excludes exactly the
// surfaced pairs and the estimator weights the remainder, so blocking
// recall affects only estimator VARIANCE, never its validity. Caps,
// bucket skips, and family heuristics below are therefore safe; what is
// dropped is counted in LshStats and the approx.blocking_dropped
// counter instead of silently vanishing.
//
// Schemes by BlockingFamily (metric/metric.h):
//  * kTokenSet  — minhash banding over whitespace token sets.
//  * kQGram     — minhash banding over the value's q-gram set.
//  * kEdit      — minhash banding over 2-grams, with a length bucket
//                 folded into each band key (|len(a)-len(b)| lower-
//                 bounds edit distance, so distant length buckets can
//                 never be near); adjacent buckets are bridged by
//                 emitting each value into its own and the next bucket.
//  * kNumeric   — sort distinct values, pair each with its `window`
//                 nearest neighbors.
//  * kNone      — the attribute contributes no candidates.
//
// Everything operates on distinct values (matching/value_cache.h
// interning) and expands value-id pairs to row pairs at the end; all
// hashing is seeded and the output is a sorted, deduplicated, capped
// list of triangular pair indices — deterministic for a given relation
// and options at any thread count.

#ifndef DD_APPROX_LSH_INDEX_H_
#define DD_APPROX_LSH_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "matching/builder.h"

namespace dd::approx {

struct LshOptions {
  bool enabled = true;
  std::size_t bands = 8;       // minhash bands per attribute
  std::size_t band_rows = 2;   // hash rows per band (bands*band_rows sigs)
  std::size_t max_bucket = 64;      // skip buckets with more distinct values
  std::size_t numeric_window = 8;   // sorted-neighbor window (kNumeric)
  // Global cap on surfaced near pairs: the sorted candidate list is
  // truncated to this prefix (overflow counted in LshStats::dropped).
  std::uint64_t max_candidates = std::uint64_t{1} << 21;
  std::uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
};

struct LshStats {
  std::uint64_t candidate_pairs = 0;  // surfaced (post-dedup, pre-cap)
  std::uint64_t dropped = 0;          // cut by max_candidates / expansion cap
  std::uint64_t skipped_buckets = 0;  // buckets over max_bucket
};

// Collects candidate near row pairs across all attributes of
// `resolved`, as sorted unique triangular indices over
// relation.num_rows() rows. `stats` may be null.
std::vector<std::uint64_t> CollectNearPairs(const Relation& relation,
                                            const ResolvedMetrics& resolved,
                                            const LshOptions& options,
                                            LshStats* stats);

}  // namespace dd::approx

#endif  // DD_APPROX_LSH_INDEX_H_
