// Streaming exact grid build: fold every one of the N(N-1)/2 tuple
// pairs directly into the joint/LHS count grids without ever
// materializing the matching relation. Memory is O((dmax+1)^(|X|+|Y|))
// — independent of N — which is what lets the exact leg of the
// accuracy benchmarks run at row counts where a materialized M would
// not fit. Same per-chunk-accumulate / sequential-merge discipline as
// the rest of the codebase: results are bit-identical at any thread
// count (integer histogram adds, deterministic ParallelFor partition).

#ifndef DD_APPROX_EXACT_STREAM_H_
#define DD_APPROX_EXACT_STREAM_H_

#include <memory>

#include "common/result.h"
#include "core/measure_provider.h"
#include "core/rule.h"
#include "data/relation.h"
#include "matching/builder.h"

namespace dd::approx {

// Builds a GridMeasureProvider for `rule` over all pairs of `relation`.
// Attribute order is rule.AllAttributes() (LHS block first), matching
// the index layout GridMeasureProvider expects. Fails when the grid
// would exceed the provider's max_cells bound, on unresolvable
// attributes, or on attributes shared between the rule's sides.
Result<std::unique_ptr<MeasureProvider>> BuildStreamingGridProvider(
    const Relation& relation, const RuleSpec& rule,
    const MatchingOptions& matching);

}  // namespace dd::approx

#endif  // DD_APPROX_EXACT_STREAM_H_
