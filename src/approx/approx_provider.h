// MeasureProvider over the stratified sample: every count is
//
//   count ≈ near_count + w · tail_count,   w = tail_population
//                                              / tail_sampled
//
// — the near stratum is exact (weight 1) and the uniform tail sample is
// inflated by the inverse sampling fraction. total() stays the EXACT
// pair population N(N-1)/2, so D/C/S/Q land on the same scale as the
// exact pipeline's. Wilson score intervals (with finite-population
// correction) on the tail proportion give per-count error bounds; at
// sample fraction 1.0 the weight is exactly 1 and every estimate,
// measure, and determined pattern is bit-identical to the exact
// pipeline (enforced by tests/approx_test.cc).
//
// Estimates preserve the invariants the search relies on: the shared
// monotone rounding keeps CountXY(ϕ[Y]) <= lhs_count() (so C <= 1) and
// lhs_count() <= total() (so D <= 1), and both estimates are monotone
// in the underlying pattern lattice exactly as exact counts are.

#ifndef DD_APPROX_APPROX_PROVIDER_H_
#define DD_APPROX_APPROX_PROVIDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "approx/sampled_builder.h"
#include "common/math_util.h"
#include "common/result.h"
#include "core/measure_provider.h"
#include "core/rule.h"

namespace dd::approx {

class ApproxMeasureProvider : public MeasureProvider {
 public:
  // Builds the per-stratum inner providers ("grid", falling back to
  // "scan_subset" when the lattice exceeds the grid cell bound) for
  // `rule` over the sample's two strata. The sample must outlive the
  // provider and not grow while it is alive (refine.h builds a fresh
  // provider per round).
  static Result<std::unique_ptr<ApproxMeasureProvider>> Create(
      const SampledMatchingBuilder& sample, const RuleSpec& rule,
      double z, std::size_t threads);

  std::uint64_t total() const override { return total_pairs_; }
  void SetLhs(const Levels& lhs) override;
  std::uint64_t lhs_count() const override { return lhs_count_; }
  const Levels& current_lhs() const override { return current_lhs_; }
  std::uint64_t CountXY(const Levels& rhs) override;

  std::unique_ptr<MeasureProvider> CloneForThread() const override;
  bool SupportsConcurrentCountXY() const override;
  std::uint64_t CountXYConcurrent(const Levels& rhs) const override;
  std::uint64_t RowsPerCountXY() const override;

  // ---- Estimation surface (beyond MeasureProvider) ----

  bool exhaustive() const { return exhaustive_; }
  double weight() const { return weight_; }

  // Wilson interval on count(b ⊨ ϕ[X]) for the current ϕ[X], in
  // absolute pair counts over [0, total()]. Zero width when exhaustive.
  Interval LhsCountInterval() const;

  // Same for count(b ⊨ ϕ[XY]) against the current ϕ[X]. Stats-free
  // const counting (the refinement driver probes patterns it already
  // holds counts for).
  Interval XyCountInterval(const Levels& rhs) const;

  std::size_t MemoryUsageBytes() const;

 private:
  ApproxMeasureProvider() = default;

  // near + clamped-weighted tail, the shared monotone estimator.
  std::uint64_t Estimate(std::uint64_t near_count,
                         std::uint64_t tail_count) const;
  Interval CountInterval(std::uint64_t near_count,
                         std::uint64_t tail_count) const;
  std::uint64_t InnerRowsScanned() const;

  std::unique_ptr<MeasureProvider> near_;
  std::unique_ptr<MeasureProvider> tail_;
  std::uint64_t total_pairs_ = 0;
  std::uint64_t tail_population_ = 0;
  std::uint64_t tail_sampled_ = 0;
  double weight_ = 1.0;
  double z_ = 1.959963984540054;
  bool exhaustive_ = false;
  Levels current_lhs_;
  std::uint64_t lhs_count_ = 0;
  std::uint64_t near_lhs_ = 0;
  std::uint64_t tail_lhs_ = 0;
};

}  // namespace dd::approx

#endif  // DD_APPROX_APPROX_PROVIDER_H_
