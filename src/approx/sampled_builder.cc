#include "approx/sampled_builder.h"

#include <atomic>
#include <utility>

#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace dd::approx {

Result<std::unique_ptr<SampledMatchingBuilder>> SampledMatchingBuilder::Build(
    const Relation& relation, const std::vector<std::string>& attributes,
    const MatchingOptions& matching, const ApproxOptions& approx) {
  obs::TraceSpan span("approx_build");
  if (matching.max_pairs != 0) {
    return Status::InvalidArgument(
        "approx build owns its own sampling: matching.max_pairs must be 0 "
        "(use ApproxOptions::sample_target)");
  }
  DD_ASSIGN_OR_RETURN(
      ResolvedMetrics resolved,
      ResolveMatchingMetrics(relation.schema(), attributes, matching));

  auto builder = std::unique_ptr<SampledMatchingBuilder>(
      new SampledMatchingBuilder(attributes, matching.dmax));
  builder->relation_ = &relation;
  builder->resolved_ =
      std::make_unique<ResolvedMetrics>(std::move(resolved));
  const std::uint64_t n = relation.num_rows();
  builder->total_pairs_ = n * (n - 1) / 2;
  builder->threads_ =
      matching.threads == 0 ? DefaultThreads() : matching.threads;

  std::vector<std::uint64_t> near_ks;
  if (approx.lsh.enabled) {
    obs::TraceSpan lsh_span("approx_lsh");
    near_ks = CollectNearPairs(relation, *builder->resolved_, approx.lsh,
                               &builder->lsh_stats_);
  }

  // One payoff hint for the value-cache tables: every level computation
  // the build is expected to perform.
  const std::uint64_t expected_pairs =
      near_ks.size() + std::min(approx.sample_target,
                                builder->total_pairs_ - near_ks.size());
  builder->source_ = std::make_unique<PairLevelSource>(
      relation, *builder->resolved_, matching, expected_pairs,
      builder->threads_);

  {
    obs::TraceSpan near_span("approx_near_build");
    builder->MaterializePairs(near_ks, &builder->near_);
  }
  builder->sampler_ = std::make_unique<PairSampler>(
      builder->total_pairs_, approx.seed, std::move(near_ks));
  builder->GrowTo(approx.sample_target);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("approx.near_pairs").Add(builder->near_pairs());
  registry.GetCounter("approx.blocking_dropped")
      .Add(builder->lsh_stats_.dropped);
  DD_LOG(INFO) << "approx matching built: " << builder->near_pairs()
               << " near + " << builder->tail_sampled() << " / "
               << builder->tail_population() << " tail pairs of "
               << builder->total_pairs_ << " total (fraction "
               << builder->sample_fraction() << "), threads="
               << builder->threads_;
  return builder;
}

void SampledMatchingBuilder::MaterializePairs(
    const std::vector<std::uint64_t>& ks, MatchingRelation* out) {
  const std::size_t offset = out->num_tuples();
  out->ResizeRows(offset + ks.size());
  const std::size_t num_attrs = out->num_attributes();
  const std::uint64_t n = relation_->num_rows();
  std::atomic<std::uint64_t> metric_calls{0};
  ParallelFor("approx_build.pairs", ks.size(), threads_,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                std::vector<Level> levels(num_attrs);
                std::uint64_t calls = 0;
                for (std::size_t r = begin; r < end; ++r) {
                  auto [i, j] = DecodeTriangularPair(ks[r], n);
                  source_->Levels(i, j, levels.data(), &calls);
                  out->SetTuple(offset + r, i, j, levels.data());
                }
                metric_calls.fetch_add(calls, std::memory_order_relaxed);
              });
  obs::MetricsRegistry::Global()
      .GetCounter("matching.distances_computed")
      .Add(metric_calls.load(std::memory_order_relaxed));
}

std::uint64_t SampledMatchingBuilder::GrowTo(std::uint64_t target) {
  obs::TraceSpan span("approx_tail_build");
  const std::vector<std::uint64_t> fresh = sampler_->GrowTo(target);
  if (!fresh.empty()) MaterializePairs(fresh, &tail_);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("approx.sampled_pairs").Add(fresh.size());
  registry.GetGauge("approx.sample_fraction").Set(sample_fraction());
  obs::SetMemoryGauge("approx", MemoryUsageBytes());
  return fresh.size();
}

double SampledMatchingBuilder::sample_fraction() const {
  if (total_pairs_ == 0) return 1.0;
  return static_cast<double>(near_pairs() + tail_sampled()) /
         static_cast<double>(total_pairs_);
}

std::size_t SampledMatchingBuilder::MemoryUsageBytes() const {
  return near_.MemoryUsageBytes() + tail_.MemoryUsageBytes() +
         sampler_->MemoryUsageBytes() + source_->cache_bytes();
}

}  // namespace dd::approx
