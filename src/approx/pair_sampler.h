// Uniform without-replacement sampling of triangular pair indices —
// the tail stratum of the approximate matching build. Indices are drawn
// from {0, ..., total_pairs-1} minus a sorted exclusion list (the
// LSH-blocked near stratum, which is materialized exactly and must not
// be double-counted).
//
// Determinism and growth: the sampler owns one seeded RNG stream, so a
// given (total_pairs, exclusions, seed) always yields the same draw
// sequence, and growing the target only APPENDS draws — every index
// from a smaller target is kept (prefix property). The refinement
// driver relies on this to reuse already-computed pair levels across
// rounds instead of rebuilding the sample.

#ifndef DD_APPROX_PAIR_SAMPLER_H_
#define DD_APPROX_PAIR_SAMPLER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace dd::approx {

class PairSampler {
 public:
  // `excluded` must be sorted ascending and duplicate-free; every entry
  // must be < total_pairs.
  PairSampler(std::uint64_t total_pairs, std::uint64_t seed,
              std::vector<std::uint64_t> excluded);

  // Draws until `target` indices are held in total (clamped to
  // population(); no-op when already reached) and returns ONLY the
  // newly drawn indices, sorted ascending. Rejection-samples while the
  // target is a minority of the population; switches to exhaustive
  // enumeration of the never-drawn remainder when asked for everything
  // (the fraction-1.0 path, where rejection would never terminate in
  // reasonable time).
  std::vector<std::uint64_t> GrowTo(std::uint64_t target);

  // Pairs available to the tail stratum: total minus exclusions.
  std::uint64_t population() const { return population_; }

  // Pairs drawn so far.
  std::uint64_t sampled() const { return sampled_; }

  bool exhausted() const { return sampled_ == population_; }

  std::size_t MemoryUsageBytes() const;

 private:
  bool Excluded(std::uint64_t k) const;

  std::uint64_t total_pairs_;
  std::uint64_t population_;
  std::uint64_t sampled_ = 0;
  Rng rng_;
  std::vector<std::uint64_t> excluded_;  // sorted
  std::unordered_set<std::uint64_t> chosen_;
};

}  // namespace dd::approx

#endif  // DD_APPROX_PAIR_SAMPLER_H_
