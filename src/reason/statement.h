// A differential dependency as a standalone statement: a rule X -> Y
// over attribute names plus a threshold pattern ϕ. Statements are what
// the reasoning layer (implication, triviality, minimal cover — the
// foundations laid out in Song & Chen, TODS 2011, which this paper
// builds on) operates over, independent of any matching relation.

#ifndef DD_REASON_STATEMENT_H_
#define DD_REASON_STATEMENT_H_

#include <string>

#include "core/pattern.h"
#include "core/rule.h"

namespace dd {

struct DdStatement {
  RuleSpec rule;
  Pattern pattern;

  // "([Address] -> [Region], <8, 3>)" — the paper's notation.
  std::string ToString() const;

  friend bool operator==(const DdStatement& a, const DdStatement& b) {
    return a.rule.lhs == b.rule.lhs && a.rule.rhs == b.rule.rhs &&
           a.pattern == b.pattern;
  }
};

// Validates arity: one threshold per attribute on each side, attributes
// non-empty and disjoint across sides, thresholds within [0, dmax].
Status ValidateStatement(const DdStatement& statement, int dmax);

}  // namespace dd

#endif  // DD_REASON_STATEMENT_H_
