#include "reason/implication.h"

#include <algorithm>
#include <optional>

#include "detect/violation_detector.h"

namespace dd {

namespace {

// Threshold of attribute `name` on the (rule side, pattern side) pair,
// or nullopt when the attribute is absent from that side.
std::optional<int> ThresholdOf(const std::vector<std::string>& attrs,
                               const Levels& levels, const std::string& name) {
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == name) return levels[i];
  }
  return std::nullopt;
}

}  // namespace

bool IsTrivial(const DdStatement& b, int dmax) {
  for (int v : b.pattern.rhs) {
    if (v < dmax) return false;
  }
  return true;
}

bool Implies(const DdStatement& a, const DdStatement& b, int dmax) {
  if (IsTrivial(b, dmax)) return true;

  // Premise: every X attribute of a must be constrained at least as
  // tightly by b (attributes b does not constrain are implicitly dmax,
  // which can never be tighter than a finite ϕ_a[A] < dmax).
  for (std::size_t i = 0; i < a.rule.lhs.size(); ++i) {
    const int a_threshold = a.pattern.lhs[i];
    if (a_threshold >= dmax) continue;  // Unlimited in a: no requirement.
    std::optional<int> b_threshold =
        ThresholdOf(b.rule.lhs, b.pattern.lhs, a.rule.lhs[i]);
    if (!b_threshold.has_value() || *b_threshold > a_threshold) return false;
  }

  // Conclusion: every Y attribute of b must be concluded at least as
  // tightly by a (an attribute missing from a's Y side is unconstrained
  // by a, so b demanding anything below dmax on it is not implied).
  for (std::size_t i = 0; i < b.rule.rhs.size(); ++i) {
    const int b_threshold = b.pattern.rhs[i];
    if (b_threshold >= dmax) continue;  // Trivial conclusion component.
    std::optional<int> a_threshold =
        ThresholdOf(a.rule.rhs, a.pattern.rhs, b.rule.rhs[i]);
    if (!a_threshold.has_value() || *a_threshold > b_threshold) return false;
  }
  return true;
}

std::vector<DdStatement> MinimalCover(std::vector<DdStatement> statements,
                                      int dmax) {
  std::vector<DdStatement> cover;
  for (std::size_t i = 0; i < statements.size(); ++i) {
    if (IsTrivial(statements[i], dmax)) continue;
    bool implied = false;
    for (std::size_t j = 0; j < statements.size() && !implied; ++j) {
      if (i == j) continue;
      if (!Implies(statements[j], statements[i], dmax)) continue;
      // Mutual implication (equivalent statements): keep the earliest.
      if (Implies(statements[i], statements[j], dmax) && i < j) continue;
      implied = true;
    }
    if (!implied) cover.push_back(statements[i]);
  }
  return cover;
}

Result<std::size_t> CountViolations(const Relation& relation,
                                    const DdStatement& statement,
                                    const MatchingOptions& matching_options) {
  DD_RETURN_IF_ERROR(ValidateStatement(statement, matching_options.dmax));
  DD_ASSIGN_OR_RETURN(PairList found,
                      DetectViolations(relation, statement.rule,
                                       statement.pattern, matching_options));
  return found.size();
}

Result<bool> Satisfies(const Relation& relation, const DdStatement& statement,
                       const MatchingOptions& matching_options) {
  DD_ASSIGN_OR_RETURN(std::size_t violations,
                      CountViolations(relation, statement, matching_options));
  return violations == 0;
}

}  // namespace dd
