#include "reason/statement.h"

#include <algorithm>

#include "common/string_util.h"

namespace dd {

std::string DdStatement::ToString() const {
  std::string out = "([";
  out += Join(rule.lhs, ", ");
  out += "] -> [";
  out += Join(rule.rhs, ", ");
  out += "], <";
  for (std::size_t i = 0; i < pattern.lhs.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%d", pattern.lhs[i]);
  }
  for (std::size_t i = 0; i < pattern.rhs.size(); ++i) {
    out += ", ";
    out += StrFormat("%d", pattern.rhs[i]);
  }
  out += ">)";
  return out;
}

Status ValidateStatement(const DdStatement& statement, int dmax) {
  if (statement.rule.lhs.empty() || statement.rule.rhs.empty()) {
    return Status::InvalidArgument("statement must have non-empty X and Y");
  }
  if (statement.rule.lhs.size() != statement.pattern.lhs.size() ||
      statement.rule.rhs.size() != statement.pattern.rhs.size()) {
    return Status::InvalidArgument(
        "pattern arity does not match rule attribute counts");
  }
  for (const auto& name : statement.rule.lhs) {
    if (std::find(statement.rule.rhs.begin(), statement.rule.rhs.end(),
                  name) != statement.rule.rhs.end()) {
      return Status::InvalidArgument("attribute on both sides: " + name);
    }
  }
  auto check_levels = [dmax](const Levels& levels) {
    for (int v : levels) {
      if (v < 0 || v > dmax) return false;
    }
    return true;
  };
  if (!check_levels(statement.pattern.lhs) ||
      !check_levels(statement.pattern.rhs)) {
    return Status::OutOfRange("threshold outside [0, dmax]");
  }
  return Status::Ok();
}

}  // namespace dd
