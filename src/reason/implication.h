// Sound (sufficient) implication checking, triviality, and minimal
// covers for sets of differential dependencies. The subsumption order
// follows Song & Chen (TODS 2011): a DD a implies a DD b when b's
// premise is at least as restrictive and b's conclusion at least as
// permissive on corresponding attributes:
//
//   X_a ⊆ X_b  with  ϕ_b[A] <= ϕ_a[A]  for every A ∈ X_a, and
//   Y_b ⊆ Y_a  with  ϕ_b[A] >= ϕ_a[A]  for every A ∈ Y_b.
//
// (Attributes absent from a side carry the implicit unlimited threshold
// dmax, which is why shrinking X_a into X_b and shrinking Y_b into Y_a
// are the permissive directions.) Statements whose conclusion is
// unlimited on every attribute are trivially satisfied by any relation.

#ifndef DD_REASON_IMPLICATION_H_
#define DD_REASON_IMPLICATION_H_

#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "matching/builder.h"
#include "reason/statement.h"

namespace dd {

// True when `b` is trivially satisfied by every relation instance:
// every conclusion threshold equals dmax (any pair satisfies it).
bool IsTrivial(const DdStatement& b, int dmax);

// Sound implication test: true means every relation satisfying `a`
// also satisfies `b` (false means "not provable by subsumption", not
// necessarily "not implied"). `dmax` supplies the implicit threshold of
// attributes missing from a side.
bool Implies(const DdStatement& a, const DdStatement& b, int dmax);

// Removes from `statements` every DD implied by another statement of
// the set (and every trivial DD), returning a minimal cover under the
// subsumption order. Deterministic: earlier statements win ties.
std::vector<DdStatement> MinimalCover(std::vector<DdStatement> statements,
                                      int dmax);

// Counts the violating tuple pairs of `statement` in `relation`
// (0 means the DD is satisfied). Builds the pairwise matching relation
// over the statement's attributes with `matching_options`.
Result<std::size_t> CountViolations(const Relation& relation,
                                    const DdStatement& statement,
                                    const MatchingOptions& matching_options);

// Convenience: true when `statement` holds on `relation` exactly.
Result<bool> Satisfies(const Relation& relation, const DdStatement& statement,
                       const MatchingOptions& matching_options);

}  // namespace dd

#endif  // DD_REASON_IMPLICATION_H_
