// Synthetic dataset generators standing in for the paper's three real
// data sets (Cora, Restaurant, CiteSeer; see DESIGN.md §3 for the
// substitution rationale) plus the running Hotel example of Table I.
//
// Each generator produces a clean ("truth") instance that embeds the
// distance constraints the paper's rules mine:
//
//   Rule 1: cora(author, title -> venue, year)
//   Rule 2: cora(venue -> address, publisher, editor)
//   Rule 3: restaurant(name, address -> city, type)   [name/type independent]
//   Rule 4: citeseer(address, affiliation, description -> subject)
//
// Records are grouped into entities (duplicate clusters); within an
// entity, values are format-perturbed variants of canonical values, so
// pairwise distances are small within entities and large across them.

#ifndef DD_DATA_GENERATORS_H_
#define DD_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/perturb.h"
#include "data/relation.h"

namespace dd {

// A generated instance plus the entity (duplicate-cluster) id of every
// row; the corruptor uses entity ids to construct ground-truth
// violations.
struct GeneratedData {
  Relation relation;
  std::vector<std::size_t> entity_ids;
};

struct CoraOptions {
  std::size_t num_entities = 300;     // distinct papers
  std::size_t min_duplicates = 2;     // records per paper (inclusive)
  std::size_t max_duplicates = 5;
  std::uint64_t seed = 42;
  PerturbOptions perturb;
};

struct RestaurantOptions {
  std::size_t num_entities = 300;
  std::size_t min_duplicates = 2;
  std::size_t max_duplicates = 4;
  std::uint64_t seed = 42;
  PerturbOptions perturb;
};

struct CiteseerOptions {
  std::size_t num_entities = 250;     // (institution, topic) groups
  std::size_t min_duplicates = 2;
  std::size_t max_duplicates = 5;
  std::uint64_t seed = 42;
  PerturbOptions perturb;
};

// cora(author, title, venue, year, address, publisher, editor).
// venue functionally determines address/publisher/editor (with format
// noise), supporting both Rule 1 and Rule 2.
GeneratedData GenerateCora(const CoraOptions& options);

// restaurant(name, address, city, type). city is determined by the
// street pool of the address; type is drawn independently per record so
// that no dependency on type exists (reproducing the Table IV finding);
// name is consistent per entity but redundant given address.
GeneratedData GenerateRestaurant(const RestaurantOptions& options);

// citeseer(address, affiliation, description, subject). subject is the
// topic of the group; description is built from topic keywords.
GeneratedData GenerateCiteseer(const CiteseerOptions& options);

// The six-tuple Hotel instance of the paper's Table I
// (Name, Address, Region), entities {0,0,0,1,1,1}.
GeneratedData HotelExample();

}  // namespace dd

#endif  // DD_DATA_GENERATORS_H_
