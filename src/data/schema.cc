#include "data/schema.h"

#include <utility>

#include "common/logging.h"

namespace dd {

std::string_view AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kString:
      return "string";
    case AttributeType::kNumeric:
      return "numeric";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes) {
  for (auto& a : attributes) {
    Status s = AddAttribute(std::move(a));
    DD_CHECK(s.ok());
  }
}

Status Schema::AddAttribute(Attribute attribute) {
  if (Contains(attribute.name)) {
    return Status::AlreadyExists("duplicate attribute name: " + attribute.name);
  }
  attributes_.push_back(std::move(attribute));
  return Status::Ok();
}

Result<std::size_t> Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("attribute not in schema: " + std::string(name));
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

Result<std::vector<std::size_t>> Schema::ResolveAll(
    const std::vector<std::string>& names) const {
  std::vector<std::size_t> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    DD_ASSIGN_OR_RETURN(std::size_t idx, IndexOf(n));
    out.push_back(idx);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += AttributeTypeName(attributes_[i].type);
  }
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (std::size_t i = 0; i < a.attributes_.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].type != b.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace dd
