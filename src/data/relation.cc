#include "data/relation.h"

#include <utility>

#include "common/string_util.h"

namespace dd {

Status Relation::AddRow(std::vector<std::string> values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu", values.size(),
        schema_.num_attributes()));
  }
  rows_.push_back(std::move(values));
  return Status::Ok();
}

Result<std::string> Relation::Value(std::size_t r,
                                    std::string_view name) const {
  if (r >= rows_.size()) {
    return Status::OutOfRange(StrFormat("row %zu of %zu", r, rows_.size()));
  }
  DD_ASSIGN_OR_RETURN(std::size_t idx, schema_.IndexOf(name));
  return rows_[r][idx];
}

Result<Relation> Relation::Slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > rows_.size()) {
    return Status::OutOfRange(
        StrFormat("slice [%zu, %zu) of %zu rows", begin, end, rows_.size()));
  }
  Relation out(schema_);
  out.Reserve(end - begin);
  for (std::size_t r = begin; r < end; ++r) {
    Status s = out.AddRow(rows_[r]);
    if (!s.ok()) return s;
  }
  return out;
}

}  // namespace dd
