// RFC-4180-style CSV reader/writer for Relation. Quoted fields may
// contain separators, quotes (doubled), and newlines.

#ifndef DD_DATA_CSV_H_
#define DD_DATA_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "data/relation.h"

namespace dd {

struct CsvOptions {
  char separator = ',';
  // When true the first record is a header naming the attributes.
  bool has_header = true;
};

// Parses CSV text into a Relation. All attributes are typed kString;
// callers may re-declare numeric attributes via the schema afterwards.
// Without a header, attributes are named c0, c1, ....
Result<Relation> ParseCsv(std::string_view text, const CsvOptions& options = {});

// Reads a CSV file from disk.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

// Serializes a relation (header + rows) to CSV text.
std::string ToCsv(const Relation& relation, const CsvOptions& options = {});

// Writes a relation to a CSV file.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace dd

#endif  // DD_DATA_CSV_H_
