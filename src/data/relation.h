// Relation: a row-store instance of a Schema. Values are stored as
// strings; numeric attributes are parsed on demand by the metric layer.

#ifndef DD_DATA_RELATION_H_
#define DD_DATA_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/schema.h"

namespace dd {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  // Appends a row; fails with InvalidArgument on arity mismatch.
  Status AddRow(std::vector<std::string> values);

  const std::vector<std::string>& row(std::size_t r) const { return rows_[r]; }
  const std::string& at(std::size_t r, std::size_t c) const {
    return rows_[r][c];
  }
  std::string& at(std::size_t r, std::size_t c) { return rows_[r][c]; }

  // Value of attribute `name` in row `r`, or NotFound.
  Result<std::string> Value(std::size_t r, std::string_view name) const;

  // New relation containing rows [begin, end).
  Result<Relation> Slice(std::size_t begin, std::size_t end) const;

  void Reserve(std::size_t rows) { rows_.reserve(rows); }

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dd

#endif  // DD_DATA_RELATION_H_
