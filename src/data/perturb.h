// Text perturbation used by the synthetic dataset generators to mimic
// the real-world representation-format variations the paper motivates
// ("Fifth Avenue, 61st Street" vs "5th Avenue, 61st St."): dictionary
// abbreviations, character-level typos, token dropping, and punctuation
// or case noise.

#ifndef DD_DATA_PERTURB_H_
#define DD_DATA_PERTURB_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace dd {

struct PerturbOptions {
  // Probability that each applicable dictionary abbreviation fires.
  double abbreviation_prob = 0.5;
  // Expected number of character-level edits (insert/delete/substitute).
  double mean_typos = 0.7;
  // Probability of dropping one token (never the only token).
  double token_drop_prob = 0.15;
  // Probability of lowercasing the whole value.
  double lowercase_prob = 0.1;
  // Probability of stripping punctuation characters.
  double strip_punct_prob = 0.15;
};

// Applies format-variation noise to strings. Stateless apart from the
// abbreviation dictionary; all randomness comes from the caller's Rng.
class TextPerturber {
 public:
  // Uses the built-in dictionary of common abbreviations (Street->St.,
  // Avenue->Ave., and bidirectional forms).
  TextPerturber();
  explicit TextPerturber(
      std::vector<std::pair<std::string, std::string>> abbreviations);

  // Returns a perturbed copy of `value`.
  std::string Perturb(std::string_view value, const PerturbOptions& options,
                      Rng* rng) const;

  // Individual perturbation stages, exposed for testing.
  std::string ApplyAbbreviations(std::string_view value, double prob,
                                 Rng* rng) const;
  static std::string ApplyTypos(std::string_view value, double mean_typos,
                                Rng* rng);
  static std::string DropToken(std::string_view value, Rng* rng);
  static std::string StripPunctuation(std::string_view value);

 private:
  std::vector<std::pair<std::string, std::string>> abbreviations_;
};

}  // namespace dd

#endif  // DD_DATA_PERTURB_H_
