#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace dd {

namespace {

// Splits CSV text into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                       char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  std::size_t i = 0;
  auto end_field = [&] {
    fields.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == sep) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      ++i;  // Tolerate CRLF.
      continue;
    }
    if (c == '\n') {
      end_record();
      ++i;
      continue;
    }
    field += c;
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  // Final record without a trailing newline.
  if (!field.empty() || field_started || !fields.empty()) {
    end_record();
  }
  return records;
}

bool NeedsQuoting(std::string_view field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string* out, std::string_view field, char sep) {
  if (!NeedsQuoting(field, sep)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<Relation> ParseCsv(std::string_view text, const CsvOptions& options) {
  DD_ASSIGN_OR_RETURN(auto records, Tokenize(text, options.separator));
  if (records.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  Schema schema;
  std::size_t first_data = 0;
  if (options.has_header) {
    for (const auto& name : records[0]) {
      DD_RETURN_IF_ERROR(
          schema.AddAttribute({std::string(Trim(name)), AttributeType::kString}));
    }
    first_data = 1;
  } else {
    for (std::size_t c = 0; c < records[0].size(); ++c) {
      DD_RETURN_IF_ERROR(
          schema.AddAttribute({StrFormat("c%zu", c), AttributeType::kString}));
    }
  }
  Relation rel(schema);
  rel.Reserve(records.size() - first_data);
  for (std::size_t r = first_data; r < records.size(); ++r) {
    DD_RETURN_IF_ERROR(rel.AddRow(std::move(records[r])));
  }
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Relation& relation, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (std::size_t c = 0; c < relation.num_attributes(); ++c) {
      if (c > 0) out.push_back(options.separator);
      AppendField(&out, relation.schema().attribute(c).name, options.separator);
    }
    out.push_back('\n');
  }
  for (std::size_t r = 0; r < relation.num_rows(); ++r) {
    for (std::size_t c = 0; c < relation.num_attributes(); ++c) {
      if (c > 0) out.push_back(options.separator);
      AppendField(&out, relation.at(r, c), options.separator);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsv(relation, options);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace dd
