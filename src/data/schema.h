// Relational schema: ordered attributes with a declared type. The type
// drives the default distance metric chosen for an attribute (edit
// distance for strings, absolute difference for numerics).

#ifndef DD_DATA_SCHEMA_H_
#define DD_DATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dd {

enum class AttributeType {
  kString,
  kNumeric,
};

std::string_view AttributeTypeName(AttributeType type);

struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kString;
};

// Immutable after construction apart from AddAttribute. Attribute names
// must be unique (case-sensitive).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  // Appends an attribute; fails with AlreadyExists on a duplicate name.
  Status AddAttribute(Attribute attribute);

  std::size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of the attribute called `name`, or NotFound.
  Result<std::size_t> IndexOf(std::string_view name) const;

  // True when `name` is an attribute of this schema.
  bool Contains(std::string_view name) const;

  // Resolves a list of names to indices; fails on the first unknown name.
  Result<std::vector<std::size_t>> ResolveAll(
      const std::vector<std::string>& names) const;

  // "name:type, name:type, ..." — for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace dd

#endif  // DD_DATA_SCHEMA_H_
