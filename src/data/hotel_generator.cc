#include "data/generators.h"

#include "common/logging.h"

namespace dd {

GeneratedData HotelExample() {
  Schema schema({{"Name", AttributeType::kString},
                 {"Address", AttributeType::kString},
                 {"Region", AttributeType::kString}});
  Relation rel(schema);
  const char* rows[][3] = {
      {"West Wood Hotel", "Fifth Avenue, 61st Street", "Chicago"},
      {"West Wood", "Fifth Avenue, 61st Street", "Chicago, IL"},
      {"West Wood (61)", "5th Avenue, 61st St.", "Chicago, IL"},
      {"St. Regis Hotel", "No.3, West Lake Road.", "Boston, MA"},
      {"St. Regis Hotel", "#3, West Lake Rd.", "Boston"},
      {"St. Regis", "#3, West Lake Rd.", "Chicago, MA"},
  };
  for (const auto& r : rows) {
    Status s = rel.AddRow({r[0], r[1], r[2]});
    DD_CHECK(s.ok());
  }
  return GeneratedData{std::move(rel), {0, 0, 0, 1, 1, 1}};
}

}  // namespace dd
