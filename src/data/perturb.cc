#include "data/perturb.h"

#include <cctype>

#include "common/string_util.h"

namespace dd {

namespace {

const std::pair<const char*, const char*> kDefaultAbbreviations[] = {
    {"Street", "St."},     {"Avenue", "Ave."},     {"Road", "Rd."},
    {"Boulevard", "Blvd."}, {"Drive", "Dr."},      {"Number", "No."},
    {"First", "1st"},      {"Second", "2nd"},      {"Third", "3rd"},
    {"Fourth", "4th"},     {"Fifth", "5th"},       {"Sixth", "6th"},
    {"Seventh", "7th"},    {"Eighth", "8th"},      {"Ninth", "9th"},
    {"International", "Intl."}, {"Conference", "Conf."},
    {"Proceedings", "Proc."},   {"Journal", "J."},
    {"Transactions", "Trans."}, {"University", "Univ."},
    {"Department", "Dept."},    {"Association", "Assoc."},
    {"Symposium", "Symp."},     {"Restaurant", "Rest."},
    {"and", "&"},
};

// Replaces the first occurrence of `from` (as a substring) with `to`.
bool ReplaceFirst(std::string* s, std::string_view from, std::string_view to) {
  std::size_t pos = s->find(from);
  if (pos == std::string::npos) return false;
  s->replace(pos, from.size(), to);
  return true;
}

}  // namespace

TextPerturber::TextPerturber() {
  abbreviations_.reserve(std::size(kDefaultAbbreviations));
  for (const auto& [longf, shortf] : kDefaultAbbreviations) {
    abbreviations_.emplace_back(longf, shortf);
  }
}

TextPerturber::TextPerturber(
    std::vector<std::pair<std::string, std::string>> abbreviations)
    : abbreviations_(std::move(abbreviations)) {}

std::string TextPerturber::ApplyAbbreviations(std::string_view value,
                                              double prob, Rng* rng) const {
  std::string out(value);
  for (const auto& [longf, shortf] : abbreviations_) {
    if (out.find(longf) != std::string::npos) {
      if (rng->NextBool(prob)) ReplaceFirst(&out, longf, shortf);
    } else if (out.find(shortf) != std::string::npos) {
      // Expand in the other direction occasionally: both representation
      // directions occur in real data.
      if (rng->NextBool(prob * 0.3)) ReplaceFirst(&out, shortf, longf);
    }
  }
  return out;
}

std::string TextPerturber::ApplyTypos(std::string_view value,
                                      double mean_typos, Rng* rng) {
  std::string out(value);
  if (out.empty() || mean_typos <= 0.0) return out;
  // Poisson-ish draw: number of edits = floor(mean) + Bernoulli(frac).
  int edits = static_cast<int>(mean_typos);
  if (rng->NextBool(mean_typos - static_cast<double>(edits))) ++edits;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    std::size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(3)) {
      case 0:  // substitute
        out[pos] = static_cast<char>('a' + rng->NextBounded(26));
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // insert
        out.insert(pos, 1, static_cast<char>('a' + rng->NextBounded(26)));
        break;
    }
  }
  return out;
}

std::string TextPerturber::DropToken(std::string_view value, Rng* rng) {
  std::vector<std::string> tokens = SplitWhitespace(value);
  if (tokens.size() <= 1) return std::string(value);
  tokens.erase(tokens.begin() +
               static_cast<std::ptrdiff_t>(rng->NextBounded(tokens.size())));
  return Join(tokens, " ");
}

std::string TextPerturber::StripPunctuation(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (!std::ispunct(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

std::string TextPerturber::Perturb(std::string_view value,
                                   const PerturbOptions& options,
                                   Rng* rng) const {
  std::string out = ApplyAbbreviations(value, options.abbreviation_prob, rng);
  if (rng->NextBool(options.token_drop_prob)) out = DropToken(out, rng);
  if (rng->NextBool(options.strip_punct_prob)) out = StripPunctuation(out);
  if (rng->NextBool(options.lowercase_prob)) out = ToLower(out);
  out = ApplyTypos(out, options.mean_typos, rng);
  return out;
}

}  // namespace dd
