#include "data/generators.h"

#include <array>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace dd {

namespace {

struct InstitutionInfo {
  const char* affiliation;
  const char* address;
};

constexpr InstitutionInfo kInstitutions[] = {
    {"Department of Computer Science, Stanford University",
     "353 Jane Stanford Way, Stanford, CA"},
    {"School of Computer Science, Carnegie Mellon University",
     "5000 Forbes Avenue, Pittsburgh, PA"},
    {"Computer Science and Artificial Intelligence Laboratory, MIT",
     "32 Vassar Street, Cambridge, MA"},
    {"Department of Computer Science, University of Illinois",
     "201 North Goodwin Avenue, Urbana, IL"},
    {"Department of Computer Sciences, University of Wisconsin",
     "1210 West Dayton Street, Madison, WI"},
    {"School of Software, Tsinghua University",
     "30 Shuangqing Road, Beijing"},
    {"Department of Computer Science and Engineering, HKUST",
     "Clear Water Bay, Kowloon, Hong Kong"},
    {"Department of Systems Engineering, Chinese University of Hong Kong",
     "Shatin, New Territories, Hong Kong"},
    {"Department of Computer Science, Cornell University",
     "107 Hoy Road, Ithaca, NY"},
    {"Computer Science Division, University of California Berkeley",
     "387 Soda Hall, Berkeley, CA"},
    {"AT&T Labs Research", "180 Park Avenue, Florham Park, NJ"},
    {"IBM Almaden Research Center", "650 Harry Road, San Jose, CA"},
};

struct TopicInfo {
  const char* subject;
  std::array<const char*, 8> keywords;
};

constexpr TopicInfo kTopics[] = {
    {"Databases",
     {"query", "transaction", "index", "relational", "storage", "schema",
      "optimization", "concurrency"}},
    {"Machine Learning",
     {"classifier", "training", "kernel", "gradient", "feature", "bayesian",
      "regression", "boosting"}},
    {"Information Retrieval",
     {"ranking", "document", "corpus", "relevance", "retrieval", "indexing",
      "term", "precision"}},
    {"Data Mining",
     {"pattern", "frequent", "association", "clustering", "itemset",
      "outlier", "stream", "support"}},
    {"Computer Networks",
     {"routing", "protocol", "bandwidth", "congestion", "packet", "wireless",
      "latency", "topology"}},
    {"Operating Systems",
     {"kernel", "scheduling", "filesystem", "virtual", "memory", "process",
      "driver", "cache"}},
    {"Computational Theory",
     {"complexity", "automata", "reduction", "bound", "approximation",
      "hardness", "algorithm", "proof"}},
};

}  // namespace

GeneratedData GenerateCiteseer(const CiteseerOptions& options) {
  DD_CHECK_GE(options.max_duplicates, options.min_duplicates);
  DD_CHECK_GE(options.min_duplicates, 1u);
  Rng rng(options.seed);
  TextPerturber perturber;

  Schema schema({{"address", AttributeType::kString},
                 {"affiliation", AttributeType::kString},
                 {"description", AttributeType::kString},
                 {"subject", AttributeType::kString}});
  Relation rel(schema);
  std::vector<std::size_t> entity_ids;

  for (std::size_t e = 0; e < options.num_entities; ++e) {
    // An entity is a research group: one institution working on one
    // topic. address+affiliation+description jointly determine subject.
    const InstitutionInfo& inst =
        kInstitutions[rng.NextBounded(std::size(kInstitutions))];
    const TopicInfo& topic = kTopics[rng.NextBounded(std::size(kTopics))];

    // Canonical description: a keyword-heavy abstract fragment.
    std::vector<std::string> words;
    const std::size_t len = 5 + rng.NextBounded(4);
    for (std::size_t w = 0; w < len; ++w) {
      words.emplace_back(topic.keywords[rng.NextBounded(topic.keywords.size())]);
    }
    const std::string description = Join(words, " ");

    const std::size_t copies =
        options.min_duplicates +
        rng.NextBounded(options.max_duplicates - options.min_duplicates + 1);
    for (std::size_t c = 0; c < copies; ++c) {
      std::string address_v = perturber.Perturb(inst.address, options.perturb, &rng);
      std::string affiliation_v =
          perturber.Perturb(inst.affiliation, options.perturb, &rng);
      std::string description_v =
          perturber.Perturb(description, options.perturb, &rng);
      // Subject labels carry light format noise only (case, typos).
      std::string subject_v = TextPerturber::ApplyTypos(
          rng.NextBool(0.2) ? ToLower(topic.subject) : topic.subject,
          options.perturb.mean_typos * 0.3, &rng);
      Status s = rel.AddRow({std::move(address_v), std::move(affiliation_v),
                             std::move(description_v), std::move(subject_v)});
      DD_CHECK(s.ok());
      entity_ids.push_back(e);
    }
  }
  return GeneratedData{std::move(rel), std::move(entity_ids)};
}

}  // namespace dd
