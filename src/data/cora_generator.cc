#include "data/generators.h"

#include <array>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace dd {

namespace {

constexpr const char* kFirstNames[] = {
    "Andrew", "Lei",    "Hong",  "Shaoxu", "Wenfei", "Divesh", "Philip",
    "Rachel", "Laura",  "Nick",  "Jian",   "Hector", "Serge",  "Jennifer",
    "David",  "Alon",   "Dan",   "Peter",  "Susan",  "Michael"};

constexpr const char* kLastNames[] = {
    "McCallum", "Chen",   "Cheng",    "Song",   "Fan",     "Srivastava",
    "Yu",       "Miller", "Haas",     "Koudas", "Pei",     "Garcia-Molina",
    "Abiteboul", "Widom", "DeWitt",   "Halevy", "Suciu",   "Buneman",
    "Davidson", "Stonebraker"};

constexpr const char* kTitleWords[] = {
    "efficient", "discovery",  "of",          "functional",  "dependencies",
    "from",      "relational", "data",        "approximate", "string",
    "matching",  "record",     "linkage",     "quality",     "cleaning",
    "mining",    "association", "rules",      "large",       "databases",
    "query",     "processing", "distributed", "systems",     "learning",
    "clustering", "reference",  "resolution", "conditional", "constraints",
    "metric",    "distance",   "thresholds",  "violation",   "detection"};

struct VenueInfo {
  const char* venue;
  const char* address;
  const char* publisher;
  const char* editor;
};

// Each venue functionally determines address, publisher and editor (the
// clean Rule 2 dependency), modulo format perturbations per record.
constexpr VenueInfo kVenues[] = {
    {"Proceedings of the International Conference on Data Engineering",
     "1730 Massachusetts Avenue, Washington", "IEEE Computer Society",
     "Michael Carey"},
    {"Proceedings of the ACM SIGMOD International Conference",
     "2 Penn Plaza, New York", "ACM Press", "Stanley Zdonik"},
    {"Proceedings of the International Conference on Very Large Data Bases",
     "461 Alta Avenue, Los Gatos", "VLDB Endowment", "Umeshwar Dayal"},
    {"ACM Transactions on Database Systems", "2 Penn Plaza, New York",
     "ACM Press", "Zehra Meral Ozsoyoglu"},
    {"IEEE Transactions on Knowledge and Data Engineering",
     "10662 Los Vaqueros Circle, Los Alamitos", "IEEE Computer Society",
     "Jian Pei"},
    {"Proceedings of the International Conference on Machine Learning",
     "340 Pine Street, San Francisco", "Morgan Kaufmann", "Tom Fawcett"},
    {"Proceedings of the Conference on Knowledge Discovery and Data Mining",
     "2 Penn Plaza, New York", "ACM Press", "Usama Fayyad"},
    {"Journal of Machine Learning Research", "1 Rogers Street, Cambridge",
     "MIT Press", "Leslie Kaelbling"},
    {"The VLDB Journal", "175 Fifth Avenue, New York", "Springer-Verlag",
     "Renee Miller"},
    {"Data and Knowledge Engineering", "Radarweg 29, Amsterdam",
     "Elsevier Science", "Peter Chen"},
    {"Theoretical Computer Science", "Radarweg 29, Amsterdam",
     "Elsevier Science", "Giorgio Ausiello"},
    {"Proceedings of the Symposium on Principles of Database Systems",
     "2 Penn Plaza, New York", "ACM Press", "Leonid Libkin"},
    {"Intelligent Data Analysis", "6751 Tepper Drive, Clifton",
     "IOS Press", "Fazel Famili"},
    {"Proceedings of the Conference on Information and Knowledge Management",
     "2 Penn Plaza, New York", "ACM Press", "Jimmy Lin"},
    {"Computer Journal", "Great Clarendon Street, Oxford",
     "Oxford University Press", "Fionn Murtagh"},
    {"IEEE Data Engineering Bulletin",
     "10662 Los Vaqueros Circle, Los Alamitos", "IEEE Computer Society",
     "David Lomet"},
};

// Produces an author-name format variant: the real Cora data mixes
// "First Last", "F. Last", "Last, F." and "Last, First".
std::string AuthorVariant(const std::string& first, const std::string& last,
                          Rng* rng) {
  switch (rng->NextBounded(4)) {
    case 0:
      return first + " " + last;
    case 1:
      return std::string(1, first[0]) + ". " + last;
    case 2:
      return last + ", " + std::string(1, first[0]) + ".";
    default:
      return last + ", " + first;
  }
}

std::string YearVariant(int year, Rng* rng) {
  // Rarely two-digit or parenthesized, as in raw citation strings; the
  // dominant 4-digit form keeps same-year pairs close under q-gram
  // distance while different years share almost no q-grams.
  switch (rng->NextBounded(12)) {
    case 0:
      return StrFormat("'%02d", year % 100);
    case 1:
      return StrFormat("(%d)", year);
    default:
      return StrFormat("%d", year);
  }
}

}  // namespace

GeneratedData GenerateCora(const CoraOptions& options) {
  DD_CHECK_GE(options.max_duplicates, options.min_duplicates);
  DD_CHECK_GE(options.min_duplicates, 1u);
  Rng rng(options.seed);
  TextPerturber perturber;

  Schema schema({{"author", AttributeType::kString},
                 {"title", AttributeType::kString},
                 {"venue", AttributeType::kString},
                 {"year", AttributeType::kString},
                 {"address", AttributeType::kString},
                 {"publisher", AttributeType::kString},
                 {"editor", AttributeType::kString}});
  Relation rel(schema);
  std::vector<std::size_t> entity_ids;

  for (std::size_t e = 0; e < options.num_entities; ++e) {
    // Canonical paper.
    const std::string first = kFirstNames[rng.NextBounded(std::size(kFirstNames))];
    const std::string last = kLastNames[rng.NextBounded(std::size(kLastNames))];
    std::vector<std::string> title_words;
    const std::size_t title_len = 3 + rng.NextBounded(5);
    for (std::size_t w = 0; w < title_len; ++w) {
      title_words.emplace_back(kTitleWords[rng.NextBounded(std::size(kTitleWords))]);
    }
    const std::string title = Join(title_words, " ");
    const VenueInfo& venue = kVenues[rng.NextBounded(std::size(kVenues))];
    const int year = 1985 + static_cast<int>(rng.NextBounded(21));

    const std::size_t copies =
        options.min_duplicates +
        rng.NextBounded(options.max_duplicates - options.min_duplicates + 1);
    for (std::size_t c = 0; c < copies; ++c) {
      std::string author = AuthorVariant(first, last, &rng);
      author = TextPerturber::ApplyTypos(author, options.perturb.mean_typos * 0.5, &rng);
      std::string title_v = perturber.Perturb(title, options.perturb, &rng);
      std::string venue_v = perturber.Perturb(venue.venue, options.perturb, &rng);
      std::string year_v = YearVariant(year, &rng);
      std::string address_v = perturber.Perturb(venue.address, options.perturb, &rng);
      std::string publisher_v =
          perturber.Perturb(venue.publisher, options.perturb, &rng);
      std::string editor_v = perturber.Perturb(venue.editor, options.perturb, &rng);
      Status s = rel.AddRow({std::move(author), std::move(title_v),
                             std::move(venue_v), std::move(year_v),
                             std::move(address_v), std::move(publisher_v),
                             std::move(editor_v)});
      DD_CHECK(s.ok());
      entity_ids.push_back(e);
    }
  }
  return GeneratedData{std::move(rel), std::move(entity_ids)};
}

}  // namespace dd
