#include "data/corruptor.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"

namespace dd {

Result<CorruptionResult> InjectViolations(
    const GeneratedData& data, const std::vector<std::string>& dependent_attrs,
    const CorruptorOptions& options) {
  if (options.corrupt_fraction < 0.0 || options.corrupt_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("corrupt_fraction %.3f outside [0, 1]",
                  options.corrupt_fraction));
  }
  if (data.entity_ids.size() != data.relation.num_rows()) {
    return Status::InvalidArgument("entity_ids size != relation rows");
  }
  DD_ASSIGN_OR_RETURN(std::vector<std::size_t> dep_idx,
                      data.relation.schema().ResolveAll(dependent_attrs));

  const std::size_t n = data.relation.num_rows();
  Rng rng(options.seed);

  // Group rows by entity so we can (a) restrict corruption to entities
  // with >= 2 records and (b) enumerate the induced truth pairs.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_entity;
  for (std::size_t r = 0; r < n; ++r) by_entity[data.entity_ids[r]].push_back(r);

  std::vector<std::size_t> eligible;
  for (std::size_t r = 0; r < n; ++r) {
    if (by_entity[data.entity_ids[r]].size() >= 2) eligible.push_back(r);
  }

  // Deterministic shuffle, then take the first `target` rows.
  for (std::size_t i = eligible.size(); i > 1; --i) {
    std::swap(eligible[i - 1], eligible[rng.NextBounded(i)]);
  }
  std::size_t target = static_cast<std::size_t>(
      options.corrupt_fraction * static_cast<double>(n) + 0.5);
  target = std::min(target, eligible.size());

  CorruptionResult result;
  result.dirty = data.relation;  // Copy; rows mutated below.
  std::vector<bool> corrupted(n, false);

  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t row = eligible[i];
    // Donor row from a different entity supplies the wrong Y values.
    std::size_t donor = row;
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::size_t cand = rng.NextBounded(n);
      if (data.entity_ids[cand] != data.entity_ids[row]) {
        donor = cand;
        break;
      }
    }
    if (donor == row) continue;  // Degenerate single-entity input.
    for (std::size_t a : dep_idx) {
      result.dirty.at(row, a) = data.relation.at(donor, a);
    }
    corrupted[row] = true;
    result.corrupted_rows.push_back(row);
  }

  // Truth pairs: corrupted row x clean row of the same entity.
  for (std::size_t row : result.corrupted_rows) {
    for (std::size_t peer : by_entity[data.entity_ids[row]]) {
      if (peer == row || corrupted[peer]) continue;
      result.truth_pairs.emplace_back(
          static_cast<std::uint32_t>(std::min(row, peer)),
          static_cast<std::uint32_t>(std::max(row, peer)));
    }
  }
  std::sort(result.truth_pairs.begin(), result.truth_pairs.end());
  result.truth_pairs.erase(
      std::unique(result.truth_pairs.begin(), result.truth_pairs.end()),
      result.truth_pairs.end());
  return result;
}

}  // namespace dd
