// Violation injection: produces the "dirty" instance used by the
// paper's effectiveness experiments (Tables III and IV). Random rows get
// their dependent-attribute values swapped with values from a different
// entity, creating tuple pairs that are similar on X but dissimilar on Y
// — exactly the violations a DD should detect. The induced violating
// pairs are recorded as ground truth for precision/recall.

#ifndef DD_DATA_CORRUPTOR_H_
#define DD_DATA_CORRUPTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/generators.h"
#include "data/relation.h"

namespace dd {

struct CorruptorOptions {
  // Fraction of rows whose dependent values are replaced.
  double corrupt_fraction = 0.05;
  std::uint64_t seed = 7;
};

struct CorruptionResult {
  // The dirty instance (same schema and row order as the clean input).
  Relation dirty;
  // Ground-truth violating pairs (i < j): a corrupted row paired with a
  // clean row of the same entity.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> truth_pairs;
  // Which rows were corrupted.
  std::vector<std::size_t> corrupted_rows;
};

// Corrupts `dependent_attrs` of a random subset of rows. Only rows whose
// entity has at least two records are eligible (otherwise no observable
// violating pair exists). Fails when an attribute name is unknown or the
// fraction is outside [0, 1].
Result<CorruptionResult> InjectViolations(
    const GeneratedData& data, const std::vector<std::string>& dependent_attrs,
    const CorruptorOptions& options);

}  // namespace dd

#endif  // DD_DATA_CORRUPTOR_H_
