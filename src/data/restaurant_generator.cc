#include "data/generators.h"

#include <array>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace dd {

namespace {

struct CityInfo {
  const char* city;
  const char* state;
  std::array<const char*, 10> streets;
};

// Each city owns a disjoint street pool: address similarity implies the
// same city (the Rule 3 dependency address ~> city). City names and
// street names are chosen pairwise-distant in edit distance so that the
// dependency has a clean margin (within-entity variants stay below it,
// cross-city values stay above it).
constexpr CityInfo kCities[] = {
    {"Philadelphia", "PA",
     {"Passyunk Avenue", "Germantown Pike", "Rittenhouse Square",
      "Fairmount Terrace", "Manayunk Main Street", "Kensington Row",
      "Queen Village Lane", "Spruce Harbor Walk", "Brewerytown Bend", "Chestnut Hill Parade"}},
    {"Los Angeles", "CA",
     {"Sunset Boulevard", "Wilshire Corridor", "Melrose Crossing",
      "Figueroa Paseo", "Echo Park Loop", "Olympic Plaza West",
      "Silver Lake Stairs", "Venice Canals Walk", "Griffith Observatory Road", "Leimert Park Village"}},
    {"Chicago", "IL",
     {"Michigan Avenue", "Wacker Drive Lower", "Halsted Junction",
      "Milwaukee Diagonal", "Division Parkway", "Logan Square Walk",
      "Wicker Park Damen", "Pilsen Eighteenth", "Hyde Park Midway", "Andersonville Clark"}},
    {"San Francisco", "CA",
     {"Mission Dolores Street", "Valencia Corridor", "Fillmore Heights",
      "Columbus Wharf", "Geary Expressway", "Irving Sunset Blocks",
      "Haight Ashbury Flats", "Noe Valley Slope", "Embarcadero Pier Front", "Balboa Outer Richmond"}},
    {"Minneapolis", "MN",
     {"Hennepin Avenue", "Nicollet Mall", "Uptown Lagoon Road",
      "Cedar Riverside Way", "Loring Greenway", "Dinkytown Circle",
      "Longfellow Greenline", "Northeast Arts Quarter", "Linden Hills Chain", "Warehouse District Ramp"}},
    {"New Orleans", "LA",
     {"Bourbon Promenade", "Magazine Uptown Mile", "Frenchmen Quarter",
      "Esplanade Ridge", "Carrollton Bend", "Royal Vieux Carre",
      "Treme Lafitte Walk", "Bywater Crescent", "Garden District Oak", "Marigny Rectangle"}},
    {"Indianapolis", "IN",
     {"Monument Circle", "Massachusetts Trail", "Fountain Square Lane",
      "Broad Ripple Canal", "Speedway Crossing", "Irvington Commons",
      "Fletcher Place Corner", "Haughville Riverbank", "Meridian Kessler Line", "Garfield Park Sunken"}},
    {"Albuquerque", "NM",
     {"Central Route Sixty Six", "Nob Hill Mesa", "Old Town Plaza Vieja",
      "Rio Grande Bosque", "Sandia Foothills Drive", "Barelas Camino",
      "Petroglyph Vista Point", "High Desert Trailhead", "Uptown Louisiana Loop", "South Valley Acequia"}},
};

constexpr const char* kNameAdjectives[] = {
    "Golden", "Blue",   "Royal", "Little", "Grand", "Old",
    "Silver", "Lucky",  "Happy", "Green",  "Red",   "Cozy"};
constexpr const char* kNameNouns[] = {
    "Dragon", "Garden", "Palace", "Corner", "Harbor", "Lantern",
    "Rose",   "Oak",    "Star",   "Pearl",  "Anchor", "Fork"};
constexpr const char* kNameSuffixes[] = {"Cafe",    "Bistro",  "Grill",
                                         "Kitchen", "Diner",   "House",
                                         "Restaurant", "Tavern"};

// The paper's Restaurant data has coarse, inconsistently-labeled cuisine
// categories; type is drawn independently per record so no threshold on
// type short of dmax can hold with confidence. Labels are long enough
// that any two distinct types are farther apart than the threshold
// domain (distances cap at dmax), mirroring the Table IV finding where
// the determined type threshold sits exactly at dmax.
constexpr const char* kTypes[] = {
    "american (traditional)", "italian trattoria",  "french bistro",
    "chinese szechuan",       "mexican taqueria",   "japanese sushi bar",
    "indian curry house",     "seafood grill",      "steakhouse prime",
    "coffeehouse and bakery"};

std::string CityVariant(const CityInfo& info, Rng* rng) {
  // Format variants stay within a small edit radius of the canonical
  // name (pairwise <= 3); cross-city distances are much larger by
  // construction.
  switch (rng->NextBounded(4)) {
    case 0:
    case 1:
    case 2:
      return info.city;
    default:
      return std::string(info.city) + " " + info.state;
  }
}

std::string AddressVariant(int number, const char* street, Rng* rng) {
  switch (rng->NextBounded(3)) {
    case 0:
      return StrFormat("No.%d, %s", number, street);
    case 1:
      return StrFormat("#%d, %s", number, street);
    default:
      return StrFormat("%d %s", number, street);
  }
}

}  // namespace

GeneratedData GenerateRestaurant(const RestaurantOptions& options) {
  DD_CHECK_GE(options.max_duplicates, options.min_duplicates);
  DD_CHECK_GE(options.min_duplicates, 1u);
  Rng rng(options.seed);
  TextPerturber perturber;

  Schema schema({{"name", AttributeType::kString},
                 {"address", AttributeType::kString},
                 {"city", AttributeType::kString},
                 {"type", AttributeType::kString}});
  Relation rel(schema);
  std::vector<std::size_t> entity_ids;

  for (std::size_t e = 0; e < options.num_entities; ++e) {
    const CityInfo& city = kCities[rng.NextBounded(std::size(kCities))];
    const char* street = city.streets[rng.NextBounded(city.streets.size())];
    const int number = 1 + static_cast<int>(rng.NextBounded(999));
    // Names are assembled from a small shared pool, so distinct
    // restaurants frequently have similar names — name similarity is
    // uninformative about identity, as in the real data.
    const std::string name =
        std::string(kNameAdjectives[rng.NextBounded(std::size(kNameAdjectives))]) +
        " " + kNameNouns[rng.NextBounded(std::size(kNameNouns))] + " " +
        kNameSuffixes[rng.NextBounded(std::size(kNameSuffixes))];

    const std::size_t copies =
        options.min_duplicates +
        rng.NextBounded(options.max_duplicates - options.min_duplicates + 1);
    for (std::size_t c = 0; c < copies; ++c) {
      std::string name_v = perturber.Perturb(name, options.perturb, &rng);
      std::string address_v = AddressVariant(number, street, &rng);
      address_v = perturber.Perturb(address_v, options.perturb, &rng);
      std::string city_v = CityVariant(city, &rng);
      city_v = TextPerturber::ApplyTypos(city_v, options.perturb.mean_typos * 0.2,
                                         &rng);
      // Independent draw: intentionally NOT a function of the entity.
      std::string type_v = kTypes[rng.NextBounded(std::size(kTypes))];
      Status s = rel.AddRow({std::move(name_v), std::move(address_v),
                             std::move(city_v), std::move(type_v)});
      DD_CHECK(s.ok());
      entity_ids.push_back(e);
    }
  }
  return GeneratedData{std::move(rel), std::move(entity_ids)};
}

}  // namespace dd
