// Levenshtein kernels behind LevenshteinMetric, exposed individually so
// the equivalence tests and microbenchmarks can pit them against each
// other directly. All kernels operate on bytes: multi-byte (UTF-8)
// sequences count one unit per byte, which is consistent across kernels
// and therefore invisible to level bucketing.
//
// Kernel selection (metric.cc wiring):
//  * ReferenceDp — the O(|a|·|b|) two-row dynamic program; the ground
//    truth the others are tested against.
//  * Myers64 — the Myers/Hyyrö bit-parallel algorithm; one word of
//    column deltas per text character, O(max(|a|,|b|)) when the shorter
//    string fits in a 64-bit word. Exact.
//  * Banded — diagonal band of half-width `cap`; O(len·cap) and allowed
//    to stop as soon as the whole band exceeds the cap. Used when the
//    shorter string is > 64 chars and the caller provided a small cap
//    (matching/builder.cc caps at dmax/scale).

#ifndef DD_METRIC_LEVENSHTEIN_H_
#define DD_METRIC_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace dd::lev {

// Reference two-row dynamic program. Exact; O(|a|·|b|) time,
// O(min(|a|,|b|)) space.
std::size_t ReferenceDp(std::string_view a, std::string_view b);

// Myers bit-parallel edit distance (Hyyrö's formulation). Exact.
// Requires min(|a|, |b|) <= 64.
std::size_t Myers64(std::string_view a, std::string_view b);

// Banded early-exit variant: returns the exact distance whenever it is
// <= cap, and cap + 1 as soon as the distance provably exceeds cap.
std::size_t Banded(std::string_view a, std::string_view b, std::size_t cap);

}  // namespace dd::lev

#endif  // DD_METRIC_LEVENSHTEIN_H_
