#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "metric/metric.h"

namespace dd {

QGramMetric::QGramMetric(std::size_t q) : q_(q) { DD_CHECK_GE(q, 1u); }

namespace {

// Counts the q-grams of `s` padded with q-1 leading '#' and trailing '$'
// sentinels (the standard construction from Gravano et al.).
void CountQGrams(std::string_view s, std::size_t q,
                 std::unordered_map<std::string, int>* counts) {
  std::string padded;
  padded.reserve(s.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  padded.append(s);
  padded.append(q - 1, '$');
  if (padded.size() < q) return;
  for (std::size_t i = 0; i + q <= padded.size(); ++i) {
    ++(*counts)[padded.substr(i, q)];
  }
}

}  // namespace

double QGramMetric::Distance(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  std::unordered_map<std::string, int> ca;
  std::unordered_map<std::string, int> cb;
  CountQGrams(a, q_, &ca);
  CountQGrams(b, q_, &cb);
  // Multiset symmetric difference: |A| + |B| - 2 |A ∩ B|.
  long total = 0;
  for (const auto& [gram, n] : ca) total += n;
  for (const auto& [gram, n] : cb) total += n;
  long shared = 0;
  for (const auto& [gram, n] : ca) {
    auto it = cb.find(gram);
    if (it != cb.end()) shared += std::min(n, it->second);
  }
  return static_cast<double>(total - 2 * shared);
}

}  // namespace dd
