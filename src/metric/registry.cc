#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "metric/metric.h"

namespace dd {

MetricRegistry& MetricRegistry::Default() {
  // Leaked singleton: avoids static-destruction ordering hazards.
  static MetricRegistry& registry = *new MetricRegistry();
  static bool initialized = [] {
    Status s;
    s = registry.Register("levenshtein",
                          [] { return std::make_unique<LevenshteinMetric>(); });
    DD_CHECK(s.ok());
    s = registry.Register("qgram2",
                          [] { return std::make_unique<QGramMetric>(2); });
    DD_CHECK(s.ok());
    s = registry.Register("qgram3",
                          [] { return std::make_unique<QGramMetric>(3); });
    DD_CHECK(s.ok());
    s = registry.Register("jaccard",
                          [] { return std::make_unique<JaccardMetric>(); });
    DD_CHECK(s.ok());
    s = registry.Register("cosine",
                          [] { return std::make_unique<CosineMetric>(); });
    DD_CHECK(s.ok());
    s = registry.Register("numeric_abs",
                          [] { return std::make_unique<NumericAbsMetric>(); });
    DD_CHECK(s.ok());
    return true;
  }();
  (void)initialized;
  return registry;
}

Status MetricRegistry::Register(std::string name, Factory factory) {
  for (const auto& [existing, unused] : factories_) {
    if (existing == name) {
      return Status::AlreadyExists("metric already registered: " + name);
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
  return Status::Ok();
}

Result<std::unique_ptr<DistanceMetric>> MetricRegistry::Create(
    std::string_view name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return factory();
  }
  return Status::NotFound("no such metric: " + std::string(name));
}

std::vector<std::string> MetricRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, unused] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dd
