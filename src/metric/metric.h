// Distance metric interface and registry. The paper treats the choice
// of metric as orthogonal (citing the Bilenko et al. survey); this
// module provides the common ones — edit distance (optionally with
// q-grams, as in the paper's preprocessing), token Jaccard, token
// cosine, and numeric absolute difference — behind one interface, plus a
// registry so applications can plug in their own.

#ifndef DD_METRIC_METRIC_H_
#define DD_METRIC_METRIC_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dd {

// Coarse similarity-family tag the approximation subsystem
// (src/approx/lsh_index.h) uses to pick a near-pair candidate scheme
// per attribute: minhash banding over token sets (kTokenSet) or q-gram
// sets (kQGram), length-bucketed q-gram banding for edit distance
// (kEdit, |len(a)-len(b)| lower-bounds the distance), sorted-neighbor
// windows for numerics (kNumeric). kNone opts the attribute out of
// blocking entirely — still correct, because stratified estimation
// never depends on WHICH pairs the blocker surfaces, only variance
// does.
enum class BlockingFamily { kNone, kTokenSet, kQGram, kEdit, kNumeric };

// A distance function on attribute values. Implementations must be
// symmetric, non-negative, and return 0 for identical inputs.
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  // Stable metric name, e.g. "levenshtein".
  virtual std::string_view name() const = 0;

  // Distance between two values.
  virtual double Distance(std::string_view a, std::string_view b) const = 0;

  // Bounded-distance contract:
  //  * If the true distance d satisfies d <= cap, the return value MUST
  //    equal Distance(a, b) exactly.
  //  * Once the true distance exceeds cap, ANY value strictly greater
  //    than cap may be returned — cap + 1, the exact distance, or
  //    anything in between. Callers must not interpret magnitudes above
  //    the cap: matching/builder.cc maps every raw > cap to the same
  //    saturated level, so the choice of sentinel cannot change a
  //    matching relation.
  // This licence is what enables banded early exit (O(len·cap) instead
  // of O(len²)) and lets exact fast paths (e.g. the bit-parallel
  // Levenshtein kernel) skip the capping entirely.
  // Default falls back to the exact distance.
  virtual double BoundedDistance(std::string_view a, std::string_view b,
                                 double cap) const {
    (void)cap;
    return Distance(a, b);
  }

  // True when distances always lie in [0, 1].
  virtual bool is_normalized() const { return false; }

  // Candidate-generation family for LSH blocking (see BlockingFamily).
  // Custom metrics default to kNone: no blocking, sampling-only.
  virtual BlockingFamily blocking_family() const {
    return BlockingFamily::kNone;
  }
};

// Levenshtein (unit-cost insert/delete/substitute) edit distance.
// Distance uses the Myers bit-parallel kernel when the shorter string
// fits a 64-bit word, else the two-row DP. BoundedDistance additionally
// applies the length-difference lower bound and, for long strings, a
// diagonal band of width 2*cap+1 that returns cap + 1 as soon as the
// distance provably exceeds cap (kernels in metric/levenshtein.h).
class LevenshteinMetric : public DistanceMetric {
 public:
  std::string_view name() const override { return "levenshtein"; }
  double Distance(std::string_view a, std::string_view b) const override;
  double BoundedDistance(std::string_view a, std::string_view b,
                         double cap) const override;
  BlockingFamily blocking_family() const override {
    return BlockingFamily::kEdit;
  }
};

// Positional q-gram distance: multiset symmetric difference of the
// q-gram profiles (strings padded with q-1 sentinel characters), a
// standard DBMS-friendly approximation of edit distance [Gravano et al.].
class QGramMetric : public DistanceMetric {
 public:
  explicit QGramMetric(std::size_t q = 2);
  std::string_view name() const override { return "qgram"; }
  double Distance(std::string_view a, std::string_view b) const override;
  std::size_t q() const { return q_; }
  BlockingFamily blocking_family() const override {
    return BlockingFamily::kQGram;
  }

 private:
  std::size_t q_;
};

// Jaccard distance on whitespace token sets, in [0, 1].
class JaccardMetric : public DistanceMetric {
 public:
  std::string_view name() const override { return "jaccard"; }
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_normalized() const override { return true; }
  BlockingFamily blocking_family() const override {
    return BlockingFamily::kTokenSet;
  }
};

// Cosine distance on whitespace token term-frequency vectors, in [0, 1].
class CosineMetric : public DistanceMetric {
 public:
  std::string_view name() const override { return "cosine"; }
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_normalized() const override { return true; }
  BlockingFamily blocking_family() const override {
    return BlockingFamily::kTokenSet;
  }
};

// Absolute difference of the parsed numeric values. Values that do not
// parse are treated as infinitely far apart (unless equal as strings).
class NumericAbsMetric : public DistanceMetric {
 public:
  std::string_view name() const override { return "numeric_abs"; }
  double Distance(std::string_view a, std::string_view b) const override;
  BlockingFamily blocking_family() const override {
    return BlockingFamily::kNumeric;
  }
};

// Name -> factory registry. The default registry contains all built-in
// metrics ("levenshtein", "qgram2", "qgram3", "jaccard", "cosine",
// "numeric_abs").
class MetricRegistry {
 public:
  using Factory = std::function<std::unique_ptr<DistanceMetric>()>;

  // Process-wide registry pre-populated with the built-ins.
  static MetricRegistry& Default();

  // Registers a factory; fails with AlreadyExists on duplicates.
  Status Register(std::string name, Factory factory);

  // Instantiates the metric called `name`, or NotFound.
  Result<std::unique_ptr<DistanceMetric>> Create(std::string_view name) const;

  // Names of all registered metrics, sorted.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace dd

#endif  // DD_METRIC_METRIC_H_
