// Jaccard and cosine distances on whitespace tokens.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "metric/metric.h"

namespace dd {

double JaccardMetric::Distance(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  std::unordered_set<std::string> sa;
  std::unordered_set<std::string> sb;
  for (auto& t : SplitWhitespace(a)) sa.insert(ToLower(t));
  for (auto& t : SplitWhitespace(b)) sb.insert(ToLower(t));
  if (sa.empty() && sb.empty()) return 0.0;
  std::size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineMetric::Distance(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  std::unordered_map<std::string, double> va;
  std::unordered_map<std::string, double> vb;
  for (auto& t : SplitWhitespace(a)) va[ToLower(t)] += 1.0;
  for (auto& t : SplitWhitespace(b)) vb[ToLower(t)] += 1.0;
  if (va.empty() && vb.empty()) return 0.0;
  if (va.empty() || vb.empty()) return 1.0;
  double dot = 0.0;
  for (const auto& [t, w] : va) {
    auto it = vb.find(t);
    if (it != vb.end()) dot += w * it->second;
  }
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [t, w] : va) na += w * w;
  for (const auto& [t, w] : vb) nb += w * w;
  const double cos = dot / (std::sqrt(na) * std::sqrt(nb));
  // Guard against floating-point overshoot.
  return 1.0 - std::min(1.0, std::max(0.0, cos));
}

double NumericAbsMetric::Distance(std::string_view a, std::string_view b) const {
  if (a == b) return 0.0;
  double xa = 0.0;
  double xb = 0.0;
  if (!ParseDouble(a, &xa) || !ParseDouble(b, &xb)) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(xa - xb);
}

}  // namespace dd
