#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "metric/metric.h"

namespace dd {

double LevenshteinMetric::Distance(std::string_view a,
                                   std::string_view b) const {
  if (a == b) return 0.0;
  if (a.empty()) return static_cast<double>(b.size());
  if (b.empty()) return static_cast<double>(a.size());
  // Two-row dynamic program; keep the shorter string as the row to bound
  // memory by min(|a|, |b|) + 1.
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<std::uint32_t> prev(b.size() + 1);
  std::vector<std::uint32_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<std::uint32_t>(j);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::uint32_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[b.size()]);
}

double LevenshteinMetric::BoundedDistance(std::string_view a,
                                          std::string_view b,
                                          double cap) const {
  if (cap < 0.0) cap = 0.0;
  const auto capped = static_cast<std::size_t>(cap);
  if (a == b) return 0.0;
  if (a.size() < b.size()) std::swap(a, b);
  // Length difference is a lower bound on the edit distance.
  if (a.size() - b.size() > capped) return cap + 1.0;
  if (b.empty()) return static_cast<double>(a.size());

  // Banded DP: only cells with |i - j| <= capped can be <= cap.
  constexpr std::uint32_t kBig = std::numeric_limits<std::uint32_t>::max() / 2;
  std::vector<std::uint32_t> prev(b.size() + 1, kBig);
  std::vector<std::uint32_t> cur(b.size() + 1, kBig);
  for (std::size_t j = 0; j <= std::min(b.size(), capped); ++j) {
    prev[j] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    const std::size_t lo = (i > capped) ? i - capped : 1;
    const std::size_t hi = std::min(b.size(), i + capped);
    if (lo > hi) return cap + 1.0;
    std::fill(cur.begin(), cur.end(), kBig);
    if (lo == 1) cur[0] = static_cast<std::uint32_t>(i);
    std::uint32_t row_min = cur[0];
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::uint32_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      std::uint32_t best = sub;
      if (prev[j] + 1 < best) best = prev[j] + 1;
      if (cur[j - 1] + 1 < best) best = cur[j - 1] + 1;
      cur[j] = best;
      row_min = std::min(row_min, best);
    }
    if (row_min > capped) return cap + 1.0;  // Whole band exceeded the cap.
    std::swap(prev, cur);
  }
  const std::uint32_t d = prev[b.size()];
  return d > capped ? cap + 1.0 : static_cast<double>(d);
}

}  // namespace dd
