#include "metric/levenshtein.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "metric/metric.h"

namespace dd {

namespace lev {

std::size_t ReferenceDp(std::string_view a, std::string_view b) {
  if (a == b) return 0;
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Keep the shorter string as the row to bound memory by
  // min(|a|, |b|) + 1.
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<std::uint32_t> prev(b.size() + 1);
  std::vector<std::uint32_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    prev[j] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<std::uint32_t>(i);
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::uint32_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::size_t Myers64(std::string_view a, std::string_view b) {
  // Pattern = the shorter string (must fit one 64-bit word of column
  // deltas), text = the longer one.
  if (a.size() > b.size()) std::swap(a, b);
  const std::size_t m = a.size();
  if (m == 0) return b.size();
  std::uint64_t peq[256] = {0};
  for (std::size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= std::uint64_t{1} << i;
  }
  std::uint64_t vp =
      m == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << m) - 1;
  std::uint64_t vn = 0;
  const std::uint64_t last = std::uint64_t{1} << (m - 1);
  std::size_t score = m;
  for (const char c : b) {
    const std::uint64_t eq = peq[static_cast<unsigned char>(c)];
    const std::uint64_t d0 = (((eq & vp) + vp) ^ vp) | eq | vn;
    std::uint64_t hp = vn | ~(d0 | vp);
    std::uint64_t hn = d0 & vp;
    if (hp & last) {
      ++score;
    } else if (hn & last) {
      --score;
    }
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = d0 & hp;
  }
  return score;
}

std::size_t Banded(std::string_view a, std::string_view b, std::size_t cap) {
  if (a == b) return 0;
  if (a.size() < b.size()) std::swap(a, b);
  // Length difference is a lower bound on the edit distance.
  if (a.size() - b.size() > cap) return cap + 1;
  if (b.empty()) return a.size();

  // Banded DP: only cells with |i - j| <= cap can be <= cap.
  constexpr std::uint32_t kBig = std::numeric_limits<std::uint32_t>::max() / 2;
  std::vector<std::uint32_t> prev(b.size() + 1, kBig);
  std::vector<std::uint32_t> cur(b.size() + 1, kBig);
  for (std::size_t j = 0; j <= std::min(b.size(), cap); ++j) {
    prev[j] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    const std::size_t lo = (i > cap) ? i - cap : 1;
    const std::size_t hi = std::min(b.size(), i + cap);
    if (lo > hi) return cap + 1;
    std::fill(cur.begin(), cur.end(), kBig);
    if (lo == 1) cur[0] = static_cast<std::uint32_t>(i);
    std::uint32_t row_min = cur[0];
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::uint32_t sub = prev[j - 1] + (a[i - 1] != b[j - 1] ? 1 : 0);
      std::uint32_t best = sub;
      if (prev[j] + 1 < best) best = prev[j] + 1;
      if (cur[j - 1] + 1 < best) best = cur[j - 1] + 1;
      cur[j] = best;
      row_min = std::min(row_min, best);
    }
    if (row_min > cap) return cap + 1;  // Whole band exceeded the cap.
    std::swap(prev, cur);
  }
  const std::uint32_t d = prev[b.size()];
  return d > cap ? cap + 1 : static_cast<std::size_t>(d);
}

}  // namespace lev

double LevenshteinMetric::Distance(std::string_view a,
                                   std::string_view b) const {
  if (a == b) return 0.0;
  if (std::min(a.size(), b.size()) <= 64) {
    return static_cast<double>(lev::Myers64(a, b));
  }
  return static_cast<double>(lev::ReferenceDp(a, b));
}

double LevenshteinMetric::BoundedDistance(std::string_view a,
                                          std::string_view b,
                                          double cap) const {
  if (cap < 0.0) cap = 0.0;
  if (a == b) return 0.0;
  const std::size_t max_len = std::max(a.size(), b.size());
  // A cap at or above the longer length can never be exceeded — and the
  // double -> size_t conversion below would be unsafe for huge caps.
  if (cap >= static_cast<double>(max_len)) return Distance(a, b);
  const auto capped = static_cast<std::size_t>(cap);  // floor: d <= floor(cap) <=> d <= cap
  const std::size_t min_len = std::min(a.size(), b.size());
  if (max_len - min_len > capped) return cap + 1.0;
  // The bit-parallel kernel is O(max_len) regardless of the cap — when
  // the shorter side fits a word it beats the O(len·cap) band even for
  // tiny caps. Returning the exact distance above the cap is allowed by
  // the BoundedDistance contract.
  if (min_len <= 64) {
    return static_cast<double>(lev::Myers64(a, b));
  }
  const std::size_t d = lev::Banded(a, b, capped);
  return d > capped ? cap + 1.0 : static_cast<double>(d);
}

}  // namespace dd
