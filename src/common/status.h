// Status: lightweight error propagation without exceptions.
//
// Library code on hot paths never throws; fallible operations return a
// Status (or Result<T>, see result.h). The design follows the familiar
// RocksDB/Abseil shape: a code plus an optional human-readable message.

#ifndef DD_COMMON_STATUS_H_
#define DD_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dd {

// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kAlreadyExists,
  kInternal,
};

// Returns a stable human-readable name for a StatusCode ("OK",
// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

// Value type carrying success or an error with a message. Cheap to move;
// the OK state carries no allocation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK status to the caller. Usable only in functions
// returning Status.
#define DD_RETURN_IF_ERROR(expr)            \
  do {                                      \
    ::dd::Status _dd_status = (expr);       \
    if (!_dd_status.ok()) return _dd_status; \
  } while (false)

}  // namespace dd

#endif  // DD_COMMON_STATUS_H_
