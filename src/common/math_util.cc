#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace dd {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double LogBinomialCoefficient(double n, double k) {
  DD_CHECK_GE(k, 0.0);
  DD_CHECK_LE(k, n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double LogBinomialPmf(double k, double n, double p) {
  DD_CHECK_GE(n, 0.0);
  if (k < 0.0 || k > n) return kNegInf;
  if (p <= 0.0) return k == 0.0 ? 0.0 : kNegInf;
  if (p >= 1.0) return k == n ? 0.0 : kNegInf;
  double log_coeff = LogBinomialCoefficient(n, k);
  double log_success = (k > 0.0) ? k * std::log(p) : 0.0;
  double log_failure = (n - k > 0.0) ? (n - k) * std::log1p(-p) : 0.0;
  return log_coeff + log_success + log_failure;
}

double LogSumExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double SimpsonIntegrate(const std::function<double(double)>& fn, double lo,
                        double hi, std::size_t intervals) {
  DD_CHECK_LT(lo, hi);
  DD_CHECK_GT(intervals, 0u);
  if (intervals % 2 != 0) ++intervals;
  const double h = (hi - lo) / static_cast<double>(intervals);
  double sum = fn(lo) + fn(hi);
  for (std::size_t i = 1; i < intervals; ++i) {
    double x = lo + h * static_cast<double>(i);
    sum += fn(x) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

double PosteriorMean(const std::function<double(double)>& log_weight,
                     double peak, double sigma, double window_sigmas,
                     std::size_t intervals) {
  DD_CHECK_GT(intervals, 1u);
  double lo = 0.0;
  double hi = 1.0;
  if (sigma > 0.0 && sigma * window_sigmas < 0.5) {
    lo = Clamp(peak - window_sigmas * sigma, 0.0, 1.0);
    hi = Clamp(peak + window_sigmas * sigma, 0.0, 1.0);
    if (hi - lo < 1e-12) {
      // Degenerate window; fall back to the full domain.
      lo = 0.0;
      hi = 1.0;
    }
  }

  if (intervals % 2 != 0) ++intervals;
  const std::size_t points = intervals + 1;
  const double h = (hi - lo) / static_cast<double>(intervals);

  // Evaluate the log integrand once and max-normalize so exp() stays
  // finite for Binomial likelihoods with n in the millions.
  std::vector<double> xs(points);
  std::vector<double> logs(points);
  double max_log = kNegInf;
  for (std::size_t i = 0; i < points; ++i) {
    xs[i] = lo + h * static_cast<double>(i);
    logs[i] = log_weight(xs[i]);
    max_log = std::max(max_log, logs[i]);
  }
  if (max_log == kNegInf) {
    // Zero mass everywhere (should not happen for valid inputs); report
    // the window midpoint as the least-surprising answer.
    return 0.5 * (lo + hi);
  }

  double numer = 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    double coeff = (i == 0 || i == points - 1) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    double w = coeff * std::exp(logs[i] - max_log);
    denom += w;
    numer += w * xs[i];
  }
  if (denom == 0.0) return 0.5 * (lo + hi);
  return numer / denom;
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

Interval WilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double z, std::uint64_t population) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  // The sample IS the population: exact, zero width.
  if (population > 0 && trials >= population) return {phat, phat};
  // Finite-population correction enters through the critical value:
  // the sampling variance of a without-replacement proportion is the
  // with-replacement variance times (N-n)/(N-1).
  double zf = z;
  if (population > 1) {
    zf *= std::sqrt(static_cast<double>(population - trials) /
                    static_cast<double>(population - 1));
  }
  // Continuity-corrected Wilson bounds (Newcombe 1998, method 4): the
  // plain score interval's coverage oscillates below nominal for many
  // (n, p); the corrected one stays conservative, which is what the
  // refinement driver's "ranking stable under the intervals" test
  // needs.
  const double z2 = zf * zf;
  const double denom = 2.0 * (n + z2);
  const double arg_lo =
      z2 - 2.0 - 1.0 / n + 4.0 * phat * (n * (1.0 - phat) + 1.0);
  const double arg_hi =
      z2 + 2.0 - 1.0 / n + 4.0 * phat * (n * (1.0 - phat) - 1.0);
  double lo = (2.0 * n * phat + z2 - 1.0 -
               zf * std::sqrt(std::max(0.0, arg_lo))) /
              denom;
  double hi = (2.0 * n * phat + z2 + 1.0 +
               zf * std::sqrt(std::max(0.0, arg_hi))) /
              denom;
  if (successes == 0) lo = 0.0;  // boundary cases are exact one-sided
  if (successes == trials) hi = 1.0;
  return {Clamp(lo, 0.0, 1.0), Clamp(hi, 0.0, 1.0)};
}

}  // namespace dd
