// Small string helpers shared by the data layer and the metrics.

#ifndef DD_COMMON_STRING_UTIL_H_
#define DD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dd {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// True when `s` parses fully as a decimal floating-point number.
bool ParseDouble(std::string_view s, double* out);

// Formats with printf semantics into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dd

#endif  // DD_COMMON_STRING_UTIL_H_
