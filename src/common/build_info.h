// Compile-time provenance of the running binary: git revision,
// compiler, flags, build type. Captured at CMake configure time
// (build_info.cc.in -> build_info.cc), surfaced through
// `ddtool --version` and the constant `build_info` gauge in the
// Prometheus exposition, and embedded in diagnostics so a crash dump
// always says exactly what was running.

#ifndef DD_COMMON_BUILD_INFO_H_
#define DD_COMMON_BUILD_INFO_H_

#include <string>

namespace dd {

struct BuildInfo {
  const char* version;     // project version (CMake PROJECT_VERSION)
  const char* git_hash;    // full revision, "+dirty" suffix, or "unknown"
  const char* build_type;  // Release / Debug / RelWithDebInfo / ...
  const char* compiler;    // "GNU 13.2.0" style id + version
  const char* flags;       // CMAKE_CXX_FLAGS plus the build-type flags
};

// Static data baked into the binary; always valid.
const BuildInfo& GetBuildInfo();

// Multi-line human rendering (the `ddtool --version` output body).
std::string BuildInfoSummary();

}  // namespace dd

#endif  // DD_COMMON_BUILD_INFO_H_
