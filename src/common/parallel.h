// Minimal data-parallel helper: static range partitioning over
// std::thread. The counting scans over the matching relation are
// embarrassingly parallel; this is all the machinery they need.

#ifndef DD_COMMON_PARALLEL_H_
#define DD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace dd {

// Invokes fn(chunk_index, begin, end) for a static partition of
// [0, count) into `threads` contiguous chunks, running chunks on
// separate threads. threads <= 1 (or count small) runs inline on the
// calling thread. fn must be safe to call concurrently for disjoint
// chunks. Blocks until every chunk finished.
void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t chunk, std::size_t begin,
                                          std::size_t end)>& fn);

// Number of chunks ParallelFor will actually use (never more than
// count, never less than 1).
std::size_t EffectiveChunks(std::size_t count, std::size_t threads);

}  // namespace dd

#endif  // DD_COMMON_PARALLEL_H_
