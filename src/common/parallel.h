// Data-parallel helper: static range partitioning over a shared,
// lazily-initialized worker pool. The counting scans over the matching
// relation, the triangular matching build, and the candidate-lattice
// sweeps are embarrassingly parallel; this is all the machinery they
// need.
//
// Concurrency model (DESIGN.md §12):
//  * One process-wide pool, started on the first ParallelFor that wants
//    more than one chunk. Workers are reused across calls — no per-call
//    std::thread spawn/join cost on the hot paths.
//  * The calling thread participates: it claims chunks alongside the
//    workers, so `threads` means "total concurrency", not "extra
//    threads".
//  * Nested ParallelFor calls issued from inside a pool chunk run
//    inline on the calling worker (single chunk). This keeps nested
//    parallel code deadlock-free and stops thread counts from
//    multiplying when a parallel outer loop drives a provider whose
//    scans are themselves ParallelFor-based.
//  * The pool joins its workers at static destruction; calls racing
//    shutdown degrade to inline execution.

#ifndef DD_COMMON_PARALLEL_H_
#define DD_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dd {

// Process-wide default concurrency: the last SetDefaultThreads value,
// else the DD_THREADS environment variable, else
// std::thread::hardware_concurrency(). Always >= 1.
std::size_t DefaultThreads();

// Overrides DefaultThreads() for the process (the --threads flag).
// n == 0 restores the environment/hardware default.
void SetDefaultThreads(std::size_t n);

// Invokes fn(chunk_index, begin, end) for a static partition of
// [0, count) into at most `threads` contiguous chunks, running chunks
// concurrently on the shared pool (the caller participates).
// threads == 0 means DefaultThreads(); threads <= 1 (or count small)
// runs inline on the calling thread. fn must be safe to call
// concurrently for disjoint chunks. Blocks until every chunk finished.
//
// The partition depends only on (count, threads) — never on how chunks
// were interleaved across workers — so deterministic per-chunk merges
// produce identical results at any concurrency.
//
// `phase` labels the invocation for the pool observer (per-worker
// timelines, parallel-efficiency reports); it must be a string with
// static storage duration (a literal). The unlabeled overload records
// under the empty phase.
void ParallelFor(const char* phase, std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t chunk, std::size_t begin,
                                          std::size_t end)>& fn);
void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t chunk, std::size_t begin,
                                          std::size_t end)>& fn);

// Number of chunks ParallelFor will actually use (never more than
// count, never less than 1).
std::size_t EffectiveChunks(std::size_t count, std::size_t threads);

// True while the current thread is executing a ParallelFor chunk (on a
// pool worker or the participating caller). Nested ParallelFor calls
// observe this and run inline.
bool InParallelChunk();

// Static-storage phase label of the ParallelFor invocation the calling
// thread is currently executing a chunk of, or nullptr outside any
// chunk. Nested (inline) ParallelFor calls keep the outermost label —
// it names the phase that owns the thread's time. Published with plain
// thread-local stores, so it is async-signal-safe to read from a
// handler on the same thread; the sampling profiler (src/obs/prof)
// tags samples with it so profiles slice per pool phase.
const char* CurrentPoolPhase();

// ---------------------------------------------------------------------
// Pool observation hook. dd_common cannot depend on the metrics/trace
// layer (dd_obs links dd_common), so the pool exposes a raw observer
// interface instead: the obs layer installs a collector at startup and
// the pool reports chunk executions and whole invocations to it. With
// no observer installed the cost is one relaxed atomic load per
// ParallelFor invocation and one branch per chunk — no clock reads.
//
// Timestamps are std::chrono::steady_clock nanoseconds, comparable
// across threads within the process.

// One executed chunk: [begin, end) of the invocation's range, run on
// one thread from start_ns to end_ns. `caller` is true when the
// invoking thread (not a pool worker) executed it.
struct PoolChunkEvent {
  const char* phase;          // static-storage label ("" if unlabeled)
  std::uint64_t invocation;   // process-wide ParallelFor sequence number
  std::size_t chunk;
  std::size_t begin;
  std::size_t end;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  bool caller;
};

// One completed ParallelFor invocation (reported by the calling thread
// after every chunk finished). Top-level single-chunk (inline) runs are
// reported too, so the event stream has the same shape at any thread
// count; nested-inline calls from inside a chunk are not (their work is
// already inside the enclosing chunk's event).
struct PoolInvocationEvent {
  const char* phase;
  std::uint64_t invocation;
  std::size_t count;
  std::size_t chunks;
  std::size_t threads;        // resolved request (after DefaultThreads)
  std::uint64_t start_ns;
  std::uint64_t end_ns;
};

// Implemented by the collector (src/obs/pool_stats.h). Callbacks must
// be thread-safe and lock-free: OnChunk fires concurrently from pool
// workers inside the measured region.
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  virtual void OnChunk(const PoolChunkEvent& event) = 0;
  virtual void OnInvocation(const PoolInvocationEvent& event) = 0;
};

// Installs `observer` (nullptr uninstalls) and returns the previous
// one. The observer must outlive every ParallelFor that can see it;
// invocations in flight during the swap keep reporting to the observer
// they started with.
PoolObserver* SetPoolObserver(PoolObserver* observer);

// The currently installed observer (nullptr when observation is off).
PoolObserver* GetPoolObserver();

// ---------------------------------------------------------------------
// Watchdog heartbeat hook. Same layering story as the observer: the
// diag layer (src/obs/diag) installs a function that arms/beats a
// "pool.chunk" heartbeat around top-level chunk executions, so a wedged
// chunk is detected as a stall. begin=true fires right before a chunk
// body runs, begin=false right after. Nested (inline) chunks do not
// fire — the enclosing chunk's heartbeat already covers them. With no
// hook installed the cost is one relaxed load per chunk.
using PoolHeartbeatFn = void (*)(bool begin);

// Installs `fn` (nullptr uninstalls) and returns the previous hook.
PoolHeartbeatFn SetPoolHeartbeatFn(PoolHeartbeatFn fn);

}  // namespace dd

#endif  // DD_COMMON_PARALLEL_H_
