// Data-parallel helper: static range partitioning over a shared,
// lazily-initialized worker pool. The counting scans over the matching
// relation, the triangular matching build, and the candidate-lattice
// sweeps are embarrassingly parallel; this is all the machinery they
// need.
//
// Concurrency model (DESIGN.md §12):
//  * One process-wide pool, started on the first ParallelFor that wants
//    more than one chunk. Workers are reused across calls — no per-call
//    std::thread spawn/join cost on the hot paths.
//  * The calling thread participates: it claims chunks alongside the
//    workers, so `threads` means "total concurrency", not "extra
//    threads".
//  * Nested ParallelFor calls issued from inside a pool chunk run
//    inline on the calling worker (single chunk). This keeps nested
//    parallel code deadlock-free and stops thread counts from
//    multiplying when a parallel outer loop drives a provider whose
//    scans are themselves ParallelFor-based.
//  * The pool joins its workers at static destruction; calls racing
//    shutdown degrade to inline execution.

#ifndef DD_COMMON_PARALLEL_H_
#define DD_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace dd {

// Process-wide default concurrency: the last SetDefaultThreads value,
// else the DD_THREADS environment variable, else
// std::thread::hardware_concurrency(). Always >= 1.
std::size_t DefaultThreads();

// Overrides DefaultThreads() for the process (the --threads flag).
// n == 0 restores the environment/hardware default.
void SetDefaultThreads(std::size_t n);

// Invokes fn(chunk_index, begin, end) for a static partition of
// [0, count) into at most `threads` contiguous chunks, running chunks
// concurrently on the shared pool (the caller participates).
// threads == 0 means DefaultThreads(); threads <= 1 (or count small)
// runs inline on the calling thread. fn must be safe to call
// concurrently for disjoint chunks. Blocks until every chunk finished.
//
// The partition depends only on (count, threads) — never on how chunks
// were interleaved across workers — so deterministic per-chunk merges
// produce identical results at any concurrency.
void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t chunk, std::size_t begin,
                                          std::size_t end)>& fn);

// Number of chunks ParallelFor will actually use (never more than
// count, never less than 1).
std::size_t EffectiveChunks(std::size_t count, std::size_t threads);

// True while the current thread is executing a ParallelFor chunk (on a
// pool worker or the participating caller). Nested ParallelFor calls
// observe this and run inline.
bool InParallelChunk();

}  // namespace dd

#endif  // DD_COMMON_PARALLEL_H_
