// Result<T>: a value or a Status, in the spirit of absl::StatusOr<T>.

#ifndef DD_COMMON_RESULT_H_
#define DD_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dd {

// Holds either a T (when the operation succeeded) or a non-OK Status.
// Accessing value() on an error Result is a programmer error and asserts.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites (`return value;` / `return Status::...;`) natural.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is engaged.
};

// Propagates the error of a Result expression, otherwise assigns the
// value to `lhs`. Usable in functions returning Status or Result<U>.
#define DD_ASSIGN_OR_RETURN(lhs, expr)          \
  auto DD_CONCAT_(_dd_result_, __LINE__) = (expr); \
  if (!DD_CONCAT_(_dd_result_, __LINE__).ok())     \
    return DD_CONCAT_(_dd_result_, __LINE__).status(); \
  lhs = std::move(DD_CONCAT_(_dd_result_, __LINE__)).value()

#define DD_CONCAT_INNER_(a, b) a##b
#define DD_CONCAT_(a, b) DD_CONCAT_INNER_(a, b)

}  // namespace dd

#endif  // DD_COMMON_RESULT_H_
