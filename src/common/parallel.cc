#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace dd {

std::size_t EffectiveChunks(std::size_t count, std::size_t threads) {
  if (threads <= 1 || count <= 1) return 1;
  return std::min(threads, count);
}

void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = EffectiveChunks(count, threads);
  if (chunks == 1) {
    fn(0, 0, count);
    return;
  }
  const std::size_t per_chunk = (count + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(count, begin + per_chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, c, begin, end] { fn(c, begin, end); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace dd
