#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dd {

namespace {

// Sanity cap on pool size: a request beyond this still runs, just with
// fewer concurrent chunks than asked for.
constexpr std::size_t kMaxWorkers = 256;

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t EnvDefaultThreads() {
  const char* env = std::getenv("DD_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxWorkers);
    }
  }
  return HardwareThreads();
}

// 0 = "use the environment/hardware default", set by SetDefaultThreads.
std::atomic<std::size_t> g_default_threads{0};

// Set for the lifetime of a chunk execution (worker or participating
// caller); nested ParallelFor calls run inline when it is set.
thread_local bool t_in_chunk = false;

// Phase label of the top-level chunk this thread is executing
// (CurrentPoolPhase). Nested chunks do not overwrite it.
thread_local const char* t_phase = nullptr;

// Cleared when the pool singleton is destroyed so late ParallelFor
// calls (static destruction order) degrade to inline execution instead
// of touching a dead pool. Trivially destructible on purpose.
std::atomic<bool> g_pool_alive{false};

// Observation hook (SetPoolObserver). Snapshotted once per invocation
// so a concurrent uninstall cannot split one invocation's events
// between observers. Trivially destructible on purpose.
std::atomic<PoolObserver*> g_pool_observer{nullptr};

// Process-wide ParallelFor sequence number; chunk events carry it so
// the collector can join them back to their invocation.
std::atomic<std::uint64_t> g_invocation_seq{0};

// Watchdog heartbeat hook (SetPoolHeartbeatFn). Trivially destructible
// on purpose; fired only around top-level chunks.
std::atomic<PoolHeartbeatFn> g_pool_heartbeat{nullptr};

inline void PoolHeartbeat(bool begin) {
  const PoolHeartbeatFn fn = g_pool_heartbeat.load(std::memory_order_acquire);
  if (fn != nullptr) fn(begin);
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One ParallelFor invocation in flight on the pool. Workers and the
// caller claim chunk indices from `next`; the caller blocks until
// `done` reaches `chunks`.
struct PoolTask {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
  std::size_t count = 0;
  std::size_t per_chunk = 0;
  std::size_t chunks = 0;  // number of non-empty chunks
  const char* phase = "";
  std::uint64_t invocation = 0;
  PoolObserver* observer = nullptr;  // snapshot; null = no recording
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void ExecuteChunk(PoolTask& task, std::size_t c, bool caller) {
  const std::size_t begin = c * task.per_chunk;
  const std::size_t end = std::min(task.count, begin + task.per_chunk);
  const bool was_in_chunk = t_in_chunk;
  t_in_chunk = true;
  if (!was_in_chunk) {
    PoolHeartbeat(/*begin=*/true);
    t_phase = task.phase;
  }
  if (task.observer != nullptr) {
    PoolChunkEvent event;
    event.phase = task.phase;
    event.invocation = task.invocation;
    event.chunk = c;
    event.begin = begin;
    event.end = end;
    event.caller = caller;
    event.start_ns = NowNs();
    (*task.fn)(c, begin, end);
    event.end_ns = NowNs();
    task.observer->OnChunk(event);
  } else {
    (*task.fn)(c, begin, end);
  }
  if (!was_in_chunk) {
    t_phase = nullptr;
    PoolHeartbeat(/*begin=*/false);
  }
  t_in_chunk = was_in_chunk;
  if (task.done.fetch_add(1, std::memory_order_acq_rel) + 1 == task.chunks) {
    // Synchronize with the caller's wait; the lock pairs the final
    // increment with the predicate re-check.
    std::lock_guard<std::mutex> lock(task.mu);
    task.cv.notify_all();
  }
}

class WorkerPool {
 public:
  WorkerPool() { g_pool_alive.store(true, std::memory_order_release); }

  ~WorkerPool() {
    g_pool_alive.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  // Runs `task` to completion; the calling thread claims chunks too.
  void Run(const std::shared_ptr<PoolTask>& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkersLocked(task->chunks - 1);
      tasks_.push_back(task);
    }
    cv_.notify_all();
    for (;;) {
      const std::size_t c = task->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task->chunks) break;
      ExecuteChunk(*task, c, /*caller=*/true);
    }
    std::unique_lock<std::mutex> lock(task->mu);
    task->cv.wait(lock, [&] {
      return task->done.load(std::memory_order_acquire) == task->chunks;
    });
  }

 private:
  void EnsureWorkersLocked(std::size_t want) {
    want = std::min(want, kMaxWorkers);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  void WorkerMain() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      const std::shared_ptr<PoolTask> task = tasks_.front();
      const std::size_t c = task->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task->chunks) {
        // Task exhausted; retire it if it is still queued.
        if (!tasks_.empty() && tasks_.front() == task) tasks_.pop_front();
        continue;
      }
      lock.unlock();
      ExecuteChunk(*task, c, /*caller=*/false);
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<PoolTask>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

WorkerPool& Pool() {
  static WorkerPool pool;
  return pool;
}

}  // namespace

std::size_t DefaultThreads() {
  const std::size_t overridden =
      g_default_threads.load(std::memory_order_relaxed);
  if (overridden != 0) return overridden;
  static const std::size_t env_default = EnvDefaultThreads();
  return env_default;
}

void SetDefaultThreads(std::size_t n) {
  g_default_threads.store(std::min(n, kMaxWorkers),
                          std::memory_order_relaxed);
}

std::size_t EffectiveChunks(std::size_t count, std::size_t threads) {
  if (threads <= 1 || count <= 1) return 1;
  return std::min(threads, count);
}

bool InParallelChunk() { return t_in_chunk; }

const char* CurrentPoolPhase() { return t_phase; }

PoolObserver* SetPoolObserver(PoolObserver* observer) {
  return g_pool_observer.exchange(observer, std::memory_order_acq_rel);
}

PoolObserver* GetPoolObserver() {
  return g_pool_observer.load(std::memory_order_acquire);
}

PoolHeartbeatFn SetPoolHeartbeatFn(PoolHeartbeatFn fn) {
  return g_pool_heartbeat.exchange(fn, std::memory_order_acq_rel);
}

void ParallelFor(const char* phase, std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = DefaultThreads();
  std::size_t chunks = EffectiveChunks(count, threads);
  // Nested calls (or calls racing pool shutdown) run inline as one
  // chunk — the outer ParallelFor already owns the concurrency.
  const bool nested = t_in_chunk;
  if (nested) chunks = 1;
  // One relaxed-ish load per invocation; everything below branches on
  // the snapshot, so a disabled observer costs no clock reads. Nested
  // runs are never recorded — their time is already inside the
  // enclosing chunk's event.
  PoolObserver* const observer =
      nested ? nullptr : g_pool_observer.load(std::memory_order_acquire);
  if (chunks == 1) {
    if (observer != nullptr) {
      PoolChunkEvent event;
      event.phase = phase;
      event.invocation = g_invocation_seq.fetch_add(1, std::memory_order_relaxed);
      event.chunk = 0;
      event.begin = 0;
      event.end = count;
      event.caller = true;
      event.start_ns = NowNs();
      t_in_chunk = true;
      PoolHeartbeat(/*begin=*/true);
      t_phase = phase;
      fn(0, 0, count);
      t_phase = nullptr;
      PoolHeartbeat(/*begin=*/false);
      t_in_chunk = false;
      event.end_ns = NowNs();
      observer->OnChunk(event);
      PoolInvocationEvent inv;
      inv.phase = phase;
      inv.invocation = event.invocation;
      inv.count = count;
      inv.chunks = 1;
      inv.threads = threads;
      inv.start_ns = event.start_ns;
      inv.end_ns = event.end_ns;
      observer->OnInvocation(inv);
      return;
    }
    const bool was_in_chunk = t_in_chunk;
    t_in_chunk = true;
    if (!was_in_chunk) {
      PoolHeartbeat(/*begin=*/true);
      t_phase = phase;
    }
    fn(0, 0, count);
    if (!was_in_chunk) {
      t_phase = nullptr;
      PoolHeartbeat(/*begin=*/false);
    }
    t_in_chunk = was_in_chunk;
    return;
  }
  auto task = std::make_shared<PoolTask>();
  task->fn = &fn;
  task->count = count;
  task->per_chunk = (count + chunks - 1) / chunks;
  // Round the chunk count down to the non-empty ones so completion
  // tracking matches the chunks that actually run.
  task->chunks = (count + task->per_chunk - 1) / task->per_chunk;
  task->phase = phase;
  task->observer = observer;
  const std::uint64_t start_ns = observer != nullptr ? NowNs() : 0;
  if (observer != nullptr) {
    task->invocation = g_invocation_seq.fetch_add(1, std::memory_order_relaxed);
  }
  if (!g_pool_alive.load(std::memory_order_acquire)) {
    // First use starts the pool; a call after static destruction runs
    // the chunks inline instead.
    static std::atomic<bool> ever_started{false};
    if (ever_started.load(std::memory_order_acquire)) {
      for (std::size_t c = 0; c < task->chunks; ++c) {
        ExecuteChunk(*task, c, /*caller=*/true);
      }
    } else {
      ever_started.store(true, std::memory_order_release);
      Pool().Run(task);
    }
  } else {
    Pool().Run(task);
  }
  if (observer != nullptr) {
    PoolInvocationEvent inv;
    inv.phase = phase;
    inv.invocation = task->invocation;
    inv.count = count;
    inv.chunks = task->chunks;
    inv.threads = threads;
    inv.start_ns = start_ns;
    inv.end_ns = NowNs();
    observer->OnInvocation(inv);
  }
}

void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  ParallelFor("", count, threads, fn);
}

}  // namespace dd
