#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dd {

namespace {

// Sanity cap on pool size: a request beyond this still runs, just with
// fewer concurrent chunks than asked for.
constexpr std::size_t kMaxWorkers = 256;

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t EnvDefaultThreads() {
  const char* env = std::getenv("DD_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxWorkers);
    }
  }
  return HardwareThreads();
}

// 0 = "use the environment/hardware default", set by SetDefaultThreads.
std::atomic<std::size_t> g_default_threads{0};

// Set for the lifetime of a chunk execution (worker or participating
// caller); nested ParallelFor calls run inline when it is set.
thread_local bool t_in_chunk = false;

// Cleared when the pool singleton is destroyed so late ParallelFor
// calls (static destruction order) degrade to inline execution instead
// of touching a dead pool. Trivially destructible on purpose.
std::atomic<bool> g_pool_alive{false};

// One ParallelFor invocation in flight on the pool. Workers and the
// caller claim chunk indices from `next`; the caller blocks until
// `done` reaches `chunks`.
struct PoolTask {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
  std::size_t count = 0;
  std::size_t per_chunk = 0;
  std::size_t chunks = 0;  // number of non-empty chunks
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

void ExecuteChunk(PoolTask& task, std::size_t c) {
  const std::size_t begin = c * task.per_chunk;
  const std::size_t end = std::min(task.count, begin + task.per_chunk);
  const bool was_in_chunk = t_in_chunk;
  t_in_chunk = true;
  (*task.fn)(c, begin, end);
  t_in_chunk = was_in_chunk;
  if (task.done.fetch_add(1, std::memory_order_acq_rel) + 1 == task.chunks) {
    // Synchronize with the caller's wait; the lock pairs the final
    // increment with the predicate re-check.
    std::lock_guard<std::mutex> lock(task.mu);
    task.cv.notify_all();
  }
}

class WorkerPool {
 public:
  WorkerPool() { g_pool_alive.store(true, std::memory_order_release); }

  ~WorkerPool() {
    g_pool_alive.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  // Runs `task` to completion; the calling thread claims chunks too.
  void Run(const std::shared_ptr<PoolTask>& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkersLocked(task->chunks - 1);
      tasks_.push_back(task);
    }
    cv_.notify_all();
    for (;;) {
      const std::size_t c = task->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task->chunks) break;
      ExecuteChunk(*task, c);
    }
    std::unique_lock<std::mutex> lock(task->mu);
    task->cv.wait(lock, [&] {
      return task->done.load(std::memory_order_acquire) == task->chunks;
    });
  }

 private:
  void EnsureWorkersLocked(std::size_t want) {
    want = std::min(want, kMaxWorkers);
    while (workers_.size() < want) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  void WorkerMain() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      const std::shared_ptr<PoolTask> task = tasks_.front();
      const std::size_t c = task->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= task->chunks) {
        // Task exhausted; retire it if it is still queued.
        if (!tasks_.empty() && tasks_.front() == task) tasks_.pop_front();
        continue;
      }
      lock.unlock();
      ExecuteChunk(*task, c);
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<PoolTask>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

WorkerPool& Pool() {
  static WorkerPool pool;
  return pool;
}

}  // namespace

std::size_t DefaultThreads() {
  const std::size_t overridden =
      g_default_threads.load(std::memory_order_relaxed);
  if (overridden != 0) return overridden;
  static const std::size_t env_default = EnvDefaultThreads();
  return env_default;
}

void SetDefaultThreads(std::size_t n) {
  g_default_threads.store(std::min(n, kMaxWorkers),
                          std::memory_order_relaxed);
}

std::size_t EffectiveChunks(std::size_t count, std::size_t threads) {
  if (threads <= 1 || count <= 1) return 1;
  return std::min(threads, count);
}

bool InParallelChunk() { return t_in_chunk; }

void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) threads = DefaultThreads();
  std::size_t chunks = EffectiveChunks(count, threads);
  // Nested calls (or calls racing pool shutdown) run inline as one
  // chunk — the outer ParallelFor already owns the concurrency.
  if (t_in_chunk) chunks = 1;
  if (chunks == 1) {
    const bool was_in_chunk = t_in_chunk;
    t_in_chunk = true;
    fn(0, 0, count);
    t_in_chunk = was_in_chunk;
    return;
  }
  auto task = std::make_shared<PoolTask>();
  task->fn = &fn;
  task->count = count;
  task->per_chunk = (count + chunks - 1) / chunks;
  // Round the chunk count down to the non-empty ones so completion
  // tracking matches the chunks that actually run.
  task->chunks = (count + task->per_chunk - 1) / task->per_chunk;
  if (!g_pool_alive.load(std::memory_order_acquire)) {
    // First use starts the pool; a call after static destruction runs
    // the chunks inline instead.
    static std::atomic<bool> ever_started{false};
    if (ever_started.load(std::memory_order_acquire)) {
      for (std::size_t c = 0; c < task->chunks; ++c) ExecuteChunk(*task, c);
      return;
    }
    ever_started.store(true, std::memory_order_release);
  }
  Pool().Run(task);
}

}  // namespace dd
