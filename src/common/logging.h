// Minimal CHECK macros for invariants that indicate programmer error.
// These abort; they are never used for data-dependent failures (those
// return Status).

#ifndef DD_COMMON_LOGGING_H_
#define DD_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace dd::internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dd::internal_logging

#define DD_CHECK(cond)                                              \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::dd::internal_logging::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                               \
  } while (false)

#define DD_CHECK_LE(a, b) DD_CHECK((a) <= (b))
#define DD_CHECK_LT(a, b) DD_CHECK((a) < (b))
#define DD_CHECK_GE(a, b) DD_CHECK((a) >= (b))
#define DD_CHECK_GT(a, b) DD_CHECK((a) > (b))
#define DD_CHECK_EQ(a, b) DD_CHECK((a) == (b))
#define DD_CHECK_NE(a, b) DD_CHECK((a) != (b))

#endif  // DD_COMMON_LOGGING_H_
