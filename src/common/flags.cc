#include "common/flags.h"

#include <cstdlib>

#include "common/string_util.h"

namespace dd {

ArgParser::ArgParser(int argc, const char* const* argv, int begin) {
  bool only_positional = false;
  for (int i = begin; i < argc; ++i) {
    std::string token = argv[i];
    if (only_positional) {
      positional_.push_back(std::move(token));
      continue;
    }
    if (token == "--") {
      only_positional = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    bool has_value = false;
    std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }
    flags_[name].push_back(has_value ? value : "");
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return it->second.back();
}

std::vector<std::string> ArgParser::GetAll(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::vector<std::string>{} : it->second;
}

Result<std::int64_t> ArgParser::GetInt(const std::string& name,
                                       std::int64_t fallback) const {
  if (!Has(name)) return fallback;
  const std::string value = GetString(name);
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                   value + "'");
  }
  return parsed;
}

Result<double> ArgParser::GetDouble(const std::string& name,
                                    double fallback) const {
  if (!Has(name)) return fallback;
  const std::string value = GetString(name);
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) {
    return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                   value + "'");
  }
  return parsed;
}

std::vector<std::string> ArgParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, values] : flags_) {
    bool found = false;
    for (const auto& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

std::vector<std::string> SplitFlagList(const std::string& value) {
  std::vector<std::string> out;
  for (const auto& part : Split(value, ',')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

}  // namespace dd
