// Minimal command-line flag parsing for the ddtool CLI:
//   tool subcommand --name value --name=value --switch positional ...
// Flags may repeat (collected in order); everything after "--" is
// positional.

#ifndef DD_COMMON_FLAGS_H_
#define DD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace dd {

class ArgParser {
 public:
  // Parses argv[begin..argc). Flags start with "--"; a flag is followed
  // by a value unless it is the last token or the next token is another
  // flag (then it is a boolean switch). "--name=value" is also accepted.
  ArgParser(int argc, const char* const* argv, int begin = 1);

  // True when --name was present (with or without a value).
  bool Has(const std::string& name) const;

  // Last value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  // All values of a repeated flag, in order.
  std::vector<std::string> GetAll(const std::string& name) const;

  // Typed accessors; fail with InvalidArgument on unparseable values.
  Result<std::int64_t> GetInt(const std::string& name,
                              std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names of flags present but not in `known` — for catching typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::vector<std::string>> flags_;
  std::vector<std::string> positional_;
};

// Splits "a,b,c" into {"a","b","c"}, trimming whitespace and dropping
// empties — the CLI's attribute-list syntax.
std::vector<std::string> SplitFlagList(const std::string& value);

}  // namespace dd

#endif  // DD_COMMON_FLAGS_H_
