// Numeric building blocks for the expected-utility computation:
// log-gamma based Binomial log-pmf (with a continuous extension in the
// success count), log-sum-exp, and windowed composite-Simpson
// integration of sharply peaked posteriors.

#ifndef DD_COMMON_MATH_UTIL_H_
#define DD_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dd {

// A closed real interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
};

// Continuity-corrected Wilson score interval for a Binomial
// proportion: `successes` out of `trials`, two-sided critical value `z`
// (default 1.96 ≈ 95%). The continuity correction (Newcombe 1998 m.4)
// keeps realized coverage at or above nominal where the plain score
// interval oscillates below it. When `population` > 0 the trials are a
// without-replacement sample from a finite population of that size and
// the interval applies the standard finite-population correction
// sqrt((N-n)/(N-1)) to z; a sample that reaches the whole population
// returns the exact zero-width interval, which is what makes a
// fraction-1.0 approximate run report exact bounds. trials == 0
// returns the vacuous [0, 1]. The returned interval always contains
// successes/trials and is clamped to [0, 1].
Interval WilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double z = 1.959963984540054,
                        std::uint64_t population = 0);

// log of the binomial coefficient C(n, k) generalized to real k via
// lgamma: lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1).
// Requires 0 <= k <= n.
double LogBinomialCoefficient(double n, double k);

// log f(k; n, p) for the Binomial pmf, continuously extended to real k
// in [0, n]. Handles p == 0 and p == 1 limits exactly:
//   p == 0 -> 0 successes have probability 1 (log 0 otherwise);
//   p == 1 -> n successes have probability 1.
// Returns -inf for impossible outcomes.
double LogBinomialPmf(double k, double n, double p);

// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

// Integrates fn over [lo, hi] with composite Simpson using `intervals`
// subintervals (rounded up to even). Requires lo < hi.
double SimpsonIntegrate(const std::function<double(double)>& fn, double lo,
                        double hi, std::size_t intervals);

// Computes the posterior mean
//     E[u] = Int u * exp(log_weight(u)) du / Int exp(log_weight(u)) du
// over u in [0, 1], where log_weight is an unnormalized log density that
// is allowed to be sharply peaked. `peak` is a hint for the mode and
// `sigma` for the scale; the integration window is peak +- window_sigmas
// * sigma clamped to [0, 1] (widened to the whole interval when sigma is
// large). Both integrals are max-normalized in log space before
// exponentiation so that n in the millions stays finite.
double PosteriorMean(const std::function<double(double)>& log_weight,
                     double peak, double sigma, double window_sigmas = 12.0,
                     std::size_t intervals = 512);

// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace dd

#endif  // DD_COMMON_MATH_UTIL_H_
