// Numeric building blocks for the expected-utility computation:
// log-gamma based Binomial log-pmf (with a continuous extension in the
// success count), log-sum-exp, and windowed composite-Simpson
// integration of sharply peaked posteriors.

#ifndef DD_COMMON_MATH_UTIL_H_
#define DD_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <functional>

namespace dd {

// log of the binomial coefficient C(n, k) generalized to real k via
// lgamma: lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1).
// Requires 0 <= k <= n.
double LogBinomialCoefficient(double n, double k);

// log f(k; n, p) for the Binomial pmf, continuously extended to real k
// in [0, n]. Handles p == 0 and p == 1 limits exactly:
//   p == 0 -> 0 successes have probability 1 (log 0 otherwise);
//   p == 1 -> n successes have probability 1.
// Returns -inf for impossible outcomes.
double LogBinomialPmf(double k, double n, double p);

// Numerically stable log(exp(a) + exp(b)).
double LogSumExp(double a, double b);

// Integrates fn over [lo, hi] with composite Simpson using `intervals`
// subintervals (rounded up to even). Requires lo < hi.
double SimpsonIntegrate(const std::function<double(double)>& fn, double lo,
                        double hi, std::size_t intervals);

// Computes the posterior mean
//     E[u] = Int u * exp(log_weight(u)) du / Int exp(log_weight(u)) du
// over u in [0, 1], where log_weight is an unnormalized log density that
// is allowed to be sharply peaked. `peak` is a hint for the mode and
// `sigma` for the scale; the integration window is peak +- window_sigmas
// * sigma clamped to [0, 1] (widened to the whole interval when sigma is
// large). Both integrals are max-normalized in log space before
// exponentiation so that n in the millions stays finite.
double PosteriorMean(const std::function<double(double)>& log_weight,
                     double peak, double sigma, double window_sigmas = 12.0,
                     std::size_t intervals = 512);

// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace dd

#endif  // DD_COMMON_MATH_UTIL_H_
