// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef DD_COMMON_STOPWATCH_H_
#define DD_COMMON_STOPWATCH_H_

#include <chrono>

namespace dd {

// Starts running on construction; ElapsedSeconds()/ElapsedMillis() read
// the current lap, Restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dd

#endif  // DD_COMMON_STOPWATCH_H_
