// Deterministic pseudo-random number generation (xoshiro256** seeded via
// splitmix64). Every experiment in the repository draws randomness from
// an explicit seed so runs are reproducible bit-for-bit.

#ifndef DD_COMMON_RNG_H_
#define DD_COMMON_RNG_H_

#include <cstdint>
#include <limits>

#include "common/logging.h"

namespace dd {

// Small, fast, high-quality PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  // Uniform in [0, 2^64).
  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Requires bound > 0. Uses rejection to
  // avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    DD_CHECK_GT(bound, 0u);
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      std::uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    DD_CHECK_LE(lo, hi);
    return lo + static_cast<std::int64_t>(NextBounded(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

  // Approximately standard normal via the sum of 12 uniforms minus 6
  // (Irwin-Hall); adequate for workload jitter.
  double NextGaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return s - 6.0;
  }

  // Forks an independent stream; distinct `stream` values yield distinct
  // sequences even under the same parent state.
  Rng Fork(std::uint64_t stream) {
    return Rng(NextUint64() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567ULL));
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dd

#endif  // DD_COMMON_RNG_H_
