#include "detect/detection_eval.h"

#include <algorithm>

namespace dd {

namespace {

PairList Normalized(const PairList& pairs) {
  PairList out;
  out.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    out.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

DetectionQuality EvaluateDetection(const PairList& found,
                                   const PairList& truth) {
  const PairList f = Normalized(found);
  const PairList t = Normalized(truth);
  DetectionQuality q;
  q.found_size = f.size();
  q.truth_size = t.size();
  PairList inter;
  std::set_intersection(f.begin(), f.end(), t.begin(), t.end(),
                        std::back_inserter(inter));
  q.hits = inter.size();
  q.precision = f.empty() ? 1.0
                          : static_cast<double>(q.hits) /
                                static_cast<double>(f.size());
  q.recall = t.empty() ? 1.0
                       : static_cast<double>(q.hits) /
                             static_cast<double>(t.size());
  q.f_measure = (q.precision + q.recall) > 0.0
                    ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
                    : 0.0;
  return q;
}

}  // namespace dd
