// Violation detection — the application the paper uses to evaluate how
// useful a determined pattern is (§VI-A). A tuple pair violates the DD
// (X → Y, ϕ) when its distances satisfy every threshold of ϕ[X] but
// exceed at least one threshold of ϕ[Y].

#ifndef DD_DETECT_VIOLATION_DETECTOR_H_
#define DD_DETECT_VIOLATION_DETECTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/pattern.h"
#include "core/rule.h"
#include "data/relation.h"
#include "matching/builder.h"
#include "matching/matching_relation.h"

namespace dd {

using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

// Detects violating pairs against a pre-built matching relation (use
// this when checking several patterns on the same dirty instance).
PairList DetectViolationsIn(const MatchingRelation& matching,
                            const ResolvedRule& rule, const Pattern& pattern);

// Convenience: builds the matching relation over the rule's attributes
// of `dirty` (all pairs) and detects. Fails on unresolvable rules.
Result<PairList> DetectViolations(const Relation& dirty, const RuleSpec& rule,
                                  const Pattern& pattern,
                                  const MatchingOptions& matching_options);

}  // namespace dd

#endif  // DD_DETECT_VIOLATION_DETECTOR_H_
