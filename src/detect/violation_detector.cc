#include "detect/violation_detector.h"

#include "common/logging.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dd {

PairList DetectViolationsIn(const MatchingRelation& matching,
                            const ResolvedRule& rule, const Pattern& pattern) {
  DD_CHECK_EQ(pattern.lhs.size(), rule.lhs.size());
  DD_CHECK_EQ(pattern.rhs.size(), rule.rhs.size());
  obs::TraceSpan span("detect");
  PairList found;
  const std::size_t m = matching.num_tuples();
  for (std::size_t row = 0; row < m; ++row) {
    bool lhs_sat = true;
    for (std::size_t a = 0; a < rule.lhs.size(); ++a) {
      if (static_cast<int>(matching.level(row, rule.lhs[a])) >
          pattern.lhs[a]) {
        lhs_sat = false;
        break;
      }
    }
    if (!lhs_sat) continue;
    bool rhs_sat = true;
    for (std::size_t a = 0; a < rule.rhs.size(); ++a) {
      if (static_cast<int>(matching.level(row, rule.rhs[a])) >
          pattern.rhs[a]) {
        rhs_sat = false;
        break;
      }
    }
    if (!rhs_sat) found.push_back(matching.pair(row));
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("detect.pairs_scanned").Add(m);
  registry.GetCounter("detect.violations_found").Add(found.size());
  DD_LOG(INFO) << "violation scan: " << found.size() << " violating pair(s) in "
               << m << " matching tuple(s)";
  return found;
}

Result<PairList> DetectViolations(const Relation& dirty, const RuleSpec& rule,
                                  const Pattern& pattern,
                                  const MatchingOptions& matching_options) {
  MatchingOptions all_pairs = matching_options;
  all_pairs.max_pairs = 0;  // Detection must consider every pair.
  DD_ASSIGN_OR_RETURN(
      MatchingRelation matching,
      BuildMatchingRelation(dirty, rule.AllAttributes(), all_pairs));
  DD_ASSIGN_OR_RETURN(ResolvedRule resolved, ResolveRule(matching, rule));
  return DetectViolationsIn(matching, resolved, pattern);
}

}  // namespace dd
