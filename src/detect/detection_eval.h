// Precision / recall / F-measure of detected violating pairs against
// the injected ground truth (paper §VI-A, van Rijsbergen's F).

#ifndef DD_DETECT_DETECTION_EVAL_H_
#define DD_DETECT_DETECTION_EVAL_H_

#include <cstddef>

#include "detect/violation_detector.h"

namespace dd {

struct DetectionQuality {
  std::size_t truth_size = 0;  // |truth|
  std::size_t found_size = 0;  // |found|
  std::size_t hits = 0;        // |truth ∩ found|
  double precision = 0.0;      // hits / found (1.0 when found is empty)
  double recall = 0.0;         // hits / truth (1.0 when truth is empty)
  double f_measure = 0.0;      // harmonic mean of precision and recall
};

// Compares pair sets; order within each pair and duplicates are
// normalized before matching.
DetectionQuality EvaluateDetection(const PairList& found,
                                   const PairList& truth);

}  // namespace dd

#endif  // DD_DETECT_DETECTION_EVAL_H_
