#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianHasZeroMeanUnitVariance) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.NextUint64() == f2.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace dd
