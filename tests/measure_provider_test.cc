#include "core/measure_provider.h"

#include <gtest/gtest.h>

#include "core/measures.h"
#include "tests/test_util.h"

namespace dd {
namespace {

using testutil::MakeMatching;
using testutil::RandomMatching;

MatchingRelation TinyMatching() {
  // Columns: x, y. dmax = 4.
  return MakeMatching({"x", "y"}, 4,
                      {{0, 0}, {0, 4}, {1, 1}, {2, 3}, {4, 0}, {4, 4}});
}

ResolvedRule XyRule() { return ResolvedRule{{0}, {1}}; }

TEST(ScanProviderTest, CountsMatchManualEnumeration) {
  MatchingRelation m = TinyMatching();
  ScanMeasureProvider provider(m, XyRule());
  EXPECT_EQ(provider.total(), 6u);

  provider.SetLhs({1});
  EXPECT_EQ(provider.lhs_count(), 3u);  // rows with x <= 1
  EXPECT_EQ(provider.CountXY({0}), 1u);  // (0,0)
  EXPECT_EQ(provider.CountXY({1}), 2u);  // (0,0), (1,1)
  EXPECT_EQ(provider.CountXY({4}), 3u);

  provider.SetLhs({4});
  EXPECT_EQ(provider.lhs_count(), 6u);
  EXPECT_EQ(provider.CountXY({3}), 4u);
}

TEST(ScanProviderTest, SubsetModeAgreesWithFullScan) {
  MatchingRelation m = RandomMatching(3, 8, 500, 17);
  ResolvedRule rule{{0, 1}, {2}};
  ScanMeasureProvider full(m, rule, /*full_scan=*/true);
  ScanMeasureProvider subset(m, rule, /*full_scan=*/false);
  for (int x0 = 0; x0 <= 8; x0 += 2) {
    for (int x1 = 0; x1 <= 8; x1 += 3) {
      full.SetLhs({x0, x1});
      subset.SetLhs({x0, x1});
      EXPECT_EQ(full.lhs_count(), subset.lhs_count());
      for (int y = 0; y <= 8; ++y) {
        EXPECT_EQ(full.CountXY({y}), subset.CountXY({y}))
            << x0 << "," << x1 << "," << y;
      }
    }
  }
}

TEST(GridProviderTest, AgreesWithScanProviderExhaustively) {
  MatchingRelation m = RandomMatching(2, 6, 300, 23);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider scan(m, rule);
  auto grid = GridMeasureProvider::Create(m, rule);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid.value()->total(), scan.total());
  for (int x = 0; x <= 6; ++x) {
    scan.SetLhs({x});
    grid.value()->SetLhs({x});
    EXPECT_EQ(scan.lhs_count(), grid.value()->lhs_count()) << x;
    for (int y = 0; y <= 6; ++y) {
      EXPECT_EQ(scan.CountXY({y}), grid.value()->CountXY({y}))
          << x << "," << y;
    }
  }
}

TEST(GridProviderTest, ThreeAttributesAgree) {
  MatchingRelation m = RandomMatching(3, 5, 400, 29);
  ResolvedRule rule{{0, 2}, {1}};
  ScanMeasureProvider scan(m, rule);
  auto grid = GridMeasureProvider::Create(m, rule);
  ASSERT_TRUE(grid.ok());
  for (int x0 = 0; x0 <= 5; ++x0) {
    for (int x1 = 0; x1 <= 5; ++x1) {
      scan.SetLhs({x0, x1});
      grid.value()->SetLhs({x0, x1});
      ASSERT_EQ(scan.lhs_count(), grid.value()->lhs_count());
      for (int y = 0; y <= 5; ++y) {
        ASSERT_EQ(scan.CountXY({y}), grid.value()->CountXY({y}));
      }
    }
  }
}

TEST(GridProviderTest, RejectsOversizedGrid) {
  MatchingRelation m = RandomMatching(6, 200, 10, 31);
  ResolvedRule rule{{0, 1, 2}, {3, 4, 5}};
  EXPECT_FALSE(GridMeasureProvider::Create(m, rule, /*max_cells=*/1000).ok());
}

TEST(ProviderStatsTest, CountersTrackWork) {
  MatchingRelation m = TinyMatching();
  ScanMeasureProvider provider(m, XyRule());
  provider.SetLhs({2});
  provider.CountXY({2});
  provider.CountXY({3});
  EXPECT_EQ(provider.stats().lhs_evaluations, 1u);
  EXPECT_EQ(provider.stats().xy_evaluations, 2u);
  EXPECT_EQ(provider.stats().rows_scanned, 18u);  // 3 scans x 6 rows
  provider.ResetStats();
  EXPECT_EQ(provider.stats().xy_evaluations, 0u);
}

TEST(ProviderStatsTest, KnownCountPathCountsLhsEvaluations) {
  // SetLhsWithKnownCount must be counted in lhs_evaluations on every
  // provider — full-scan, subset, and grid — exactly like SetLhs, so
  // the counter always means "LHS candidates processed" (DAP hands the
  // provider precomputed D(ϕ) counts through this path, and stats must
  // not depend on which entry point the search used).
  MatchingRelation m = TinyMatching();
  ResolvedRule rule = XyRule();
  ScanMeasureProvider full(m, rule, /*full_scan=*/true);
  ScanMeasureProvider subset(m, rule, /*full_scan=*/false);
  auto grid = GridMeasureProvider::Create(m, rule);
  ASSERT_TRUE(grid.ok());
  MeasureProvider* providers[] = {&full, &subset, grid.value().get()};
  for (MeasureProvider* provider : providers) {
    provider->SetLhs({2});
    const std::uint64_t known_count = provider->lhs_count();
    provider->ResetStats();
    provider->SetLhsWithKnownCount({2}, known_count);
    provider->CountXY({3});
    EXPECT_EQ(provider->stats().lhs_evaluations, 1u);
    EXPECT_EQ(provider->lhs_count(), known_count);
  }
}

TEST(ProviderStatsTest, GridNeverScansRows) {
  // rows_scanned counts query-time scans only; the grid provider
  // answers everything from its prefix-sum grid, so the counter must
  // stay 0 by contract (build cost is reported via the grid_build span
  // and provider.grid_cells gauge, not here).
  MatchingRelation m = RandomMatching(2, 6, 200, 37);
  ResolvedRule rule{{0}, {1}};
  auto grid = GridMeasureProvider::Create(m, rule);
  ASSERT_TRUE(grid.ok());
  for (int x = 0; x <= 6; ++x) {
    grid.value()->SetLhs({x});
    grid.value()->SetLhsWithKnownCount({x}, grid.value()->lhs_count());
    for (int y = 0; y <= 6; ++y) grid.value()->CountXY({y});
  }
  EXPECT_EQ(grid.value()->stats().rows_scanned, 0u);
  EXPECT_GT(grid.value()->stats().lhs_evaluations, 0u);
  EXPECT_GT(grid.value()->stats().xy_evaluations, 0u);
}

TEST(MakeMeasureProviderTest, FactoryKinds) {
  MatchingRelation m = TinyMatching();
  ResolvedRule rule = XyRule();
  EXPECT_TRUE(MakeMeasureProvider(m, rule, "scan").ok());
  EXPECT_TRUE(MakeMeasureProvider(m, rule, "scan_subset").ok());
  EXPECT_TRUE(MakeMeasureProvider(m, rule, "grid").ok());
  EXPECT_FALSE(MakeMeasureProvider(m, rule, "bogus").ok());
}

TEST(MeasuresTest, FromCountsComputesAllStatistics) {
  Measures m = MeasuresFromCounts(100, 40, 30, {2, 2}, 10);
  EXPECT_DOUBLE_EQ(m.d, 0.4);
  EXPECT_DOUBLE_EQ(m.confidence, 0.75);
  EXPECT_DOUBLE_EQ(m.support, 0.3);
  EXPECT_DOUBLE_EQ(m.quality, 0.8);
  // S = C * D must hold (paper: S(ϕ) = C(ϕ)D(ϕ)).
  EXPECT_NEAR(m.support, m.confidence * m.d, 1e-12);
}

TEST(MeasuresTest, EmptyDenominators) {
  Measures m = MeasuresFromCounts(0, 0, 0, {1}, 10);
  EXPECT_DOUBLE_EQ(m.d, 0.0);
  EXPECT_DOUBLE_EQ(m.confidence, 0.0);
  EXPECT_DOUBLE_EQ(m.support, 0.0);
}

TEST(MeasuresTest, PaperDd1Example) {
  // D(dd1) = 6/15, C(dd1) = 4/6, S(dd1) = 4/15 on the Hotel instance.
  // Region threshold 4 is the plain-Levenshtein equivalent of the
  // paper's q-gram-based threshold 3 (see matching_test.cc).
  MatchingRelation m = testutil::HotelMatching(/*dmax=*/30);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  Measures measures =
      ComputeMeasures(&provider, Pattern{{8}, {4}}, /*dmax=*/30);
  EXPECT_NEAR(measures.d, 6.0 / 15.0, 1e-12);
  EXPECT_NEAR(measures.confidence, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(measures.support, 4.0 / 15.0, 1e-12);
}

}  // namespace
}  // namespace dd
