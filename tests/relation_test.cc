#include "data/relation.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

Relation MakeRelation() {
  Schema s({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  Relation r(s);
  EXPECT_TRUE(r.AddRow({"1", "x"}).ok());
  EXPECT_TRUE(r.AddRow({"2", "y"}).ok());
  EXPECT_TRUE(r.AddRow({"3", "z"}).ok());
  return r;
}

TEST(RelationTest, AddRowAndAccess) {
  Relation r = MakeRelation();
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.num_attributes(), 2u);
  EXPECT_EQ(r.at(1, 1), "y");
  EXPECT_EQ(r.row(2), (std::vector<std::string>{"3", "z"}));
}

TEST(RelationTest, AddRowRejectsWrongArity) {
  Relation r = MakeRelation();
  EXPECT_EQ(r.AddRow({"only-one"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.AddRow({"1", "2", "3"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.num_rows(), 3u);
}

TEST(RelationTest, ValueByName) {
  Relation r = MakeRelation();
  auto v = r.Value(0, "b");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "x");
  EXPECT_EQ(r.Value(0, "nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.Value(99, "a").status().code(), StatusCode::kOutOfRange);
}

TEST(RelationTest, MutableAccess) {
  Relation r = MakeRelation();
  r.at(0, 0) = "updated";
  EXPECT_EQ(r.at(0, 0), "updated");
}

TEST(RelationTest, SliceCopiesRange) {
  Relation r = MakeRelation();
  auto s = r.Slice(1, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 2u);
  EXPECT_EQ(s->at(0, 0), "2");
  EXPECT_FALSE(r.Slice(2, 1).ok());
  EXPECT_FALSE(r.Slice(0, 4).ok());
  auto empty = r.Slice(1, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
}

}  // namespace
}  // namespace dd
