// Tests for the crash/stall diagnostics subsystem (src/obs/diag,
// DESIGN.md §15): flight-recorder semantics, watchdog stall detection
// with all-thread stack capture, crash-dump writing and the offline
// reader, and the overriding contract that enabling diagnostics never
// changes determination results.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/build_info.h"
#include "common/parallel.h"
#include "core/determiner.h"
#include "obs/diag/crash_dump.h"
#include "obs/diag/dump_reader.h"
#include "obs/diag/flight_recorder.h"
#include "obs/diag/sigsafe.h"
#include "obs/diag/stack_capture.h"
#include "obs/diag/watchdog.h"
#include "obs/export/prometheus.h"
#include "obs/export/sampler.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DD_UNDER_SANITIZER 1
#endif
#endif
#if !defined(DD_UNDER_SANITIZER) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define DD_UNDER_SANITIZER 1
#endif

namespace dd::obs::diag {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A unique scratch directory per test; removed on destruction so crash
// stubs and stall dumps never leak between tests.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("dd_diag_" + std::string(tag) + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  std::vector<std::string> Files(const std::string& prefix) const {
    std::vector<std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(path_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) == 0) out.push_back(entry.path().string());
    }
    return out;
  }

 private:
  std::filesystem::path path_;
};

// ---------------------------------------------------------------------------
// Async-signal-safe formatting primitives.

TEST(SigsafeTest, DecimalHexAndSignedFormatting) {
  std::string out;
  StringSink sink(&out);
  SinkDec(sink, 0);
  SinkChar(sink, ' ');
  SinkDec(sink, 18446744073709551615ULL);
  SinkChar(sink, ' ');
  SinkSignedDec(sink, -42);
  SinkChar(sink, ' ');
  SinkSignedDec(sink, INT64_MIN);
  SinkChar(sink, ' ');
  SinkHex(sink, 0xdeadbeefULL);
  EXPECT_EQ(out,
            "0 18446744073709551615 -42 -9223372036854775808 0xdeadbeef");
}

TEST(SigsafeTest, ClockAndRssAreLive) {
  const std::uint64_t t0 = SigsafeNowNs();
  const std::uint64_t t1 = SigsafeNowNs();
  EXPECT_GE(t1, t0);
  EXPECT_GT(SigsafeRssKb(), 0u);
  EXPECT_GT(SigsafeTid(), 0);
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorder::Disable();
  FlightRecorder::ResetForTest();
  EXPECT_FALSE(FlightRecorderEnabled());
  FlightRecord(EventType::kCustom, "ignored", 1, 2);
  EXPECT_EQ(FlightRecorder::TotalRecorded(), 0u);
}

TEST(FlightRecorderTest, RecordsEventsInOrderWithArgs) {
  FlightRecorder::Enable(64);
  FlightRecorder::ResetForTest();
  FlightRecord(EventType::kBatch, "batch", 7, 3);
  FlightRecord(EventType::kDetermined, "determine", 5, 0);
  FlightRecord(EventType::kCustom, "a-very-long-event-name", 1, 2);

  bool found = false;
  for (const auto& thread : FlightRecorder::Snapshot()) {
    if (thread.events.size() < 3) continue;
    const std::size_t n = thread.events.size();
    const FlightEvent& batch = thread.events[n - 3];
    const FlightEvent& det = thread.events[n - 2];
    const FlightEvent& custom = thread.events[n - 1];
    if (batch.type != EventType::kBatch) continue;
    found = true;
    EXPECT_STREQ(batch.name, "batch");
    EXPECT_EQ(batch.arg0, 7u);
    EXPECT_EQ(batch.arg1, 3u);
    EXPECT_EQ(det.type, EventType::kDetermined);
    EXPECT_LE(batch.t_ns, det.t_ns);
    EXPECT_LT(batch.seq, det.seq);
    // Names truncate to 15 chars + NUL instead of overflowing.
    EXPECT_STREQ(custom.name, "a-very-long-eve");
  }
  EXPECT_TRUE(found);
  FlightRecorder::Disable();
}

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsNewest) {
  FlightRecorder::Disable();
  FlightRecorder::Enable(16);
  FlightRecorder::ResetForTest();
  // This thread's ring may have been created earlier with a bigger
  // capacity; record from a fresh thread so capacity=16 applies.
  std::thread recorder([] {
    for (std::uint64_t i = 0; i < 40; ++i) {
      FlightRecord(EventType::kCustom, "spin", i, 0);
    }
  });
  recorder.join();

  bool found = false;
  for (const auto& thread : FlightRecorder::Snapshot()) {
    if (thread.recorded != 40) continue;
    found = true;
    EXPECT_LE(thread.events.size(), 16u);
    ASSERT_FALSE(thread.events.empty());
    EXPECT_EQ(thread.events.back().arg0, 39u);  // Newest survives.
    EXPECT_GE(thread.events.front().arg0, 24u);  // Oldest overwritten.
    for (std::size_t i = 1; i < thread.events.size(); ++i) {
      EXPECT_EQ(thread.events[i].seq, thread.events[i - 1].seq + 1);
    }
  }
  EXPECT_TRUE(found);
  FlightRecorder::Disable();
}

TEST(FlightRecorderTest, EventTypeNamesRoundTrip) {
  for (EventType type :
       {EventType::kSpanBegin, EventType::kSpanEnd, EventType::kBatch,
        EventType::kDetermined, EventType::kApproxRound, EventType::kHeartbeat,
        EventType::kServe, EventType::kStall, EventType::kCustom}) {
    EXPECT_EQ(EventTypeFromName(EventTypeName(type)), type);
  }
  EXPECT_EQ(EventTypeFromName("no-such-type"), EventType::kNone);
}

// ---------------------------------------------------------------------------
// Heartbeats.

TEST(HeartbeatTest, ArmNestsAndBeatClearsStallFlag) {
  Heartbeat* hb = RegisterHeartbeat("test.nesting");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(RegisterHeartbeat("test.nesting"), hb);  // Find, not create.
  EXPECT_EQ(hb->armed.load(), 0);
  {
    ScopedHeartbeat outer(hb);
    EXPECT_EQ(hb->armed.load(), 1);
    {
      ScopedHeartbeat inner(hb);
      EXPECT_EQ(hb->armed.load(), 2);
    }
    EXPECT_EQ(hb->armed.load(), 1);
    hb->in_stall.store(true);
    outer.Beat();
    EXPECT_FALSE(hb->in_stall.load());  // A beat ends the episode.
  }
  EXPECT_EQ(hb->armed.load(), 0);
}

// ---------------------------------------------------------------------------
// Stack capture.

TEST(StackCaptureTest, CapturesEveryRunningThread) {
  InitStackCapture();
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    while (!stop.load()) std::this_thread::yield();
  });

  static ThreadStack stacks[kMaxCapturedThreads];
  const std::size_t n = CaptureAllThreadStacks(stacks, /*deadline_ms=*/2000);
  stop.store(true);
  busy.join();

  EXPECT_GE(n, 2u);  // At least this thread and the busy thread.
  const int self = SigsafeTid();
  bool saw_self = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (stacks[i].tid == self) {
      saw_self = true;
      EXPECT_TRUE(stacks[i].complete);
      EXPECT_GT(stacks[i].frame_count, 0u);
    }
  }
  EXPECT_TRUE(saw_self);
}

// ---------------------------------------------------------------------------
// Crash dumps + reader round trip.

TEST(CrashDumpTest, TestHookWritesParsableDump) {
  ScratchDir dir("crash");
  DiagOptions options;
  options.dir = dir.str();
  options.start_watchdog = false;
  options.install_signal_handlers = false;
  ASSERT_TRUE(EnableDiagnostics(options));
  MetricsRegistry::Global().GetCounter("diag.test_counter").Add(3);
  RefreshPreamble();
  FlightRecord(EventType::kCustom, "pre-crash", 11, 22);
  internal::WriteCrashDumpForTest(SIGSEGV);

  const auto files = dir.Files("crash.");
  ASSERT_EQ(files.size(), 1u);
  const std::string text = ReadFileOrEmpty(files[0]);
  ASSERT_FALSE(text.empty());

  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(text, &dump, &error)) << error;
  EXPECT_TRUE(dump.complete);
  EXPECT_EQ(dump.reason, "crash");
  EXPECT_EQ(dump.signal, SIGSEGV);
  EXPECT_EQ(dump.pid, static_cast<std::uint64_t>(::getpid()));
  EXPECT_GT(dump.TotalFrames(), 0u);
  EXPECT_FALSE(dump.modules.empty());
  EXPECT_NE(dump.metrics_text.find("diag_test_counter"), std::string::npos);
  bool saw_event = false;
  for (const auto& ev : dump.flight_events) {
    if (ev.name == "pre-crash" && ev.arg0 == 11 && ev.arg1 == 22) {
      saw_event = true;
    }
  }
  EXPECT_TRUE(saw_event);
  bool saw_pool_heartbeat = false;
  for (const auto& hb : dump.heartbeats) {
    if (hb.name == "pool.chunk") saw_pool_heartbeat = true;
  }
  EXPECT_TRUE(saw_pool_heartbeat);

  SymbolizeDump(&dump);
  const std::string pretty = DiagDumpToText(dump);
  EXPECT_NE(pretty.find("reason=crash"), std::string::npos);
  EXPECT_NE(pretty.find("status: complete"), std::string::npos);
  const std::string json = DiagDumpToJson(dump);
  EXPECT_NE(json.find("\"reason\":\"crash\""), std::string::npos);

  DisableDiagnostics();
}

TEST(CrashDumpTest, RealFatalSignalInForkedChild) {
#ifdef DD_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizers install their own fatal-signal handlers";
#else
  ScratchDir dir("fork");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: arm diagnostics (no watchdog thread — forked
    // children must stay single-threaded) and die for real.
    DiagOptions options;
    options.dir = dir.str();
    options.start_watchdog = false;
    EnableDiagnostics(options);
    FlightRecord(EventType::kCustom, "child-event", 1, 0);
    ::raise(SIGSEGV);
    ::_exit(97);  // Unreachable: the handler re-raises.
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const auto files = dir.Files("crash.");
  ASSERT_EQ(files.size(), 1u);
  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(ReadFileOrEmpty(files[0]), &dump, &error))
      << error;
  EXPECT_TRUE(dump.complete);
  EXPECT_EQ(dump.signal, SIGSEGV);
  EXPECT_EQ(dump.pid, static_cast<std::uint64_t>(child));
  EXPECT_GT(dump.TotalFrames(), 0u);
  bool saw_event = false;
  for (const auto& ev : dump.flight_events) {
    if (ev.name == "child-event") saw_event = true;
  }
  EXPECT_TRUE(saw_event);
#endif
}

TEST(CrashDumpTest, CleanDisableRemovesEmptyCrashStub) {
  ScratchDir dir("stub");
  DiagOptions options;
  options.dir = dir.str();
  options.start_watchdog = false;
  options.install_signal_handlers = false;
  ASSERT_TRUE(EnableDiagnostics(options));
  ASSERT_EQ(dir.Files("crash.").size(), 1u);  // Pre-opened stub.
  DisableDiagnostics();
  EXPECT_TRUE(dir.Files("crash.").empty());
}

TEST(LiveDumpTest, CaptureCarriesAllThreadStacks) {
  ScratchDir dir("live");
  DiagOptions options;
  options.dir = dir.str();
  options.start_watchdog = false;
  options.install_signal_handlers = false;
  ASSERT_TRUE(EnableDiagnostics(options));

  std::atomic<bool> stop{false};
  std::thread busy([&] {
    while (!stop.load()) std::this_thread::yield();
  });
  const std::string text = CaptureLiveDump("live");
  stop.store(true);
  busy.join();

  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(text, &dump, &error)) << error;
  EXPECT_TRUE(dump.complete);
  EXPECT_EQ(dump.reason, "live");
  EXPECT_GE(dump.backtraces.size(), 2u);  // Main + busy thread.
  EXPECT_GT(dump.TotalFrames(), 0u);
  DisableDiagnostics();
}

TEST(DumpReaderTest, RejectsTextWithoutMagic) {
  DiagDump dump;
  std::string error;
  EXPECT_FALSE(ParseDiagDump("not a dump\n", &dump, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseDiagDump("DDDIAG 99\n", &dump, &error));
}

TEST(DumpReaderTest, TruncatedDumpParsesButIsIncomplete) {
  ScratchDir dir("trunc");
  DiagOptions options;
  options.dir = dir.str();
  options.start_watchdog = false;
  options.install_signal_handlers = false;
  ASSERT_TRUE(EnableDiagnostics(options));
  std::string text = CaptureLiveDump("live");
  DisableDiagnostics();

  // Chop mid-file, as a crash during dump writing would: everything
  // already written must still parse, flagged incomplete.
  const std::size_t cut = text.find("--- modules");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut);
  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(text, &dump, &error)) << error;
  EXPECT_FALSE(dump.complete);
  EXPECT_NE(DiagDumpToText(dump).find("TRUNCATED"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Watchdog stall detection.

TEST(WatchdogTest, DetectsInjectedTwoSecondStallWithAllThreadStacks) {
  ScratchDir dir("stall");
  DiagOptions options;
  options.dir = dir.str();
  options.install_signal_handlers = false;
  options.watchdog_interval_ms = 100;
  options.stall_timeout_ms = 2000;
  ASSERT_TRUE(EnableDiagnostics(options));
  ASSERT_TRUE(Watchdog::Running());
  const std::uint64_t stalls_before = Watchdog::StallsDetected();

  Heartbeat* hb = RegisterHeartbeat("test.stall");
  {
    // Armed, then silent past the timeout: the injected stall.
    ScopedHeartbeat armed(hb);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(8);
    while (Watchdog::StallsDetected() == stalls_before &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_GT(Watchdog::StallsDetected(), stalls_before);

  const auto files = dir.Files("stall.");
  ASSERT_FALSE(files.empty());
  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(ReadFileOrEmpty(files[0]), &dump, &error))
      << error;
  EXPECT_TRUE(dump.complete);
  EXPECT_EQ(dump.reason, "stall");
  // All-thread capture: at least the test thread and the watchdog.
  EXPECT_GE(dump.backtraces.size(), 2u);
  EXPECT_GT(dump.TotalFrames(), 0u);
  bool saw_stalled = false;
  for (const auto& line : dump.heartbeats) {
    if (line.name == "test.stall") {
      saw_stalled = true;
      EXPECT_GE(line.armed, 1);
    }
  }
  EXPECT_TRUE(saw_stalled);
  // One dump per silent episode, not one per tick: the stall lasted
  // many intervals but must not have produced a dump flood.
  EXPECT_LE(dir.Files("stall.").size(), 2u);
  DisableDiagnostics();
}

TEST(WatchdogTest, OnDemandDumpRequestIsServicedByNextTick) {
  ScratchDir dir("ondemand");
  DiagOptions options;
  options.dir = dir.str();
  options.install_signal_handlers = false;
  options.watchdog_interval_ms = 50;
  ASSERT_TRUE(EnableDiagnostics(options));
  RequestOnDemandDump();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dir.Files("ondemand.").empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto files = dir.Files("ondemand.");
  ASSERT_FALSE(files.empty());
  DiagDump dump;
  std::string error;
  ASSERT_TRUE(ParseDiagDump(ReadFileOrEmpty(files[0]), &dump, &error))
      << error;
  EXPECT_EQ(dump.reason, "on_demand");
  EXPECT_TRUE(dump.complete);
  DisableDiagnostics();
}

// ---------------------------------------------------------------------------
// The overriding contract: diagnostics never change results.

TEST(DiagDeterminismTest, ResultsIdenticalWithDiagnosticsOnAndOff) {
  MatchingRelation m = testutil::RandomMatching(3, 6, 400, 4242);
  RuleSpec rule{{"a0", "a1"}, {"a2"}};
  DetermineOptions opts;
  opts.top_l = 3;

  const std::size_t hw = DefaultThreads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              hw}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    SetDefaultThreads(threads);

    auto plain = DetermineThresholds(m, rule, opts);
    ASSERT_TRUE(plain.ok()) << plain.status();

    ScratchDir dir("determinism");
    DiagOptions diag;
    diag.dir = dir.str();
    diag.install_signal_handlers = false;
    diag.watchdog_interval_ms = 20;  // Aggressive ticking on purpose.
    ASSERT_TRUE(EnableDiagnostics(diag));
    auto instrumented = DetermineThresholds(m, rule, opts);
    DisableDiagnostics();
    ASSERT_TRUE(instrumented.ok()) << instrumented.status();

    ASSERT_EQ(plain->patterns.size(), instrumented->patterns.size());
    for (std::size_t p = 0; p < plain->patterns.size(); ++p) {
      EXPECT_EQ(plain->patterns[p].pattern, instrumented->patterns[p].pattern);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(plain->patterns[p].utility, instrumented->patterns[p].utility);
      EXPECT_EQ(plain->patterns[p].measures.support,
                instrumented->patterns[p].measures.support);
      EXPECT_EQ(plain->patterns[p].measures.confidence,
                instrumented->patterns[p].measures.confidence);
    }
  }
  SetDefaultThreads(0);
}

// ---------------------------------------------------------------------------
// Satellites: build info, log-level parsing, percentile edges, sampler
// final flush.

TEST(BuildInfoTest, FieldsArePopulated) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_NE(std::string(info.version), "");
  EXPECT_NE(std::string(info.git_hash), "");
  EXPECT_NE(std::string(info.compiler), "");
  const std::string summary = BuildInfoSummary();
  EXPECT_NE(summary.find("ddtool"), std::string::npos);
  EXPECT_NE(summary.find(info.git_hash), std::string::npos);
}

TEST(BuildInfoTest, PrometheusLineIsWellFormed) {
  const std::string line = BuildInfoPrometheusLine();
  EXPECT_NE(line.find("# TYPE build_info gauge"), std::string::npos);
  EXPECT_NE(line.find("build_info{version=\""), std::string::npos);
  EXPECT_NE(line.find("revision=\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("} 1\n"), std::string::npos);
}

TEST(LogLevelTest, ParseRejectsEmptyGarbageAndOutOfRange) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("   ", &level));
  EXPECT_FALSE(ParseLogLevel("garbage", &level));
  EXPECT_FALSE(ParseLogLevel("infoo", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_FALSE(ParseLogLevel("5", &level));
  EXPECT_FALSE(ParseLogLevel("99", &level));
  EXPECT_FALSE(ParseLogLevel("1.5", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // Failed parses leave it untouched.
}

TEST(LogLevelTest, ParseToleratesSurroundingWhitespace) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("info ", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("  WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("\terror\n", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel(" 0 ", &level));
  EXPECT_EQ(level, LogLevel::kVerbose);
}

TEST(PercentileTest, EmptyHistogramHasNoPercentile) {
  MetricsSnapshot::HistogramValue hist;
  hist.bounds = {1.0, 2.0};
  hist.buckets = {0, 0, 0};
  hist.count = 0;
  EXPECT_TRUE(std::isnan(HistogramPercentile(hist, 0.0)));
  EXPECT_TRUE(std::isnan(HistogramPercentile(hist, 0.5)));
  EXPECT_TRUE(std::isnan(HistogramPercentile(hist, 1.0)));
}

TEST(PercentileTest, ZeroAndHundredPercentileBounds) {
  MetricsSnapshot::HistogramValue hist;
  hist.bounds = {1.0, 2.0, 4.0};
  hist.buckets = {2, 2, 0, 0};
  hist.count = 4;
  hist.sum = 3.0;
  const double p0 = HistogramPercentile(hist, 0.0);
  const double p100 = HistogramPercentile(hist, 1.0);
  EXPECT_GE(p0, 0.0);
  EXPECT_LE(p0, 1.0);  // Rank 0 lands in the first bucket.
  EXPECT_EQ(p100, 2.0);  // Max rank lands at the last occupied bound.
  EXPECT_LE(p0, p100);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_EQ(HistogramPercentile(hist, -3.0), p0);
  EXPECT_EQ(HistogramPercentile(hist, 7.0), p100);
}

TEST(PercentileTest, SingleBucketReturnsItsBoundExactly) {
  MetricsSnapshot::HistogramValue hist;
  hist.bounds = {1.0, 8.0};
  hist.buckets = {0, 5, 0};
  hist.count = 5;
  EXPECT_EQ(HistogramPercentile(hist, 0.0), 8.0);
  EXPECT_EQ(HistogramPercentile(hist, 1.0), 8.0);
  // All observations in the overflow bucket clamp to the last bound.
  MetricsSnapshot::HistogramValue overflow;
  overflow.bounds = {1.0, 8.0};
  overflow.buckets = {0, 0, 3};
  overflow.count = 3;
  EXPECT_EQ(HistogramPercentile(overflow, 1.0), 8.0);
}

TEST(SamplerTest, StopFlushesFinalFullFrame) {
  ScratchDir dir("sampler");
  const std::string series = dir.str() + "/series.jsonl";
  Counter& counter =
      MetricsRegistry::Global().GetCounter("diag.sampler_flush_test");

  SamplerOptions options;
  options.period_ms = 60000;  // Never ticks during the test.
  options.series_path = series;
  options.run_id = "flush-test";
  auto sampler = MetricsSampler::Start(options);
  ASSERT_TRUE(sampler.ok()) << sampler.status();

  // Mutate after the initial sample; only the shutdown flush can see
  // this value.
  counter.Add(41);
  (*sampler)->Stop();

  const auto ring = (*sampler)->Ring();
  ASSERT_GE(ring.size(), 2u);
  EXPECT_TRUE(ring.back().full) << "shutdown must flush a full frame";
  bool saw_counter = false;
  for (const auto& [name, value] : ring.back().view.counters) {
    if (name == "diag.sampler_flush_test" && value >= 41) saw_counter = true;
  }
  EXPECT_TRUE(saw_counter);

  // The JSONL tail is that same self-contained full frame.
  const std::string text = ReadFileOrEmpty(series);
  const std::size_t last_line = text.rfind("{\"type\"");
  ASSERT_NE(last_line, std::string::npos);
  EXPECT_NE(text.find("\"type\":\"full\"", last_line), std::string::npos);
  EXPECT_NE(text.find("diag.sampler_flush_test", last_line),
            std::string::npos);
}

}  // namespace
}  // namespace dd::obs::diag
