#include "discover/rule_explorer.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace dd {
namespace {

TEST(DiscoverTest, FindsAddressCityRuleOnRestaurant) {
  RestaurantOptions gopts;
  gopts.num_entities = 80;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  options.matching.dmax = 10;
  options.matching.max_pairs = 10000;
  options.max_lhs_size = 1;
  options.top_rules = 0;  // Keep all.
  auto rules = DiscoverRules(data.relation, options);
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());
  // The top-ranked rule should predict city (the only dependent
  // attribute in the generator) — from address or name.
  EXPECT_EQ(rules->front().rule.rhs, (std::vector<std::string>{"city"}));
  // Descending utility ordering.
  for (std::size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].best.utility, (*rules)[i].best.utility);
  }
}

TEST(DiscoverTest, RespectsMaxLhsSize) {
  RestaurantOptions gopts;
  gopts.num_entities = 30;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  options.matching.max_pairs = 2000;
  options.max_lhs_size = 2;
  options.top_rules = 0;
  auto rules = DiscoverRules(data.relation, options);
  ASSERT_TRUE(rules.ok());
  for (const auto& r : *rules) {
    EXPECT_LE(r.rule.lhs.size(), 2u);
    EXPECT_EQ(r.rule.rhs.size(), 1u);
  }
  // 4 attributes, single target each: 3 singletons + 3 pairs = 6 LHS
  // choices per target, 24 candidate rules total (some may be filtered
  // by min_utility).
  EXPECT_LE(rules->size(), 24u);
}

TEST(DiscoverTest, TopRulesTruncates) {
  RestaurantOptions gopts;
  gopts.num_entities = 30;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  options.matching.max_pairs = 2000;
  options.top_rules = 3;
  auto rules = DiscoverRules(data.relation, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_LE(rules->size(), 3u);
}

TEST(DiscoverTest, AttributeSubsetRestriction) {
  RestaurantOptions gopts;
  gopts.num_entities = 30;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  options.matching.max_pairs = 2000;
  options.top_rules = 0;
  auto rules = DiscoverRules(data.relation, options, {"address", "city"});
  ASSERT_TRUE(rules.ok());
  for (const auto& r : *rules) {
    for (const auto& a : r.rule.lhs) {
      EXPECT_TRUE(a == "address" || a == "city");
    }
  }
}

TEST(DiscoverTest, RejectsBadInput) {
  RestaurantOptions gopts;
  gopts.num_entities = 10;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  // Single attribute.
  EXPECT_FALSE(DiscoverRules(data.relation, options, {"city"}).ok());
  // Unknown attribute surfaces from the matching build.
  EXPECT_FALSE(DiscoverRules(data.relation, options, {"city", "nope"}).ok());
}

TEST(DiscoverTest, MinUtilityFilters) {
  RestaurantOptions gopts;
  gopts.num_entities = 30;
  GeneratedData data = GenerateRestaurant(gopts);
  ExploreOptions options;
  options.matching.max_pairs = 2000;
  options.top_rules = 0;
  options.min_utility = 0.999;  // Nothing is this good.
  auto rules = DiscoverRules(data.relation, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

}  // namespace
}  // namespace dd
