// Tests for the src/approx subsystem: Wilson intervals, 64-bit
// triangular pair arithmetic (the PR-7 overflow audit regression test),
// the uniform pair sampler, LSH blocking, the stratified provider's
// fraction-1.0 bit-identity against the exact pipeline, interval
// coverage at real sampling fractions, and thread determinism of the
// sampled mode.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "approx/approx_provider.h"
#include "approx/exact_stream.h"
#include "approx/lsh_index.h"
#include "approx/pair_sampler.h"
#include "approx/refine.h"
#include "approx/sampled_builder.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/determiner.h"
#include "core/measure_provider.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "matching/serialization.h"
#include "tests/test_util.h"

namespace dd {
namespace {

using approx::ApproxDetermineOptions;
using approx::ApproxDetermineResult;
using approx::ApproxDetermineThresholds;
using approx::ApproxDetermineWithSample;
using approx::ApproxMeasureProvider;
using approx::ApproxOptions;
using approx::BuildStreamingGridProvider;
using approx::CollectNearPairs;
using approx::LshStats;
using approx::PairSampler;
using approx::SampledMatchingBuilder;

// ---------------------------------------------------------------------
// Wilson interval

TEST(WilsonIntervalTest, ZeroTrialsIsVacuous) {
  const Interval iv = WilsonInterval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(WilsonIntervalTest, ContainsPointEstimate) {
  for (std::uint64_t successes : {0ull, 1ull, 25ull, 99ull, 100ull}) {
    const Interval iv = WilsonInterval(successes, 100);
    const double phat = static_cast<double>(successes) / 100.0;
    EXPECT_LE(iv.lo, phat) << successes;
    EXPECT_GE(iv.hi, phat) << successes;
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
  }
}

TEST(WilsonIntervalTest, WidthShrinksWithSampleSize) {
  const Interval small = WilsonInterval(10, 40);
  const Interval big = WilsonInterval(1000, 4000);
  EXPECT_LT(big.width(), small.width());
}

TEST(WilsonIntervalTest, FinitePopulationCorrection) {
  // Same proportion: the FPC interval for a mostly-exhausted population
  // is strictly tighter than the infinite-population one.
  const Interval infinite = WilsonInterval(50, 100);
  const Interval fpc = WilsonInterval(50, 100, 1.959963984540054, 110);
  EXPECT_LT(fpc.width(), infinite.width());
  // Fully exhausted population: the estimate is exact.
  const Interval exact = WilsonInterval(50, 100, 1.959963984540054, 100);
  EXPECT_DOUBLE_EQ(exact.lo, 0.5);
  EXPECT_DOUBLE_EQ(exact.hi, 0.5);
}

// ---------------------------------------------------------------------
// 64-bit triangular pair arithmetic (PR-7 overflow audit). At
// n = 100'000 the pair population is 4'999'950'000 > 2^32, so any
// 32-bit truncation in encode/decode corrupts indices past k ≈ 4.29e9.

TEST(TriangularPairTest, RoundTripAt100kRows) {
  const std::uint64_t n = 100000;
  const std::uint64_t total = n * (n - 1) / 2;
  ASSERT_EQ(total, 4999950000ull);
  ASSERT_GT(total, std::uint64_t{1} << 32);

  // Boundary pairs.
  EXPECT_EQ(DecodeTriangularPair(0, n), (std::pair<std::uint32_t,
                                                   std::uint32_t>{0, 1}));
  EXPECT_EQ(DecodeTriangularPair(total - 1, n),
            (std::pair<std::uint32_t, std::uint32_t>{
                static_cast<std::uint32_t>(n - 2),
                static_cast<std::uint32_t>(n - 1)}));
  EXPECT_EQ(EncodeTriangularPair(0, 1, n), 0ull);
  EXPECT_EQ(EncodeTriangularPair(n - 2, n - 1, n), total - 1);

  // The row-offset region past 2^32, where 32-bit arithmetic breaks.
  Rng rng(20260808);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t k = rng.NextBounded(total);
    const auto [i, j] = DecodeTriangularPair(k, n);
    ASSERT_LT(i, j);
    ASSERT_LT(j, n);
    ASSERT_EQ(EncodeTriangularPair(i, j, n), k) << "k=" << k;
  }
  // And a deterministic sweep across the > 2^32 tail.
  for (std::uint64_t k = total - 1000; k < total; ++k) {
    const auto [i, j] = DecodeTriangularPair(k, n);
    ASSERT_EQ(EncodeTriangularPair(i, j, n), k);
  }
}

// ---------------------------------------------------------------------
// PairSampler

TEST(PairSamplerTest, DrawsUniqueNonExcludedIndices) {
  const std::vector<std::uint64_t> excluded = {2, 3, 5, 8, 13, 21};
  PairSampler sampler(100, 7, excluded);
  EXPECT_EQ(sampler.population(), 100 - excluded.size());
  const std::vector<std::uint64_t> drawn = sampler.GrowTo(40);
  EXPECT_EQ(drawn.size(), 40u);
  EXPECT_TRUE(std::is_sorted(drawn.begin(), drawn.end()));
  std::set<std::uint64_t> seen;
  for (std::uint64_t k : drawn) {
    EXPECT_LT(k, 100u);
    EXPECT_FALSE(std::binary_search(excluded.begin(), excluded.end(), k));
    EXPECT_TRUE(seen.insert(k).second) << "duplicate " << k;
  }
}

TEST(PairSamplerTest, GrowToExtendsThePrefix) {
  PairSampler grow_twice(10000, 99, {});
  std::vector<std::uint64_t> acc = grow_twice.GrowTo(300);
  const std::vector<std::uint64_t> second = grow_twice.GrowTo(900);
  acc.insert(acc.end(), second.begin(), second.end());
  std::sort(acc.begin(), acc.end());

  PairSampler grow_once(10000, 99, {});
  std::vector<std::uint64_t> all = grow_once.GrowTo(900);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(acc, all);
  EXPECT_EQ(grow_twice.sampled(), 900u);
}

TEST(PairSamplerTest, ExhaustiveTargetCoversThePopulation) {
  const std::vector<std::uint64_t> excluded = {0, 17, 42};
  PairSampler sampler(64, 5, excluded);
  std::vector<std::uint64_t> first = sampler.GrowTo(20);
  const std::vector<std::uint64_t> rest = sampler.GrowTo(sampler.population());
  EXPECT_TRUE(sampler.exhausted());
  first.insert(first.end(), rest.begin(), rest.end());
  std::sort(first.begin(), first.end());
  EXPECT_EQ(first.size(), 61u);
  for (std::uint64_t k = 0, at = 0; k < 64; ++k) {
    if (std::binary_search(excluded.begin(), excluded.end(), k)) continue;
    ASSERT_EQ(first[at++], k);
  }
}

TEST(PairSamplerTest, SameSeedSameSample) {
  PairSampler a(5000, 1234, {});
  PairSampler b(5000, 1234, {});
  EXPECT_EQ(a.GrowTo(500), b.GrowTo(500));
  PairSampler c(5000, 1235, {});
  EXPECT_NE(a.GrowTo(1000), c.GrowTo(1000));
}

// ---------------------------------------------------------------------
// LSH blocking

TEST(LshIndexTest, FindsDuplicateHeavyPairsDeterministically) {
  CoraOptions options;
  options.num_entities = 40;
  const GeneratedData cora = GenerateCora(options);
  MatchingOptions matching;
  matching.dmax = 8;
  auto resolved = ResolveMatchingMetrics(
      cora.relation.schema(), {"author", "title", "venue"}, matching);
  ASSERT_TRUE(resolved.ok());

  approx::LshOptions lsh;
  LshStats stats;
  const std::vector<std::uint64_t> pairs =
      CollectNearPairs(cora.relation, *resolved, lsh, &stats);
  EXPECT_FALSE(pairs.empty());
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end());
  const std::uint64_t n = cora.relation.num_rows();
  for (std::uint64_t k : pairs) ASSERT_LT(k, n * (n - 1) / 2);
  EXPECT_EQ(stats.candidate_pairs, pairs.size());

  // Same inputs, same index — bit-for-bit.
  LshStats stats2;
  EXPECT_EQ(CollectNearPairs(cora.relation, *resolved, lsh, &stats2), pairs);
}

// ---------------------------------------------------------------------
// Exact-mode gate on the classic builder

TEST(MatchingModeTest, ExactBuilderRejectsApproxMode) {
  const GeneratedData hotel = HotelExample();
  MatchingOptions options;
  options.mode = MatchingMode::kApprox;
  auto built =
      BuildMatchingRelation(hotel.relation, {"Address", "Region"}, options);
  EXPECT_FALSE(built.ok());
}

TEST(SampledBuilderTest, RejectsLegacyPairCap) {
  const GeneratedData hotel = HotelExample();
  MatchingOptions options;
  options.max_pairs = 500;
  auto built = SampledMatchingBuilder::Build(
      hotel.relation, {"Address", "Region"}, options, ApproxOptions{});
  EXPECT_FALSE(built.ok());
}

// ---------------------------------------------------------------------
// Fraction 1.0 == exact pipeline, bit for bit (the acceptance
// guarantee). Runs Cora and Hotel, blocking on and off.

void ExpectBitIdentical(const DetermineResult& exact,
                        const ApproxDetermineResult& approx,
                        const std::string& label) {
  ASSERT_EQ(exact.patterns.size(), approx.determine.patterns.size()) << label;
  for (std::size_t p = 0; p < exact.patterns.size(); ++p) {
    const DeterminedPattern& e = exact.patterns[p];
    const DeterminedPattern& a = approx.determine.patterns[p];
    EXPECT_EQ(e.pattern.lhs, a.pattern.lhs) << label << " p=" << p;
    EXPECT_EQ(e.pattern.rhs, a.pattern.rhs) << label << " p=" << p;
    EXPECT_EQ(e.utility, a.utility) << label << " p=" << p;
    EXPECT_EQ(e.measures.lhs_count, a.measures.lhs_count) << label;
    EXPECT_EQ(e.measures.xy_count, a.measures.xy_count) << label;
    EXPECT_EQ(e.measures.d, a.measures.d) << label;
    EXPECT_EQ(e.measures.confidence, a.measures.confidence) << label;
    EXPECT_EQ(e.measures.quality, a.measures.quality) << label;
    // Exhaustive samples report exact answers: zero-width intervals
    // anchored on the true values.
    EXPECT_EQ(approx.intervals[p].utility.lo, e.utility) << label;
    EXPECT_EQ(approx.intervals[p].utility.hi, e.utility) << label;
  }
  EXPECT_EQ(exact.prior_mean_cq, approx.determine.prior_mean_cq) << label;
  EXPECT_TRUE(approx.exhaustive) << label;
  EXPECT_TRUE(approx.converged) << label;
  EXPECT_EQ(approx.sample_fraction, 1.0) << label;
}

struct FullFractionWorkload {
  std::string name;
  const Relation* relation;
  RuleSpec rule;
};

TEST(ApproxExactnessTest, FullFractionBitIdenticalToExactPipeline) {
  CoraOptions coptions;
  coptions.num_entities = 40;
  const GeneratedData cora = GenerateCora(coptions);
  const GeneratedData hotel = HotelExample();
  const std::vector<FullFractionWorkload> workloads = {
      {"cora", &cora.relation, RuleSpec{{"author", "title"}, {"venue"}}},
      {"hotel", &hotel.relation, RuleSpec{{"Address"}, {"Region"}}},
  };
  for (const FullFractionWorkload& w : workloads) {
    MatchingOptions matching;
    matching.dmax = 8;
    auto exact_matching =
        BuildMatchingRelation(*w.relation, w.rule.AllAttributes(), matching);
    ASSERT_TRUE(exact_matching.ok()) << w.name;
    const std::uint64_t total = exact_matching->num_tuples();

    DetermineOptions determine;
    determine.top_l = 3;
    determine.provider = "grid";
    auto exact = DetermineThresholds(*exact_matching, w.rule, determine);
    ASSERT_TRUE(exact.ok()) << w.name;

    for (const bool blocking : {true, false}) {
      ApproxDetermineOptions options;
      options.determine = determine;
      options.approx.sample_target = total;  // fraction 1.0
      options.approx.lsh.enabled = blocking;
      auto approx = ApproxDetermineThresholds(*w.relation, w.rule, matching,
                                              options);
      ASSERT_TRUE(approx.ok()) << w.name << " blocking=" << blocking;
      ExpectBitIdentical(*exact, *approx,
                         w.name + (blocking ? "+lsh" : "-lsh"));

      // The single-round discover path degenerates identically.
      auto sample = SampledMatchingBuilder::Build(
          *w.relation, w.rule.AllAttributes(), matching, options.approx);
      ASSERT_TRUE(sample.ok());
      auto single = ApproxDetermineWithSample(**sample, w.rule, options);
      ASSERT_TRUE(single.ok());
      ExpectBitIdentical(*exact, *single, w.name + "+single");
    }
  }
}

// ---------------------------------------------------------------------
// Streaming exact grid: identical counts to the grid provider built
// from the materialized matching relation.

TEST(ExactStreamTest, MatchesMaterializedGridCounts) {
  CoraOptions options;
  options.num_entities = 35;
  const GeneratedData cora = GenerateCora(options);
  const RuleSpec rule{{"author", "title"}, {"venue"}};
  MatchingOptions matching;
  matching.dmax = 6;

  auto exact_matching =
      BuildMatchingRelation(cora.relation, rule.AllAttributes(), matching);
  ASSERT_TRUE(exact_matching.ok());
  auto resolved = ResolveRule(*exact_matching, rule);
  ASSERT_TRUE(resolved.ok());
  auto grid = GridMeasureProvider::Create(*exact_matching, *resolved);
  ASSERT_TRUE(grid.ok());

  auto streamed = BuildStreamingGridProvider(cora.relation, rule, matching);
  ASSERT_TRUE(streamed.ok());
  ASSERT_EQ((*streamed)->total(), (*grid)->total());

  for (int x0 = 0; x0 <= matching.dmax; x0 += 2) {
    for (int x1 = 0; x1 <= matching.dmax; x1 += 3) {
      (*grid)->SetLhs({x0, x1});
      (*streamed)->SetLhs({x0, x1});
      ASSERT_EQ((*streamed)->lhs_count(), (*grid)->lhs_count())
          << x0 << "," << x1;
      for (int y = 0; y <= matching.dmax; ++y) {
        ASSERT_EQ((*streamed)->CountXY({y}), (*grid)->CountXY({y}))
            << x0 << "," << x1 << "->" << y;
      }
    }
  }

  // And the full determination lands on the same answer.
  DetermineOptions determine;
  determine.top_l = 2;
  determine.provider = "grid";
  auto exact = DetermineThresholds(*exact_matching, rule, determine);
  ASSERT_TRUE(exact.ok());
  auto from_stream = DetermineWithProvider(streamed->get(), rule.lhs.size(),
                                           rule.rhs.size(), matching.dmax,
                                           determine, "stream");
  ASSERT_TRUE(from_stream.ok());
  ASSERT_EQ(exact->patterns.size(), from_stream->patterns.size());
  for (std::size_t p = 0; p < exact->patterns.size(); ++p) {
    EXPECT_EQ(exact->patterns[p].pattern.lhs,
              from_stream->patterns[p].pattern.lhs);
    EXPECT_EQ(exact->patterns[p].utility, from_stream->patterns[p].utility);
  }
}

// ---------------------------------------------------------------------
// Interval coverage: at sampling fractions 0.1 and 0.3, the true
// D/C counts of the exact winner must land inside the reported 95%
// intervals in >= 95% of 200 fixed seeds. Deterministic by
// construction (fixed seeds); blocking is off so the test exercises
// the pure estimator. 200 seeds rather than a handful because the
// per-seed cover/miss outcome is itself Bernoulli(~0.95): a small
// window routinely shows 3-4 misses by chance even though the
// realized coverage measured over 500 seeds is 95.8-97.6%.

TEST(ApproxCoverageTest, IntervalsCoverTrueCounts) {
  CoraOptions coptions;
  coptions.num_entities = 60;
  const GeneratedData cora = GenerateCora(coptions);
  const RuleSpec rule{{"author", "title"}, {"venue"}};
  MatchingOptions matching;
  matching.dmax = 8;

  auto exact_matching =
      BuildMatchingRelation(cora.relation, rule.AllAttributes(), matching);
  ASSERT_TRUE(exact_matching.ok());
  const std::uint64_t total = exact_matching->num_tuples();
  auto resolved = ResolveRule(*exact_matching, rule);
  ASSERT_TRUE(resolved.ok());
  auto grid = GridMeasureProvider::Create(*exact_matching, *resolved);
  ASSERT_TRUE(grid.ok());

  DetermineOptions determine;
  determine.top_l = 1;
  determine.provider = "grid";
  auto exact = DetermineThresholds(*exact_matching, rule, determine);
  ASSERT_TRUE(exact.ok());
  ASSERT_FALSE(exact->patterns.empty());
  const Pattern winner = exact->patterns.front().pattern;
  (*grid)->SetLhs(winner.lhs);
  const std::uint64_t true_lhs = (*grid)->lhs_count();
  const std::uint64_t true_xy = (*grid)->CountXY(winner.rhs);
  const double true_confidence =
      static_cast<double>(true_xy) / static_cast<double>(true_lhs);

  for (const double fraction : {0.1, 0.3}) {
    int lhs_covered = 0;
    int xy_covered = 0;
    int confidence_covered = 0;
    const int kSeeds = 200;
    for (int seed = 0; seed < kSeeds; ++seed) {
      ApproxOptions approx;
      approx.sample_target =
          static_cast<std::uint64_t>(fraction * static_cast<double>(total));
      approx.seed = 1000 + seed;
      approx.lsh.enabled = false;
      auto sample = SampledMatchingBuilder::Build(
          cora.relation, rule.AllAttributes(), matching, approx);
      ASSERT_TRUE(sample.ok());
      auto provider = ApproxMeasureProvider::Create(
          **sample, rule, /*z=*/1.959963984540054, /*threads=*/1);
      ASSERT_TRUE(provider.ok());
      (*provider)->SetLhs(winner.lhs);
      const Interval lhs_iv = (*provider)->LhsCountInterval();
      const Interval xy_iv = (*provider)->XyCountInterval(winner.rhs);
      if (lhs_iv.Contains(static_cast<double>(true_lhs))) ++lhs_covered;
      if (xy_iv.Contains(static_cast<double>(true_xy))) ++xy_covered;
      // The conservative confidence bounds of refine.h.
      const double c_lo = lhs_iv.hi > 0 ? xy_iv.lo / lhs_iv.hi : 0.0;
      const double c_hi =
          lhs_iv.lo > 0 ? std::min(1.0, xy_iv.hi / lhs_iv.lo) : 1.0;
      if (true_confidence >= c_lo && true_confidence <= c_hi) {
        ++confidence_covered;
      }
    }
    const int kNeed = kSeeds * 95 / 100;
    EXPECT_GE(lhs_covered, kNeed) << "fraction " << fraction;
    EXPECT_GE(xy_covered, kNeed) << "fraction " << fraction;
    EXPECT_GE(confidence_covered, kNeed) << "fraction " << fraction;
  }
}

// ---------------------------------------------------------------------
// Thread determinism of the sampled mode (extends the PR-5 suite):
// identical seed => byte-identical strata and identical determination
// at every pool size.

TEST(ApproxDeterminismTest, SampledModeBitIdenticalAcrossThreads) {
  CoraOptions coptions;
  coptions.num_entities = 40;
  const GeneratedData cora = GenerateCora(coptions);
  const RuleSpec rule{{"author", "title"}, {"venue"}};

  const auto build = [&](std::size_t threads) {
    MatchingOptions matching;
    matching.dmax = 8;
    matching.threads = threads;
    ApproxOptions approx;
    approx.sample_target = 5000;
    approx.seed = 77;
    return SampledMatchingBuilder::Build(cora.relation, rule.AllAttributes(),
                                         matching, approx);
  };
  const auto determine = [&](std::size_t threads) {
    MatchingOptions matching;
    matching.dmax = 8;
    matching.threads = threads;
    ApproxDetermineOptions options;
    options.determine.top_l = 3;
    options.determine.threads = threads;
    options.approx.sample_target = 5000;
    options.approx.seed = 77;
    return ApproxDetermineThresholds(cora.relation, rule, matching, options);
  };

  auto reference = build(1);
  ASSERT_TRUE(reference.ok());
  const std::string near_bytes =
      SerializeMatchingRelation((*reference)->near());
  const std::string tail_bytes =
      SerializeMatchingRelation((*reference)->tail());
  auto reference_run = determine(1);
  ASSERT_TRUE(reference_run.ok());

  std::vector<std::size_t> thread_counts = {2, 7};
  if (DefaultThreads() > 1) thread_counts.push_back(DefaultThreads());
  for (const std::size_t threads : thread_counts) {
    auto sample = build(threads);
    ASSERT_TRUE(sample.ok());
    EXPECT_EQ(SerializeMatchingRelation((*sample)->near()), near_bytes)
        << "threads=" << threads;
    EXPECT_EQ(SerializeMatchingRelation((*sample)->tail()), tail_bytes)
        << "threads=" << threads;

    auto run = determine(threads);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->determine.patterns.size(),
              reference_run->determine.patterns.size());
    for (std::size_t p = 0; p < run->determine.patterns.size(); ++p) {
      EXPECT_EQ(run->determine.patterns[p].pattern.lhs,
                reference_run->determine.patterns[p].pattern.lhs)
          << "threads=" << threads;
      EXPECT_EQ(run->determine.patterns[p].pattern.rhs,
                reference_run->determine.patterns[p].pattern.rhs)
          << "threads=" << threads;
      EXPECT_EQ(run->determine.patterns[p].utility,
                reference_run->determine.patterns[p].utility)
          << "threads=" << threads;
      EXPECT_EQ(run->intervals[p].utility.lo,
                reference_run->intervals[p].utility.lo)
          << "threads=" << threads;
      EXPECT_EQ(run->intervals[p].utility.hi,
                reference_run->intervals[p].utility.hi)
          << "threads=" << threads;
    }
    EXPECT_EQ(run->rounds, reference_run->rounds);
    EXPECT_EQ(run->sample_fraction, reference_run->sample_fraction);
    EXPECT_EQ(run->near_pairs, reference_run->near_pairs);
    EXPECT_EQ(run->sampled_pairs, reference_run->sampled_pairs);
  }
}

// ---------------------------------------------------------------------
// JSON surface

TEST(ApproxJsonTest, ResultDocumentIsWellFormed) {
  const GeneratedData hotel = HotelExample();
  const RuleSpec rule{{"Address"}, {"Region"}};
  MatchingOptions matching;
  ApproxDetermineOptions options;
  options.determine.top_l = 2;
  options.approx.sample_target = 200;
  auto result = ApproxDetermineThresholds(hotel.relation, rule, matching,
                                          options);
  ASSERT_TRUE(result.ok());
  const std::string json = approx::ApproxResultToJson(*result, rule);
  testutil::JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"estimated\""), std::string::npos);
  EXPECT_NE(json.find("\"utility_lo\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_fraction\""), std::string::npos);
}

}  // namespace
}  // namespace dd
