#include "data/schema.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(SchemaTest, ConstructFromAttributeList) {
  Schema s({{"name", AttributeType::kString}, {"age", AttributeType::kNumeric}});
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.attribute(0).name, "name");
  EXPECT_EQ(s.attribute(1).type, AttributeType::kNumeric);
}

TEST(SchemaTest, AddAttributeRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute({"a", AttributeType::kString}).ok());
  Status dup = s.AddAttribute({"a", AttributeType::kNumeric});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.num_attributes(), 1u);
}

TEST(SchemaTest, IndexOfFindsAndFails) {
  Schema s({{"x", AttributeType::kString}, {"y", AttributeType::kString}});
  auto found = s.IndexOf("y");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1u);
  EXPECT_EQ(s.IndexOf("z").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(s.Contains("x"));
  EXPECT_FALSE(s.Contains("X"));  // Case-sensitive.
}

TEST(SchemaTest, ResolveAllPreservesOrder) {
  Schema s({{"a", AttributeType::kString},
            {"b", AttributeType::kString},
            {"c", AttributeType::kString}});
  auto idx = s.ResolveAll({"c", "a"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), (std::vector<std::size_t>{2, 0}));
  EXPECT_FALSE(s.ResolveAll({"a", "nope"}).ok());
}

TEST(SchemaTest, ToStringListsNameAndType) {
  Schema s({{"a", AttributeType::kString}, {"n", AttributeType::kNumeric}});
  EXPECT_EQ(s.ToString(), "a:string, n:numeric");
}

TEST(SchemaTest, EqualityComparesNamesAndTypes) {
  Schema a({{"x", AttributeType::kString}});
  Schema b({{"x", AttributeType::kString}});
  Schema c({{"x", AttributeType::kNumeric}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(AttributeTypeTest, Names) {
  EXPECT_EQ(AttributeTypeName(AttributeType::kString), "string");
  EXPECT_EQ(AttributeTypeName(AttributeType::kNumeric), "numeric");
}

}  // namespace
}  // namespace dd
