// Tests for the Determination EXPLAIN layer (DESIGN.md §11): recorder
// accounting identity, sampling invariance, audit/landscape formatting,
// and the metrics-registry integration.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/determiner.h"
#include "core/special_cases.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "obs/explain/audit.h"
#include "obs/explain/recorder.h"
#include "obs/export/prometheus.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace dd {
namespace {

// Ensures the global recorder is off when a test scope exits, so one
// test's recording can never leak into another binary-shared test.
struct ScopedRecording {
  explicit ScopedRecording(const obs::ExplainConfig& config) {
    obs::ExplainRecorder::Global().Enable(config);
  }
  ~ScopedRecording() { obs::ExplainRecorder::Global().Disable(); }
};

MatchingRelation CoraMatching() {
  CoraOptions options;
  options.num_entities = 40;
  GeneratedData data = GenerateCora(options);
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 4000;
  auto matching = BuildMatchingRelation(
      data.relation, {"author", "title", "venue", "year"}, mopts);
  return std::move(matching).value();
}

struct ExplainedRun {
  DetermineResult result;
  obs::ExplainSnapshot snapshot;
};

ExplainedRun DetermineWithExplain(const MatchingRelation& matching,
                                  const RuleSpec& rule,
                                  const DetermineOptions& options,
                                  const obs::ExplainConfig& config) {
  ScopedRecording recording(config);
  auto result = DetermineThresholds(matching, rule, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ExplainedRun run;
  run.result = std::move(*result);
  run.snapshot = obs::ExplainRecorder::Global().Snapshot();
  return run;
}

void ExpectSamePatterns(const std::vector<DeterminedPattern>& a,
                        const std::vector<DeterminedPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pattern.lhs, b[i].pattern.lhs) << "pattern " << i;
    EXPECT_EQ(a[i].pattern.rhs, b[i].pattern.rhs) << "pattern " << i;
    // Bitwise: the recorder must not perturb any arithmetic.
    EXPECT_EQ(a[i].utility, b[i].utility) << "pattern " << i;
    EXPECT_EQ(a[i].measures.confidence, b[i].measures.confidence);
    EXPECT_EQ(a[i].measures.quality, b[i].measures.quality);
  }
}

DetermineOptions Combo(LhsAlgorithm lhs, RhsAlgorithm rhs) {
  DetermineOptions options;
  options.lhs_algorithm = lhs;
  options.rhs_algorithm = rhs;
  options.top_l = 3;
  options.provider = "grid";
  return options;
}

TEST(ExplainRecorderTest, DisabledRecorderIsInert) {
  obs::ExplainRecorder::Global().Disable();
  EXPECT_EQ(obs::ExplainRecorder::Active(), nullptr);
  // A determination with the recorder off must not create any state.
  MatchingRelation matching = testutil::HotelMatching();
  RuleSpec rule{{"Address"}, {"Region"}};
  auto result = DetermineThresholds(matching, rule, DetermineOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(obs::ExplainRecorder::Active(), nullptr);
}

TEST(ExplainRecorderTest, EnableResetsPreviousRun) {
  MatchingRelation matching = testutil::HotelMatching();
  RuleSpec rule{{"Address"}, {"Region"}};
  obs::ExplainConfig config;
  ExplainedRun first = DetermineWithExplain(
      matching, rule, Combo(LhsAlgorithm::kDa, RhsAlgorithm::kPa), config);
  ExplainedRun second = DetermineWithExplain(
      matching, rule, Combo(LhsAlgorithm::kDa, RhsAlgorithm::kPa), config);
  // The second Enable started from zero, not from accumulated totals.
  EXPECT_EQ(first.snapshot.waterfall.candidates,
            second.snapshot.waterfall.candidates);
  EXPECT_EQ(first.snapshot.events.size(), second.snapshot.events.size());
}

// Satellite: the per-event recorder cross-checks the aggregate
// `pruned = lattice_size - evaluated` accounting of PaStats/DaStats —
// every lattice candidate accounted for exactly once, on Cora and
// Hotel, for all four algorithm combinations, recorder on or off.
TEST(ExplainAccountingTest, AccountsEveryCandidateExactlyOnce) {
  const MatchingRelation cora = CoraMatching();
  const MatchingRelation hotel = testutil::HotelMatching();
  const RuleSpec cora_rule{{"author", "title"}, {"venue", "year"}};
  const RuleSpec hotel_rule{{"Address"}, {"Region"}};
  const struct {
    const MatchingRelation* matching;
    const RuleSpec* rule;
  } datasets[] = {{&cora, &cora_rule}, {&hotel, &hotel_rule}};
  const struct {
    LhsAlgorithm lhs;
    RhsAlgorithm rhs;
  } combos[] = {{LhsAlgorithm::kDa, RhsAlgorithm::kPa},
                {LhsAlgorithm::kDa, RhsAlgorithm::kPap},
                {LhsAlgorithm::kDap, RhsAlgorithm::kPa},
                {LhsAlgorithm::kDap, RhsAlgorithm::kPap}};

  for (const auto& dataset : datasets) {
    for (const auto& combo : combos) {
      const DetermineOptions options = Combo(combo.lhs, combo.rhs);
      auto plain = DetermineThresholds(*dataset.matching, *dataset.rule,
                                       options);
      ASSERT_TRUE(plain.ok());
      ExplainedRun explained = DetermineWithExplain(
          *dataset.matching, *dataset.rule, options, obs::ExplainConfig{});
      const obs::ExplainWaterfall& w = explained.snapshot.waterfall;
      SCOPED_TRACE(StrFormat("lhs_algo=%s rhs_algo=%s rhs_dims=%zu",
                             LhsAlgorithmName(combo.lhs),
                             RhsAlgorithmName(combo.rhs),
                             dataset.rule->rhs.size()));
      // The waterfall identity, against the recorder's own totals…
      EXPECT_TRUE(w.Accounted())
          << "evaluated " << w.evaluated << " + pruned " << w.Pruned()
          << " != candidates " << w.candidates;
      // …and against the aggregate stats the algorithms always kept.
      EXPECT_EQ(w.candidates, explained.result.stats.rhs.lattice_size);
      EXPECT_EQ(w.evaluated, explained.result.stats.rhs.evaluated);
      EXPECT_EQ(w.Pruned(), explained.result.stats.rhs.pruned);
      EXPECT_EQ(w.lhs_seen, explained.result.stats.lhs_evaluated);
      // Recording on vs off returns identical answers.
      ExpectSamePatterns(plain->patterns, explained.result.patterns);
      // With sample_every == 1 every candidate decision is in the ring.
      EXPECT_EQ(explained.snapshot.events.size(), w.candidates);
      EXPECT_EQ(explained.snapshot.sampled_out, 0u);
    }
  }
}

// Satellite: property test — enabling the recorder at any sample rate
// (and with a pathologically small ring) never changes the determined
// thresholds, utilities, or top-l ranking.
TEST(ExplainInvarianceTest, RecorderNeverChangesResults) {
  const MatchingRelation matching = testutil::RandomMatching(4, 8, 600, 7);
  const RuleSpec rule{{"a0", "a1"}, {"a2", "a3"}};
  DetermineOptions options = Combo(LhsAlgorithm::kDap, RhsAlgorithm::kPap);
  options.top_l = 5;
  auto baseline = DetermineThresholds(matching, rule, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->patterns.empty());

  for (const std::size_t sample_every : {1u, 5u, 64u}) {
    obs::ExplainConfig config;
    config.sample_every = sample_every;
    config.ring_capacity = 8;  // Force overwrites; totals must survive.
    ExplainedRun explained =
        DetermineWithExplain(matching, rule, options, config);
    SCOPED_TRACE(StrFormat("sample_every=%zu", sample_every));
    ExpectSamePatterns(baseline->patterns, explained.result.patterns);
    EXPECT_TRUE(explained.snapshot.waterfall.Accounted());
    // The ring kept at most its capacity per thread, but exact totals
    // survived regardless.
    EXPECT_EQ(explained.snapshot.waterfall.candidates,
              baseline->stats.rhs.lattice_size);
  }
}

TEST(ExplainAuditTest, DecodeRhsLevelsRoundTrips) {
  const std::size_t dims = 3;
  const int dmax = 4;
  const std::uint32_t base = static_cast<std::uint32_t>(dmax) + 1;
  for (std::uint32_t idx = 0; idx < base * base * base; ++idx) {
    const obs::ExplainLevels levels = DecodeRhsLevels(idx, dims, dmax);
    std::uint32_t back = 0;
    for (std::size_t d = dims; d-- > 0;) {
      back = back * base + static_cast<std::uint32_t>(levels[d]);
    }
    EXPECT_EQ(back, idx);
  }
}

TEST(ExplainAuditTest, AuditJsonIsValidAndFullPrecision) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  const DetermineOptions options =
      Combo(LhsAlgorithm::kDap, RhsAlgorithm::kPap);
  ExplainedRun run = DetermineWithExplain(matching, rule, options,
                                          obs::ExplainConfig{});
  ASSERT_FALSE(run.result.patterns.empty());
  const std::string audit = ExplainAuditToJson(run.snapshot, run.result, rule,
                                               options.utility);
  testutil::JsonChecker checker(audit);
  EXPECT_TRUE(checker.Valid()) << audit;
  // The winner's decomposition appears at full (%.17g) precision: the
  // audit must match the run report bit-for-bit.
  const DeterminedPattern& winner = run.result.patterns[0];
  EXPECT_NE(audit.find(StrFormat("%.17g", winner.utility)),
            std::string::npos);
  EXPECT_NE(audit.find(StrFormat("%.17g", winner.measures.confidence)),
            std::string::npos);
  EXPECT_NE(audit.find(StrFormat("%.17g", winner.measures.quality)),
            std::string::npos);
  EXPECT_NE(audit.find("\"accounted\": true"), std::string::npos);
  EXPECT_NE(audit.find("DAP+PAP"), std::string::npos);
}

// Satellite: golden rendering of the pruning waterfall — stable stage
// ordering and column widths.
TEST(ExplainAuditTest, WaterfallGoldenText) {
  obs::ExplainSnapshot snapshot;
  snapshot.run_label = "golden";
  snapshot.waterfall.lhs_seen = 4;
  snapshot.waterfall.lhs_bounded_out = 1;
  snapshot.waterfall.candidates = 100;
  snapshot.waterfall.pruned_s0 = 40;
  snapshot.waterfall.pruned_s1 = 25;
  snapshot.waterfall.pruned_zero_conf = 5;
  snapshot.waterfall.evaluated = 30;
  snapshot.waterfall.offered = 6;
  DetermineResult result;
  result.patterns.resize(2);

  const std::string expected =
      "Pruning waterfall (golden)\n"
      "  stage                                 count    remaining\n"
      "  candidates                              100          100\n"
      "  - pruned by S0 (Prop. 1)                 40           60\n"
      "  - pruned by S1 (Prop. 2)                 25           35\n"
      "  - pruned (zero confidence)                5           30\n"
      "  = evaluated                              30\n"
      "  entered top-l heap                        6\n"
      "  answers returned                          2\n"
      "  LHS searched: 4 (bounded out: 1)\n";
  EXPECT_EQ(PruningWaterfallToText(snapshot, result), expected);
}

TEST(ExplainAuditTest, WaterfallWarnsOnAccountingMismatch) {
  obs::ExplainSnapshot snapshot;
  snapshot.waterfall.candidates = 10;
  snapshot.waterfall.evaluated = 3;  // 7 candidates unaccounted.
  DetermineResult result;
  const std::string text = PruningWaterfallToText(snapshot, result);
  EXPECT_NE(text.find("WARNING: accounting mismatch"), std::string::npos);
}

TEST(ExplainAuditTest, WhyChosenDiffsWinnerAgainstRunnerUp) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  DetermineOptions options = Combo(LhsAlgorithm::kDa, RhsAlgorithm::kPa);
  auto result = DetermineThresholds(matching, rule, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->patterns.size(), 2u);
  const std::string why = WhyChosenToText(*result);
  EXPECT_NE(why.find("winner"), std::string::npos);
  EXPECT_NE(why.find("runner-up"), std::string::npos);
  EXPECT_NE(why.find("utility"), std::string::npos);
  // No winner at all degrades gracefully.
  DetermineResult empty;
  EXPECT_NE(WhyChosenToText(empty).find("no pattern"), std::string::npos);
}

TEST(ExplainAuditTest, LandscapeExportsOneRowPerEvaluatedEvent) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  const DetermineOptions options = Combo(LhsAlgorithm::kDa, RhsAlgorithm::kPa);
  ExplainedRun run = DetermineWithExplain(matching, rule, options,
                                          obs::ExplainConfig{});
  std::size_t evaluated_events = 0;
  for (const obs::ExplainEvent& e : run.snapshot.events) {
    if (e.outcome == obs::ExplainOutcome::kEvaluated) ++evaluated_events;
  }
  ASSERT_GT(evaluated_events, 0u);

  const std::string csv = LandscapeToCsv(run.snapshot, rule, options.utility,
                                         run.result.prior_mean_cq);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, evaluated_events + 1);  // Header + one row per event.
  EXPECT_EQ(csv.find("lhs_Address,rhs_Region,d,confidence,quality,cq,utility"),
            0u);

  const std::string jsonl = LandscapeToJsonl(run.snapshot, rule,
                                             options.utility,
                                             run.result.prior_mean_cq);
  std::size_t start = 0;
  std::size_t rows = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = jsonl.substr(start, end - start);
    testutil::JsonChecker checker(line);
    EXPECT_TRUE(checker.Valid()) << line;
    ++rows;
    start = end + 1;
  }
  EXPECT_EQ(rows, evaluated_events);
}

TEST(ExplainMetricsTest, ExplainCountersAppearInPrometheusExposition) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  DetermineWithExplain(matching, rule,
                       Combo(LhsAlgorithm::kDap, RhsAlgorithm::kPap),
                       obs::ExplainConfig{});
  const std::string exposition = obs::MetricsSnapshotToPrometheus(
      obs::MetricsRegistry::Global().Snapshot());
  EXPECT_NE(exposition.find("explain_events_recorded"), std::string::npos);
  EXPECT_NE(exposition.find("explain_evaluated"), std::string::npos);
  EXPECT_NE(exposition.find("explain_candidates"), std::string::npos);
  EXPECT_NE(exposition.find("explain_eval_latency_us"), std::string::npos);
}

TEST(ExplainSpecialCasesTest, MfdAndMdRunsSatisfyAccounting) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  SpecialCaseOptions options;
  options.top_l = 3;

  {
    ScopedRecording recording((obs::ExplainConfig()));
    auto mfd = DetermineMfdThresholds(matching, rule, options);
    ASSERT_TRUE(mfd.ok());
    const obs::ExplainSnapshot snapshot =
        obs::ExplainRecorder::Global().Snapshot();
    EXPECT_TRUE(snapshot.waterfall.Accounted());
    EXPECT_EQ(snapshot.waterfall.candidates, mfd->stats.rhs.lattice_size);
    EXPECT_EQ(snapshot.run_label, "MFD determination");
  }
  {
    ScopedRecording recording((obs::ExplainConfig()));
    auto md = DetermineMdThresholds(matching, rule, options);
    ASSERT_TRUE(md.ok());
    const obs::ExplainSnapshot snapshot =
        obs::ExplainRecorder::Global().Snapshot();
    EXPECT_TRUE(snapshot.waterfall.Accounted());
    EXPECT_EQ(snapshot.waterfall.candidates, md->stats.rhs.lattice_size);
    EXPECT_EQ(snapshot.waterfall.evaluated, md->stats.rhs.evaluated);
    EXPECT_EQ(snapshot.run_label, "MD determination");
  }
}

TEST(ExplainEventsTest, WinnerAndBoundAdvancingEventsSurviveSampling) {
  const MatchingRelation matching = testutil::HotelMatching();
  const RuleSpec rule{{"Address"}, {"Region"}};
  obs::ExplainConfig config;
  config.sample_every = 1000000;  // Sample out (almost) everything.
  ExplainedRun run = DetermineWithExplain(
      matching, rule, Combo(LhsAlgorithm::kDap, RhsAlgorithm::kPap), config);
  ASSERT_FALSE(run.result.patterns.empty());
  // Every offered (bound-advancing) event was force-kept, so the event
  // stream still explains where the winner came from.
  std::uint64_t offered_kept = 0;
  for (const obs::ExplainEvent& e : run.snapshot.events) {
    if (e.offered) {
      ++offered_kept;
      EXPECT_TRUE(e.forced);
    }
  }
  EXPECT_EQ(offered_kept, run.snapshot.waterfall.offered);
  // Exact totals survive aggressive sampling.
  EXPECT_TRUE(run.snapshot.waterfall.Accounted());
}

}  // namespace
}  // namespace dd
