#include "matching/builder.h"

#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "metric/metric.h"

namespace dd {
namespace {

TEST(BucketDistanceTest, CapsAndRounds) {
  EXPECT_EQ(BucketDistance(0.0, 1.0, 10), 0);
  EXPECT_EQ(BucketDistance(3.4, 1.0, 10), 3);
  EXPECT_EQ(BucketDistance(3.6, 1.0, 10), 4);
  EXPECT_EQ(BucketDistance(42.0, 1.0, 10), 10);
  EXPECT_EQ(BucketDistance(10.0, 1.0, 10), 10);
  // Normalized metric spread over the domain.
  EXPECT_EQ(BucketDistance(0.5, 10.0, 10), 5);
  EXPECT_EQ(BucketDistance(1.0, 10.0, 10), 10);
  // Infinity (unparseable numerics) caps at dmax.
  EXPECT_EQ(BucketDistance(std::numeric_limits<double>::infinity(), 1.0, 10),
            10);
}

TEST(MatchingBuilderTest, AllPairsCountAndSymmetry) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 15u);  // C(6,2)
  EXPECT_EQ(m->num_attributes(), 2u);
  EXPECT_EQ(m->dmax(), 10);
  // Pairs are distinct, ordered (i < j) and within range.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    EXPECT_LT(i, j);
    EXPECT_LT(j, 6u);
    EXPECT_TRUE(seen.insert({i, j}).second);
  }
}

TEST(MatchingBuilderTest, LevelsMatchDirectMetricComputation) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  LevenshteinMetric lev;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    for (std::size_t a = 0; a < 2; ++a) {
      const std::size_t col = a == 0 ? 1 : 2;  // Address, Region
      double raw = lev.Distance(hotel.relation.at(i, col),
                                hotel.relation.at(j, col));
      EXPECT_EQ(m->level(r, a), BucketDistance(raw, 1.0, 10))
          << "pair (" << i << "," << j << ") attr " << a;
    }
  }
}

TEST(MatchingBuilderTest, PaperRunningExampleStatistics) {
  // The paper's dd1 on Table I: 6 of 15 pairs satisfy the Address
  // threshold and 4 of those the Region threshold (D = 0.4, C = 4/6).
  // The paper computed edit distance with q-grams; under plain
  // Levenshtein the equivalent Region threshold is 4 instead of 3
  // ("Chicago" vs "Chicago, IL" is 4 character inserts).
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 30;  // Large enough to not clip any distance of Table I.
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  std::size_t lhs = 0;
  std::size_t both = 0;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    if (m->level(r, 0) <= 8) {
      ++lhs;
      if (m->level(r, 1) <= 4) ++both;
    }
  }
  EXPECT_EQ(lhs, 6u);
  EXPECT_EQ(both, 4u);
}

TEST(MatchingBuilderTest, SamplingBoundsSizeExactly) {
  CoraOptions copts;
  copts.num_entities = 40;
  GeneratedData cora = GenerateCora(copts);
  MatchingOptions opts;
  opts.max_pairs = 500;
  auto m = BuildMatchingRelation(cora.relation, {"author", "title"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 500u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    EXPECT_LT(i, j);
    EXPECT_LT(j, cora.relation.num_rows());
    EXPECT_TRUE(seen.insert({i, j}).second) << "duplicate sampled pair";
  }
}

TEST(MatchingBuilderTest, SamplingIsDeterministic) {
  CoraOptions copts;
  copts.num_entities = 30;
  GeneratedData cora = GenerateCora(copts);
  MatchingOptions opts;
  opts.max_pairs = 200;
  auto a = BuildMatchingRelation(cora.relation, {"author"}, opts);
  auto b = BuildMatchingRelation(cora.relation, {"author"}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pairs(), b->pairs());
}

TEST(MatchingBuilderTest, MetricOverrides) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  opts.metric_overrides["Region"] = "jaccard";
  auto m = BuildMatchingRelation(hotel.relation, {"Region"}, opts);
  ASSERT_TRUE(m.ok());
  JaccardMetric jac;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    double raw = jac.Distance(hotel.relation.at(i, 2), hotel.relation.at(j, 2));
    EXPECT_EQ(m->level(r, 0), BucketDistance(raw, 10.0, 10));
  }
}

TEST(MatchingBuilderTest, RejectsBadInputs) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {}, opts).ok());
  EXPECT_FALSE(
      BuildMatchingRelation(hotel.relation, {"NoSuchAttr"}, opts).ok());
  opts.dmax = 0;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
  opts.dmax = 10;
  opts.metric_overrides["Name"] = "bogus_metric";
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
  opts.metric_overrides.clear();
  opts.scale_overrides["Name"] = -1.0;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
}

TEST(MatchingRelationTest, IndexOf) {
  MatchingRelation m({"a", "b"}, 5);
  auto idx = m.IndexOf("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(m.IndexOf("c").ok());
}

}  // namespace
}  // namespace dd
