#include "matching/builder.h"

#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "matching/value_cache.h"
#include "metric/metric.h"

namespace dd {
namespace {

TEST(BucketDistanceTest, CapsAndRounds) {
  EXPECT_EQ(BucketDistance(0.0, 1.0, 10), 0);
  EXPECT_EQ(BucketDistance(3.4, 1.0, 10), 3);
  EXPECT_EQ(BucketDistance(3.6, 1.0, 10), 4);
  EXPECT_EQ(BucketDistance(42.0, 1.0, 10), 10);
  EXPECT_EQ(BucketDistance(10.0, 1.0, 10), 10);
  // Normalized metric spread over the domain.
  EXPECT_EQ(BucketDistance(0.5, 10.0, 10), 5);
  EXPECT_EQ(BucketDistance(1.0, 10.0, 10), 10);
  // Infinity (unparseable numerics) caps at dmax.
  EXPECT_EQ(BucketDistance(std::numeric_limits<double>::infinity(), 1.0, 10),
            10);
}

TEST(MatchingBuilderTest, AllPairsCountAndSymmetry) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 15u);  // C(6,2)
  EXPECT_EQ(m->num_attributes(), 2u);
  EXPECT_EQ(m->dmax(), 10);
  // Pairs are distinct, ordered (i < j) and within range.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    EXPECT_LT(i, j);
    EXPECT_LT(j, 6u);
    EXPECT_TRUE(seen.insert({i, j}).second);
  }
}

TEST(MatchingBuilderTest, LevelsMatchDirectMetricComputation) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  LevenshteinMetric lev;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    for (std::size_t a = 0; a < 2; ++a) {
      const std::size_t col = a == 0 ? 1 : 2;  // Address, Region
      double raw = lev.Distance(hotel.relation.at(i, col),
                                hotel.relation.at(j, col));
      EXPECT_EQ(m->level(r, a), BucketDistance(raw, 1.0, 10))
          << "pair (" << i << "," << j << ") attr " << a;
    }
  }
}

TEST(MatchingBuilderTest, PaperRunningExampleStatistics) {
  // The paper's dd1 on Table I: 6 of 15 pairs satisfy the Address
  // threshold and 4 of those the Region threshold (D = 0.4, C = 4/6).
  // The paper computed edit distance with q-grams; under plain
  // Levenshtein the equivalent Region threshold is 4 instead of 3
  // ("Chicago" vs "Chicago, IL" is 4 character inserts).
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 30;  // Large enough to not clip any distance of Table I.
  auto m = BuildMatchingRelation(hotel.relation, {"Address", "Region"}, opts);
  ASSERT_TRUE(m.ok());
  std::size_t lhs = 0;
  std::size_t both = 0;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    if (m->level(r, 0) <= 8) {
      ++lhs;
      if (m->level(r, 1) <= 4) ++both;
    }
  }
  EXPECT_EQ(lhs, 6u);
  EXPECT_EQ(both, 4u);
}

TEST(MatchingBuilderTest, SamplingBoundsSizeExactly) {
  CoraOptions copts;
  copts.num_entities = 40;
  GeneratedData cora = GenerateCora(copts);
  MatchingOptions opts;
  opts.max_pairs = 500;
  auto m = BuildMatchingRelation(cora.relation, {"author", "title"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 500u);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    EXPECT_LT(i, j);
    EXPECT_LT(j, cora.relation.num_rows());
    EXPECT_TRUE(seen.insert({i, j}).second) << "duplicate sampled pair";
  }
}

TEST(MatchingBuilderTest, SamplingIsDeterministic) {
  CoraOptions copts;
  copts.num_entities = 30;
  GeneratedData cora = GenerateCora(copts);
  MatchingOptions opts;
  opts.max_pairs = 200;
  auto a = BuildMatchingRelation(cora.relation, {"author"}, opts);
  auto b = BuildMatchingRelation(cora.relation, {"author"}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pairs(), b->pairs());
}

TEST(MatchingBuilderTest, MetricOverrides) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.dmax = 10;
  opts.metric_overrides["Region"] = "jaccard";
  auto m = BuildMatchingRelation(hotel.relation, {"Region"}, opts);
  ASSERT_TRUE(m.ok());
  JaccardMetric jac;
  for (std::size_t r = 0; r < m->num_tuples(); ++r) {
    auto [i, j] = m->pair(r);
    double raw = jac.Distance(hotel.relation.at(i, 2), hotel.relation.at(j, 2));
    EXPECT_EQ(m->level(r, 0), BucketDistance(raw, 10.0, 10));
  }
}

TEST(MatchingBuilderTest, RejectsBadInputs) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {}, opts).ok());
  EXPECT_FALSE(
      BuildMatchingRelation(hotel.relation, {"NoSuchAttr"}, opts).ok());
  opts.dmax = 0;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
  opts.dmax = 10;
  opts.metric_overrides["Name"] = "bogus_metric";
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
  opts.metric_overrides.clear();
  opts.scale_overrides["Name"] = -1.0;
  EXPECT_FALSE(BuildMatchingRelation(hotel.relation, {"Name"}, opts).ok());
}

// The value-pair distance cache (matching/value_cache.h): interning is
// first-occurrence-ordered, the precomputed level table agrees with a
// direct metric evaluation for every distinct pair, and builds with the
// cache disabled produce the identical relation.
TEST(ValueCacheTest, InternedTableMatchesDirectComputation) {
  GeneratedData hotel = HotelExample();
  auto region = hotel.relation.schema().IndexOf("Region");
  ASSERT_TRUE(region.ok());
  const AttributeValueIndex index = InternColumn(hotel.relation, *region);
  ASSERT_EQ(index.row_ids.size(), hotel.relation.num_rows());
  // Every row id maps back to its own value.
  for (std::size_t r = 0; r < hotel.relation.num_rows(); ++r) {
    EXPECT_EQ(*index.values[index.row_ids[r]], hotel.relation.at(r, *region));
  }
  LevenshteinMetric lev;
  const int dmax = 10;
  auto table = ValuePairLevelTable::Build(index, lev, /*scale=*/1.0, dmax,
                                          /*pairs_to_compute=*/1u << 20,
                                          /*max_cells=*/1u << 20,
                                          /*threads=*/2);
  ASSERT_NE(table, nullptr);
  for (std::uint32_t a = 0; a < index.values.size(); ++a) {
    for (std::uint32_t b = 0; b < index.values.size(); ++b) {
      const double raw = lev.Distance(*index.values[a], *index.values[b]);
      EXPECT_EQ(table->LevelOf(a, b), BucketDistance(raw, 1.0, dmax))
          << "ids " << a << "," << b;
    }
  }
}

TEST(ValueCacheTest, BuildRespectsCellBudget) {
  GeneratedData hotel = HotelExample();
  auto address = hotel.relation.schema().IndexOf("Address");
  ASSERT_TRUE(address.ok());
  const AttributeValueIndex index = InternColumn(hotel.relation, *address);
  LevenshteinMetric lev;
  // A budget below the table size must decline to build.
  EXPECT_EQ(ValuePairLevelTable::Build(index, lev, 1.0, 10,
                                       /*pairs_to_compute=*/1u << 20,
                                       /*max_cells=*/1, /*threads=*/1),
            nullptr);
  // Fewer pairs to compute than table cells: caching cannot pay off.
  EXPECT_EQ(ValuePairLevelTable::Build(index, lev, 1.0, 10,
                                       /*pairs_to_compute=*/1,
                                       /*max_cells=*/1u << 20, /*threads=*/1),
            nullptr);
}

TEST(MatchingRelationTest, IndexOf) {
  MatchingRelation m({"a", "b"}, 5);
  auto idx = m.IndexOf("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(m.IndexOf("c").ok());
}

}  // namespace
}  // namespace dd
