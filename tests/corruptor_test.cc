#include "data/corruptor.h"

#include <set>

#include <gtest/gtest.h>

namespace dd {
namespace {

GeneratedData SmallRestaurant() {
  RestaurantOptions opts;
  opts.num_entities = 50;
  return GenerateRestaurant(opts);
}

TEST(CorruptorTest, CorruptsRequestedFraction) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.1;
  auto result = InjectViolations(data, {"city"}, opts);
  ASSERT_TRUE(result.ok());
  const std::size_t expected = static_cast<std::size_t>(
      0.1 * static_cast<double>(data.relation.num_rows()) + 0.5);
  EXPECT_NEAR(static_cast<double>(result->corrupted_rows.size()),
              static_cast<double>(expected), 2.0);
}

TEST(CorruptorTest, OnlyDependentAttributesChange) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.2;
  auto result = InjectViolations(data, {"city"}, opts);
  ASSERT_TRUE(result.ok());
  std::set<std::size_t> corrupted(result->corrupted_rows.begin(),
                                  result->corrupted_rows.end());
  for (std::size_t r = 0; r < data.relation.num_rows(); ++r) {
    for (std::size_t c = 0; c < data.relation.num_attributes(); ++c) {
      if (c == 2 && corrupted.count(r) > 0) continue;  // city may change
      EXPECT_EQ(result->dirty.at(r, c), data.relation.at(r, c))
          << "row " << r << " col " << c;
    }
  }
}

TEST(CorruptorTest, TruthPairsLinkCorruptedToCleanSameEntity) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.1;
  auto result = InjectViolations(data, {"city"}, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->truth_pairs.empty());
  std::set<std::size_t> corrupted(result->corrupted_rows.begin(),
                                  result->corrupted_rows.end());
  for (const auto& [i, j] : result->truth_pairs) {
    EXPECT_LT(i, j);
    EXPECT_EQ(data.entity_ids[i], data.entity_ids[j]);
    // Exactly one endpoint is corrupted.
    EXPECT_EQ((corrupted.count(i) > 0) + (corrupted.count(j) > 0), 1);
  }
}

TEST(CorruptorTest, TruthPairsAreUniqueAndSorted) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.3;
  auto result = InjectViolations(data, {"city", "type"}, opts);
  ASSERT_TRUE(result.ok());
  for (std::size_t k = 1; k < result->truth_pairs.size(); ++k) {
    EXPECT_LT(result->truth_pairs[k - 1], result->truth_pairs[k]);
  }
}

TEST(CorruptorTest, ZeroFractionIsNoOp) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.0;
  auto result = InjectViolations(data, {"city"}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->corrupted_rows.empty());
  EXPECT_TRUE(result->truth_pairs.empty());
}

TEST(CorruptorTest, RejectsBadInputs) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 1.5;
  EXPECT_FALSE(InjectViolations(data, {"city"}, opts).ok());
  opts.corrupt_fraction = 0.1;
  EXPECT_FALSE(InjectViolations(data, {"no_such_attr"}, opts).ok());
  GeneratedData mismatched = SmallRestaurant();
  mismatched.entity_ids.pop_back();
  EXPECT_FALSE(InjectViolations(mismatched, {"city"}, opts).ok());
}

TEST(CorruptorTest, DeterministicGivenSeed) {
  GeneratedData data = SmallRestaurant();
  CorruptorOptions opts;
  opts.corrupt_fraction = 0.15;
  auto a = InjectViolations(data, {"city"}, opts);
  auto b = InjectViolations(data, {"city"}, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->corrupted_rows, b->corrupted_rows);
  EXPECT_EQ(a->truth_pairs, b->truth_pairs);
}

}  // namespace
}  // namespace dd
