// Cross-algorithm consistency on the four paper rules at small scale:
// the same workloads the benchmark harnesses run, with correctness
// assertions instead of timings.

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "data/generators.h"
#include "matching/builder.h"

namespace dd {
namespace {

struct Workload {
  const char* name;
  RuleSpec rule;
  MatchingRelation matching;
};

Workload MakeWorkload(int rule_number) {
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 4000;
  switch (rule_number) {
    case 1: {
      CoraOptions gopts;
      gopts.num_entities = 40;
      GeneratedData data = GenerateCora(gopts);
      RuleSpec rule{{"author", "title"}, {"venue", "year"}};
      mopts.metric_overrides["year"] = "qgram2";
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
      return {"rule1", rule, std::move(m).value()};
    }
    case 2: {
      CoraOptions gopts;
      gopts.num_entities = 40;
      GeneratedData data = GenerateCora(gopts);
      RuleSpec rule{{"venue"}, {"address", "publisher", "editor"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
      return {"rule2", rule, std::move(m).value()};
    }
    case 3: {
      RestaurantOptions gopts;
      gopts.num_entities = 40;
      GeneratedData data = GenerateRestaurant(gopts);
      RuleSpec rule{{"name", "address"}, {"city", "type"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
      return {"rule3", rule, std::move(m).value()};
    }
    default: {
      CiteseerOptions gopts;
      gopts.num_entities = 40;
      GeneratedData data = GenerateCiteseer(gopts);
      RuleSpec rule{{"address", "affiliation", "description"}, {"subject"}};
      auto m = BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
      return {"rule4", rule, std::move(m).value()};
    }
  }
}

class PaperRuleTest : public ::testing::TestWithParam<int> {};

TEST_P(PaperRuleTest, AllAlgorithmCombinationsAgree) {
  Workload w = MakeWorkload(GetParam());
  double reference = -1.0;
  for (LhsAlgorithm lhs : {LhsAlgorithm::kDa, LhsAlgorithm::kDap}) {
    for (RhsAlgorithm rhs : {RhsAlgorithm::kPa, RhsAlgorithm::kPap}) {
      DetermineOptions opts;
      opts.lhs_algorithm = lhs;
      opts.rhs_algorithm = rhs;
      auto result = DetermineThresholds(w.matching, w.rule, opts);
      ASSERT_TRUE(result.ok()) << w.name;
      ASSERT_FALSE(result->patterns.empty()) << w.name;
      if (reference < 0.0) {
        reference = result->patterns[0].utility;
      } else {
        EXPECT_NEAR(result->patterns[0].utility, reference, 1e-9)
            << w.name << " " << LhsAlgorithmName(lhs) << "+"
            << RhsAlgorithmName(rhs);
      }
    }
  }
  EXPECT_GT(reference, 0.0) << w.name;
}

TEST_P(PaperRuleTest, DapPrunesAtLeastAsMuchAsDaSameOrder) {
  Workload w = MakeWorkload(GetParam());
  for (ProcessingOrder order :
       {ProcessingOrder::kMidFirst, ProcessingOrder::kTopFirst}) {
    DetermineOptions da;
    da.lhs_algorithm = LhsAlgorithm::kDa;
    da.rhs_algorithm = RhsAlgorithm::kPap;
    da.order = order;
    DetermineOptions dap = da;
    dap.lhs_algorithm = LhsAlgorithm::kDap;
    auto a = DetermineThresholds(w.matching, w.rule, da);
    auto b = DetermineThresholds(w.matching, w.rule, dap);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LE(b->stats.rhs.evaluated, a->stats.rhs.evaluated)
        << w.name << " " << ProcessingOrderName(order);
  }
}

TEST_P(PaperRuleTest, TopLAnswersArePrefixesOfLargerL) {
  Workload w = MakeWorkload(GetParam());
  DetermineOptions one;
  one.top_l = 1;
  DetermineOptions five;
  five.top_l = 5;
  auto a = DetermineThresholds(w.matching, w.rule, one);
  auto b = DetermineThresholds(w.matching, w.rule, five);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->patterns.empty());
  ASSERT_FALSE(b->patterns.empty());
  // The best answer is identical regardless of l (up to utility ties).
  EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-9) << w.name;
  EXPECT_GE(b->patterns.size(), a->patterns.size());
}

TEST_P(PaperRuleTest, GridProviderReproducesScanAnswers) {
  Workload w = MakeWorkload(GetParam());
  DetermineOptions scan;
  DetermineOptions grid;
  grid.provider = "grid";
  auto a = DetermineThresholds(w.matching, w.rule, scan);
  auto b = DetermineThresholds(w.matching, w.rule, grid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->patterns.empty());
  ASSERT_FALSE(b->patterns.empty());
  EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-9) << w.name;
}

TEST_P(PaperRuleTest, ParallelScanReproducesSerialAnswers) {
  Workload w = MakeWorkload(GetParam());
  DetermineOptions serial;
  DetermineOptions parallel;
  parallel.threads = 4;
  auto a = DetermineThresholds(w.matching, w.rule, serial);
  auto b = DetermineThresholds(w.matching, w.rule, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->patterns.empty());
  ASSERT_FALSE(b->patterns.empty());
  EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-12) << w.name;
}

// The measures stored on every returned pattern must agree with an
// independent recomputation from the matching relation — i.e. the
// algorithms never report stale or mixed-up statistics.
TEST_P(PaperRuleTest, ReportedMeasuresMatchIndependentRecomputation) {
  Workload w = MakeWorkload(GetParam());
  DetermineOptions opts;
  opts.top_l = 5;
  auto result = DetermineThresholds(w.matching, w.rule, opts);
  ASSERT_TRUE(result.ok());
  auto resolved = ResolveRule(w.matching, w.rule);
  ASSERT_TRUE(resolved.ok());
  ScanMeasureProvider provider(w.matching, *resolved);
  UtilityOptions uopts;
  uopts.prior_mean_cq = result->prior_mean_cq;
  for (const auto& p : result->patterns) {
    Measures fresh = ComputeMeasures(&provider, p.pattern, w.matching.dmax());
    EXPECT_EQ(p.measures.lhs_count, fresh.lhs_count) << w.name;
    EXPECT_EQ(p.measures.xy_count, fresh.xy_count) << w.name;
    EXPECT_NEAR(p.measures.confidence, fresh.confidence, 1e-12) << w.name;
    EXPECT_NEAR(p.measures.quality, fresh.quality, 1e-12) << w.name;
    EXPECT_NEAR(p.utility,
                ExpectedUtility(fresh.total, fresh.lhs_count,
                                fresh.confidence, fresh.quality, uopts),
                1e-12)
        << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(FourPaperRules, PaperRuleTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dd
