// Equivalence and bit-identity tests for the SIMD counting kernels
// (core/simd_count.h). The contract under test is absolute: the AVX2
// kernels must produce exactly the scalar kernels' outputs — counts,
// row lists (including order), grid indices — for every packing, bound
// pattern, range alignment and length, and therefore full determination
// runs must be bit-identical under DD_SIMD=scalar and auto at any
// thread count.

#include "core/simd_count.h"

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/determiner.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace dd {
namespace {

using simd::ColumnView;
using simd::internal::Avx2Kernels;
using simd::internal::kScalarKernels;
using simd::internal::KernelTable;

PackedColumn MakeColumn(int dmax, const std::vector<Level>& levels) {
  PackedColumn column(dmax);
  for (Level v : levels) column.PushBack(v);
  return column;
}

std::vector<Level> RandomLevels(std::size_t rows, int dmax, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(0, dmax);
  std::vector<Level> levels(rows);
  for (auto& v : levels) v = static_cast<Level>(dist(rng));
  return levels;
}

struct Fixture {
  std::vector<PackedColumn> columns;
  std::vector<ColumnView> views;
  std::vector<std::uint8_t> bounds;
};

Fixture MakeFixture(std::size_t num_views, std::size_t rows, int dmax,
                    std::uint32_t seed) {
  Fixture f;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> bound_dist(0, dmax);
  for (std::size_t i = 0; i < num_views; ++i) {
    f.columns.push_back(
        MakeColumn(dmax, RandomLevels(rows, dmax, seed + 1000 * (i + 1))));
    f.bounds.push_back(static_cast<std::uint8_t>(bound_dist(rng)));
  }
  for (const PackedColumn& c : f.columns) f.views.push_back(simd::View(c));
  return f;
}

// Reference results straight from ViewLevel, independent of either
// kernel implementation.
std::uint64_t BruteCount(const Fixture& f, std::size_t begin,
                         std::size_t end) {
  std::uint64_t count = 0;
  for (std::size_t row = begin; row < end; ++row) {
    bool ok = true;
    for (std::size_t i = 0; i < f.views.size(); ++i) {
      if (simd::ViewLevel(f.views[i], row) > f.bounds[i]) ok = false;
    }
    if (ok) ++count;
  }
  return count;
}

void CheckAllKernels(const Fixture& f, std::size_t begin, std::size_t end,
                     const std::string& label) {
  const std::uint64_t expected = BruteCount(f, begin, end);
  std::vector<std::uint32_t> expected_rows;
  kScalarKernels.collect_leq(f.views.data(), f.bounds.data(), f.views.size(),
                             begin, end, &expected_rows);
  ASSERT_EQ(expected_rows.size(), expected) << label;
  ASSERT_EQ(kScalarKernels.count_leq(f.views.data(), f.bounds.data(),
                                     f.views.size(), begin, end),
            expected)
      << label;
  // The collected list must be ascending with no duplicates.
  for (std::size_t i = 1; i < expected_rows.size(); ++i) {
    ASSERT_LT(expected_rows[i - 1], expected_rows[i]) << label;
  }
  if (!simd::CpuSupportsAvx2()) return;
  const KernelTable* avx2 = Avx2Kernels();
  ASSERT_NE(avx2, nullptr);
  EXPECT_EQ(avx2->count_leq(f.views.data(), f.bounds.data(), f.views.size(),
                            begin, end),
            expected)
      << label;
  std::vector<std::uint32_t> avx2_rows;
  avx2->collect_leq(f.views.data(), f.bounds.data(), f.views.size(), begin,
                    end, &avx2_rows);
  EXPECT_EQ(avx2_rows, expected_rows) << label;
}

TEST(SimdCountTest, RandomizedEquivalenceAcrossDmaxAndLengths) {
  // dmax 1/4/14 exercise the 4-bit packing (14 is its edge), 200 the
  // 8-bit path with bounds above 127 (signedness trap for cmpgt-based
  // idioms).
  const int dmaxes[] = {1, 4, 14, 200};
  const std::size_t lengths[] = {0,  1,  2,  3,   31,   32,   33,  63,
                                 64, 65, 127, 129, 1000, 4097, 10000};
  std::uint32_t seed = 7;
  for (int dmax : dmaxes) {
    for (std::size_t rows : lengths) {
      for (std::size_t num_views : {std::size_t{1}, std::size_t{3}}) {
        Fixture f = MakeFixture(num_views, rows, dmax, ++seed);
        const std::string label = "dmax=" + std::to_string(dmax) +
                                  " rows=" + std::to_string(rows) +
                                  " views=" + std::to_string(num_views);
        CheckAllKernels(f, 0, rows, label + " full");
        if (rows >= 3) {
          // Unaligned head (odd begin) and tail.
          CheckAllKernels(f, 1, rows - 1, label + " inner");
          CheckAllKernels(f, rows / 3, rows - rows / 4, label + " mid");
        }
      }
    }
  }
}

TEST(SimdCountTest, AllMatchAndNoMatchEdges) {
  for (int dmax : {1, 14, 200}) {
    const std::size_t rows = 1337;
    // Every level at dmax: bound dmax-? decides everything at once.
    Fixture f;
    f.columns.push_back(
        MakeColumn(dmax, std::vector<Level>(rows, static_cast<Level>(dmax))));
    f.views.push_back(simd::View(f.columns[0]));
    f.bounds.push_back(static_cast<std::uint8_t>(dmax));
    CheckAllKernels(f, 0, rows, "all-match dmax=" + std::to_string(dmax));
    ASSERT_EQ(BruteCount(f, 0, rows), rows);
    f.bounds[0] = static_cast<std::uint8_t>(dmax - 1);
    CheckAllKernels(f, 0, rows, "no-match dmax=" + std::to_string(dmax));
    ASSERT_EQ(BruteCount(f, 0, rows), 0u);
  }
}

TEST(SimdCountTest, ZeroViewsCountsEveryRow) {
  Fixture f = MakeFixture(1, 100, 5, 3);
  EXPECT_EQ(kScalarKernels.count_leq(nullptr, nullptr, 0, 10, 90), 80u);
  if (simd::CpuSupportsAvx2()) {
    EXPECT_EQ(Avx2Kernels()->count_leq(nullptr, nullptr, 0, 10, 90), 80u);
  }
}

TEST(SimdCountTest, GridIndicesMatchBruteForce) {
  const int dmaxes[] = {4, 14, 200};
  std::uint32_t seed = 31;
  for (int dmax : dmaxes) {
    const std::size_t base = static_cast<std::size_t>(dmax) + 1;
    for (std::size_t rows : {std::size_t{0}, std::size_t{1}, std::size_t{33},
                             std::size_t{257}, std::size_t{5000}}) {
      Fixture f = MakeFixture(3, rows, dmax, ++seed);
      std::vector<std::uint32_t> strides = {
          1, static_cast<std::uint32_t>(base),
          static_cast<std::uint32_t>(base * base)};
      for (auto [begin, end] :
           {std::pair<std::size_t, std::size_t>{0, rows},
            std::pair<std::size_t, std::size_t>{rows / 3, rows}}) {
        if (begin > end) continue;
        std::vector<std::uint32_t> expected(end - begin);
        for (std::size_t row = begin; row < end; ++row) {
          std::uint32_t idx = 0;
          for (std::size_t i = 0; i < 3; ++i) {
            idx += static_cast<std::uint32_t>(
                       simd::ViewLevel(f.views[i], row)) *
                   strides[i];
          }
          expected[row - begin] = idx;
        }
        std::vector<std::uint32_t> scalar_out(end - begin, 0xFFFFFFFF);
        kScalarKernels.grid_indices(f.views.data(), strides.data(), 3, begin,
                                    end, scalar_out.data());
        ASSERT_EQ(scalar_out, expected) << "dmax=" << dmax << " rows=" << rows
                                        << " begin=" << begin;
        if (simd::CpuSupportsAvx2()) {
          std::vector<std::uint32_t> avx2_out(end - begin, 0xFFFFFFFF);
          Avx2Kernels()->grid_indices(f.views.data(), strides.data(), 3,
                                      begin, end, avx2_out.data());
          EXPECT_EQ(avx2_out, expected) << "dmax=" << dmax << " rows=" << rows
                                        << " begin=" << begin;
        }
      }
    }
  }
}

TEST(SimdCountTest, ParseSimdMode) {
  simd::SimdMode mode = simd::SimdMode::kAuto;
  EXPECT_TRUE(simd::ParseSimdMode("scalar", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kScalar);
  EXPECT_TRUE(simd::ParseSimdMode("avx2", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kAvx2);
  EXPECT_TRUE(simd::ParseSimdMode("auto", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kAuto);
  EXPECT_FALSE(simd::ParseSimdMode("sse9", &mode));
  EXPECT_FALSE(simd::ParseSimdMode("", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kAuto);  // untouched on failure
}

TEST(SimdCountTest, DispatchPublishesInfoMetric) {
  simd::SetSimdMode(simd::SimdMode::kScalar);
  EXPECT_STREQ(simd::ActiveSimdDispatch(), "scalar");
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  bool found = false;
  for (const auto& info : snapshot.infos) {
    if (info.name == "simd.dispatch") {
      found = true;
      EXPECT_EQ(info.label, "mode");
      EXPECT_EQ(info.value, "scalar");
    }
  }
  EXPECT_TRUE(found);
  // Forcing avx2 must resolve to avx2 on capable hosts and fall back
  // to scalar (not crash) elsewhere.
  simd::SetSimdMode(simd::SimdMode::kAvx2);
  EXPECT_STREQ(simd::ActiveSimdDispatch(),
               simd::CpuSupportsAvx2() ? "avx2" : "scalar");
  simd::internal::ResetDispatchForTest();
}

TEST(SimdCountTest, EnvironmentVariableSelectsDispatch) {
  const char* saved = std::getenv("DD_SIMD");
  const std::string saved_value = saved == nullptr ? "" : saved;
  setenv("DD_SIMD", "scalar", 1);
  simd::internal::ResetDispatchForTest();
  EXPECT_STREQ(simd::ActiveSimdDispatch(), "scalar");
  // An invalid value degrades to auto with a warning.
  setenv("DD_SIMD", "bogus", 1);
  simd::internal::ResetDispatchForTest();
  EXPECT_STREQ(simd::ActiveSimdDispatch(),
               simd::CpuSupportsAvx2() ? "avx2" : "scalar");
  if (saved == nullptr) {
    unsetenv("DD_SIMD");
  } else {
    setenv("DD_SIMD", saved_value.c_str(), 1);
  }
  simd::internal::ResetDispatchForTest();
}

// ---------------------------------------------------------------------
// Determination bit-identity: DD_SIMD=scalar and auto runs must agree
// exactly — thresholds, utilities, counts, provider stats — at every
// thread count (the ISSUE-10 acceptance bar). Mirrors the contract of
// ParallelDeterminismTest (tests/parallel_test.cc).

void ExpectSameResult(const DetermineResult& a, const DetermineResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.patterns.size(), b.patterns.size()) << label;
  for (std::size_t p = 0; p < a.patterns.size(); ++p) {
    EXPECT_EQ(a.patterns[p].pattern.lhs, b.patterns[p].pattern.lhs) << label;
    EXPECT_EQ(a.patterns[p].pattern.rhs, b.patterns[p].pattern.rhs) << label;
    EXPECT_EQ(a.patterns[p].utility, b.patterns[p].utility) << label;
    EXPECT_EQ(a.patterns[p].measures.xy_count, b.patterns[p].measures.xy_count)
        << label;
    EXPECT_EQ(a.patterns[p].measures.lhs_count,
              b.patterns[p].measures.lhs_count)
        << label;
  }
  EXPECT_EQ(a.prior_mean_cq, b.prior_mean_cq) << label;
  EXPECT_EQ(a.provider_stats.lhs_evaluations, b.provider_stats.lhs_evaluations)
      << label;
  EXPECT_EQ(a.provider_stats.xy_evaluations, b.provider_stats.xy_evaluations)
      << label;
  EXPECT_EQ(a.provider_stats.rows_scanned, b.provider_stats.rows_scanned)
      << label;
}

TEST(SimdCountTest, DeterminationBitIdenticalAcrossDispatchAndThreads) {
  if (!simd::CpuSupportsAvx2()) {
    GTEST_SKIP() << "no AVX2: scalar vs auto are the same kernels";
  }
  MatchingRelation m = testutil::RandomMatching(3, 7, 900, 4242);
  const RuleSpec rule{{"a0", "a1"}, {"a2"}};
  std::vector<std::size_t> thread_counts = {1, 2, 7};
  if (DefaultThreads() > 1) thread_counts.push_back(DefaultThreads());
  for (const char* provider : {"scan", "scan_subset", "grid"}) {
    for (std::size_t threads : thread_counts) {
      DetermineOptions options;
      options.provider = provider;
      options.top_l = 3;
      options.threads = threads;
      simd::SetSimdMode(simd::SimdMode::kScalar);
      auto scalar_result = DetermineThresholds(m, rule, options);
      ASSERT_TRUE(scalar_result.ok());
      simd::SetSimdMode(simd::SimdMode::kAuto);
      auto auto_result = DetermineThresholds(m, rule, options);
      ASSERT_TRUE(auto_result.ok());
      ExpectSameResult(*scalar_result, *auto_result,
                       std::string(provider) + " threads=" +
                           std::to_string(threads));
    }
  }
  simd::internal::ResetDispatchForTest();
}

}  // namespace
}  // namespace dd
