#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(LogBinomialCoefficientTest, SmallValuesExact) {
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomialCoefficient(6, 3)), 20.0, 1e-9);
}

TEST(LogBinomialPmfTest, MatchesDirectComputation) {
  // f(2; 4, 0.5) = 6 * 0.0625 = 0.375
  EXPECT_NEAR(std::exp(LogBinomialPmf(2, 4, 0.5)), 0.375, 1e-12);
  // f(0; 3, 0.2) = 0.8^3
  EXPECT_NEAR(std::exp(LogBinomialPmf(0, 3, 0.2)), 0.512, 1e-12);
}

TEST(LogBinomialPmfTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(LogBinomialPmf(0, 5, 0.0), 0.0);  // log 1
  EXPECT_EQ(LogBinomialPmf(1, 5, 0.0), -INFINITY);
  EXPECT_DOUBLE_EQ(LogBinomialPmf(5, 5, 1.0), 0.0);
  EXPECT_EQ(LogBinomialPmf(4, 5, 1.0), -INFINITY);
}

TEST(LogBinomialPmfTest, OutOfSupportIsImpossible) {
  EXPECT_EQ(LogBinomialPmf(-1, 5, 0.5), -INFINITY);
  EXPECT_EQ(LogBinomialPmf(6, 5, 0.5), -INFINITY);
}

TEST(LogBinomialPmfTest, ContinuousExtensionIsFiniteAndSmooth) {
  const double a = LogBinomialPmf(2.4, 10, 0.3);
  const double b = LogBinomialPmf(2.5, 10, 0.3);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_NEAR(a, b, 0.5);
}

TEST(LogBinomialPmfTest, SumsToOneOverSupport) {
  double total = 0.0;
  for (int k = 0; k <= 12; ++k) total += std::exp(LogBinomialPmf(k, 12, 0.37));
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LogSumExpTest, Basic) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogSumExp(-INFINITY, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogSumExp(1.5, -INFINITY), 1.5);
  // Large magnitudes must not overflow.
  EXPECT_NEAR(LogSumExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
}

TEST(SimpsonIntegrateTest, Polynomial) {
  // Simpson is exact for cubics: ∫0..1 x^3 = 1/4.
  const double v =
      SimpsonIntegrate([](double x) { return x * x * x; }, 0.0, 1.0, 4);
  EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(SimpsonIntegrateTest, Transcendental) {
  const double v =
      SimpsonIntegrate([](double x) { return std::sin(x); }, 0.0, M_PI, 256);
  EXPECT_NEAR(v, 2.0, 1e-8);
}

TEST(PosteriorMeanTest, UniformWeightGivesMidpoint) {
  const double v = PosteriorMean([](double) { return 0.0; }, 0.5, 1.0);
  EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(PosteriorMeanTest, BetaPosteriorMatchesClosedForm) {
  // Weight u^k (1-u)^(n-k) is Beta(k+1, n-k+1): mean (k+1)/(n+2).
  const double k = 3;
  const double n = 10;
  auto logw = [&](double u) { return LogBinomialPmf(k, n, u); };
  const double mean = PosteriorMean(logw, (k + 1) / (n + 2), 0.2, 20.0, 2048);
  EXPECT_NEAR(mean, (k + 1) / (n + 2), 1e-4);
}

TEST(PosteriorMeanTest, SharplyPeakedLargeN) {
  // n = 1e6 trials with 30% successes: posterior mean ~ 0.3; must stay
  // finite and accurate despite the extreme peak.
  const double n = 1e6;
  const double k = 3e5;
  auto logw = [&](double u) { return LogBinomialPmf(k, n, u); };
  const double sigma = std::sqrt(0.3 * 0.7 / n);
  const double mean = PosteriorMean(logw, 0.3, sigma);
  EXPECT_NEAR(mean, 0.3, 1e-4);
}

TEST(PosteriorMeanTest, MonotoneInSuccessCount) {
  // For fixed n the posterior mean must increase with k: this is the
  // property the paper's Theorem 2 pruning relies on.
  const double n = 5000;
  double prev = -1.0;
  for (double k = 0; k <= n; k += 250) {
    auto logw = [&](double u) { return LogBinomialPmf(k, n, u); };
    const double peak = (k + 1) / (n + 2);
    const double sigma = std::sqrt(peak * (1 - peak) / n + 1e-12);
    const double mean = PosteriorMean(logw, peak, sigma);
    EXPECT_GT(mean, prev) << "k=" << k;
    prev = mean;
  }
}

TEST(ClampTest, Basic) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace dd
