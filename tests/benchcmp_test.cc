// Tests for the perf-regression gate (tools/benchcmp_lib.h): input
// auto-detection (baseline documents vs raw BENCH_JSON stdout),
// min-of-k dedup, the noise-aware pass/fail rule, the host-cores
// refusal, and the trajectory row.

#include "tools/benchcmp_lib.h"

#include <string>

#include "gtest/gtest.h"

namespace dd::bench {
namespace {

constexpr char kBaselineDoc[] = R"({
  "bench": "micro_parallel",
  "host_cores": 1,
  "rows": [
    {"phase": "matching_build", "threads": 1, "elapsed_s": 0.010},
    {"phase": "matching_build", "threads": 2, "elapsed_s": 0.012},
    {"phase": "determine", "threads": 1, "elapsed_s": 0.500}
  ]
})";

TEST(BenchcmpParseTest, BaselineDocument) {
  auto file = ParseBenchContent(kBaselineDoc, "elapsed_s");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->rows.size(), 3u);
  EXPECT_EQ(file->host_cores, 1);
  EXPECT_EQ(file->rows[0].bench, "micro_parallel");  // Top-level default.
  EXPECT_EQ(file->rows[0].phase, "determine");       // Sorted by key.
  EXPECT_DOUBLE_EQ(file->rows[0].value, 0.500);
  EXPECT_EQ(file->rows[1].phase, "matching_build");
  EXPECT_EQ(file->rows[1].threads, 1);
}

TEST(BenchcmpParseTest, RawStdoutWithBenchJsonLines) {
  const std::string stdout_text =
      "=== harness banner ===\n"
      "  matching_build  threads=1  0.0100s\n"
      "BENCH_JSON {\"bench\": \"micro_parallel\", \"phase\": "
      "\"matching_build\", \"threads\": 1, \"elapsed_s\": 0.010000, "
      "\"host_cores\": 8, \"run_id\": \"abc-123\"}\n"
      "BENCH_JSON {\"bench\": \"micro_parallel\", \"phase\": "
      "\"matching_build\", \"threads\": 2, \"elapsed_s\": 0.008000}\n"
      "trailing chatter\n";
  auto file = ParseBenchContent(stdout_text, "elapsed_s");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->rows.size(), 2u);
  EXPECT_EQ(file->host_cores, 8);
  EXPECT_EQ(file->run_id, "abc-123");
}

TEST(BenchcmpParseTest, MinOfKDedup) {
  const std::string stdout_text =
      "BENCH_JSON {\"bench\": \"b\", \"phase\": \"p\", \"threads\": 1, "
      "\"elapsed_s\": 0.030}\n"
      "BENCH_JSON {\"bench\": \"b\", \"phase\": \"p\", \"threads\": 1, "
      "\"elapsed_s\": 0.010}\n"
      "BENCH_JSON {\"bench\": \"b\", \"phase\": \"p\", \"threads\": 1, "
      "\"elapsed_s\": 0.020}\n";
  auto file = ParseBenchContent(stdout_text, "elapsed_s");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(file->rows[0].value, 0.010);
  EXPECT_EQ(file->rows[0].samples, 3);
}

TEST(BenchcmpParseTest, RowsWithoutMetricAreSkippedNotFatal) {
  const std::string stdout_text =
      "BENCH_JSON {\"bench\": \"micro_obs_pool\", \"disabled_check_ns\": "
      "0.9}\n"
      "BENCH_JSON {\"bench\": \"b\", \"phase\": \"p\", \"threads\": 1, "
      "\"elapsed_s\": 0.010}\n";
  auto file = ParseBenchContent(stdout_text, "elapsed_s");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->rows.size(), 1u);
  EXPECT_EQ(file->skipped_rows, 1u);
}

TEST(BenchcmpParseTest, GarbageIsRejected) {
  EXPECT_FALSE(ParseBenchContent("no bench rows here", "elapsed_s").ok());
  EXPECT_FALSE(ParseBenchContent("{\"no_rows\": 1}", "elapsed_s").ok());
  EXPECT_FALSE(
      ParseBenchContent("BENCH_JSON {broken", "elapsed_s").ok());
}

BenchFile MakeFile(std::vector<BenchRow> rows, std::int64_t host_cores) {
  BenchFile file;
  file.rows = std::move(rows);
  file.host_cores = host_cores;
  return file;
}

TEST(BenchcmpCompareTest, PassesOnIdenticalRun) {
  const BenchFile base =
      MakeFile({{"b", "p", 1, 0.100, 1}, {"b", "p", 2, 0.060, 1}}, 4);
  const CompareReport report = CompareBench(base, base, CompareOptions{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.0);
}

TEST(BenchcmpCompareTest, FailsOnInjectedSlowdown) {
  const BenchFile base = MakeFile({{"b", "p", 1, 0.100, 1}}, 4);
  const BenchFile fresh = MakeFile({{"b", "p", 1, 0.200, 1}}, 4);
  CompareOptions options;
  options.rel_tolerance = 0.5;
  options.abs_floor_s = 0.002;
  const CompareReport report = CompareBench(base, fresh, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.rows[0].regressed);
  EXPECT_DOUBLE_EQ(report.rows[0].ratio, 2.0);
}

TEST(BenchcmpCompareTest, AbsoluteFloorAbsorbsTinyPhases) {
  // A 0.5ms phase tripling stays under the 2ms absolute floor: noise.
  const BenchFile base = MakeFile({{"b", "tiny", 1, 0.0005, 1}}, 4);
  const BenchFile fresh = MakeFile({{"b", "tiny", 1, 0.0015, 1}}, 4);
  const CompareReport report = CompareBench(base, fresh, CompareOptions{});
  EXPECT_TRUE(report.ok());
}

TEST(BenchcmpCompareTest, RelativeToleranceAbsorbsNoise) {
  // +40% on a big phase is inside the default 50% tolerance.
  const BenchFile base = MakeFile({{"b", "big", 1, 1.000, 1}}, 4);
  const BenchFile fresh = MakeFile({{"b", "big", 1, 1.400, 1}}, 4);
  const CompareReport report = CompareBench(base, fresh, CompareOptions{});
  EXPECT_TRUE(report.ok());
}

TEST(BenchcmpCompareTest, UnmatchedKeysReportedNotFailed) {
  const BenchFile base =
      MakeFile({{"b", "gone", 1, 0.1, 1}, {"b", "kept", 1, 0.1, 1}}, 4);
  const BenchFile fresh =
      MakeFile({{"b", "kept", 1, 0.1, 1}, {"b", "new", 1, 0.1, 1}}, 4);
  const CompareReport report = CompareBench(base, fresh, CompareOptions{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows.size(), 1u);
  ASSERT_EQ(report.only_base.size(), 1u);
  EXPECT_EQ(report.only_base[0].phase, "gone");
  ASSERT_EQ(report.only_fresh.size(), 1u);
  EXPECT_EQ(report.only_fresh[0].phase, "new");
}

TEST(BenchcmpCompareTest, HostMismatchRefused) {
  const BenchFile base = MakeFile({{"b", "p", 1, 0.1, 1}}, 1);
  const BenchFile fresh = MakeFile({{"b", "p", 1, 0.1, 1}}, 8);
  CompareOptions options;
  const CompareReport refused = CompareBench(base, fresh, options);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.host_mismatch);
  EXPECT_TRUE(refused.rows.empty());

  options.allow_host_mismatch = true;
  const CompareReport allowed = CompareBench(base, fresh, options);
  EXPECT_TRUE(allowed.ok());
  EXPECT_EQ(allowed.rows.size(), 1u);

  // Unstamped captures (host_cores 0) compare freely.
  const BenchFile unstamped = MakeFile({{"b", "p", 1, 0.1, 1}}, 0);
  EXPECT_TRUE(CompareBench(unstamped, fresh, CompareOptions{}).ok());
}

TEST(BenchcmpCompareTest, TrajectoryRowShape) {
  const BenchFile base = MakeFile({{"b", "p", 1, 0.100, 1}}, 4);
  BenchFile fresh = MakeFile({{"b", "p", 1, 0.110, 1}}, 4);
  fresh.run_id = "run-42";
  const CompareReport report = CompareBench(base, fresh, CompareOptions{});
  const std::string row = TrajectoryRow(report, fresh, 1754600000);
  EXPECT_NE(row.find("\"captured_unix\":1754600000"), std::string::npos);
  EXPECT_NE(row.find("\"run_id\":\"run-42\""), std::string::npos);
  EXPECT_NE(row.find("\"host_cores\":4"), std::string::npos);
  EXPECT_NE(row.find("\"regressions\":0"), std::string::npos);
  EXPECT_NE(row.find("\"phase\":\"p\""), std::string::npos);
  // One line, parseable back by the same reader.
  EXPECT_EQ(row.find('\n'), std::string::npos);
  auto reparsed = ParseBenchContent("BENCH_JSON " + row, "worst_ratio");
  EXPECT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

}  // namespace
}  // namespace dd::bench
