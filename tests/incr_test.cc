// Property tests for the incremental maintenance subsystem: any
// randomized insert/delete batch sequence applied through
// IncrementalMatchingBuilder + DeltaGridProvider must be
// indistinguishable — matching relation, counting queries, and
// determined thresholds — from tearing the instance down and rebuilding
// from scratch. 25 seeded sequences over each of two datasets (the
// Cora generator and the paper's Hotel example) give 50 sequences per
// run, each with 5 mixed batches.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/determiner.h"
#include "data/generators.h"
#include "incr/delta_grid_provider.h"
#include "incr/incremental_builder.h"
#include "incr/maintenance.h"
#include "incr/tuple_store.h"
#include "tests/test_util.h"

namespace dd {
namespace {

void ExpectEqualMatching(const MatchingRelation& a, const MatchingRelation& b) {
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  EXPECT_EQ(a.dmax(), b.dmax());
  EXPECT_EQ(a.attribute_names(), b.attribute_names());
  EXPECT_EQ(a.pairs(), b.pairs());
  for (std::size_t c = 0; c < a.num_attributes(); ++c) {
    EXPECT_EQ(a.column(c), b.column(c)) << "column " << c;
  }
}

// Draws one randomized batch against the current live set: up to 7 rows
// sampled (with replacement) from `pool` plus up to 2 distinct deletes.
struct BatchPlan {
  std::vector<std::vector<std::string>> inserts;
  std::vector<std::uint32_t> deletes;
};

BatchPlan DrawBatch(const Relation& pool, const TupleStore& store, Rng* rng) {
  BatchPlan plan;
  const std::size_t n_inserts = rng->NextBounded(8);
  for (std::size_t k = 0; k < n_inserts; ++k) {
    plan.inserts.push_back(pool.row(rng->NextBounded(pool.num_rows())));
  }
  std::vector<std::uint32_t> live = store.LiveIds();
  const std::size_t n_deletes =
      live.empty() ? 0 : static_cast<std::size_t>(rng->NextBounded(3));
  for (std::size_t k = 0; k < n_deletes && !live.empty(); ++k) {
    const std::size_t idx =
        static_cast<std::size_t>(rng->NextBounded(live.size()));
    plan.deletes.push_back(live[idx]);
    live.erase(live.begin() + idx);
  }
  return plan;
}

// One full randomized sequence: 5 batches applied incrementally, with
// the maintained state checked against a from-scratch rebuild after
// every batch and the maintained grids + determined thresholds checked
// at the end.
void RunSequence(const Relation& pool, const RuleSpec& rule, int dmax,
                 std::uint64_t seed) {
  IncrementalOptions options;
  options.matching.dmax = dmax;
  auto builder = IncrementalMatchingBuilder::Create(
      pool.schema(), rule.AllAttributes(), options);
  ASSERT_TRUE(builder.ok()) << builder.status();
  auto resolved = ResolveRule(builder->matching(), rule);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  auto maintained = DeltaGridProvider::Create(builder->matching(), *resolved);
  ASSERT_TRUE(maintained.ok()) << maintained.status();

  Rng rng(seed);
  for (int batch = 0; batch < 5; ++batch) {
    SCOPED_TRACE(::testing::Message() << "batch " << batch);
    BatchPlan plan = DrawBatch(pool, builder->store(), &rng);
    auto delta = builder->ApplyBatch(plan.inserts, plan.deletes);
    ASSERT_TRUE(delta.ok()) << delta.status();
    maintained.value()->Apply(*delta);

    // The incrementally maintained matching, canonicalized to ascending
    // pair order, must equal the from-scratch rebuild exactly.
    MatchingRelation sorted = builder->matching();
    sorted.SortByPairs();
    ExpectEqualMatching(sorted, builder->Rebuild());
  }

  // The delta-maintained grids must agree with grids built fresh over
  // the final matching, on every cell of the threshold lattice.
  auto fresh = GridMeasureProvider::Create(builder->matching(), *resolved);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_EQ(maintained.value()->total(), fresh.value()->total());
  ASSERT_EQ(resolved->lhs.size(), 2u);
  ASSERT_EQ(resolved->rhs.size(), 1u);
  for (int x0 = 0; x0 <= dmax; ++x0) {
    for (int x1 = 0; x1 <= dmax; ++x1) {
      maintained.value()->SetLhs({x0, x1});
      fresh.value()->SetLhs({x0, x1});
      ASSERT_EQ(maintained.value()->lhs_count(), fresh.value()->lhs_count())
          << x0 << "," << x1;
      for (int y = 0; y <= dmax; ++y) {
        ASSERT_EQ(maintained.value()->CountXY({y}),
                  fresh.value()->CountXY({y}))
            << x0 << "," << x1 << "," << y;
      }
    }
  }

  // Determination over the maintained matching must equal determination
  // over the rebuild.
  if (builder->matching().num_tuples() == 0) return;
  DetermineOptions determine;
  determine.provider = "grid";
  determine.top_l = 3;
  auto incremental = DetermineThresholds(builder->matching(), rule, determine);
  auto from_scratch = DetermineThresholds(builder->Rebuild(), rule, determine);
  ASSERT_TRUE(incremental.ok()) << incremental.status();
  ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();
  ASSERT_EQ(incremental->patterns.size(), from_scratch->patterns.size());
  for (std::size_t p = 0; p < incremental->patterns.size(); ++p) {
    EXPECT_EQ(incremental->patterns[p].pattern,
              from_scratch->patterns[p].pattern);
    EXPECT_NEAR(incremental->patterns[p].utility,
                from_scratch->patterns[p].utility, 1e-12);
  }
}

TEST(IncrementalPropertyTest, CoraSequencesMatchRebuild) {
  CoraOptions cora;
  cora.num_entities = 12;
  cora.seed = 2024;
  GeneratedData data = GenerateCora(cora);
  const RuleSpec rule{{"author", "title"}, {"venue"}};
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    SCOPED_TRACE(::testing::Message() << "sequence seed " << seed);
    RunSequence(data.relation, rule, /*dmax=*/6, seed);
  }
}

TEST(IncrementalPropertyTest, HotelSequencesMatchRebuild) {
  GeneratedData hotel = HotelExample();
  const RuleSpec rule{{"Name", "Address"}, {"Region"}};
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    SCOPED_TRACE(::testing::Message() << "sequence seed " << seed);
    RunSequence(hotel.relation, rule, /*dmax=*/8, seed);
  }
}

TEST(TupleStoreTest, StableIdsAcrossInsertAndErase) {
  Schema schema({{"a", AttributeType::kString}});
  TupleStore store(schema);
  auto id0 = store.Insert({"x"});
  auto id1 = store.Insert({"y"});
  auto id2 = store.Insert({"z"});
  ASSERT_TRUE(id0.ok() && id1.ok() && id2.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(*id2, 2u);
  EXPECT_EQ(store.num_live(), 3u);

  ASSERT_TRUE(store.Erase(1).ok());
  EXPECT_FALSE(store.IsLive(1));
  EXPECT_EQ(store.num_live(), 2u);
  EXPECT_EQ(store.LiveIds(), (std::vector<std::uint32_t>{0, 2}));
  // Dead rows stay addressable; ids are never reused.
  EXPECT_EQ(store.row(1), (std::vector<std::string>{"y"}));
  auto id3 = store.Insert({"w"});
  ASSERT_TRUE(id3.ok());
  EXPECT_EQ(*id3, 3u);

  EXPECT_FALSE(store.Erase(1).ok());   // Already dead.
  EXPECT_FALSE(store.Erase(99).ok());  // Never existed.
  EXPECT_FALSE(store.Insert({"a", "b"}).ok());  // Arity mismatch.
}

TEST(IncrementalBuilderTest, RejectsSampledMatchingOptions) {
  Schema schema({{"a", AttributeType::kString}});
  IncrementalOptions options;
  options.matching.max_pairs = 100;
  EXPECT_FALSE(
      IncrementalMatchingBuilder::Create(schema, {"a"}, options).ok());
}

TEST(IncrementalBuilderTest, FailedBatchLeavesStateUntouched) {
  GeneratedData hotel = HotelExample();
  IncrementalOptions options;
  options.matching.dmax = 8;
  auto builder = IncrementalMatchingBuilder::Create(
      hotel.relation.schema(), {"Name", "Region"}, options);
  ASSERT_TRUE(builder.ok()) << builder.status();
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < 6; ++r) rows.push_back(hotel.relation.row(r));
  ASSERT_TRUE(builder->ApplyBatch(rows, {}).ok());
  const std::size_t tuples_before = builder->matching().num_tuples();
  const std::size_t live_before = builder->store().num_live();

  // Bad arity, duplicate delete, and dead-id delete must all fail
  // without mutating anything.
  EXPECT_FALSE(builder->ApplyBatch({{"too", "few?"}}, {}).ok());
  EXPECT_FALSE(builder->ApplyBatch({}, {0, 0}).ok());
  EXPECT_FALSE(builder->ApplyBatch({}, {42}).ok());
  EXPECT_FALSE(builder->ApplyBatch({rows[0]}, {1, 1}).ok());
  EXPECT_EQ(builder->matching().num_tuples(), tuples_before);
  EXPECT_EQ(builder->store().num_live(), live_before);
}

TEST(IncrementalBuilderTest, DeleteEverythingEmptiesTheMatching) {
  GeneratedData hotel = HotelExample();
  IncrementalOptions options;
  options.matching.dmax = 8;
  auto builder = IncrementalMatchingBuilder::Create(
      hotel.relation.schema(), {"Name", "Region"}, options);
  ASSERT_TRUE(builder.ok()) << builder.status();
  std::vector<std::vector<std::string>> rows;
  for (std::size_t r = 0; r < 5; ++r) rows.push_back(hotel.relation.row(r));
  auto resolved = ResolveRule(builder->matching(), {{"Name"}, {"Region"}});
  ASSERT_TRUE(resolved.ok());
  auto grid = DeltaGridProvider::Create(builder->matching(), *resolved);
  ASSERT_TRUE(grid.ok());

  auto grow = builder->ApplyBatch(rows, {});
  ASSERT_TRUE(grow.ok());
  grid.value()->Apply(*grow);
  EXPECT_EQ(builder->matching().num_tuples(), 10u);  // C(5,2)

  auto shrink = builder->ApplyBatch({}, builder->store().LiveIds());
  ASSERT_TRUE(shrink.ok());
  grid.value()->Apply(*shrink);
  EXPECT_EQ(shrink->num_removed(), 10u);
  EXPECT_EQ(shrink->num_added(), 0u);
  EXPECT_EQ(builder->matching().num_tuples(), 0u);
  EXPECT_EQ(builder->store().num_live(), 0u);
  EXPECT_EQ(grid.value()->total(), 0u);
  // The instance keeps working after a full wipe.
  ASSERT_TRUE(builder->ApplyBatch({rows[0], rows[1]}, {}).ok());
  EXPECT_EQ(builder->matching().num_tuples(), 1u);
}

// The engine with a negative drift fraction re-determines every batch,
// so its published pattern must track the from-scratch pipeline
// (DetermineThresholds over a rebuild with the same configuration)
// exactly — counts are identical, so all downstream arithmetic is too.
TEST(MaintenanceEngineTest, ForcedRedeterminationTracksFromScratch) {
  CoraOptions cora;
  cora.num_entities = 10;
  cora.seed = 7;
  GeneratedData data = GenerateCora(cora);
  const RuleSpec rule{{"author", "title"}, {"venue"}};

  MaintenanceOptions options;
  options.incremental.matching.dmax = 6;
  options.determine.top_l = 2;
  options.drift_fraction = -1.0;
  auto engine = MaintenanceEngine::Create(data.relation.schema(), rule, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  DetermineOptions reference = options.determine;
  reference.provider = "grid";

  Rng rng(5);
  std::uint64_t batches_with_data = 0;
  for (int batch = 0; batch < 4; ++batch) {
    SCOPED_TRACE(::testing::Message() << "batch " << batch);
    BatchPlan plan = DrawBatch(data.relation, engine->builder().store(), &rng);
    auto outcome = engine->ApplyBatch(plan.inserts, plan.deletes);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (engine->builder().matching().num_tuples() == 0) continue;
    ++batches_with_data;
    EXPECT_TRUE(outcome->redetermined);

    auto from_scratch =
        DetermineThresholds(engine->builder().Rebuild(), rule, reference);
    ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();
    ASSERT_FALSE(from_scratch->patterns.empty());
    ASSERT_NE(engine->published(), nullptr);
    EXPECT_EQ(engine->published()->pattern, from_scratch->patterns[0].pattern);
    EXPECT_NEAR(engine->published()->utility,
                from_scratch->patterns[0].utility, 1e-12);
  }
  EXPECT_EQ(engine->redeterminations(), batches_with_data);
  EXPECT_EQ(engine->skipped(), 0u);
}

TEST(MaintenanceEngineTest, LargeDriftBoundSkipsRedetermination) {
  CoraOptions cora;
  cora.num_entities = 15;  // >= 30 rows; the test indexes up to row 25.
  // This seed yields a strictly positive utility gap between the top
  // two patterns on the 20-row prefix, which is what makes the
  // drift-bound skip decision meaningful (a zero gap forces
  // re-determination regardless of drift_fraction).
  cora.seed = 99;
  GeneratedData data = GenerateCora(cora);
  const RuleSpec rule{{"author", "title"}, {"venue"}};

  MaintenanceOptions options;
  options.incremental.matching.dmax = 6;
  options.drift_fraction = 1e12;  // Bound far above any achievable drift.
  auto engine = MaintenanceEngine::Create(data.relation.schema(), rule, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  std::vector<std::vector<std::string>> initial;
  for (std::size_t r = 0; r < 20; ++r) initial.push_back(data.relation.row(r));
  auto first = engine->ApplyBatch(initial, {});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->redetermined);
  ASSERT_TRUE(first->update.has_value());
  EXPECT_EQ(first->update->reason, UpdateReason::kInitial);
  const Pattern published = engine->published()->pattern;
  // A positive utility gap is what makes the skip decision meaningful.
  ASSERT_GT(first->update->utility_gap, 0.0);

  for (std::size_t r = 20; r < 26; r += 2) {
    auto outcome =
        engine->ApplyBatch({data.relation.row(r), data.relation.row(r + 1)}, {});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_FALSE(outcome->redetermined);
    EXPECT_FALSE(outcome->update.has_value());
  }
  EXPECT_EQ(engine->redeterminations(), 1u);
  EXPECT_EQ(engine->skipped(), 3u);
  EXPECT_EQ(engine->updates().size(), 1u);
  EXPECT_EQ(engine->published()->pattern, published);
}

TEST(MaintenanceEngineTest, ZeroDriftFractionRedeterminesOnAnyDrift) {
  GeneratedData hotel = HotelExample();
  const RuleSpec rule{{"Name", "Address"}, {"Region"}};
  MaintenanceOptions options;
  options.incremental.matching.dmax = 8;
  options.drift_fraction = 0.0;
  auto engine = MaintenanceEngine::Create(hotel.relation.schema(), rule, options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  std::vector<std::vector<std::string>> initial;
  for (std::size_t r = 0; r < 5; ++r) initial.push_back(hotel.relation.row(r));
  ASSERT_TRUE(engine->ApplyBatch(initial, {}).ok());
  ASSERT_NE(engine->published(), nullptr);
  // Growing the instance changes D of the published pattern, so drift
  // is nonzero and the zero bound forces a re-determination.
  auto outcome = engine->ApplyBatch({hotel.relation.row(5)}, {});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GT(outcome->drift, 0.0);
  EXPECT_TRUE(outcome->redetermined);
}

TEST(MaintenanceEngineTest, EmptyInstancePublishesNothing) {
  Schema schema({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  MaintenanceOptions options;
  auto engine = MaintenanceEngine::Create(
      schema, RuleSpec{{"a"}, {"b"}}, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto outcome = engine->ApplyBatch({}, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(engine->published(), nullptr);
  EXPECT_TRUE(engine->updates().empty());
  // One tuple creates zero pairs: still nothing to determine over.
  ASSERT_TRUE(engine->ApplyBatch({{"x", "y"}}, {}).ok());
  EXPECT_EQ(engine->published(), nullptr);
}

}  // namespace
}  // namespace dd
