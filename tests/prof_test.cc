// Correctness tests for the sampling CPU profiler (src/obs/prof):
// spin-loop sample attribution (span tag and leaf function), ring
// overflow accounting, start/stop lifecycle errors, folded-stack
// parsing/merging/diffing, and the acceptance contract that profiling
// never perturbs determination output (bit-identity at several thread
// counts, including oversubscription).

#include "obs/prof/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/determiner.h"
#include "core/result_io.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "obs/prof/folded.h"
#include "obs/trace.h"
#include "test_util.h"

// ThreadSanitizer intercepts signal delivery and slows the sampled
// code by an order of magnitude; keep the lifecycle and bit-identity
// assertions strict but relax the statistical attribution bounds.
#if defined(__SANITIZE_THREAD__)
#define DD_PROF_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DD_PROF_TEST_TSAN 1
#endif
#endif
#ifndef DD_PROF_TEST_TSAN
#define DD_PROF_TEST_TSAN 0
#endif

// The profiled hot loop. extern "C" + noinline so the frame has its
// own exported symbol (-rdynamic) and dladdr names it exactly. noipa
// (GCC) stops constant propagation from cloning the body into a
// `.constprop.0` local symbol that dladdr cannot see.
#if defined(__GNUC__) && !defined(__clang__)
#define DD_PROF_TEST_OPAQUE __attribute__((noinline, noipa))
#else
#define DD_PROF_TEST_OPAQUE __attribute__((noinline))
#endif
extern "C" DD_PROF_TEST_OPAQUE std::uint64_t dd_prof_test_spin(
    std::uint64_t iters) {
  std::uint64_t acc = 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc;
}

namespace dd {
namespace {

using obs::prof::FoldedProfile;
using obs::prof::Profile;
using obs::prof::Profiler;
using obs::prof::ProfilerOptions;

// Opaque iteration count: a compile-time constant would invite the
// clone noipa guards against on other compilers.
volatile std::uint64_t g_spin_iters = 200000;

// Burns at least `ms` of this thread's CPU time in dd_prof_test_spin.
std::uint64_t SpinFor(int ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::uint64_t acc = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    acc ^= dd_prof_test_spin(g_spin_iters);
  }
  return acc;
}

TEST(ProfilerTest, SpinLoopSamplesAttributeToSpanAndLeaf) {
  ProfilerOptions options;
  options.hz = 997;  // Prime and fast: plenty of samples in ~300 ms.
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  {
    obs::TraceSpan span("prof_test_spin_span");
    volatile std::uint64_t sink = SpinFor(300);
    (void)sink;
  }
  const Profile profile = Profiler::Global().Stop();

  ASSERT_GT(profile.samples, 20u) << "hz=" << profile.hz;
  std::uint64_t span_hits = 0;
  std::uint64_t leaf_hits = 0;
  const FoldedProfile folded = obs::prof::FoldProfile(profile);
  for (const obs::prof::ProfileEntry& entry : profile.entries) {
    if (entry.span == "prof_test_spin_span") span_hits += entry.count;
  }
  for (const auto& [stack, count] : folded.stacks) {
#if DD_PROF_TEST_TSAN
    // TSan's interceptor frames can sit at the leaf; accept the spin
    // function anywhere in the stack.
    if (stack.find("dd_prof_test_spin") != std::string::npos)
      leaf_hits += count;
#else
    // The leaf frame (last semicolon-separated token) must be the spin
    // loop itself for the bulk of the samples.
    const std::size_t semi = stack.rfind(';');
    const std::string leaf =
        semi == std::string::npos ? stack : stack.substr(semi + 1);
    if (leaf.find("dd_prof_test_spin") != std::string::npos)
      leaf_hits += count;
#endif
  }
  const double span_frac =
      static_cast<double>(span_hits) / static_cast<double>(profile.samples);
  const double leaf_frac =
      static_cast<double>(leaf_hits) / static_cast<double>(profile.samples);
  const double bound = DD_PROF_TEST_TSAN ? 0.5 : 0.9;
  EXPECT_GE(span_frac, bound) << "span_hits=" << span_hits
                              << " samples=" << profile.samples;
  EXPECT_GE(leaf_frac, bound) << "leaf_hits=" << leaf_hits
                              << " samples=" << profile.samples << "\n"
                              << obs::prof::FoldedToString(folded);
}

TEST(ProfilerTest, FullRingDropsAndCounts) {
  ProfilerOptions options;
  options.hz = 997;
  options.ring_capacity = 16;
  // Longer than the capture: the ring is only drained at Stop(), so
  // ~300 samples must squeeze through 16 slots.
  options.drain_period_ms = 1000;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  volatile std::uint64_t sink = SpinFor(300);
  (void)sink;
  const Profile profile = Profiler::Global().Stop();
  EXPECT_GT(profile.dropped, 0u);
  EXPECT_GT(profile.samples, 0u);  // The ring still delivered some.
}

TEST(ProfilerTest, SecondStartFailsWhileRunning) {
  ASSERT_TRUE(Profiler::Global().Start().ok());
  const Status again = Profiler::Global().Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition)
      << again.ToString();
  EXPECT_TRUE(Profiler::Global().active());
  Profiler::Global().Stop();
  EXPECT_FALSE(Profiler::Global().active());
}

TEST(ProfilerTest, InvalidHzRejected) {
  ProfilerOptions options;
  options.hz = 0;
  EXPECT_EQ(Profiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  options.hz = 100001;
  EXPECT_EQ(Profiler::Global().Start(options).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(Profiler::Global().active());
}

TEST(ProfilerTest, StopWithoutStartReturnsEmptyProfile) {
  const Profile profile = Profiler::Global().Stop();
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.samples, 0u);
}

TEST(ProfilerTest, SummaryJsonIsValidAndLiveWhileRunning) {
  ASSERT_TRUE(Profiler::Global().Start().ok());
  volatile std::uint64_t sink = SpinFor(100);
  (void)sink;
  const std::string live = Profiler::Global().SummaryJson();
  EXPECT_TRUE(testutil::JsonChecker(live).Valid()) << live;
  EXPECT_NE(live.find("\"samples\":"), std::string::npos) << live;
  Profiler::Global().Stop();
  const std::string final_json = Profiler::Global().SummaryJson();
  EXPECT_TRUE(testutil::JsonChecker(final_json).Valid()) << final_json;
}

// The acceptance contract: determination output is byte-identical with
// the profiler on and off — sampling reads thread state but never
// feeds back into the computation. Covers undersubscribed, odd, and
// oversubscribed thread counts on this host.
TEST(ProfilerTest, DeterminationBitIdenticalWithProfilingOn) {
  CoraOptions gopts;
  gopts.num_entities = 24;
  const GeneratedData data = GenerateCora(gopts);
  const RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 4000;
  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok()) << matching.status().ToString();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{hw}}) {
    DetermineOptions dopts;
    dopts.threads = threads;

    auto off = DetermineThresholds(*matching, rule, dopts);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    off->elapsed_seconds = 0.0;  // Wall time is the one legitimate diff.
    const std::string off_json = DetermineResultToJson(*off, rule);

    ProfilerOptions popts;
    popts.hz = 499;
    ASSERT_TRUE(Profiler::Global().Start(popts).ok());
    auto on = DetermineThresholds(*matching, rule, dopts);
    const Profile profile = Profiler::Global().Stop();
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    on->elapsed_seconds = 0.0;
    const std::string on_json = DetermineResultToJson(*on, rule);

    EXPECT_EQ(off_json, on_json) << "threads=" << threads;
    // The capture ran over the profiled determination.
    EXPECT_GT(profile.hz, 0) << "threads=" << threads;
  }
}

// ---- Folded-stack plumbing (obs/prof/folded.h) ----

TEST(FoldedTest, ParseRoundTripAndDuplicateMerge) {
  const std::string text =
      "span:a;phase:-;main;work 7\n"
      "span:a;phase:-;main;work 3\n"
      "\n"
      "span:-;phase:p;main;other 2\r\n";
  FoldedProfile folded;
  ASSERT_TRUE(obs::prof::ParseFolded(text, &folded).ok());
  ASSERT_EQ(folded.stacks.size(), 2u);
  EXPECT_EQ(folded.stacks.at("span:a;phase:-;main;work"), 10u);
  EXPECT_EQ(folded.stacks.at("span:-;phase:p;main;other"), 2u);
  EXPECT_EQ(folded.TotalSamples(), 12u);

  // Round trip: serialize and reparse to the same map.
  FoldedProfile again;
  ASSERT_TRUE(
      obs::prof::ParseFolded(obs::prof::FoldedToString(folded), &again).ok());
  EXPECT_EQ(again.stacks, folded.stacks);
}

TEST(FoldedTest, ParseRejectsMalformedLines) {
  FoldedProfile folded;
  EXPECT_FALSE(obs::prof::ParseFolded("no_count_here\n", &folded).ok());
  EXPECT_FALSE(obs::prof::ParseFolded("stack notanumber\n", &folded).ok());
}

TEST(FoldedTest, MergeSumsAcrossProfiles) {
  FoldedProfile a;
  ASSERT_TRUE(obs::prof::ParseFolded("span:-;phase:-;f;g 5\n", &a).ok());
  FoldedProfile b;
  ASSERT_TRUE(obs::prof::ParseFolded(
                  "span:-;phase:-;f;g 2\nspan:-;phase:-;f;h 1\n", &b)
                  .ok());
  const FoldedProfile merged = obs::prof::MergeFolded({a, b});
  EXPECT_EQ(merged.stacks.at("span:-;phase:-;f;g"), 7u);
  EXPECT_EQ(merged.stacks.at("span:-;phase:-;f;h"), 1u);
  EXPECT_EQ(merged.TotalSamples(), 8u);
}

TEST(FoldedTest, HotFunctionsSelfAndTotalWithRecursionDedup) {
  // g appears twice in one stack: its total must count that stack's
  // samples once, not twice.
  FoldedProfile folded;
  ASSERT_TRUE(obs::prof::ParseFolded(
                  "span:-;phase:-;f;g;g 4\n"
                  "span:-;phase:-;f;h 6\n",
                  &folded)
                  .ok());
  const std::vector<obs::prof::HotFunction> hot =
      obs::prof::HotFunctions(folded);
  ASSERT_FALSE(hot.empty());
  // Sorted by self time: h (6 self) before g (4 self); f has 0 self.
  EXPECT_EQ(hot[0].name, "h");
  EXPECT_EQ(hot[0].self, 6u);
  EXPECT_EQ(hot[0].total, 6u);
  EXPECT_EQ(hot[1].name, "g");
  EXPECT_EQ(hot[1].self, 4u);
  EXPECT_EQ(hot[1].total, 4u);  // deduped: one stack, counted once
  bool saw_f = false;
  for (const obs::prof::HotFunction& fn : hot) {
    if (fn.name == "f") {
      saw_f = true;
      EXPECT_EQ(fn.self, 0u);
      EXPECT_EQ(fn.total, 10u);
    }
  }
  EXPECT_TRUE(saw_f);
}

TEST(FoldedTest, DiffHighlightsRegressions) {
  FoldedProfile before;
  ASSERT_TRUE(obs::prof::ParseFolded("span:-;phase:-;f;g 10\n", &before).ok());
  FoldedProfile after;
  ASSERT_TRUE(obs::prof::ParseFolded(
                  "span:-;phase:-;f;g 30\nspan:-;phase:-;f;new_hot 8\n",
                  &after)
                  .ok());
  const std::string diff = obs::prof::DiffToText(before, after, 10);
  EXPECT_NE(diff.find("g"), std::string::npos) << diff;
  EXPECT_NE(diff.find("new_hot"), std::string::npos) << diff;
}

TEST(FoldedTest, SummaryJsonIsValid) {
  FoldedProfile folded;
  ASSERT_TRUE(obs::prof::ParseFolded(
                  "span:a;phase:p;main;\"work\" 3\n", &folded)
                  .ok());
  const std::string json = obs::prof::FoldedSummaryJson(folded, 5);
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"samples\":3"), std::string::npos) << json;
}

}  // namespace
}  // namespace dd
