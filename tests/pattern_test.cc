#include "core/pattern.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(DominatesTest, BasicCases) {
  EXPECT_TRUE(Dominates({3, 4}, {3, 4}));   // Reflexive.
  EXPECT_TRUE(Dominates({5, 4}, {3, 4}));
  EXPECT_FALSE(Dominates({2, 9}, {3, 4}));  // First coordinate smaller.
  EXPECT_TRUE(Dominates({9, 9}, {0, 0}));
  EXPECT_FALSE(Dominates({0, 0}, {0, 1}));
}

TEST(DominatesTest, Transitivity) {
  const Levels a = {5, 5, 5};
  const Levels b = {4, 5, 3};
  const Levels c = {4, 2, 1};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_TRUE(Dominates(b, c));
  EXPECT_TRUE(Dominates(a, c));
}

TEST(DependentQualityTest, Formula3) {
  // Q = sum(dmax - l) / (|Y| dmax).
  EXPECT_DOUBLE_EQ(DependentQuality({0, 0}, 10), 1.0);
  EXPECT_DOUBLE_EQ(DependentQuality({10, 10}, 10), 0.0);
  EXPECT_DOUBLE_EQ(DependentQuality({5}, 10), 0.5);
  EXPECT_DOUBLE_EQ(DependentQuality({3, 1}, 10), 0.8);  // (7+9)/20
  EXPECT_DOUBLE_EQ(DependentQuality({}, 10), 1.0);
}

TEST(DependentQualityTest, PaperTableIIIValues) {
  // Table III Y = (venue, year) with dmax = 10:
  // <3,1> -> 0.80, <3,2> -> 0.75, <4,2> -> 0.70, <5,2> -> 0.65.
  EXPECT_DOUBLE_EQ(DependentQuality({3, 1}, 10), 0.80);
  EXPECT_DOUBLE_EQ(DependentQuality({3, 2}, 10), 0.75);
  EXPECT_DOUBLE_EQ(DependentQuality({4, 2}, 10), 0.70);
  EXPECT_DOUBLE_EQ(DependentQuality({5, 2}, 10), 0.65);
}

TEST(DependentQualityTest, AntitoneUnderDomination) {
  // ϕ1 ⪰ ϕ2 implies Q(ϕ1) <= Q(ϕ2) (Lemma 1, quality half).
  const Levels big = {7, 8};
  const Levels small = {2, 3};
  ASSERT_TRUE(Dominates(big, small));
  EXPECT_LE(DependentQuality(big, 10), DependentQuality(small, 10));
}

TEST(LevelSumTest, Basic) {
  EXPECT_EQ(LevelSum({}), 0);
  EXPECT_EQ(LevelSum({1, 2, 3}), 6);
}

TEST(PatternTest, FdFactoryIsAllZero) {
  Pattern fd = Pattern::Fd(2, 3);
  EXPECT_EQ(fd.lhs, (Levels{0, 0}));
  EXPECT_EQ(fd.rhs, (Levels{0, 0, 0}));
  EXPECT_DOUBLE_EQ(DependentQuality(fd.rhs, 10), 1.0);
}

TEST(PatternTest, ExactLhsFactoryIsMfd) {
  Pattern mfd = Pattern::ExactLhs(2, {4, 5});
  EXPECT_EQ(mfd.lhs, (Levels{0, 0}));
  EXPECT_EQ(mfd.rhs, (Levels{4, 5}));
}

TEST(PatternTest, Formatting) {
  EXPECT_EQ(LevelsToString({8, 3}), "<8, 3>");
  EXPECT_EQ(LevelsToString({}), "<>");
  EXPECT_EQ(PatternToString(Pattern{{8}, {3}}), "(<8> -> <3>)");
}

TEST(PatternTest, Equality) {
  EXPECT_EQ((Pattern{{1}, {2}}), (Pattern{{1}, {2}}));
  EXPECT_FALSE((Pattern{{1}, {2}}) == (Pattern{{1}, {3}}));
}

}  // namespace
}  // namespace dd
