#include "metric/metric.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dd {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  LevenshteinMetric lev;
  EXPECT_DOUBLE_EQ(lev.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(lev.Distance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(lev.Distance("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(lev.Distance("flaw", "lawn"), 2.0);
  EXPECT_DOUBLE_EQ(lev.Distance("", "abc"), 3.0);
  EXPECT_DOUBLE_EQ(lev.Distance("abc", ""), 3.0);
}

TEST(LevenshteinTest, PaperRegionValues) {
  // "Chicago" vs "Chicago, IL": 4 inserts.
  LevenshteinMetric lev;
  EXPECT_DOUBLE_EQ(lev.Distance("Chicago", "Chicago, IL"), 4.0);
  EXPECT_DOUBLE_EQ(lev.Distance("Boston, MA", "Chicago, MA"), 7.0);
}

TEST(LevenshteinTest, BoundedMatchesExactWithinCap) {
  LevenshteinMetric lev;
  Rng rng(5);
  auto random_string = [&](std::size_t max_len) {
    std::string s(rng.NextBounded(max_len + 1), 'a');
    for (char& c : s) c = static_cast<char>('a' + rng.NextBounded(5));
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = random_string(14);
    std::string b = random_string(14);
    double exact = lev.Distance(a, b);
    for (double cap : {0.0, 1.0, 3.0, 8.0, 20.0}) {
      double bounded = lev.BoundedDistance(a, b, cap);
      if (exact <= cap) {
        EXPECT_DOUBLE_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, cap) << a << " vs " << b;
      }
    }
  }
}

// Metric axioms checked across all string metrics.
class MetricAxiomTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetricAxiomTest, NonNegativeSymmetricIdentity) {
  auto metric = MetricRegistry::Default().Create(GetParam());
  ASSERT_TRUE(metric.ok());
  const std::vector<std::string> values = {
      "", "a", "abc", "West Wood Hotel", "Fifth Avenue, 61st Street",
      "5th Avenue, 61st St.", "Chicago, IL", "chicago"};
  for (const auto& a : values) {
    EXPECT_DOUBLE_EQ(metric.value()->Distance(a, a), 0.0) << a;
    for (const auto& b : values) {
      double ab = metric.value()->Distance(a, b);
      double ba = metric.value()->Distance(b, a);
      EXPECT_GE(ab, 0.0);
      EXPECT_DOUBLE_EQ(ab, ba) << a << " vs " << b;
    }
  }
}

TEST_P(MetricAxiomTest, TriangleInequalityOnTextMetrics) {
  // Levenshtein, q-gram (multiset symmetric difference) and Jaccard are
  // true metrics. Cosine distance is not guaranteed to satisfy the
  // triangle inequality, so it is excluded here.
  if (GetParam() == "cosine") GTEST_SKIP() << "cosine is not a metric";
  auto metric = MetricRegistry::Default().Create(GetParam());
  ASSERT_TRUE(metric.ok());
  const std::vector<std::string> values = {"abcd", "abed", "xbed", "xyed",
                                           "hello world", "hello there"};
  for (const auto& a : values) {
    for (const auto& b : values) {
      for (const auto& c : values) {
        EXPECT_LE(metric.value()->Distance(a, c),
                  metric.value()->Distance(a, b) +
                      metric.value()->Distance(b, c) + 1e-9)
            << a << "," << b << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStringMetrics, MetricAxiomTest,
                         ::testing::Values("levenshtein", "qgram2", "qgram3",
                                           "jaccard", "cosine"));

TEST(QGramTest, KnownProfileDifference) {
  QGramMetric q2(2);
  // Identical strings.
  EXPECT_DOUBLE_EQ(q2.Distance("abc", "abc"), 0.0);
  // One substitution changes a bounded number of q-grams.
  EXPECT_GT(q2.Distance("abc", "abd"), 0.0);
  EXPECT_LE(q2.Distance("abc", "abd"), 4.0);
}

TEST(QGramTest, BoundsEditDistanceFromBelowScaled) {
  // |G(a)| - based q-gram distance <= 2*q*edit_distance.
  QGramMetric q2(2);
  LevenshteinMetric lev;
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a = "prefix string value";
    std::string b = a;
    int edits = static_cast<int>(rng.NextBounded(4));
    for (int e = 0; e < edits && !b.empty(); ++e) {
      b[rng.NextBounded(b.size())] = 'z';
    }
    EXPECT_LE(q2.Distance(a, b), 2.0 * 2.0 * lev.Distance(a, b) + 1e-9);
  }
}

TEST(JaccardTest, KnownValues) {
  JaccardMetric j;
  EXPECT_DOUBLE_EQ(j.Distance("a b c", "a b c"), 0.0);
  EXPECT_DOUBLE_EQ(j.Distance("a b", "c d"), 1.0);
  EXPECT_NEAR(j.Distance("a b c", "b c d"), 0.5, 1e-12);  // 2/4 shared
  EXPECT_DOUBLE_EQ(j.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(j.Distance("x", ""), 1.0);
  EXPECT_DOUBLE_EQ(j.Distance("A b", "a B"), 0.0);  // Case-folded tokens.
}

TEST(CosineTest, KnownValues) {
  CosineMetric c;
  EXPECT_DOUBLE_EQ(c.Distance("a b", "a b"), 0.0);
  EXPECT_DOUBLE_EQ(c.Distance("a", "b"), 1.0);
  // Orthogonal halves: cos = 1/2.
  EXPECT_NEAR(c.Distance("a b", "a c"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(c.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(c.Distance("x", ""), 1.0);
}

TEST(CosineTest, TermFrequencyWeighting) {
  CosineMetric c;
  // "a a b" = (2,1), "a b b" = (1,2): cos = 4/5.
  EXPECT_NEAR(c.Distance("a a b", "a b b"), 1.0 - 0.8, 1e-12);
}

TEST(NumericAbsTest, ParsesAndDiffs) {
  NumericAbsMetric m;
  EXPECT_DOUBLE_EQ(m.Distance("3", "7"), 4.0);
  EXPECT_DOUBLE_EQ(m.Distance("-2.5", "2.5"), 5.0);
  EXPECT_DOUBLE_EQ(m.Distance("1995", "1995"), 0.0);
  EXPECT_TRUE(std::isinf(m.Distance("abc", "3")));
  EXPECT_DOUBLE_EQ(m.Distance("abc", "abc"), 0.0);  // Equal strings.
}

TEST(RegistryTest, BuiltinsPresent) {
  auto names = MetricRegistry::Default().Names();
  for (const char* expected :
       {"cosine", "jaccard", "levenshtein", "numeric_abs", "qgram2",
        "qgram3"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RegistryTest, CreateUnknownFails) {
  EXPECT_EQ(MetricRegistry::Default().Create("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateRegistrationFails) {
  MetricRegistry local;
  EXPECT_TRUE(local
                  .Register("custom",
                            [] { return std::make_unique<LevenshteinMetric>(); })
                  .ok());
  EXPECT_EQ(local
                .Register("custom",
                          [] { return std::make_unique<LevenshteinMetric>(); })
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, NormalizedFlags) {
  EXPECT_FALSE(LevenshteinMetric().is_normalized());
  EXPECT_FALSE(QGramMetric(2).is_normalized());
  EXPECT_TRUE(JaccardMetric().is_normalized());
  EXPECT_TRUE(CosineMetric().is_normalized());
}

}  // namespace
}  // namespace dd
