#include "metric/metric.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metric/levenshtein.h"

namespace dd {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  LevenshteinMetric lev;
  EXPECT_DOUBLE_EQ(lev.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(lev.Distance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(lev.Distance("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(lev.Distance("flaw", "lawn"), 2.0);
  EXPECT_DOUBLE_EQ(lev.Distance("", "abc"), 3.0);
  EXPECT_DOUBLE_EQ(lev.Distance("abc", ""), 3.0);
}

TEST(LevenshteinTest, PaperRegionValues) {
  // "Chicago" vs "Chicago, IL": 4 inserts.
  LevenshteinMetric lev;
  EXPECT_DOUBLE_EQ(lev.Distance("Chicago", "Chicago, IL"), 4.0);
  EXPECT_DOUBLE_EQ(lev.Distance("Boston, MA", "Chicago, MA"), 7.0);
}

TEST(LevenshteinTest, BoundedMatchesExactWithinCap) {
  LevenshteinMetric lev;
  Rng rng(5);
  auto random_string = [&](std::size_t max_len) {
    std::string s(rng.NextBounded(max_len + 1), 'a');
    for (char& c : s) c = static_cast<char>('a' + rng.NextBounded(5));
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = random_string(14);
    std::string b = random_string(14);
    double exact = lev.Distance(a, b);
    for (double cap : {0.0, 1.0, 3.0, 8.0, 20.0}) {
      double bounded = lev.BoundedDistance(a, b, cap);
      if (exact <= cap) {
        EXPECT_DOUBLE_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, cap) << a << " vs " << b;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Kernel equivalence (src/metric/levenshtein.h): the Myers bit-parallel
// kernel and the dmax-banded early-exit kernel must agree with the
// reference DP on every input where their contracts apply. Exhaustive
// randomized sweep over lengths 0..200 and every cap band.

namespace {

std::string RandomBytes(Rng& rng, std::size_t length, int alphabet) {
  std::string s(length, '\0');
  for (char& c : s) {
    // Include non-ASCII bytes: the kernels are byte-based and must not
    // care about sign or encoding.
    c = static_cast<char>(rng.NextBounded(static_cast<std::uint64_t>(alphabet)));
  }
  return s;
}

}  // namespace

TEST(LevenshteinKernelTest, Myers64MatchesReferenceDp) {
  Rng rng(71);
  for (int trial = 0; trial < 2000; ++trial) {
    // Myers' precondition: min(|a|, |b|) <= 64. The longer side may be
    // anything (test up to 200).
    const std::size_t la = rng.NextBounded(65);
    const std::size_t lb = rng.NextBounded(201);
    const int alphabet = trial % 2 == 0 ? 4 : 256;
    const std::string a = RandomBytes(rng, la, alphabet);
    const std::string b = RandomBytes(rng, lb, alphabet);
    ASSERT_EQ(lev::Myers64(a, b), lev::ReferenceDp(a, b))
        << "trial " << trial << " |a|=" << la << " |b|=" << lb;
  }
}

TEST(LevenshteinKernelTest, BandedMatchesReferenceDpWithinCap) {
  Rng rng(72);
  for (int trial = 0; trial < 1200; ++trial) {
    const std::size_t la = rng.NextBounded(201);
    const std::size_t lb = rng.NextBounded(201);
    const int alphabet = trial % 2 == 0 ? 3 : 256;
    const std::string a = RandomBytes(rng, la, alphabet);
    const std::string b = RandomBytes(rng, lb, alphabet);
    const std::size_t exact = lev::ReferenceDp(a, b);
    for (std::size_t cap : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                            std::size_t{5}, std::size_t{10}, std::size_t{50},
                            std::size_t{200}, std::size_t{400}}) {
      const std::size_t banded = lev::Banded(a, b, cap);
      if (exact <= cap) {
        ASSERT_EQ(banded, exact) << "cap=" << cap << " trial " << trial;
      } else {
        ASSERT_GT(banded, cap) << "cap=" << cap << " trial " << trial;
      }
    }
  }
}

TEST(LevenshteinKernelTest, EdgeLengths) {
  // Empty and boundary-length (63/64/65) inputs on every kernel.
  const std::string empty;
  const std::string s63(63, 'x');
  const std::string s64(64, 'x');
  const std::string s65(65, 'x');
  EXPECT_EQ(lev::ReferenceDp(empty, empty), 0u);
  EXPECT_EQ(lev::Myers64(empty, s65), 65u);
  EXPECT_EQ(lev::Myers64(s63, s64), 1u);
  EXPECT_EQ(lev::Myers64(s64, s64), 0u);
  EXPECT_EQ(lev::Banded(s64, s65, 0), 1u);  // > cap sentinel (cap + 1)
  EXPECT_EQ(lev::Banded(s64, s65, 1), 1u);
  EXPECT_EQ(lev::Banded(empty, s65, 100), 65u);
}

// BoundedDistance's dispatch (exact Myers under 64, banded above) is
// level-exact: every return value buckets to the same dmax level the
// reference distance would. Full dmax band sweep per pair.
TEST(LevenshteinKernelTest, BoundedDistanceLevelEquivalent) {
  LevenshteinMetric metric;
  Rng rng(73);
  const int dmax = 10;
  for (int trial = 0; trial < 600; ++trial) {
    const std::string a = RandomBytes(rng, rng.NextBounded(201), 5);
    const std::string b = RandomBytes(rng, rng.NextBounded(201), 5);
    const double exact = metric.Distance(a, b);
    for (int cap_level = 0; cap_level <= dmax; ++cap_level) {
      const double cap = static_cast<double>(cap_level);
      const double bounded = metric.BoundedDistance(a, b, cap);
      if (exact <= cap) {
        ASSERT_EQ(bounded, exact) << "cap=" << cap << " trial " << trial;
      } else {
        ASSERT_GT(bounded, cap) << "cap=" << cap << " trial " << trial;
      }
    }
    // Huge and fractional caps exercise the cap >= max_len fast path
    // and the floor semantics.
    ASSERT_EQ(metric.BoundedDistance(a, b, 1e9), exact);
    const double frac = metric.BoundedDistance(a, b, 2.7);
    if (exact <= 2.0) {
      ASSERT_EQ(frac, exact);
    } else {
      ASSERT_GT(frac, 2.7);
    }
  }
}

// Metric axioms checked across all string metrics.
class MetricAxiomTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MetricAxiomTest, NonNegativeSymmetricIdentity) {
  auto metric = MetricRegistry::Default().Create(GetParam());
  ASSERT_TRUE(metric.ok());
  const std::vector<std::string> values = {
      "", "a", "abc", "West Wood Hotel", "Fifth Avenue, 61st Street",
      "5th Avenue, 61st St.", "Chicago, IL", "chicago"};
  for (const auto& a : values) {
    EXPECT_DOUBLE_EQ(metric.value()->Distance(a, a), 0.0) << a;
    for (const auto& b : values) {
      double ab = metric.value()->Distance(a, b);
      double ba = metric.value()->Distance(b, a);
      EXPECT_GE(ab, 0.0);
      EXPECT_DOUBLE_EQ(ab, ba) << a << " vs " << b;
    }
  }
}

TEST_P(MetricAxiomTest, TriangleInequalityOnTextMetrics) {
  // Levenshtein, q-gram (multiset symmetric difference) and Jaccard are
  // true metrics. Cosine distance is not guaranteed to satisfy the
  // triangle inequality, so it is excluded here.
  if (GetParam() == "cosine") GTEST_SKIP() << "cosine is not a metric";
  auto metric = MetricRegistry::Default().Create(GetParam());
  ASSERT_TRUE(metric.ok());
  const std::vector<std::string> values = {"abcd", "abed", "xbed", "xyed",
                                           "hello world", "hello there"};
  for (const auto& a : values) {
    for (const auto& b : values) {
      for (const auto& c : values) {
        EXPECT_LE(metric.value()->Distance(a, c),
                  metric.value()->Distance(a, b) +
                      metric.value()->Distance(b, c) + 1e-9)
            << a << "," << b << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStringMetrics, MetricAxiomTest,
                         ::testing::Values("levenshtein", "qgram2", "qgram3",
                                           "jaccard", "cosine"));

TEST(QGramTest, KnownProfileDifference) {
  QGramMetric q2(2);
  // Identical strings.
  EXPECT_DOUBLE_EQ(q2.Distance("abc", "abc"), 0.0);
  // One substitution changes a bounded number of q-grams.
  EXPECT_GT(q2.Distance("abc", "abd"), 0.0);
  EXPECT_LE(q2.Distance("abc", "abd"), 4.0);
}

TEST(QGramTest, BoundsEditDistanceFromBelowScaled) {
  // |G(a)| - based q-gram distance <= 2*q*edit_distance.
  QGramMetric q2(2);
  LevenshteinMetric lev;
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a = "prefix string value";
    std::string b = a;
    int edits = static_cast<int>(rng.NextBounded(4));
    for (int e = 0; e < edits && !b.empty(); ++e) {
      b[rng.NextBounded(b.size())] = 'z';
    }
    EXPECT_LE(q2.Distance(a, b), 2.0 * 2.0 * lev.Distance(a, b) + 1e-9);
  }
}

TEST(JaccardTest, KnownValues) {
  JaccardMetric j;
  EXPECT_DOUBLE_EQ(j.Distance("a b c", "a b c"), 0.0);
  EXPECT_DOUBLE_EQ(j.Distance("a b", "c d"), 1.0);
  EXPECT_NEAR(j.Distance("a b c", "b c d"), 0.5, 1e-12);  // 2/4 shared
  EXPECT_DOUBLE_EQ(j.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(j.Distance("x", ""), 1.0);
  EXPECT_DOUBLE_EQ(j.Distance("A b", "a B"), 0.0);  // Case-folded tokens.
}

TEST(CosineTest, KnownValues) {
  CosineMetric c;
  EXPECT_DOUBLE_EQ(c.Distance("a b", "a b"), 0.0);
  EXPECT_DOUBLE_EQ(c.Distance("a", "b"), 1.0);
  // Orthogonal halves: cos = 1/2.
  EXPECT_NEAR(c.Distance("a b", "a c"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(c.Distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(c.Distance("x", ""), 1.0);
}

TEST(CosineTest, TermFrequencyWeighting) {
  CosineMetric c;
  // "a a b" = (2,1), "a b b" = (1,2): cos = 4/5.
  EXPECT_NEAR(c.Distance("a a b", "a b b"), 1.0 - 0.8, 1e-12);
}

TEST(NumericAbsTest, ParsesAndDiffs) {
  NumericAbsMetric m;
  EXPECT_DOUBLE_EQ(m.Distance("3", "7"), 4.0);
  EXPECT_DOUBLE_EQ(m.Distance("-2.5", "2.5"), 5.0);
  EXPECT_DOUBLE_EQ(m.Distance("1995", "1995"), 0.0);
  EXPECT_TRUE(std::isinf(m.Distance("abc", "3")));
  EXPECT_DOUBLE_EQ(m.Distance("abc", "abc"), 0.0);  // Equal strings.
}

TEST(RegistryTest, BuiltinsPresent) {
  auto names = MetricRegistry::Default().Names();
  for (const char* expected :
       {"cosine", "jaccard", "levenshtein", "numeric_abs", "qgram2",
        "qgram3"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RegistryTest, CreateUnknownFails) {
  EXPECT_EQ(MetricRegistry::Default().Create("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, DuplicateRegistrationFails) {
  MetricRegistry local;
  EXPECT_TRUE(local
                  .Register("custom",
                            [] { return std::make_unique<LevenshteinMetric>(); })
                  .ok());
  EXPECT_EQ(local
                .Register("custom",
                          [] { return std::make_unique<LevenshteinMetric>(); })
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, NormalizedFlags) {
  EXPECT_FALSE(LevenshteinMetric().is_normalized());
  EXPECT_FALSE(QGramMetric(2).is_normalized());
  EXPECT_TRUE(JaccardMetric().is_normalized());
  EXPECT_TRUE(CosineMetric().is_normalized());
}

}  // namespace
}  // namespace dd
