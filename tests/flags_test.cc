#include "common/flags.h"

#include <gtest/gtest.h>

namespace dd {
namespace {

ArgParser Parse(std::vector<const char*> argv, int begin = 1) {
  argv.insert(argv.begin(), "tool");
  return ArgParser(static_cast<int>(argv.size()), argv.data(), begin);
}

TEST(ArgParserTest, SpaceAndEqualsSyntax) {
  ArgParser args = Parse({"--name", "value", "--k=v"});
  EXPECT_TRUE(args.Has("name"));
  EXPECT_EQ(args.GetString("name"), "value");
  EXPECT_EQ(args.GetString("k"), "v");
  EXPECT_FALSE(args.Has("missing"));
  EXPECT_EQ(args.GetString("missing", "fallback"), "fallback");
}

TEST(ArgParserTest, BooleanSwitches) {
  ArgParser args = Parse({"--verbose", "--out", "x"});
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_EQ(args.GetString("verbose"), "");
  EXPECT_EQ(args.GetString("out"), "x");
}

TEST(ArgParserTest, RepeatedFlagsCollected) {
  ArgParser args = Parse({"--metric", "a=x", "--metric", "b=y"});
  EXPECT_EQ(args.GetAll("metric"),
            (std::vector<std::string>{"a=x", "b=y"}));
  EXPECT_EQ(args.GetString("metric"), "b=y");  // Last one wins.
}

TEST(ArgParserTest, PositionalArguments) {
  ArgParser args = Parse({"pos1", "--flag", "v", "pos2"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(ArgParserTest, DoubleDashEndsFlags) {
  ArgParser args = Parse({"--a", "1", "--", "--not-a-flag"});
  EXPECT_EQ(args.GetString("a"), "1");
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(ArgParserTest, TypedAccessors) {
  ArgParser args = Parse({"--n", "42", "--x", "2.5", "--bad", "abc"});
  auto n = args.GetInt("n", 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 42);
  auto x = args.GetDouble("x", 0.0);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(*x, 2.5);
  EXPECT_FALSE(args.GetInt("bad", 0).ok());
  EXPECT_FALSE(args.GetDouble("bad", 0.0).ok());
  auto absent = args.GetInt("absent", 7);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(*absent, 7);
}

TEST(ArgParserTest, UnknownFlagDetection) {
  ArgParser args = Parse({"--good", "1", "--typo", "2"});
  auto unknown = args.UnknownFlags({"good", "other"});
  EXPECT_EQ(unknown, (std::vector<std::string>{"typo"}));
}

TEST(ArgParserTest, BeginOffsetSkipsSubcommand) {
  std::vector<const char*> argv = {"tool", "subcmd", "--x", "1"};
  ArgParser args(static_cast<int>(argv.size()), argv.data(), 2);
  EXPECT_EQ(args.GetString("x"), "1");
  EXPECT_TRUE(args.positional().empty());
}

TEST(SplitFlagListTest, TrimsAndDropsEmpties) {
  EXPECT_EQ(SplitFlagList("a, b ,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitFlagList(""), (std::vector<std::string>{}));
  EXPECT_EQ(SplitFlagList("a,,b"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dd
