#include "data/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(CsvTest, ParseSimpleWithHeader) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->schema().attribute(0).name, "a");
  EXPECT_EQ(r->at(1, 1), "4");
}

TEST(CsvTest, ParseWithoutHeaderNamesColumns) {
  CsvOptions opts;
  opts.has_header = false;
  auto r = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->schema().attribute(0).name, "c0");
  EXPECT_EQ(r->schema().attribute(1).name, "c1");
}

TEST(CsvTest, QuotedFieldsWithSeparatorsAndNewlines) {
  auto r = ParseCsv("a,b\n\"x,y\",\"line1\nline2\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0), "x,y");
  EXPECT_EQ(r->at(0, 1), "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto r = ParseCsv("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 0), "she said \"hi\"");
}

TEST(CsvTest, CrLfTolerated) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 1), "2");
}

TEST(CsvTest, MissingTrailingNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1u);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, ArityMismatchFails) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, EmptyInputFails) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, RoundTripPreservesValues) {
  auto r = ParseCsv("name,notes\nalice,\"likes, commas\"\nbob,\"\"\"q\"\"\"\n");
  ASSERT_TRUE(r.ok());
  std::string text = ToCsv(*r);
  auto r2 = ParseCsv(text);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->num_rows(), r->num_rows());
  for (std::size_t i = 0; i < r->num_rows(); ++i) {
    EXPECT_EQ(r2->row(i), r->row(i));
  }
}

TEST(CsvTest, FileRoundTrip) {
  auto r = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(r.ok());
  const std::string path = ::testing::TempDir() + "/dd_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*r, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0), "1");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/definitely/missing.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, CustomSeparator) {
  CsvOptions opts;
  opts.separator = '\t';
  auto r = ParseCsv("a\tb\n1\t2\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0, 1), "2");
  EXPECT_EQ(ToCsv(*r, opts), "a\tb\n1\t2\n");
}

}  // namespace
}  // namespace dd
