// Edge cases and failure injection across the pipeline: degenerate
// relations, extreme thresholds, single-level domains, saturated or
// empty matching relations, and malformed external inputs.

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "data/corruptor.h"
#include "data/csv.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"
#include "matching/builder.h"
#include "metric/metric.h"
#include "tests/test_util.h"

namespace dd {
namespace {

TEST(EdgeCaseTest, EmptyRelationYieldsEmptyMatching) {
  Schema schema({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  Relation empty(schema);
  MatchingOptions opts;
  auto m = BuildMatchingRelation(empty, {"a", "b"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 0u);
}

TEST(EdgeCaseTest, SingleRowRelationHasNoPairs) {
  Schema schema({{"a", AttributeType::kString}});
  Relation one(schema);
  ASSERT_TRUE(one.AddRow({"x"}).ok());
  MatchingOptions opts;
  auto m = BuildMatchingRelation(one, {"a"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 0u);
}

TEST(EdgeCaseTest, DeterminationOnEmptyMatchingReturnsNoPatterns) {
  MatchingRelation m({"x", "y"}, 5);
  RuleSpec rule{{"x"}, {"y"}};
  DetermineOptions opts;
  opts.prior_sample_size = 10;
  auto result = DetermineThresholds(m, rule, opts);
  ASSERT_TRUE(result.ok());
  // Every CQ is 0 on an empty M: nothing strictly exceeds the bound.
  EXPECT_TRUE(result->patterns.empty());
}

TEST(EdgeCaseTest, SamplingRequestLargerThanPopulation) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.max_pairs = 1000000;  // Far more than C(6,2) = 15.
  auto m = BuildMatchingRelation(hotel.relation, {"Name"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 15u);
}

TEST(EdgeCaseTest, SamplingExactlyOnePair) {
  GeneratedData hotel = HotelExample();
  MatchingOptions opts;
  opts.max_pairs = 1;
  auto m = BuildMatchingRelation(hotel.relation, {"Name"}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 1u);
  auto [i, j] = m->pair(0);
  EXPECT_LT(i, j);
  EXPECT_LT(j, 6u);
}

TEST(EdgeCaseTest, SamplingCoversAllTriangularIndices) {
  // With max_pairs == total - 1 the decoder must handle nearly every
  // triangular index; run several seeds to exercise boundaries.
  GeneratedData hotel = HotelExample();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    MatchingOptions opts;
    opts.max_pairs = 14;
    opts.seed = seed;
    auto m = BuildMatchingRelation(hotel.relation, {"Name"}, opts);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->num_tuples(), 14u);
    for (std::size_t r = 0; r < m->num_tuples(); ++r) {
      auto [i, j] = m->pair(r);
      EXPECT_LT(i, j);
      EXPECT_LT(j, 6u);
    }
  }
}

TEST(EdgeCaseTest, Dmax1IsTheSmallestUsableDomain) {
  // dmax = 1: levels are {0, 1}; the lattice is {0,1}^dims.
  MatchingRelation m = testutil::MakeMatching(
      {"x", "y"}, 1, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  RuleSpec rule{{"x"}, {"y"}};
  DetermineOptions opts;
  opts.prior_sample_size = 4;
  auto result = DetermineThresholds(m, rule, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  EXPECT_LE(result->patterns[0].pattern.lhs[0], 1);
}

TEST(EdgeCaseTest, AllIdenticalValuesSaturateAtZeroDistance) {
  Schema schema({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  Relation rel(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rel.AddRow({"same", "same"}).ok());
  }
  MatchingOptions mopts;
  auto m = BuildMatchingRelation(rel, {"a", "b"}, mopts);
  ASSERT_TRUE(m.ok());
  DetermineOptions dopts;
  auto result = DetermineThresholds(*m, {{"a"}, {"b"}}, dopts);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // The FD (all-zero thresholds) is the optimum: C = 1 at Q = 1, full D.
  EXPECT_EQ(result->patterns[0].pattern.rhs, (Levels{0}));
  EXPECT_DOUBLE_EQ(result->patterns[0].measures.confidence, 1.0);
}

TEST(EdgeCaseTest, TopLLargerThanLattice) {
  MatchingRelation m = testutil::RandomMatching(2, 2, 50, 3);
  DetermineOptions opts;
  opts.top_l = 1000;  // |C_Y| is only 3.
  auto result = DetermineThresholds(m, {{"a0"}, {"a1"}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->patterns.size(), 9u);  // |C_X| * |C_Y| at most.
}

TEST(EdgeCaseTest, DetectionWithAllZeroPatternOnIdenticalData) {
  Schema schema({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  Relation rel(schema);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(rel.AddRow({"v", "w"}).ok());
  MatchingOptions mopts;
  auto found = DetectViolations(rel, {{"a"}, {"b"}}, Pattern::Fd(1, 1), mopts);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());  // Identical rows never violate.
}

TEST(EdgeCaseTest, UnicodeAndControlBytesSurviveThePipeline) {
  Schema schema({{"a", AttributeType::kString}, {"b", AttributeType::kString}});
  Relation rel(schema);
  ASSERT_TRUE(rel.AddRow({"caf\xc3\xa9", "r\xc3\xa9gion"}).ok());
  ASSERT_TRUE(rel.AddRow({"cafe", "region"}).ok());
  ASSERT_TRUE(rel.AddRow({std::string("a\0b", 3), "tab\there"}).ok());
  MatchingOptions mopts;
  auto m = BuildMatchingRelation(rel, {"a", "b"}, mopts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->num_tuples(), 3u);
  // CSV round trip with the printable subset.
  std::string csv = ToCsv(rel);
  auto back = ParseCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0), "caf\xc3\xa9");
}

TEST(EdgeCaseTest, MalformedCsvInputsFailCleanly) {
  EXPECT_FALSE(ParseCsv("a,b\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsv("a,a\n1,2\n").ok());       // Duplicate header.
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());          // Short row.
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());      // Long row.
  EXPECT_FALSE(ParseCsv("").ok());                  // Empty.
}

TEST(EdgeCaseTest, VeryLongValuesAreHandled) {
  std::string long_a(5000, 'a');
  std::string long_b = long_a;
  long_b[2500] = 'b';
  LevenshteinMetric lev;
  EXPECT_DOUBLE_EQ(lev.Distance(long_a, long_b), 1.0);
  EXPECT_DOUBLE_EQ(lev.BoundedDistance(long_a, long_b, 10.0), 1.0);
  // Banded early exit on very different long strings.
  std::string other(5000, 'z');
  EXPECT_GT(lev.BoundedDistance(long_a, other, 10.0), 10.0);
}

TEST(EdgeCaseTest, DetectionQualityWithSelfInconsistentInput) {
  // Found pairs referencing rows beyond the truth universe are simply
  // counted as false positives, never a crash.
  PairList found = {{1000000, 2000000}};
  PairList truth = {{0, 1}};
  DetectionQuality q = EvaluateDetection(found, truth);
  EXPECT_EQ(q.hits, 0u);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
}

TEST(EdgeCaseTest, ZeroCorruptFractionThenDetectionFindsTruthEmpty) {
  RestaurantOptions gopts;
  gopts.num_entities = 20;
  GeneratedData data = GenerateRestaurant(gopts);
  CorruptorOptions copts;
  copts.corrupt_fraction = 0.0;
  auto corrupted = InjectViolations(data, {"city"}, copts);
  ASSERT_TRUE(corrupted.ok());
  MatchingOptions mopts;
  auto found = DetectViolations(corrupted->dirty, {{"address"}, {"city"}},
                                Pattern{{8}, {8}}, mopts);
  ASSERT_TRUE(found.ok());
  DetectionQuality q = EvaluateDetection(*found, corrupted->truth_pairs);
  EXPECT_EQ(q.truth_size, 0u);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);  // Vacuous truth.
}

}  // namespace
}  // namespace dd
