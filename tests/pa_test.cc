#include "core/pa.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dd {
namespace {

using testutil::MakeMatching;
using testutil::RandomMatching;

// Exhaustive reference: argmax C·Q by brute force.
std::vector<RhsCandidate> BruteForce(MeasureProvider* provider,
                                     std::size_t rhs_dims, int dmax,
                                     std::size_t top_l) {
  CandidateLattice lat(rhs_dims, dmax);
  std::vector<RhsCandidate> all;
  for (std::size_t idx = 0; idx < lat.size(); ++idx) {
    RhsCandidate c;
    c.rhs = lat.LevelsOf(idx);
    c.xy_count = provider->CountXY(c.rhs);
    const std::uint64_t n = provider->lhs_count();
    c.confidence = n > 0 ? static_cast<double>(c.xy_count) / n : 0.0;
    c.quality = DependentQuality(c.rhs, dmax);
    c.cq = c.confidence * c.quality;
    all.push_back(std::move(c));
  }
  std::sort(all.begin(), all.end(),
            [](const RhsCandidate& a, const RhsCandidate& b) {
              return a.cq > b.cq;
            });
  std::vector<RhsCandidate> top;
  for (const auto& c : all) {
    if (top.size() == top_l) break;
    if (c.cq > 0.0) top.push_back(c);
  }
  return top;
}

TEST(PaTest, FindsKnownOptimum) {
  // One Y attribute. LHS satisfied rows have y-levels {0,0,1,3}; the
  // optimum trades confidence against quality.
  MatchingRelation m = MakeMatching(
      {"x", "y"}, 4, {{0, 0}, {0, 0}, {0, 1}, {0, 3}, {4, 4}, {4, 4}});
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({0});
  PaOptions opts;
  PaStats stats;
  auto best = FindBestRhs(&provider, 1, 4, 0.0, opts, &stats);
  ASSERT_EQ(best.size(), 1u);
  // Candidates: y=0 -> C=2/4, Q=1 -> 0.5; y=1 -> C=3/4, Q=0.75 -> 0.5625;
  // y=3 -> 1.0*0.25; y=4 -> 1.0*0. Optimum is y=1.
  EXPECT_EQ(best[0].rhs, (Levels{1}));
  EXPECT_NEAR(best[0].cq, 0.5625, 1e-12);
  EXPECT_EQ(stats.evaluated, 5u);  // PA evaluates all of C_Y.
  EXPECT_EQ(stats.pruned, 0u);
}

class PapEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<ProcessingOrder, int>> {};

TEST_P(PapEquivalenceTest, PapMatchesPaOnRandomData) {
  const auto [order, seed] = GetParam();
  MatchingRelation m = RandomMatching(3, 7, 400, seed);
  ResolvedRule rule{{0}, {1, 2}};
  ScanMeasureProvider provider(m, rule);

  for (int x : {0, 2, 5, 7}) {
    provider.SetLhs({x});
    PaOptions pa;
    pa.prune = false;
    PaStats pa_stats;
    auto exhaustive = FindBestRhs(&provider, 2, 7, 0.0, pa, &pa_stats);

    PaOptions pap;
    pap.prune = true;
    pap.order = order;
    PaStats pap_stats;
    auto pruned = FindBestRhs(&provider, 2, 7, 0.0, pap, &pap_stats);

    ASSERT_EQ(exhaustive.size(), pruned.size()) << "x=" << x;
    if (!exhaustive.empty()) {
      // Same optimum value (patterns may differ under ties).
      EXPECT_NEAR(exhaustive[0].cq, pruned[0].cq, 1e-12) << "x=" << x;
    }
    // Pruning must never evaluate more than the exhaustive pass.
    EXPECT_LE(pap_stats.evaluated, pa_stats.evaluated);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndSeeds, PapEquivalenceTest,
    ::testing::Combine(::testing::Values(ProcessingOrder::kMidFirst,
                                         ProcessingOrder::kTopFirst,
                                         ProcessingOrder::kBottomFirst,
                                         ProcessingOrder::kLexicographic),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(PapTest, TopLMatchesBruteForce) {
  MatchingRelation m = RandomMatching(2, 9, 600, 11);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({4});
  for (std::size_t l : {1u, 2u, 3u, 5u, 7u}) {
    auto expected = BruteForce(&provider, 1, 9, l);
    PaOptions pap;
    pap.prune = true;
    pap.top_l = l;
    auto got = FindBestRhs(&provider, 1, 9, 0.0, pap, nullptr);
    ASSERT_EQ(got.size(), expected.size()) << "l=" << l;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].cq, expected[i].cq, 1e-12) << "l=" << l << " i=" << i;
    }
  }
}

TEST(PapTest, InitialBoundFiltersResults) {
  MatchingRelation m = MakeMatching({"x", "y"}, 4,
                                    {{0, 0}, {0, 0}, {0, 2}, {0, 4}});
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({0});
  // Best CQ: y=0 -> C=0.5, Q=1 -> 0.5. A bound of 0.6 excludes all.
  PaOptions pap;
  pap.prune = true;
  auto none = FindBestRhs(&provider, 1, 4, 0.6, pap, nullptr);
  EXPECT_TRUE(none.empty());
  auto some = FindBestRhs(&provider, 1, 4, 0.4, pap, nullptr);
  ASSERT_EQ(some.size(), 1u);
  EXPECT_NEAR(some[0].cq, 0.5, 1e-12);
}

TEST(PapTest, BoundReducesEvaluations) {
  MatchingRelation m = RandomMatching(2, 9, 400, 13);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({5});
  PaOptions pap;
  pap.prune = true;
  pap.order = ProcessingOrder::kTopFirst;
  PaStats unbounded;
  FindBestRhs(&provider, 1, 9, 0.0, pap, &unbounded);
  PaStats bounded;
  FindBestRhs(&provider, 1, 9, 0.9, pap, &bounded);
  EXPECT_LE(bounded.evaluated, unbounded.evaluated);
}

TEST(PaTest, ZeroConfidenceLhsReturnsEmpty) {
  // No row satisfies x <= 0, so every CQ is 0 and nothing strictly
  // exceeds the initial bound of 0 (DAP's "if ϕi[Y] exists" case).
  MatchingRelation m = MakeMatching({"x", "y"}, 4, {{3, 0}, {4, 1}});
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({0});
  for (bool prune : {false, true}) {
    PaOptions opts;
    opts.prune = prune;
    auto best = FindBestRhs(&provider, 1, 4, 0.0, opts, nullptr);
    EXPECT_TRUE(best.empty()) << "prune=" << prune;
  }
}

TEST(PapTest, PrunesAggressivelyUnderZeroConfidence) {
  MatchingRelation m = MakeMatching({"x", "y"}, 4, {{3, 0}, {4, 1}});
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({0});
  PaOptions pap;
  pap.prune = true;
  pap.order = ProcessingOrder::kTopFirst;
  PaStats stats;
  FindBestRhs(&provider, 1, 4, 0.0, pap, &stats);
  // The first (all-dmax) candidate has C = 0 and dominates everything:
  // one evaluation suffices.
  EXPECT_EQ(stats.evaluated, 1u);
  EXPECT_EQ(stats.pruned, 4u);
}

}  // namespace
}  // namespace dd
