#include "common/parallel.h"

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "core/measure_provider.h"
#include "core/special_cases.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "matching/serialization.h"
#include "obs/explain/recorder.h"
#include "tests/test_util.h"

namespace dd {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    for (std::size_t count : {0u, 1u, 5u, 100u, 1001u}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h = 0;
      ParallelFor(count, threads,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, ChunkIndicesAreDistinct) {
  std::mutex mu;
  std::set<std::size_t> chunks;
  ParallelFor(1000, 4, [&](std::size_t chunk, std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert(chunk);
  });
  EXPECT_EQ(chunks.size(), 4u);
}

TEST(ParallelForTest, EffectiveChunksBounds) {
  EXPECT_EQ(EffectiveChunks(100, 1), 1u);
  EXPECT_EQ(EffectiveChunks(100, 4), 4u);
  EXPECT_EQ(EffectiveChunks(2, 8), 2u);  // Never more chunks than items.
  EXPECT_EQ(EffectiveChunks(0, 8), 1u);
  EXPECT_EQ(EffectiveChunks(100, 0), 1u);
}

TEST(ParallelForTest, ZeroCountDoesNotInvoke) {
  bool invoked = false;
  ParallelFor(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    invoked = true;
  });
  EXPECT_FALSE(invoked);
}

class ParallelProviderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelProviderTest, MatchesSerialCountsExactly) {
  const std::size_t threads = GetParam();
  MatchingRelation m = testutil::RandomMatching(3, 7, 1000, 99);
  ResolvedRule rule{{0, 1}, {2}};
  ScanMeasureProvider serial(m, rule, /*full_scan=*/true, 1);
  ScanMeasureProvider parallel(m, rule, /*full_scan=*/true, threads);
  ScanMeasureProvider parallel_subset(m, rule, /*full_scan=*/false, threads);
  for (int x0 : {0, 3, 7}) {
    for (int x1 : {1, 5}) {
      serial.SetLhs({x0, x1});
      parallel.SetLhs({x0, x1});
      parallel_subset.SetLhs({x0, x1});
      ASSERT_EQ(serial.lhs_count(), parallel.lhs_count());
      ASSERT_EQ(serial.lhs_count(), parallel_subset.lhs_count());
      for (int y = 0; y <= 7; ++y) {
        const std::uint64_t expected = serial.CountXY({y});
        ASSERT_EQ(parallel.CountXY({y}), expected);
        ASSERT_EQ(parallel_subset.CountXY({y}), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelProviderTest,
                         ::testing::Values(2, 3, 4, 8));

// ---------------------------------------------------------------------
// Bit-identity at any thread count (DESIGN.md §12). The determinism
// contract is exact equality — same serialization bytes, same patterns
// in the same order with the same double utilities, same DaStats and
// ProviderStats — not tolerance-based closeness.

std::vector<std::size_t> TestThreadCounts() {
  std::vector<std::size_t> counts = {2, 7};
  if (DefaultThreads() > 1) counts.push_back(DefaultThreads());
  return counts;
}

// Matching build: same .ddmr bytes (v2 format carries an FNV-1a body
// checksum) at every pool size, with the value-pair cache on and off,
// for the full and the sampled pair paths.
TEST(ParallelDeterminismTest, MatchingBuildSerializationIdentical) {
  const GeneratedData cora = [] {
    CoraOptions options;
    options.num_entities = 40;
    return GenerateCora(options);
  }();
  const std::vector<std::string> attrs = {"author", "title", "venue"};
  for (std::size_t max_pairs : {std::size_t{0}, std::size_t{1500}}) {
    MatchingOptions base;
    base.dmax = 8;
    base.max_pairs = max_pairs;
    base.threads = 1;
    auto reference = BuildMatchingRelation(cora.relation, attrs, base);
    ASSERT_TRUE(reference.ok());
    const std::string expected = SerializeMatchingRelation(*reference);
    for (std::size_t threads : TestThreadCounts()) {
      for (bool cache : {true, false}) {
        MatchingOptions options = base;
        options.threads = threads;
        options.value_cache = cache;
        auto built = BuildMatchingRelation(cora.relation, attrs, options);
        ASSERT_TRUE(built.ok());
        EXPECT_EQ(SerializeMatchingRelation(*built), expected)
            << "threads=" << threads << " cache=" << cache
            << " max_pairs=" << max_pairs;
      }
    }
  }
}

void ExpectSameResult(const DetermineResult& a, const DetermineResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.patterns.size(), b.patterns.size()) << label;
  for (std::size_t p = 0; p < a.patterns.size(); ++p) {
    EXPECT_EQ(a.patterns[p].pattern.lhs, b.patterns[p].pattern.lhs) << label;
    EXPECT_EQ(a.patterns[p].pattern.rhs, b.patterns[p].pattern.rhs) << label;
    EXPECT_EQ(a.patterns[p].utility, b.patterns[p].utility) << label;
    EXPECT_EQ(a.patterns[p].measures.xy_count, b.patterns[p].measures.xy_count)
        << label;
    EXPECT_EQ(a.patterns[p].measures.lhs_count,
              b.patterns[p].measures.lhs_count)
        << label;
  }
  EXPECT_EQ(a.prior_mean_cq, b.prior_mean_cq) << label;
  EXPECT_EQ(a.stats.lhs_total, b.stats.lhs_total) << label;
  EXPECT_EQ(a.stats.lhs_evaluated, b.stats.lhs_evaluated) << label;
  EXPECT_EQ(a.stats.rhs.lattice_size, b.stats.rhs.lattice_size) << label;
  EXPECT_EQ(a.stats.rhs.evaluated, b.stats.rhs.evaluated) << label;
  EXPECT_EQ(a.stats.rhs.pruned, b.stats.rhs.pruned) << label;
  EXPECT_EQ(a.provider_stats.lhs_evaluations, b.provider_stats.lhs_evaluations)
      << label;
  EXPECT_EQ(a.provider_stats.xy_evaluations, b.provider_stats.xy_evaluations)
      << label;
  EXPECT_EQ(a.provider_stats.rows_scanned, b.provider_stats.rows_scanned)
      << label;
}

// Property test: every {DA, DAP} × {PA, PAP} × provider combination over
// Cora, Hotel, and a randomized relation returns the exact sequential
// answer — thresholds, top-l order, utilities, DaStats, ProviderStats —
// at every pool size.
TEST(ParallelDeterminismTest, DeterminationBitIdenticalAcrossThreads) {
  struct Workload {
    std::string name;
    MatchingRelation matching;
    RuleSpec rule;
  };
  std::vector<Workload> workloads;
  {
    CoraOptions options;
    options.num_entities = 30;
    GeneratedData cora = GenerateCora(options);
    MatchingOptions mopts;
    mopts.dmax = 8;
    mopts.max_pairs = 1200;
    auto m = BuildMatchingRelation(cora.relation, {"author", "title", "venue"},
                                   mopts);
    ASSERT_TRUE(m.ok());
    workloads.push_back(
        {"cora", std::move(m).value(), RuleSpec{{"author", "title"}, {"venue"}}});
  }
  workloads.push_back({"hotel", testutil::HotelMatching(),
                       RuleSpec{{"Address"}, {"Region"}}});
  workloads.push_back({"random", testutil::RandomMatching(3, 7, 900, 123),
                       RuleSpec{{"a0", "a1"}, {"a2"}}});

  const LhsAlgorithm lhs_algos[] = {LhsAlgorithm::kDa, LhsAlgorithm::kDap};
  const RhsAlgorithm rhs_algos[] = {RhsAlgorithm::kPa, RhsAlgorithm::kPap};
  for (const Workload& w : workloads) {
    for (LhsAlgorithm lhs : lhs_algos) {
      for (RhsAlgorithm rhs : rhs_algos) {
        for (const char* provider : {"scan", "scan_subset", "grid"}) {
          DetermineOptions options;
          options.lhs_algorithm = lhs;
          options.rhs_algorithm = rhs;
          options.provider = provider;
          options.top_l = 3;
          options.threads = 1;
          auto sequential = DetermineThresholds(w.matching, w.rule, options);
          ASSERT_TRUE(sequential.ok());
          for (std::size_t threads : TestThreadCounts()) {
            options.threads = threads;
            auto parallel = DetermineThresholds(w.matching, w.rule, options);
            ASSERT_TRUE(parallel.ok());
            const std::string label =
                w.name + " " + LhsAlgorithmName(lhs) + "+" +
                RhsAlgorithmName(rhs) + " " + provider + " threads=" +
                std::to_string(threads);
            ExpectSameResult(*sequential, *parallel, label);
          }
        }
      }
    }
  }
}

// The MFD / MD special-case determinations obey the same contract.
TEST(ParallelDeterminismTest, SpecialCasesBitIdenticalAcrossThreads) {
  MatchingRelation m = testutil::RandomMatching(3, 6, 700, 55);
  const RuleSpec rule{{"a0", "a1"}, {"a2"}};
  SpecialCaseOptions options;
  options.top_l = 3;
  options.threads = 1;
  auto mfd_seq = DetermineMfdThresholds(m, rule, options);
  auto md_seq = DetermineMdThresholds(m, rule, options);
  ASSERT_TRUE(mfd_seq.ok());
  ASSERT_TRUE(md_seq.ok());
  for (std::size_t threads : TestThreadCounts()) {
    options.threads = threads;
    auto mfd = DetermineMfdThresholds(m, rule, options);
    auto md = DetermineMdThresholds(m, rule, options);
    ASSERT_TRUE(mfd.ok());
    ASSERT_TRUE(md.ok());
    ExpectSameResult(*mfd_seq, *mfd, "mfd threads=" + std::to_string(threads));
    ExpectSameResult(*md_seq, *md, "md threads=" + std::to_string(threads));
  }
}

// EXPLAIN-instrumented runs: the waterfall totals (and the accounting
// identity evaluated + pruned == candidates) are identical at any
// thread count — audit runs pin the search order, so the parallel gate
// stands down rather than reordering the decision record.
TEST(ParallelDeterminismTest, ExplainWaterfallIdenticalAcrossThreads) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 500, 31);
  const RuleSpec rule{{"a0"}, {"a1"}};
  auto run = [&](std::size_t threads) {
    DetermineOptions options;
    options.threads = threads;
    options.top_l = 2;
    obs::ExplainRecorder& recorder = obs::ExplainRecorder::Global();
    recorder.Enable(obs::ExplainConfig{});
    auto result = DetermineThresholds(m, rule, options);
    obs::ExplainSnapshot snapshot = recorder.Snapshot();
    recorder.Disable();
    EXPECT_TRUE(result.ok());
    return snapshot;
  };
  const obs::ExplainSnapshot base = run(1);
  EXPECT_TRUE(base.waterfall.Accounted());
  for (std::size_t threads : TestThreadCounts()) {
    const obs::ExplainSnapshot snap = run(threads);
    EXPECT_TRUE(snap.waterfall.Accounted()) << threads;
    EXPECT_EQ(snap.waterfall.lhs_seen, base.waterfall.lhs_seen) << threads;
    EXPECT_EQ(snap.waterfall.lhs_bounded_out, base.waterfall.lhs_bounded_out)
        << threads;
    EXPECT_EQ(snap.waterfall.candidates, base.waterfall.candidates) << threads;
    EXPECT_EQ(snap.waterfall.evaluated, base.waterfall.evaluated) << threads;
    EXPECT_EQ(snap.waterfall.pruned_s0, base.waterfall.pruned_s0) << threads;
    EXPECT_EQ(snap.waterfall.pruned_s1, base.waterfall.pruned_s1) << threads;
    EXPECT_EQ(snap.waterfall.pruned_zero_conf,
              base.waterfall.pruned_zero_conf)
        << threads;
    EXPECT_EQ(snap.waterfall.offered, base.waterfall.offered) << threads;
    EXPECT_EQ(snap.events.size(), base.events.size()) << threads;
  }
}

TEST(ParallelProviderTest, DeterminationMatchesSerial) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 600, 77);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions serial;
  DetermineOptions parallel;
  parallel.threads = 4;
  auto a = DetermineThresholds(m, rule, serial);
  auto b = DetermineThresholds(m, rule, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->patterns.empty());
  ASSERT_FALSE(b->patterns.empty());
  EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-12);
  EXPECT_EQ(a->patterns[0].measures.xy_count, b->patterns[0].measures.xy_count);
}

}  // namespace
}  // namespace dd
