#include "common/parallel.h"

#include <atomic>
#include <mutex>
#include <set>

#include <gtest/gtest.h>

#include "core/measure_provider.h"
#include "core/determiner.h"
#include "tests/test_util.h"

namespace dd {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    for (std::size_t count : {0u, 1u, 5u, 100u, 1001u}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h = 0;
      ParallelFor(count, threads,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelForTest, ChunkIndicesAreDistinct) {
  std::mutex mu;
  std::set<std::size_t> chunks;
  ParallelFor(1000, 4, [&](std::size_t chunk, std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert(chunk);
  });
  EXPECT_EQ(chunks.size(), 4u);
}

TEST(ParallelForTest, EffectiveChunksBounds) {
  EXPECT_EQ(EffectiveChunks(100, 1), 1u);
  EXPECT_EQ(EffectiveChunks(100, 4), 4u);
  EXPECT_EQ(EffectiveChunks(2, 8), 2u);  // Never more chunks than items.
  EXPECT_EQ(EffectiveChunks(0, 8), 1u);
  EXPECT_EQ(EffectiveChunks(100, 0), 1u);
}

TEST(ParallelForTest, ZeroCountDoesNotInvoke) {
  bool invoked = false;
  ParallelFor(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    invoked = true;
  });
  EXPECT_FALSE(invoked);
}

class ParallelProviderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelProviderTest, MatchesSerialCountsExactly) {
  const std::size_t threads = GetParam();
  MatchingRelation m = testutil::RandomMatching(3, 7, 1000, 99);
  ResolvedRule rule{{0, 1}, {2}};
  ScanMeasureProvider serial(m, rule, /*full_scan=*/true, 1);
  ScanMeasureProvider parallel(m, rule, /*full_scan=*/true, threads);
  ScanMeasureProvider parallel_subset(m, rule, /*full_scan=*/false, threads);
  for (int x0 : {0, 3, 7}) {
    for (int x1 : {1, 5}) {
      serial.SetLhs({x0, x1});
      parallel.SetLhs({x0, x1});
      parallel_subset.SetLhs({x0, x1});
      ASSERT_EQ(serial.lhs_count(), parallel.lhs_count());
      ASSERT_EQ(serial.lhs_count(), parallel_subset.lhs_count());
      for (int y = 0; y <= 7; ++y) {
        const std::uint64_t expected = serial.CountXY({y});
        ASSERT_EQ(parallel.CountXY({y}), expected);
        ASSERT_EQ(parallel_subset.CountXY({y}), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelProviderTest,
                         ::testing::Values(2, 3, 4, 8));

TEST(ParallelProviderTest, DeterminationMatchesSerial) {
  MatchingRelation m = testutil::RandomMatching(2, 6, 600, 77);
  RuleSpec rule{{"a0"}, {"a1"}};
  DetermineOptions serial;
  DetermineOptions parallel;
  parallel.provider_threads = 4;
  auto a = DetermineThresholds(m, rule, serial);
  auto b = DetermineThresholds(m, rule, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->patterns.empty());
  ASSERT_FALSE(b->patterns.empty());
  EXPECT_NEAR(a->patterns[0].utility, b->patterns[0].utility, 1e-12);
  EXPECT_EQ(a->patterns[0].measures.xy_count, b->patterns[0].measures.xy_count);
}

}  // namespace
}  // namespace dd
