#include "core/result_io.h"

#include <gtest/gtest.h>

#include "core/result_filter.h"

namespace dd {
namespace {

DeterminedPattern MakePattern(Levels lhs, Levels rhs, std::uint64_t lhs_count,
                              std::uint64_t xy_count, double utility) {
  DeterminedPattern p;
  p.pattern = Pattern{std::move(lhs), std::move(rhs)};
  p.measures = MeasuresFromCounts(1000, lhs_count, xy_count, p.pattern.rhs, 10);
  p.utility = utility;
  return p;
}

// ----- CollapseEquivalent -----

TEST(ResultFilterTest, SubsumesRequiresIdenticalCounts) {
  auto a = MakePattern({9}, {3}, 400, 300, 0.5);
  auto b = MakePattern({7}, {3}, 400, 300, 0.5);
  auto c = MakePattern({7}, {3}, 401, 300, 0.5);
  EXPECT_TRUE(SubsumesEquivalent(a, b));   // Same counts, larger lhs.
  EXPECT_FALSE(SubsumesEquivalent(b, a));  // Smaller lhs cannot subsume.
  EXPECT_FALSE(SubsumesEquivalent(a, c));  // Counts differ.
}

TEST(ResultFilterTest, PrefersSmallerRhs) {
  auto tight = MakePattern({8}, {2}, 400, 300, 0.5);
  auto loose = MakePattern({8}, {4}, 400, 300, 0.5);
  EXPECT_TRUE(SubsumesEquivalent(tight, loose));
  EXPECT_FALSE(SubsumesEquivalent(loose, tight));
}

TEST(ResultFilterTest, CollapseKeepsCanonicalRepresentative) {
  std::vector<DeterminedPattern> patterns = {
      MakePattern({7}, {3}, 400, 300, 0.5),
      MakePattern({9}, {3}, 400, 300, 0.5),   // Subsumes the others.
      MakePattern({8}, {3}, 400, 300, 0.5),
      MakePattern({5}, {2}, 100, 80, 0.4),    // Different class.
  };
  auto kept = CollapseEquivalent(patterns);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].pattern.lhs, (Levels{9}));
  EXPECT_EQ(kept[1].pattern.lhs, (Levels{5}));
}

TEST(ResultFilterTest, IdenticalDuplicatesKeepFirst) {
  std::vector<DeterminedPattern> patterns = {
      MakePattern({8}, {3}, 400, 300, 0.5),
      MakePattern({8}, {3}, 400, 300, 0.5),
  };
  auto kept = CollapseEquivalent(patterns);
  EXPECT_EQ(kept.size(), 1u);
}

TEST(ResultFilterTest, IncomparablePatternsAllSurvive) {
  // Same counts but neither dominates on both sides.
  std::vector<DeterminedPattern> patterns = {
      MakePattern({9, 2}, {3}, 400, 300, 0.5),
      MakePattern({2, 9}, {3}, 400, 300, 0.5),
  };
  auto kept = CollapseEquivalent(patterns);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(ResultFilterTest, EmptyInput) {
  EXPECT_TRUE(CollapseEquivalent({}).empty());
}

// ----- JSON / CSV serialization -----

TEST(ResultIoTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("ctrl\x01", 5)), "ctrl\\u0001");
}

DetermineResult MakeResult() {
  DetermineResult result;
  result.prior_mean_cq = 0.125;
  result.elapsed_seconds = 1.5;
  result.stats.rhs.lattice_size = 100;
  result.stats.rhs.pruned = 40;
  result.patterns.push_back(MakePattern({8, 2}, {3}, 400, 300, 0.51));
  result.patterns.push_back(MakePattern({5, 1}, {2}, 200, 120, 0.32));
  return result;
}

TEST(ResultIoTest, JsonContainsAllFields) {
  DetermineResult result = MakeResult();
  RuleSpec rule{{"author", "title"}, {"venue"}};
  std::string json = DetermineResultToJson(result, rule);
  EXPECT_NE(json.find("\"rule\":{\"lhs\":[\"author\",\"title\"],"
                      "\"rhs\":[\"venue\"]}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"prior_mean_cq\":0.125000"), std::string::npos);
  EXPECT_NE(json.find("\"pruning_rate\":0.400000"), std::string::npos);
  EXPECT_NE(json.find("\"lhs\":[8,2]"), std::string::npos);
  EXPECT_NE(json.find("\"utility\":0.510000"), std::string::npos);
  // Two pattern objects.
  EXPECT_NE(json.find("\"lhs\":[5,1]"), std::string::npos);
  // Balanced braces at the ends.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ResultIoTest, JsonEscapesAttributeNames) {
  DetermineResult result = MakeResult();
  RuleSpec rule{{"we\"ird"}, {"ok"}};
  std::string json = DetermineResultToJson(result, rule);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(ResultIoTest, CsvHasHeaderAndRows) {
  DetermineResult result = MakeResult();
  std::string csv = DetermineResultToCsv(result);
  EXPECT_NE(csv.find("lhs,rhs,d,confidence,support,quality,utility\n"),
            std::string::npos);
  EXPECT_NE(csv.find("\"<8, 2>\",\"<3>\""), std::string::npos);
  // Header + 2 rows = 3 newline-terminated lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(ResultIoTest, EmptyResultSerializes) {
  DetermineResult result;
  RuleSpec rule{{"a"}, {"b"}};
  std::string json = DetermineResultToJson(result, rule);
  EXPECT_NE(json.find("\"patterns\":[]"), std::string::npos);
  std::string csv = DetermineResultToCsv(result);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

}  // namespace
}  // namespace dd
