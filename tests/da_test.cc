#include "core/da.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dd {
namespace {

using testutil::MakeMatching;
using testutil::RandomMatching;

DaOptions BaseOptions(bool advanced, bool prune,
                      ProcessingOrder order = ProcessingOrder::kMidFirst) {
  DaOptions opts;
  opts.advanced_bound = advanced;
  opts.pa.prune = prune;
  opts.pa.order = order;
  opts.utility.prior_mean_cq = 0.3;
  return opts;
}

TEST(DaTest, FindsExpectedPatternOnStructuredData) {
  // x <= 2 strongly predicts y <= 1; elsewhere y is spread out.
  std::vector<std::vector<Level>> rows;
  for (int i = 0; i < 40; ++i) rows.push_back({1, 1});
  for (int i = 0; i < 10; ++i) rows.push_back({1, 6});
  for (int i = 0; i < 50; ++i)
    rows.push_back({6, static_cast<Level>(i % 7)});
  MatchingRelation m = MakeMatching({"x", "y"}, 6, rows);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  DaStats stats;
  auto best = DetermineBestPatterns(&provider, 1, 1, 6,
                                    BaseOptions(false, false), &stats);
  ASSERT_EQ(best.size(), 1u);
  // The strong dependency at x ∈ [1,2], y = 1 should be found: a high-D
  // LHS with high confidence and good quality.
  EXPECT_GE(best[0].pattern.lhs[0], 1);
  EXPECT_LE(best[0].pattern.rhs[0], 2);
  EXPECT_GT(best[0].utility, 0.4);
  EXPECT_EQ(stats.lhs_total, 7u);
  EXPECT_EQ(stats.lhs_evaluated, 7u);
}

struct EquivalenceCase {
  bool advanced;
  bool prune;
  ProcessingOrder order;
};

class DaEquivalenceTest : public ::testing::TestWithParam<int> {};

// All four algorithm combinations must return the same optimum value —
// the paper's pruning is safe ("without missing answers").
TEST_P(DaEquivalenceTest, AllCombinationsAgreeOnOptimum) {
  MatchingRelation m = RandomMatching(3, 6, 300, GetParam());
  ResolvedRule rule{{0, 1}, {2}};
  ScanMeasureProvider provider(m, rule);

  const EquivalenceCase cases[] = {
      {false, false, ProcessingOrder::kMidFirst},  // DA+PA
      {false, true, ProcessingOrder::kMidFirst},   // DA+PAP mid-first
      {true, true, ProcessingOrder::kTopFirst},    // DAP+PAP top-first
      {true, true, ProcessingOrder::kMidFirst},    // DAP+PAP mid-first
      {true, false, ProcessingOrder::kMidFirst},   // DAP+PA (== DA+PA)
  };
  double reference_utility = -1.0;
  double reference_cq = -1.0;
  for (const auto& c : cases) {
    DaStats stats;
    auto best = DetermineBestPatterns(&provider, 2, 1, 6,
                                      BaseOptions(c.advanced, c.prune, c.order),
                                      &stats);
    ASSERT_EQ(best.size(), 1u);
    const double cq =
        best[0].measures.confidence * best[0].measures.quality;
    if (reference_utility < 0.0) {
      reference_utility = best[0].utility;
      reference_cq = cq;
    } else {
      EXPECT_NEAR(best[0].utility, reference_utility, 1e-9)
          << "advanced=" << c.advanced << " prune=" << c.prune;
    }
  }
  EXPECT_GE(reference_cq, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DaEquivalenceTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

class DaTopLTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DaTopLTest, TopLUtilitiesMatchAcrossAlgorithms) {
  const std::size_t l = GetParam();
  MatchingRelation m = RandomMatching(2, 5, 250, 55);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);

  DaOptions da = BaseOptions(false, false);
  da.top_l = l;
  auto reference = DetermineBestPatterns(&provider, 1, 1, 5, da, nullptr);

  DaOptions dap = BaseOptions(true, true, ProcessingOrder::kTopFirst);
  dap.top_l = l;
  auto pruned = DetermineBestPatterns(&provider, 1, 1, 5, dap, nullptr);

  ASSERT_EQ(reference.size(), pruned.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(reference[i].utility, pruned[i].utility, 1e-9) << "i=" << i;
  }
  // Results sorted by descending utility.
  for (std::size_t i = 1; i < pruned.size(); ++i) {
    EXPECT_GE(pruned[i - 1].utility, pruned[i].utility);
  }
}

INSTANTIATE_TEST_SUITE_P(AnswerSizes, DaTopLTest,
                         ::testing::Values(1, 2, 3, 5, 7));

TEST(DapTest, PrunesMoreThanDaUnderSameOrder) {
  // With the same C_Y processing order, DAP's advanced bound starts at
  // or above DA's zero bound for every LHS, so DAP can only prune more
  // (the paper's "at least no worse" claim). Different orders trade off
  // differently (Table V), so the comparison fixes the order.
  for (ProcessingOrder order :
       {ProcessingOrder::kMidFirst, ProcessingOrder::kTopFirst}) {
    for (std::uint64_t seed : {77ull, 78ull, 79ull}) {
      MatchingRelation m = RandomMatching(2, 8, 500, seed);
      ResolvedRule rule{{0}, {1}};
      ScanMeasureProvider provider(m, rule);
      DaStats da_stats;
      DetermineBestPatterns(&provider, 1, 1, 8, BaseOptions(false, true, order),
                            &da_stats);
      DaStats dap_stats;
      DetermineBestPatterns(&provider, 1, 1, 8, BaseOptions(true, true, order),
                            &dap_stats);
      EXPECT_GE(dap_stats.PruningRate(), da_stats.PruningRate() - 1e-12)
          << "order=" << ProcessingOrderName(order) << " seed=" << seed;
      EXPECT_LE(dap_stats.rhs.evaluated, da_stats.rhs.evaluated)
          << "order=" << ProcessingOrderName(order) << " seed=" << seed;
    }
  }
}

TEST(DaStatsTest, PruningRateDefinition) {
  DaStats stats;
  stats.rhs.lattice_size = 100;
  stats.rhs.pruned = 90;
  stats.rhs.evaluated = 10;
  EXPECT_DOUBLE_EQ(stats.PruningRate(), 0.9);
  DaStats empty;
  EXPECT_DOUBLE_EQ(empty.PruningRate(), 0.0);
}

TEST(DaStatsTest, PruningRateGuardsDegenerateLattices) {
  // Regression (division-by-zero guard): a zero lattice_size — nothing
  // searched yet, or every candidate bounded out before any PA call —
  // must report 0.0, never NaN or inf.
  DaStats empty;
  EXPECT_TRUE(std::isfinite(empty.PruningRate()));
  EXPECT_EQ(empty.PruningRate(), 0.0);

  // A real degenerate run (all-zero confidence everywhere) also stays
  // finite and inside [0, 1].
  std::vector<std::vector<Level>> rows(20, {4, 4});
  MatchingRelation m = MakeMatching({"x", "y"}, 4, rows);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  DaStats stats;
  auto best = DetermineBestPatterns(&provider, 1, 1, 4,
                                    BaseOptions(true, true), &stats);
  EXPECT_TRUE(best.empty());
  EXPECT_TRUE(std::isfinite(stats.PruningRate()));
  EXPECT_GE(stats.PruningRate(), 0.0);
  EXPECT_LE(stats.PruningRate(), 1.0);
}

TEST(DaTest, AllZeroConfidenceYieldsEmptyResult) {
  // Only impossible LHS (no tuple has x <= anything below its level) —
  // craft a matching relation where every x is at dmax and y at dmax so
  // all confidences against y < dmax are 0 and CQ == 0 everywhere.
  std::vector<std::vector<Level>> rows(20, {4, 4});
  MatchingRelation m = MakeMatching({"x", "y"}, 4, rows);
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  auto best = DetermineBestPatterns(&provider, 1, 1, 4,
                                    BaseOptions(false, false), nullptr);
  // y = 4 has Q = 0, any y < 4 has C = 0 for x = 4; smaller x have n = 0.
  EXPECT_TRUE(best.empty());
}

}  // namespace
}  // namespace dd
