// Full-pipeline integration through the file formats: generate → CSV →
// reload → matching relation → persist → reload → determine → JSON/CSV
// export — the exact chain a ddtool user runs across separate
// invocations.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "core/result_io.h"
#include "data/csv.h"
#include "data/generators.h"
#include "matching/builder.h"
#include "matching/serialization.h"

namespace dd {
namespace {

TEST(PipelineTest, CsvAndMatchingPersistenceRoundTrip) {
  // 1. Generate and write the clean instance to CSV.
  RestaurantOptions gopts;
  gopts.num_entities = 40;
  GeneratedData data = GenerateRestaurant(gopts);
  const std::string csv_path = ::testing::TempDir() + "/dd_pipeline.csv";
  ASSERT_TRUE(WriteCsvFile(data.relation, csv_path).ok());

  // 2. Reload the CSV (string-typed schema) and rebuild the matching
  //    relation from the file contents.
  auto reloaded = ReadCsvFile(csv_path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->num_rows(), data.relation.num_rows());
  RuleSpec rule{{"name", "address"}, {"city"}};
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 3000;
  auto matching =
      BuildMatchingRelation(*reloaded, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok());

  // 3. Persist the matching relation and reload it.
  const std::string ddmr_path = ::testing::TempDir() + "/dd_pipeline.ddmr";
  ASSERT_TRUE(WriteMatchingFile(*matching, ddmr_path).ok());
  auto loaded = ReadMatchingFile(ddmr_path);
  ASSERT_TRUE(loaded.ok());

  // 4. Determination on the loaded relation matches the in-memory one.
  DetermineOptions dopts;
  dopts.top_l = 3;
  auto direct = DetermineThresholds(*matching, rule, dopts);
  auto via_file = DetermineThresholds(*loaded, rule, dopts);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_file.ok());
  ASSERT_EQ(direct->patterns.size(), via_file->patterns.size());
  for (std::size_t i = 0; i < direct->patterns.size(); ++i) {
    EXPECT_EQ(direct->patterns[i].pattern, via_file->patterns[i].pattern);
    EXPECT_NEAR(direct->patterns[i].utility, via_file->patterns[i].utility,
                1e-12);
  }

  // 5. Exports are well-formed and mention the determined pattern.
  ASSERT_FALSE(via_file->patterns.empty());
  std::string json = DetermineResultToJson(*via_file, rule);
  EXPECT_NE(json.find("\"rule\":{\"lhs\":[\"name\",\"address\"]"),
            std::string::npos);
  std::string csv = DetermineResultToCsv(*via_file);
  EXPECT_NE(csv.find(LevelsToString(via_file->patterns[0].pattern.rhs)),
            std::string::npos);

  std::remove(csv_path.c_str());
  std::remove(ddmr_path.c_str());
}

TEST(PipelineTest, CsvRoundTripPreservesDeterminationExactly) {
  // Writing a relation to CSV and reading it back must not change any
  // distance level (quoting/escaping is lossless for generator output).
  CoraOptions gopts;
  gopts.num_entities = 25;
  GeneratedData data = GenerateCora(gopts);
  auto back = ParseCsv(ToCsv(data.relation));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), data.relation.num_rows());
  for (std::size_t r = 0; r < back->num_rows(); ++r) {
    ASSERT_EQ(back->row(r), data.relation.row(r)) << "row " << r;
  }
  RuleSpec rule{{"author"}, {"venue"}};
  MatchingOptions mopts;
  mopts.dmax = 8;
  auto m1 = BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  auto m2 = BuildMatchingRelation(*back, rule.AllAttributes(), mopts);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  ASSERT_EQ(m1->num_tuples(), m2->num_tuples());
  for (std::size_t a = 0; a < m1->num_attributes(); ++a) {
    EXPECT_EQ(m1->column(a), m2->column(a));
  }
}

}  // namespace
}  // namespace dd
