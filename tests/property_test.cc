// Property-based sweeps over randomized instances: the monotonicity
// lemma behind the pruning (Lemma 1), the safety of every pruning
// combination, provider agreement, and the utility theorems — each
// checked across many seeds via parameterized suites.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/da.h"
#include "core/determiner.h"
#include "core/expected_utility.h"
#include "core/measure_provider.h"
#include "detect/violation_detector.h"
#include "reason/implication.h"
#include "tests/test_util.h"

namespace dd {
namespace {

using testutil::RandomMatching;

class SeededPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Lemma 1: fixing ϕ[X], if ϕ1[Y] ⪰ ϕ2[Y] then C(ϕ1) >= C(ϕ2) and
// Q(ϕ1) <= Q(ϕ2).
TEST_P(SeededPropertyTest, Lemma1ConfidenceMonotoneQualityAntitone) {
  MatchingRelation m = RandomMatching(3, 6, 250, GetParam());
  ResolvedRule rule{{0}, {1, 2}};
  ScanMeasureProvider provider(m, rule);
  provider.SetLhs({3});
  Rng rng(GetParam() ^ 0xabcd);
  for (int trial = 0; trial < 40; ++trial) {
    Levels small = {static_cast<int>(rng.NextBounded(7)),
                    static_cast<int>(rng.NextBounded(7))};
    Levels big = {small[0] + static_cast<int>(rng.NextBounded(7 - small[0])),
                  small[1] + static_cast<int>(rng.NextBounded(7 - small[1]))};
    ASSERT_TRUE(Dominates(big, small));
    const std::uint64_t c_big = provider.CountXY(big);
    const std::uint64_t c_small = provider.CountXY(small);
    EXPECT_GE(c_big, c_small);
    EXPECT_LE(DependentQuality(big, 6), DependentQuality(small, 6));
  }
}

// D(ϕ[X]) is monotone in the LHS thresholds.
TEST_P(SeededPropertyTest, LhsSupportMonotone) {
  MatchingRelation m = RandomMatching(2, 8, 250, GetParam());
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  std::uint64_t prev = 0;
  for (int x = 0; x <= 8; ++x) {
    provider.SetLhs({x});
    EXPECT_GE(provider.lhs_count(), prev);
    prev = provider.lhs_count();
  }
  EXPECT_EQ(prev, m.num_tuples());  // dmax accepts everything.
}

// All four algorithm combinations find the same optimum on random data.
TEST_P(SeededPropertyTest, PruningIsSafe) {
  MatchingRelation m = RandomMatching(3, 5, 200, GetParam());
  RuleSpec rule{{"a0"}, {"a1", "a2"}};
  double reference = -1.0;
  for (LhsAlgorithm lhs : {LhsAlgorithm::kDa, LhsAlgorithm::kDap}) {
    for (RhsAlgorithm rhs : {RhsAlgorithm::kPa, RhsAlgorithm::kPap}) {
      for (ProcessingOrder order :
           {ProcessingOrder::kMidFirst, ProcessingOrder::kTopFirst}) {
        DetermineOptions opts;
        opts.lhs_algorithm = lhs;
        opts.rhs_algorithm = rhs;
        opts.order = order;
        auto result = DetermineThresholds(m, rule, opts);
        ASSERT_TRUE(result.ok());
        ASSERT_FALSE(result->patterns.empty());
        if (reference < 0.0) {
          reference = result->patterns[0].utility;
        } else {
          EXPECT_NEAR(result->patterns[0].utility, reference, 1e-9);
        }
      }
    }
  }
}

// Scan (both modes) and grid providers agree on every count.
TEST_P(SeededPropertyTest, ProvidersAgree) {
  MatchingRelation m = RandomMatching(3, 5, 300, GetParam());
  ResolvedRule rule{{0, 1}, {2}};
  ScanMeasureProvider scan(m, rule, true);
  ScanMeasureProvider subset(m, rule, false);
  auto grid = GridMeasureProvider::Create(m, rule);
  ASSERT_TRUE(grid.ok());
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 30; ++trial) {
    Levels lhs = {static_cast<int>(rng.NextBounded(6)),
                  static_cast<int>(rng.NextBounded(6))};
    Levels rhs = {static_cast<int>(rng.NextBounded(6))};
    scan.SetLhs(lhs);
    subset.SetLhs(lhs);
    grid.value()->SetLhs(lhs);
    ASSERT_EQ(scan.lhs_count(), subset.lhs_count());
    ASSERT_EQ(scan.lhs_count(), grid.value()->lhs_count());
    const std::uint64_t a = scan.CountXY(rhs);
    ASSERT_EQ(a, subset.CountXY(rhs));
    ASSERT_EQ(a, grid.value()->CountXY(rhs));
  }
}

// Theorem 1 on random measure triples: a pattern whose support,
// confidence and dependent quality all dominate (in the theorem's ρ
// sense) never has a lower expected utility.
TEST_P(SeededPropertyTest, Theorem1OnRandomMeasures) {
  Rng rng(GetParam() ^ 0x77);
  UtilityOptions opts;
  opts.prior_mean_cq = 0.2 + 0.6 * rng.NextDouble();
  const std::uint64_t total = 50000;
  for (int trial = 0; trial < 40; ++trial) {
    const double rho = 1.0 + rng.NextDouble();
    const double c2 = 0.05 + rng.NextDouble() * 0.4;
    const double q2 = rng.NextDouble();
    const double d2 = 0.05 + rng.NextDouble() * 0.9;
    const double s2 = c2 * d2;
    // Theorem 1 preconditions: S1/S2 = ρ, C1 >= ρC2, Q1 >= Q2/ρ.
    const double c1 = std::min(1.0, c2 * rho);
    if (c1 < c2 * rho) continue;  // Capping would break the premise.
    // Any Q1 >= Q2/ρ satisfies the premise; add random slack so the
    // comparison is usually strict rather than the tight boundary.
    const double q1 =
        std::min(1.0, q2 / rho * (1.0 + 0.5 * rng.NextDouble()));
    const double d1 = s2 * rho / c1;  // = S1 / C1.
    if (d1 > 1.0) continue;
    const double u1 = ExpectedUtility(
        total, static_cast<std::uint64_t>(d1 * total), c1, q1, opts);
    const double u2 = ExpectedUtility(
        total, static_cast<std::uint64_t>(d2 * total), c2, q2, opts);
    // Tolerance covers the integer rounding of D·total (the premise is
    // tight at ρ -> equality, where rounding can flip the order).
    EXPECT_GE(u1, u2 - 2e-3)
        << "rho=" << rho << " c2=" << c2 << " q2=" << q2 << " d2=" << d2;
  }
}

// Support/confidence/quality identities on random patterns.
TEST_P(SeededPropertyTest, MeasureIdentities) {
  MatchingRelation m = RandomMatching(2, 7, 300, GetParam());
  ResolvedRule rule{{0}, {1}};
  ScanMeasureProvider provider(m, rule);
  Rng rng(GetParam() ^ 0x55);
  for (int trial = 0; trial < 25; ++trial) {
    Pattern p{{static_cast<int>(rng.NextBounded(8))},
              {static_cast<int>(rng.NextBounded(8))}};
    Measures mm = ComputeMeasures(&provider, p, 7);
    EXPECT_NEAR(mm.support, mm.confidence * mm.d, 1e-12);
    EXPECT_GE(mm.lhs_count, mm.xy_count);
    EXPECT_GE(mm.confidence, 0.0);
    EXPECT_LE(mm.confidence, 1.0);
    EXPECT_GE(mm.quality, 0.0);
    EXPECT_LE(mm.quality, 1.0);
    // The all-dmax RHS always has confidence 1 (any pair satisfies it).
    if (p.rhs[0] == 7 && mm.lhs_count > 0) {
      EXPECT_DOUBLE_EQ(mm.confidence, 1.0);
    }
  }
}

// Detection consistency: everything detected satisfies ϕ[X] and
// violates ϕ[Y] under the bucketed distances.
TEST_P(SeededPropertyTest, DetectionOnlyFlagsActualViolations) {
  MatchingRelation m = RandomMatching(2, 7, 300, GetParam());
  ResolvedRule rule{{0}, {1}};
  Rng rng(GetParam() ^ 0x99);
  Pattern p{{static_cast<int>(rng.NextBounded(8))},
            {static_cast<int>(rng.NextBounded(8))}};
  PairList found = DetectViolationsIn(m, rule, p);
  // Cross-check every matching tuple.
  std::size_t expected = 0;
  for (std::size_t row = 0; row < m.num_tuples(); ++row) {
    const bool lhs_sat = static_cast<int>(m.level(row, 0)) <= p.lhs[0];
    const bool rhs_sat = static_cast<int>(m.level(row, 1)) <= p.rhs[0];
    if (lhs_sat && !rhs_sat) ++expected;
  }
  EXPECT_EQ(found.size(), expected);
}

// Implication is a preorder (reflexive + transitive) on random
// statements over a small attribute universe.
TEST_P(SeededPropertyTest, ImplicationIsAPreorder) {
  constexpr int kDmax = 6;
  Rng rng(GetParam() ^ 0xbeef);
  const std::vector<std::string> universe = {"A", "B", "C", "D"};
  auto random_statement = [&]() {
    DdStatement s;
    // Random non-empty disjoint sides.
    for (const auto& attr : universe) {
      switch (rng.NextBounded(3)) {
        case 0:
          s.rule.lhs.push_back(attr);
          s.pattern.lhs.push_back(static_cast<int>(rng.NextBounded(kDmax + 1)));
          break;
        case 1:
          s.rule.rhs.push_back(attr);
          s.pattern.rhs.push_back(static_cast<int>(rng.NextBounded(kDmax + 1)));
          break;
        default:
          break;  // Attribute absent.
      }
    }
    if (s.rule.lhs.empty()) {
      s.rule.lhs.push_back("E");
      s.pattern.lhs.push_back(static_cast<int>(rng.NextBounded(kDmax + 1)));
    }
    if (s.rule.rhs.empty()) {
      s.rule.rhs.push_back("F");
      s.pattern.rhs.push_back(static_cast<int>(rng.NextBounded(kDmax + 1)));
    }
    return s;
  };
  std::vector<DdStatement> statements;
  for (int i = 0; i < 12; ++i) statements.push_back(random_statement());
  for (const auto& a : statements) {
    EXPECT_TRUE(Implies(a, a, kDmax)) << a.ToString();
    for (const auto& b : statements) {
      for (const auto& c : statements) {
        if (Implies(a, b, kDmax) && Implies(b, c, kDmax)) {
          EXPECT_TRUE(Implies(a, c, kDmax))
              << a.ToString() << " => " << b.ToString() << " => "
              << c.ToString();
        }
      }
    }
  }
}

// MinimalCover output is irredundant: no survivor implies another.
TEST_P(SeededPropertyTest, MinimalCoverIsIrredundant) {
  constexpr int kDmax = 6;
  Rng rng(GetParam() ^ 0xfeed);
  std::vector<DdStatement> statements;
  for (int i = 0; i < 10; ++i) {
    DdStatement s;
    s.rule.lhs = {"A"};
    s.rule.rhs = {"B"};
    s.pattern.lhs = {static_cast<int>(rng.NextBounded(kDmax + 1))};
    s.pattern.rhs = {static_cast<int>(rng.NextBounded(kDmax + 1))};
    statements.push_back(std::move(s));
  }
  auto cover = MinimalCover(statements, kDmax);
  for (std::size_t i = 0; i < cover.size(); ++i) {
    EXPECT_FALSE(IsTrivial(cover[i], kDmax));
    for (std::size_t j = 0; j < cover.size(); ++j) {
      if (i == j) continue;
      // Survivors may be mutually equivalent only if distinct objects
      // would have been deduplicated; with the earliest-wins rule no
      // two survivors can imply each other or one another one-way.
      EXPECT_FALSE(Implies(cover[j], cover[i], kDmax))
          << cover[j].ToString() << " still implies " << cover[i].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, SeededPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dd
