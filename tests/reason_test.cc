#include "reason/implication.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "reason/statement.h"

namespace dd {
namespace {

constexpr int kDmax = 10;

DdStatement Make(std::vector<std::string> lhs, Levels lhs_levels,
                 std::vector<std::string> rhs, Levels rhs_levels) {
  return DdStatement{RuleSpec{std::move(lhs), std::move(rhs)},
                     Pattern{std::move(lhs_levels), std::move(rhs_levels)}};
}

TEST(StatementTest, ToStringPaperNotation) {
  DdStatement dd1 = Make({"Address"}, {8}, {"Region"}, {3});
  EXPECT_EQ(dd1.ToString(), "([Address] -> [Region], <8, 3>)");
}

TEST(StatementTest, ValidateCatchesErrors) {
  EXPECT_TRUE(ValidateStatement(Make({"A"}, {3}, {"B"}, {2}), kDmax).ok());
  // Arity mismatch.
  EXPECT_FALSE(ValidateStatement(Make({"A"}, {3, 4}, {"B"}, {2}), kDmax).ok());
  // Shared attribute.
  EXPECT_FALSE(ValidateStatement(Make({"A"}, {3}, {"A"}, {2}), kDmax).ok());
  // Threshold out of range.
  EXPECT_FALSE(ValidateStatement(Make({"A"}, {11}, {"B"}, {2}), kDmax).ok());
  EXPECT_FALSE(ValidateStatement(Make({"A"}, {-1}, {"B"}, {2}), kDmax).ok());
  // Empty side.
  EXPECT_FALSE(ValidateStatement(Make({}, {}, {"B"}, {2}), kDmax).ok());
}

TEST(ImplicationTest, TrivialStatements) {
  EXPECT_TRUE(IsTrivial(Make({"A"}, {3}, {"B"}, {10}), kDmax));
  EXPECT_TRUE(IsTrivial(Make({"A"}, {0}, {"B", "C"}, {10, 10}), kDmax));
  EXPECT_FALSE(IsTrivial(Make({"A"}, {3}, {"B"}, {9}), kDmax));
  // Anything implies a trivial statement.
  EXPECT_TRUE(Implies(Make({"X"}, {1}, {"Y"}, {1}),
                      Make({"A"}, {3}, {"B"}, {10}), kDmax));
}

TEST(ImplicationTest, SameRuleDominance) {
  DdStatement a = Make({"A"}, {8}, {"B"}, {3});
  // Tighter premise, looser conclusion: implied.
  EXPECT_TRUE(Implies(a, Make({"A"}, {5}, {"B"}, {4}), kDmax));
  EXPECT_TRUE(Implies(a, Make({"A"}, {8}, {"B"}, {3}), kDmax));  // Reflexive.
  // Looser premise: not implied.
  EXPECT_FALSE(Implies(a, Make({"A"}, {9}, {"B"}, {3}), kDmax));
  // Tighter conclusion: not implied.
  EXPECT_FALSE(Implies(a, Make({"A"}, {8}, {"B"}, {2}), kDmax));
}

TEST(ImplicationTest, CrossRuleAttributeSets) {
  // a: [A] -> [B, C]. Implies [A, D] -> [B] (extra premise attribute,
  // subset conclusion).
  DdStatement a = Make({"A"}, {4}, {"B", "C"}, {2, 5});
  EXPECT_TRUE(Implies(a, Make({"A", "D"}, {3, 7}, {"B"}, {2}), kDmax));
  EXPECT_TRUE(Implies(a, Make({"A", "D"}, {4, 0}, {"C"}, {6}), kDmax));
  // b's premise does not bound A tightly enough.
  EXPECT_FALSE(Implies(a, Make({"D"}, {1}, {"B"}, {2}), kDmax));
  // b concludes on an attribute a says nothing about.
  EXPECT_FALSE(Implies(a, Make({"A"}, {3}, {"E"}, {2}), kDmax));
}

TEST(ImplicationTest, UnlimitedPremiseAttributeNeedsNoMatch) {
  // a's premise on D is already unlimited (dmax), so b need not bound D.
  DdStatement a = Make({"A", "D"}, {4, 10}, {"B"}, {2});
  EXPECT_TRUE(Implies(a, Make({"A"}, {3}, {"B"}, {2}), kDmax));
  // But a finite premise on D must be matched.
  DdStatement a2 = Make({"A", "D"}, {4, 6}, {"B"}, {2});
  EXPECT_FALSE(Implies(a2, Make({"A"}, {3}, {"B"}, {2}), kDmax));
  EXPECT_TRUE(Implies(a2, Make({"A", "D"}, {3, 5}, {"B"}, {2}), kDmax));
}

TEST(ImplicationTest, NotSymmetric) {
  DdStatement strong = Make({"A"}, {8}, {"B"}, {2});
  DdStatement weak = Make({"A"}, {4}, {"B"}, {5});
  EXPECT_TRUE(Implies(strong, weak, kDmax));
  EXPECT_FALSE(Implies(weak, strong, kDmax));
}

TEST(MinimalCoverTest, RemovesImpliedAndTrivial) {
  std::vector<DdStatement> statements = {
      Make({"A"}, {8}, {"B"}, {2}),   // strongest
      Make({"A"}, {4}, {"B"}, {5}),   // implied by the first
      Make({"A"}, {2}, {"B"}, {10}),  // trivial
      Make({"C"}, {3}, {"B"}, {1}),   // independent
  };
  auto cover = MinimalCover(statements, kDmax);
  ASSERT_EQ(cover.size(), 2u);
  EXPECT_EQ(cover[0], statements[0]);
  EXPECT_EQ(cover[1], statements[3]);
}

TEST(MinimalCoverTest, KeepsOneOfEquivalentPair) {
  std::vector<DdStatement> statements = {
      Make({"A"}, {5}, {"B"}, {3}),
      Make({"A"}, {5}, {"B"}, {3}),
  };
  auto cover = MinimalCover(statements, kDmax);
  ASSERT_EQ(cover.size(), 1u);
}

TEST(MinimalCoverTest, EmptyAndSingleton) {
  EXPECT_TRUE(MinimalCover({}, kDmax).empty());
  auto one = MinimalCover({Make({"A"}, {5}, {"B"}, {3})}, kDmax);
  EXPECT_EQ(one.size(), 1u);
}

TEST(SatisfiesTest, HotelInstance) {
  GeneratedData hotel = HotelExample();
  MatchingOptions mopts;
  mopts.dmax = 30;
  // dd1-like with Region threshold 4 holds except the true violations;
  // the all-dmax conclusion always holds.
  DdStatement trivial = Make({"Address"}, {8}, {"Region"}, {30});
  auto sat = Satisfies(hotel.relation, trivial, mopts);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);

  DdStatement dd1 = Make({"Address"}, {8}, {"Region"}, {4});
  auto violations = CountViolations(hotel.relation, dd1, mopts);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(*violations, 2u);  // (t4,t6) and (t5,t6)
  auto sat2 = Satisfies(hotel.relation, dd1, mopts);
  ASSERT_TRUE(sat2.ok());
  EXPECT_FALSE(*sat2);
}

TEST(SatisfiesTest, ImplicationIsSoundOnData) {
  // If a holds on the instance and a => b, then b holds too.
  GeneratedData hotel = HotelExample();
  MatchingOptions mopts;
  mopts.dmax = 30;
  DdStatement a = Make({"Address"}, {2}, {"Region"}, {5});
  DdStatement b = Make({"Address"}, {1}, {"Region"}, {8});
  ASSERT_TRUE(Implies(a, b, /*dmax=*/30));
  auto sat_a = Satisfies(hotel.relation, a, mopts);
  ASSERT_TRUE(sat_a.ok());
  if (*sat_a) {
    auto sat_b = Satisfies(hotel.relation, b, mopts);
    ASSERT_TRUE(sat_b.ok());
    EXPECT_TRUE(*sat_b);
  }
}

TEST(SatisfiesTest, RejectsInvalidStatement) {
  GeneratedData hotel = HotelExample();
  MatchingOptions mopts;
  EXPECT_FALSE(
      CountViolations(hotel.relation, Make({"Address"}, {99}, {"Region"}, {3}),
                      mopts)
          .ok());
}

}  // namespace
}  // namespace dd
