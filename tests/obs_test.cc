// Tests for the observability layer (src/obs): metrics registry under
// concurrent ParallelFor workers, nested span accounting, histogram
// bucket semantics, log-level filtering, and the JSON exporters.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace dd {
namespace {

using obs::LogLevel;
using obs::MetricsRegistry;
using obs::TraceSnapshot;
using obs::TraceSpan;
using obs::Tracer;

// --------------------------------------------------------------------
// Metrics

TEST(MetricsTest, CounterHandleIsStableAndAccumulates) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter& c = registry.GetCounter("test.counter_stable");
  c.Reset();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&registry.GetCounter("test.counter_stable"), &c);
}

TEST(MetricsTest, ConcurrentCounterIncrementsFromParallelWorkers) {
  obs::Counter& c =
      MetricsRegistry::Global().GetCounter("test.counter_concurrent");
  c.Reset();
  const std::size_t kItems = 100000;
  ParallelFor(kItems, 8,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) c.Increment();
              });
  EXPECT_EQ(c.value(), kItems);
}

TEST(MetricsTest, GaugeSetAndReset) {
  obs::Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // <= 1       -> bucket 0
  hist.Observe(1.0);    // <= 1       -> bucket 0 (boundary is inclusive)
  hist.Observe(1.001);  // <= 10      -> bucket 1
  hist.Observe(100.0);  // <= 100     -> bucket 2
  hist.Observe(100.5);  // overflow   -> bucket 3
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.001 + 100.0 + 100.5);
}

TEST(MetricsTest, ConcurrentHistogramObservations) {
  obs::Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "test.histogram_concurrent", {10.0, 100.0});
  hist.Reset();
  const std::size_t kItems = 50000;
  ParallelFor(kItems, 4,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  hist.Observe(static_cast<double>(i % 200));
                }
              });
  EXPECT_EQ(hist.count(), kItems);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < hist.bounds().size() + 1; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kItems);
}

TEST(MetricsTest, SnapshotIsSortedAndCarriesOverflowBucket) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snap_b").Reset();
  registry.GetCounter("test.snap_a").Add(7);
  registry.GetHistogram("test.snap_hist", {1.0}).Observe(5.0);
  obs::MetricsSnapshot snap = registry.Snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "test.snap_hist") continue;
    found = true;
    ASSERT_EQ(h.buckets.size(), h.bounds.size() + 1);
    EXPECT_GE(h.buckets.back(), 1u);  // 5.0 overflowed the sole bound.
  }
  EXPECT_TRUE(found);
}

// --------------------------------------------------------------------
// Tracing

TEST(TraceTest, NestedSpanTimingIsMonotonic) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  {
    TraceSpan outer("outer_phase");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner("inner_phase");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  TraceSnapshot snap = tracer.Snapshot();
  const obs::SpanStats* outer = snap.Find("outer_phase");
  const obs::SpanStats* inner = snap.Find("inner_phase");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].name, "inner_phase");
  // Child time is contained in the parent's total; self = total - child.
  EXPECT_GT(inner->total_seconds, 0.0);
  EXPECT_LE(inner->total_seconds, outer->total_seconds);
  EXPECT_GE(outer->self_seconds, 0.0);
  EXPECT_NEAR(outer->self_seconds,
              outer->total_seconds - inner->total_seconds, 1e-9);
  EXPECT_NEAR(snap.TotalSeconds(), outer->total_seconds, 1e-9);
}

TEST(TraceTest, RepeatedSpansAggregateIntoOneNode) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("repeated_phase");
  }
  TraceSnapshot snap = tracer.Snapshot();
  ASSERT_EQ(snap.roots.size(), 1u);
  EXPECT_EQ(snap.roots[0].name, "repeated_phase");
  EXPECT_EQ(snap.roots[0].count, 10u);
}

TEST(TraceTest, WorkerThreadSpansBecomeRoots) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  const std::size_t kItems = 64;
  ParallelFor(kItems, 4,
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  TraceSpan span("worker_span");
                }
              });
  TraceSnapshot snap = tracer.Snapshot();
  const obs::SpanStats* worker = snap.Find("worker_span");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, kItems);
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  tracer.set_enabled(false);
  {
    TraceSpan span("invisible");
  }
  tracer.set_enabled(true);
  EXPECT_EQ(tracer.Snapshot().Find("invisible"), nullptr);
}

TEST(TraceTest, ResetClearsRecordedSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  {
    TraceSpan span("to_be_cleared");
  }
  ASSERT_NE(tracer.Snapshot().Find("to_be_cleared"), nullptr);
  tracer.Reset();
  EXPECT_EQ(tracer.Snapshot().Find("to_be_cleared"), nullptr);
  // New spans after a reset land in the fresh tree.
  {
    TraceSpan span("after_reset");
  }
  EXPECT_NE(tracer.Snapshot().Find("after_reset"), nullptr);
}

// --------------------------------------------------------------------
// Logging

std::vector<std::string>* g_captured_logs = nullptr;

void CaptureSink(LogLevel level, const char* /*file*/, int /*line*/,
                 const std::string& message) {
  if (g_captured_logs != nullptr) {
    g_captured_logs->push_back(std::string(obs::LogLevelName(level)) + "] " +
                               message);
  }
}

class LogCapture {
 public:
  LogCapture() {
    g_captured_logs = &lines_;
    obs::SetLogSink(&CaptureSink);
  }
  ~LogCapture() {
    obs::SetLogSink(nullptr);
    g_captured_logs = nullptr;
    obs::ReloadLogLevelFromEnv();
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogTest, ThresholdFiltersBySeverity) {
  LogCapture capture;
  obs::SetLogLevel(LogLevel::kWarn);
  DD_LOG(INFO) << "info suppressed";
  DD_LOG(WARN) << "warn passes " << 1;
  DD_LOG(ERROR) << "error passes " << 2;
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0], "W] warn passes 1");
  EXPECT_EQ(capture.lines()[1], "E] error passes 2");
}

TEST(LogTest, SuppressedStatementsDoNotEvaluateOperands) {
  LogCapture capture;
  obs::SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count_call = [&evaluations]() {
    ++evaluations;
    return 0;
  };
  DD_LOG(INFO) << "never " << count_call();
  DD_LOG(WARN) << "never " << count_call();
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LogTest, EnvironmentVariableControlsThreshold) {
  LogCapture capture;
  ASSERT_EQ(setenv("DD_LOG_LEVEL", "info", /*overwrite=*/1), 0);
  obs::ReloadLogLevelFromEnv();
  EXPECT_EQ(obs::GetLogLevel(), LogLevel::kInfo);
  DD_LOG(INFO) << "visible at info";
  ASSERT_EQ(capture.lines().size(), 1u);

  ASSERT_EQ(setenv("DD_LOG_LEVEL", "off", /*overwrite=*/1), 0);
  obs::ReloadLogLevelFromEnv();
  DD_LOG(ERROR) << "swallowed at off";
  EXPECT_EQ(capture.lines().size(), 1u);

  // Unset restores the default (warn).
  ASSERT_EQ(unsetenv("DD_LOG_LEVEL"), 0);
  obs::ReloadLogLevelFromEnv();
  EXPECT_EQ(obs::GetLogLevel(), LogLevel::kWarn);
}

TEST(LogTest, ParseLogLevelAcceptsNamesAndIntegers) {
  LogLevel level;
  EXPECT_TRUE(obs::ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kVerbose);
  EXPECT_TRUE(obs::ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(obs::ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(obs::ParseLogLevel("chatty", &level));
}

TEST(LogTest, VlogCompilesOutWithoutEvaluatingOperands) {
#ifndef DD_ENABLE_VLOG
  LogCapture capture;
  obs::SetLogLevel(LogLevel::kVerbose);
  int evaluations = 0;
  auto count_call = [&evaluations]() {
    ++evaluations;
    return 0;
  };
  DD_VLOG(1) << "compiled out " << count_call();
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.lines().empty());
#endif
}

// --------------------------------------------------------------------
// Reports

obs::RunReport MakeSampleReport() {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  {
    TraceSpan outer("report_outer");
    TraceSpan inner("report_inner");
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("report.counter").Add(3);
  registry.GetGauge("report.gauge").Set(0.25);
  registry.GetHistogram("report.hist \"quoted\"", {1.0, 2.0}).Observe(1.5);
  return obs::CaptureRunReport("obs_test run");
}

TEST(ReportTest, RunReportJsonIsWellFormedAndComplete) {
  obs::RunReport report = MakeSampleReport();
  const std::string json = obs::RunReportToJson(report);
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test run\""), std::string::npos);
  EXPECT_NE(json.find("report_outer"), std::string::npos);
  EXPECT_NE(json.find("report_inner"), std::string::npos);
  EXPECT_NE(json.find("report.counter"), std::string::npos);
  EXPECT_NE(json.find("report.gauge"), std::string::npos);
  // The quote in the histogram name must arrive escaped.
  EXPECT_NE(json.find("report.hist \\\"quoted\\\""), std::string::npos);
}

TEST(ReportTest, RunReportTextMentionsSpansAndMetrics) {
  obs::RunReport report = MakeSampleReport();
  const std::string text = obs::RunReportToText(report);
  EXPECT_NE(text.find("report_outer"), std::string::npos);
  EXPECT_NE(text.find("report_inner"), std::string::npos);
  EXPECT_NE(text.find("report.counter"), std::string::npos);
}

TEST(ReportTest, WriteRunReportJsonRoundTripsThroughDisk) {
  obs::RunReport report = MakeSampleReport();
  const std::string path = ::testing::TempDir() + "obs_test_report.json";
  ASSERT_TRUE(obs::WriteRunReportJson(report, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(testutil::JsonChecker(contents).Valid()) << contents;
  EXPECT_NE(contents.find("report_outer"), std::string::npos);
}

TEST(ReportTest, WriteRunReportJsonFailsOnBadPath) {
  obs::RunReport report;
  report.name = "doomed";
  EXPECT_FALSE(
      obs::WriteRunReportJson(report, "/nonexistent_dir/sub/out.json").ok());
}

}  // namespace
}  // namespace dd
