// End-to-end pipeline tests: generate a truth instance, build the
// matching relation, determine thresholds parameter-free, corrupt a
// dirty copy, detect violations, and compare against the FD baseline —
// the full loop behind the paper's Tables III and IV.

#include <gtest/gtest.h>

#include "core/determiner.h"
#include "data/corruptor.h"
#include "data/generators.h"
#include "detect/detection_eval.h"
#include "detect/violation_detector.h"
#include "matching/builder.h"

namespace dd {
namespace {

struct PipelineResult {
  DeterminedPattern best;
  DetectionQuality dd_quality;
  DetectionQuality fd_quality;
  double fd_utility = 0.0;
};

PipelineResult RunPipeline(const GeneratedData& data, const RuleSpec& rule,
                           int dmax, const MatchingOptions& base_opts = {}) {
  MatchingOptions mopts = base_opts;
  mopts.dmax = dmax;
  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  EXPECT_TRUE(matching.ok());

  DetermineOptions dopts;
  dopts.top_l = 1;
  auto determined = DetermineThresholds(*matching, rule, dopts);
  EXPECT_TRUE(determined.ok());
  EXPECT_FALSE(determined->patterns.empty());

  CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = InjectViolations(data, rule.rhs, copts);
  EXPECT_TRUE(corrupted.ok());

  PipelineResult out;
  out.best = determined->patterns.front();

  auto dd_found =
      DetectViolations(corrupted->dirty, rule, out.best.pattern, mopts);
  EXPECT_TRUE(dd_found.ok());
  out.dd_quality = EvaluateDetection(*dd_found, corrupted->truth_pairs);

  Pattern fd = Pattern::Fd(rule.lhs.size(), rule.rhs.size());
  auto fd_found = DetectViolations(corrupted->dirty, rule, fd, mopts);
  EXPECT_TRUE(fd_found.ok());
  out.fd_quality = EvaluateDetection(*fd_found, corrupted->truth_pairs);

  // Utility of the FD pattern for comparison.
  auto resolved = ResolveRule(*matching, rule);
  EXPECT_TRUE(resolved.ok());
  ScanMeasureProvider provider(*matching, *resolved);
  Measures fd_measures = ComputeMeasures(&provider, fd, dmax);
  UtilityOptions uopts;
  uopts.prior_mean_cq = determined->prior_mean_cq;
  out.fd_utility = ExpectedUtility(fd_measures.total, fd_measures.lhs_count,
                                   fd_measures.confidence,
                                   fd_measures.quality, uopts);
  return out;
}

TEST(IntegrationTest, CoraRule1DeterminedPatternBeatsFd) {
  CoraOptions gopts;
  gopts.num_entities = 120;
  GeneratedData data = GenerateCora(gopts);
  RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  // Short year strings need the paper's q-gram edit distance to be
  // discriminative (plain edit distance puts all years within 4).
  MatchingOptions mopts;
  mopts.metric_overrides["year"] = "qgram2";
  PipelineResult r = RunPipeline(data, rule, 10, mopts);

  // The determined DD must be useful in detection and better than FD —
  // the paper's central effectiveness claim (Table III).
  EXPECT_GT(r.dd_quality.f_measure, 0.3);
  EXPECT_GT(r.dd_quality.f_measure, r.fd_quality.f_measure);
  // FD has low support on format-variant data, hence low utility.
  EXPECT_GT(r.best.utility, r.fd_utility);
  // The determined thresholds are non-trivial (neither FD nor all-dmax).
  EXPECT_GT(LevelSum(r.best.pattern.lhs) + LevelSum(r.best.pattern.rhs), 0);
  EXPECT_GT(r.best.measures.quality, 0.0);
}

TEST(IntegrationTest, RestaurantRule3IndependenceShowsInThresholds) {
  RestaurantOptions gopts;
  gopts.num_entities = 120;
  GeneratedData data = GenerateRestaurant(gopts);
  RuleSpec rule{{"name", "address"}, {"city", "type"}};

  MatchingOptions mopts;
  mopts.dmax = 10;
  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok());
  DetermineOptions dopts;
  auto determined = DetermineThresholds(*matching, rule, dopts);
  ASSERT_TRUE(determined.ok());
  ASSERT_FALSE(determined->patterns.empty());
  const Pattern& best = determined->patterns.front().pattern;

  // type is independent of everything: its threshold must drift to (or
  // near) dmax, reproducing the Table IV independence finding.
  EXPECT_GE(best.rhs[1], 9) << "type threshold should be ~dmax";
  // city is genuinely dependent: its threshold stays away from dmax.
  EXPECT_LT(best.rhs[0], 9) << "city threshold should be informative";
}

TEST(IntegrationTest, CiteseerRule4Works) {
  CiteseerOptions gopts;
  gopts.num_entities = 80;
  GeneratedData data = GenerateCiteseer(gopts);
  RuleSpec rule{{"address", "affiliation", "description"}, {"subject"}};
  PipelineResult r = RunPipeline(data, rule, 8);
  EXPECT_GT(r.dd_quality.f_measure, 0.2);
  EXPECT_GE(r.dd_quality.f_measure, r.fd_quality.f_measure);
}

TEST(IntegrationTest, SampledMatchingStillFindsGoodPattern) {
  // The determination is robust to pair sampling (the paper preps M by
  // capping at 1M matching tuples).
  CoraOptions gopts;
  gopts.num_entities = 100;
  GeneratedData data = GenerateCora(gopts);
  RuleSpec rule{{"author", "title"}, {"venue", "year"}};
  MatchingOptions mopts;
  mopts.dmax = 10;
  mopts.max_pairs = 20000;
  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->num_tuples(), 20000u);
  DetermineOptions dopts;
  auto determined = DetermineThresholds(*matching, rule, dopts);
  ASSERT_TRUE(determined.ok());
  ASSERT_FALSE(determined->patterns.empty());
  EXPECT_GT(determined->patterns.front().measures.support, 0.0);
}

TEST(IntegrationTest, HigherUtilityPatternsDetectBetterOnAverage) {
  // The paper's key validation: f-measure broadly tracks Ū. Compare the
  // top pattern against a deliberately poor one (all-dmax RHS).
  RestaurantOptions gopts;
  gopts.num_entities = 100;
  GeneratedData data = GenerateRestaurant(gopts);
  RuleSpec rule{{"name", "address"}, {"city", "type"}};
  MatchingOptions mopts;
  mopts.dmax = 10;

  auto matching =
      BuildMatchingRelation(data.relation, rule.AllAttributes(), mopts);
  ASSERT_TRUE(matching.ok());
  DetermineOptions dopts;
  auto determined = DetermineThresholds(*matching, rule, dopts);
  ASSERT_TRUE(determined.ok());
  ASSERT_FALSE(determined->patterns.empty());

  CorruptorOptions copts;
  copts.corrupt_fraction = 0.08;
  auto corrupted = InjectViolations(data, {"city"}, copts);
  ASSERT_TRUE(corrupted.ok());

  auto best_found = DetectViolations(corrupted->dirty, rule,
                                     determined->patterns.front().pattern,
                                     mopts);
  ASSERT_TRUE(best_found.ok());
  DetectionQuality best_q =
      EvaluateDetection(*best_found, corrupted->truth_pairs);

  Pattern useless{determined->patterns.front().pattern.lhs, {10, 10}};
  auto useless_found =
      DetectViolations(corrupted->dirty, rule, useless, mopts);
  ASSERT_TRUE(useless_found.ok());
  DetectionQuality useless_q =
      EvaluateDetection(*useless_found, corrupted->truth_pairs);

  EXPECT_GT(best_q.f_measure, useless_q.f_measure);
  EXPECT_DOUBLE_EQ(useless_q.recall, 0.0);  // all-dmax detects nothing
}

}  // namespace
}  // namespace dd
