#include "core/candidate_lattice.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace dd {
namespace {

TEST(CandidateLatticeTest, SizeAndEncoding) {
  CandidateLattice lat(2, 9);
  EXPECT_EQ(lat.size(), 100u);
  EXPECT_EQ(lat.alive_count(), 100u);
  for (std::size_t idx = 0; idx < lat.size(); ++idx) {
    EXPECT_EQ(lat.IndexOf(lat.LevelsOf(idx)), idx);
  }
  EXPECT_EQ(lat.LevelsOf(0), (Levels{0, 0}));
  EXPECT_EQ(lat.LevelsOf(99), (Levels{9, 9}));
}

TEST(CandidateLatticeTest, KillIsIdempotent) {
  CandidateLattice lat(1, 4);
  EXPECT_TRUE(lat.Kill(2));
  EXPECT_FALSE(lat.Kill(2));
  EXPECT_EQ(lat.alive_count(), 4u);
  EXPECT_FALSE(lat.IsAlive(2));
  EXPECT_TRUE(lat.IsAlive(3));
}

TEST(CandidateLatticeTest, PruneKillsDominatedLowQualityOnly) {
  // dims=2, dmax=9. prune(<5,5>, 0.5): kills cells <= (5,5) with
  // Q <= 0.5, i.e. level sum >= 9.
  CandidateLattice lat(2, 9);
  std::size_t killed = lat.Prune({5, 5}, 0.5);
  // Cells in [0,5]^2 with sum >= 9: (4,5),(5,4),(5,5) -> 3 cells.
  EXPECT_EQ(killed, 3u);
  EXPECT_FALSE(lat.IsAlive(lat.IndexOf({5, 5})));
  EXPECT_FALSE(lat.IsAlive(lat.IndexOf({4, 5})));
  EXPECT_FALSE(lat.IsAlive(lat.IndexOf({5, 4})));
  EXPECT_TRUE(lat.IsAlive(lat.IndexOf({3, 5})));   // sum 8, Q > 0.5
  EXPECT_TRUE(lat.IsAlive(lat.IndexOf({9, 9})));   // not dominated
  EXPECT_TRUE(lat.IsAlive(lat.IndexOf({6, 3})));   // outside the box
}

TEST(CandidateLatticeTest, PruneWithFullDominatorIsGlobalQualityCut) {
  // prune(ϕ0 = all-dmax, q) implements S0 of Proposition 1.
  CandidateLattice lat(2, 4);
  std::size_t killed = lat.Prune({4, 4}, 0.25);
  // Q <= 0.25 <=> sum >= 6: cells (2,4),(3,3),(3,4),(4,2),(4,3),(4,4),(2..)
  // sum>=6 over [0,4]^2: count pairs with a+b >= 6 -> (2,4),(3,3),(3,4),
  // (4,2),(4,3),(4,4) = 6.
  EXPECT_EQ(killed, 6u);
  EXPECT_EQ(lat.alive_count(), 25u - 6u);
}

TEST(CandidateLatticeTest, PruneQualityAboveOneKillsWholeBox) {
  CandidateLattice lat(2, 3);
  std::size_t killed = lat.Prune({1, 1}, 1.0);
  EXPECT_EQ(killed, 4u);  // The whole [0,1]^2 box.
}

TEST(CandidateLatticeTest, PruneCountsOnlyAliveCells) {
  CandidateLattice lat(1, 5);
  lat.Kill(lat.IndexOf({5}));
  std::size_t killed = lat.Prune({5}, 0.0);  // Only level 5 has Q = 0.
  EXPECT_EQ(killed, 0u);
}

TEST(CandidateLatticeTest, BoundaryQualityIsPruned) {
  // Proposition 1 prunes Q(ϕk) <= Vmax inclusively.
  CandidateLattice lat(1, 10);
  lat.Prune({10}, 0.5);  // Q(5) = 0.5 exactly must die.
  EXPECT_FALSE(lat.IsAlive(lat.IndexOf({5})));
  EXPECT_TRUE(lat.IsAlive(lat.IndexOf({4})));  // Q = 0.6
}

class OrderTest : public ::testing::TestWithParam<ProcessingOrder> {};

TEST_P(OrderTest, IsAPermutation) {
  auto order = CandidateLattice::MakeOrder(2, 9, GetParam());
  EXPECT_EQ(order.size(), 100u);
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, OrderTest,
                         ::testing::Values(ProcessingOrder::kMidFirst,
                                           ProcessingOrder::kTopFirst,
                                           ProcessingOrder::kBottomFirst,
                                           ProcessingOrder::kLexicographic));

TEST(OrderTest, TopFirstStartsAtAllDmax) {
  auto order = CandidateLattice::MakeOrder(2, 9, ProcessingOrder::kTopFirst);
  CandidateLattice lat(2, 9);
  EXPECT_EQ(lat.LevelsOf(order.front()), (Levels{9, 9}));
  EXPECT_EQ(lat.LevelsOf(order.back()), (Levels{0, 0}));
}

TEST(OrderTest, BottomFirstStartsAtZero) {
  auto order =
      CandidateLattice::MakeOrder(2, 9, ProcessingOrder::kBottomFirst);
  CandidateLattice lat(2, 9);
  EXPECT_EQ(lat.LevelsOf(order.front()), (Levels{0, 0}));
}

TEST(OrderTest, MidFirstStartsNearMiddleSum) {
  auto order = CandidateLattice::MakeOrder(2, 9, ProcessingOrder::kMidFirst);
  CandidateLattice lat(2, 9);
  Levels first = lat.LevelsOf(order.front());
  EXPECT_EQ(LevelSum(first), 9);  // dims*dmax/2 = 9 for 2x9.
  // The extremes come last.
  Levels last = lat.LevelsOf(order.back());
  EXPECT_TRUE(LevelSum(last) == 0 || LevelSum(last) == 18);
}

TEST(OrderTest, ProcessingOrderNames) {
  EXPECT_STREQ(ProcessingOrderName(ProcessingOrder::kMidFirst), "mid-first");
  EXPECT_STREQ(ProcessingOrderName(ProcessingOrder::kTopFirst), "top-first");
}

TEST(CandidateLatticeTest, ThreeDimensionalEncoding) {
  CandidateLattice lat(3, 4);
  EXPECT_EQ(lat.size(), 125u);
  Levels l = {1, 2, 3};
  EXPECT_EQ(lat.LevelsOf(lat.IndexOf(l)), l);
}

}  // namespace
}  // namespace dd
